"""Tests for the resilience layer.

Covers the fault-injection registry, the Newton recovery ladder,
graceful degradation of the per-net flow, the crash-safe pool
(serial and jobs=2), the circuit breaker, checkpoint/resume, the
nested-timer restoration of the per-net timeout, and the block-level
``on_failure="hold"`` policy.
"""

import json
import os
import signal
import time

import pytest

from repro.bench.netgen import canonical_net
from repro.exec import NetFailure, TooManyFailures, analyze_nets
from repro.exec.pool import _time_limit
from repro.obs import metrics
from repro.resilience import (
    CheckpointWriter,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerCrash,
    active_plan,
    clear_faults,
    fire,
    install_faults,
    load_checkpoint,
)
from repro.sim import ConvergenceError, simulate_nonlinear
from repro.storage import noise_report_to_dict
from repro.units import FF, NS, PS


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """Every test starts and ends without an installed fault plan."""
    clear_faults()
    yield
    clear_faults()


# ----------------------------------------------------------------------
# Fault registry
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec(point="nope")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(point="exec.worker", action="nope")

    def test_substring_match(self):
        spec = FaultSpec(point="analysis.net", match="net1")
        assert spec.matches("analysis.net", "net1")
        assert spec.matches("analysis.net", "xx net1 yy")
        assert not spec.matches("analysis.net", "net2")
        assert not spec.matches("analysis.rtr", "net1")

    def test_times_budget(self):
        install_faults(FaultPlan().add(
            "analysis.net", action="error", times=2))
        with pytest.raises(InjectedFault):
            fire("analysis.net", "n")
        with pytest.raises(InjectedFault):
            fire("analysis.net", "n")
        fire("analysis.net", "n")  # budget exhausted: no-op

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan().add("exec.worker", match="n2",
                               action="crash", times=1)
        plan.add("analysis.net", action="sleep", seconds=0.5)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        loaded = FaultPlan.from_file(path)
        assert loaded.specs == plan.specs

    def test_install_and_clear(self):
        plan = install_faults(FaultPlan().add("exec.worker"))
        assert active_plan() is plan
        clear_faults()
        assert active_plan() is None
        fire("exec.worker", "anything")  # no plan: no-op

    def test_serial_crash_action_raises(self):
        install_faults(FaultPlan().add("exec.worker", action="crash"))
        with pytest.raises(WorkerCrash):
            fire("exec.worker", "n0")

    def test_sleep_action_sleeps(self):
        install_faults(FaultPlan().add(
            "exec.worker", action="sleep", seconds=0.05))
        t0 = time.monotonic()
        fire("exec.worker", "n0")
        assert time.monotonic() - t0 >= 0.05


# ----------------------------------------------------------------------
# Per-net timeout: nested SIGALRM timers
# ----------------------------------------------------------------------
class TestTimeLimitNesting:
    def test_outer_timer_restored(self):
        """An inner _time_limit must re-arm an outer pending ITIMER_REAL
        (it used to disarm it, silently cancelling the outer deadline)."""
        fired = []
        previous = signal.signal(signal.SIGALRM,
                                 lambda *_: fired.append(True))
        try:
            signal.setitimer(signal.ITIMER_REAL, 5.0)
            with _time_limit(0.5):
                pass
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            assert 0.0 < remaining <= 5.0
            # The outer handler is back in place too.
            assert signal.getsignal(signal.SIGALRM) is not None
            assert not fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_lapsed_outer_deadline_still_fires(self):
        """If the outer deadline passes while the inner limit holds the
        timer, the outer alarm is re-armed minimally, not dropped."""
        fired = []
        previous = signal.signal(signal.SIGALRM,
                                 lambda *_: fired.append(True))
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.02)
            with _time_limit(5.0):
                time.sleep(0.05)  # outer deadline lapses in here
            deadline = time.monotonic() + 2.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.005)
            assert fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_no_timer_left_behind(self):
        with _time_limit(1.0):
            pass
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert remaining == 0.0


# ----------------------------------------------------------------------
# Checkpoint file
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        writer = CheckpointWriter(path)
        writer.append("n0", "report", {"x": 1.5})
        writer.append("n1", "failure", {"error": "boom"})
        loaded = load_checkpoint(path)
        assert set(loaded) == {"n0", "n1"}
        assert loaded["n0"]["kind"] == "report"
        assert loaded["n0"]["data"] == {"x": 1.5}
        assert loaded["n1"]["kind"] == "failure"

    def test_missing_file_is_empty(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.jsonl") == {}

    def test_invalid_kind_rejected(self, tmp_path):
        writer = CheckpointWriter(tmp_path / "ck.jsonl")
        with pytest.raises(ValueError, match="kind"):
            writer.append("n0", "banana", {})

    def test_fresh_writer_unlinks_stale_file(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointWriter(path).append("old", "report", {})
        CheckpointWriter(path, resume=False)
        assert not path.exists()

    def test_resume_preserves_existing_records(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointWriter(path).append("n0", "report", {"v": 1})
        writer = CheckpointWriter(path, resume=True)
        writer.append("n1", "report", {"v": 2})
        assert set(load_checkpoint(path)) == {"n0", "n1"}

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text(json.dumps(
            {"format_version": 999, "net": "n", "kind": "report",
             "data": {}}) + "\n")
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(path)

    def test_append_is_atomic(self, tmp_path, monkeypatch):
        """A crash mid-append (simulated by a failing os.replace) must
        leave the previous checkpoint contents intact on disk."""
        path = tmp_path / "ck.jsonl"
        writer = CheckpointWriter(path)
        writer.append("n0", "report", {"v": 1})
        before = path.read_text()

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="disk full"):
            writer.append("n1", "report", {"v": 2})
        monkeypatch.undo()
        assert path.read_text() == before
        # No temp-file litter either.
        leftovers = [p for p in path.parent.iterdir() if p != path]
        assert leftovers == []


# ----------------------------------------------------------------------
# Newton recovery ladder
# ----------------------------------------------------------------------
def _inverter(input_wave):
    from repro.circuit import GROUND, Circuit
    from repro.devices import default_technology, nmos_params, pmos_params
    from repro.units import UM
    from repro.waveform import ramp

    tech = default_technology()
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", GROUND, tech.vdd)
    c.add_vsource("vin", "in", GROUND,
                  ramp(0.2 * NS, 0.1 * NS, 0.0, tech.vdd)
                  if input_wave is None else input_wave)
    c.add_mosfet("mn", nmos_params(tech, 1e-6), "out", "in", GROUND)
    c.add_mosfet("mp", pmos_params(tech, 2.2e-6), "out", "in", "vdd")
    c.add_capacitor("cl", "out", GROUND, 20 * FF)
    return c, tech.vdd


class TestNewtonRecovery:
    def test_transient_substep_recovery(self):
        """A one-shot injected non-convergence on a transient step is
        healed by dt bisection; the result still reaches the rail."""
        counter = metrics().counter("newton.recovered.substep")
        before = counter.value
        circuit, vdd = _inverter(None)
        install_faults(FaultPlan().add(
            "newton.step", match="t=", action="convergence", times=1))
        result = simulate_nonlinear(circuit, 2 * NS, 1 * PS)
        assert counter.value == before + 1
        assert result.voltage("out").values[-1] == \
            pytest.approx(0.0, abs=0.01)

    def test_dc_gmin_recovery(self):
        counter = metrics().counter("newton.recovered.gmin")
        before = counter.value
        circuit, vdd = _inverter(None)
        install_faults(FaultPlan().add(
            "newton.step", match="DC operating point",
            action="convergence", times=1))
        result = simulate_nonlinear(circuit, 0.05 * NS, 1 * PS)
        assert counter.value == before + 1
        assert result.voltage("out")(0.0) == pytest.approx(vdd, abs=0.01)

    def test_exhausted_ladder_still_raises(self):
        """Unlimited injected non-convergence defeats every rung, and
        the original ConvergenceError escapes."""
        circuit, _ = _inverter(None)
        install_faults(FaultPlan().add(
            "newton.step", action="convergence"))
        with pytest.raises(ConvergenceError):
            simulate_nonlinear(circuit, 0.05 * NS, 1 * PS)


# ----------------------------------------------------------------------
# Graceful degradation of the per-net flow
# ----------------------------------------------------------------------
class TestDegradation:
    def test_rtr_failure_falls_back_to_thevenin(self, analyzer,
                                                single_aggressor_net):
        install_faults(FaultPlan().add(
            "analysis.rtr", action="error"))
        report = analyzer.analyze(single_aggressor_net,
                                  alignment="table")
        assert report.quality == "degraded"
        stages = [d.stage for d in report.degradations]
        assert stages == ["rtr"]
        assert report.degradations[0].fallback == "thevenin-rth"
        # Without Rtr the holding resistance is the Thevenin Rth.
        assert report.rtr == pytest.approx(report.rth_victim)

    def test_alignment_failure_falls_back(self, analyzer,
                                          single_aggressor_net):
        install_faults(FaultPlan().add(
            "analysis.alignment", action="error"))
        report = analyzer.analyze(single_aggressor_net,
                                  alignment="table")
        assert report.quality == "degraded"
        assert any(d.stage == "alignment" and
                   d.fallback == "input-objective"
                   for d in report.degradations)

    def test_clean_run_is_exact_and_unchanged(self, analyzer,
                                              single_aggressor_net):
        install_faults(FaultPlan().add("analysis.rtr", action="error"))
        degraded = analyzer.analyze(single_aggressor_net,
                                    alignment="table")
        clear_faults()
        clean = analyzer.analyze(single_aggressor_net, alignment="table")
        assert clean.quality == "exact"
        assert clean.degradations == []
        # Degradation is conservative but different.
        assert degraded.rtr != pytest.approx(clean.rtr)

    def test_bad_parameter_still_raises(self, analyzer,
                                        single_aggressor_net):
        """Degradation must not swallow caller typos."""
        with pytest.raises(ValueError, match="rtr_driver_load"):
            analyzer.analyze(single_aggressor_net,
                             rtr_driver_load="banana")


# ----------------------------------------------------------------------
# Crash-safe pool
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pool_nets():
    return [canonical_net(n_aggressors=1, name=f"rn{i}")
            for i in range(3)]


class TestPoolResilience:
    def test_duplicate_names_rejected(self):
        nets = [canonical_net(n_aggressors=1, name="dup"),
                canonical_net(n_aggressors=1, name="dup")]
        with pytest.raises(ValueError, match="unique.*dup"):
            analyze_nets(nets)

    def test_serial_worker_crash_classified(self, analyzer, pool_nets):
        install_faults(FaultPlan().add(
            "exec.worker", match="rn1", action="crash"))
        result = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                              alignment="table")
        assert result.stats.failures_by_type == {"WorkerCrash": 1}
        assert result.reports[1] is None
        assert result.reports[0] is not None
        assert result.reports[2] is not None

    def test_mixed_failure_types(self, analyzer, pool_nets):
        """Timeout and convergence failures are tallied separately."""
        plan = FaultPlan()
        plan.add("analysis.net", match="rn0", action="convergence")
        plan.add("analysis.net", match="rn1", action="sleep",
                 seconds=5.0)
        install_faults(plan)
        result = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                              timeout=0.2, alignment="table")
        assert result.stats.failures_by_type["ConvergenceError"] == 1
        assert result.stats.failures_by_type["NetTimeout"] == 1
        assert result.reports[2] is not None

    def test_max_failures_breaker(self, analyzer, pool_nets):
        install_faults(FaultPlan().add(
            "analysis.net", action="convergence"))
        with pytest.raises(TooManyFailures, match="aborting"):
            analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                         max_failures=1, alignment="table")

    def test_max_failures_fraction(self, analyzer, pool_nets):
        install_faults(FaultPlan().add(
            "analysis.net", action="convergence"))
        # 3 nets * 0.5 = 1.5: the second failure trips the breaker.
        with pytest.raises(TooManyFailures):
            analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                         max_failures=0.5, alignment="table")

    def test_parallel_crash_matches_serial(self, analyzer, pool_nets):
        """jobs=2 with a crashing net: the crasher is attributed and
        retried in isolation, the others complete bit-identically to a
        serial run, and no BrokenProcessPool escapes."""
        install_faults(FaultPlan().add(
            "exec.worker", match="rn1", action="crash"))
        parallel = analyze_nets(pool_nets, jobs=2, analyzer=analyzer,
                                alignment="table", retries=1,
                                retry_backoff=0.01)
        clear_faults()
        serial = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                              alignment="table")
        assert parallel.stats.failures_by_type == {"WorkerCrash": 1}
        assert parallel.stats.worker_crashes >= 1
        assert parallel.stats.retries == 1
        for i in (0, 2):
            assert noise_report_to_dict(parallel.reports[i]) == \
                noise_report_to_dict(serial.reports[i])

    def test_report_lookup_after_failure(self, analyzer, pool_nets):
        install_faults(FaultPlan().add(
            "exec.worker", match="rn1", action="crash"))
        result = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                              alignment="table")
        assert result.report("rn0").net_name == "rn0"
        with pytest.raises(KeyError, match="failed"):
            result.report("rn1")
        with pytest.raises(KeyError, match="no net named"):
            result.report("absent")


class TestCheckpointResume:
    def test_resume_analyzes_only_remaining(self, analyzer, pool_nets,
                                            tmp_path):
        path = tmp_path / "run.jsonl"
        full = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                            alignment="table", checkpoint=path)
        lines = path.read_text().splitlines()
        # Header line plus one record per net.
        assert len(lines) == 4

        # Simulate a kill after the first net (keeping the header).
        path.write_text(lines[0] + "\n" + lines[1] + "\n")
        # A crash fault on the already-checkpointed net proves it is
        # NOT re-analyzed on resume.
        install_faults(FaultPlan().add(
            "exec.worker", match="rn0", action="crash"))
        resumed = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                               alignment="table", checkpoint=path,
                               resume=True)
        assert resumed.ok
        assert resumed.stats.resumed == 1
        for a, b in zip(full.reports, resumed.reports):
            assert noise_report_to_dict(a) == noise_report_to_dict(b)
        assert len(path.read_text().splitlines()) == 4

    def test_failures_survive_resume(self, analyzer, pool_nets,
                                     tmp_path):
        path = tmp_path / "run.jsonl"
        install_faults(FaultPlan().add(
            "analysis.net", match="rn1", action="convergence"))
        first = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                             alignment="table", checkpoint=path)
        clear_faults()
        resumed = analyze_nets(pool_nets, jobs=1, analyzer=analyzer,
                               alignment="table", checkpoint=path,
                               resume=True)
        assert resumed.stats.resumed == 3
        assert [f.net_name for f in resumed.failures] == ["rn1"]
        assert resumed.failures[0].error_type == \
            first.failures[0].error_type


# ----------------------------------------------------------------------
# Block-level on_failure policy
# ----------------------------------------------------------------------
class TestBlockOnFailure:
    def _block(self, analyzer):
        from repro.core.block import BlockAnalyzer, BlockNet
        from repro.sta import TimingGraph, Window

        graph = TimingGraph()
        graph.add_input("launch", Window(0.1 * NS, 0.2 * NS))
        graph.add_input("agg_in", Window(0.0, 0.6 * NS))
        graph.add_edge("launch", "rcv_out", 0.3 * NS, 0.5 * NS)
        graph.add_edge("agg_in", "agg_out", 0.02 * NS, 0.05 * NS)
        net = BlockNet(net=canonical_net(name="holdnet"),
                       launch_node="launch", receiver_node="rcv_out",
                       aggressor_nodes={"agg0": "agg_out"})
        return BlockAnalyzer(graph, [net], analyzer), graph

    def test_invalid_policy_rejected(self, analyzer):
        block, _ = self._block(analyzer)
        with pytest.raises(ValueError, match="on_failure"):
            block.run(on_failure="banana")

    def test_raise_policy_aborts(self, analyzer):
        block, _ = self._block(analyzer)
        install_faults(FaultPlan().add(
            "analysis.net", match="holdnet", action="convergence"))
        with pytest.raises(RuntimeError, match="holdnet"):
            block.run(max_iterations=2)

    def test_hold_policy_completes(self, analyzer):
        block, graph = self._block(analyzer)
        before = graph.edge_delay("launch", "rcv_out")
        install_faults(FaultPlan().add(
            "analysis.net", match="holdnet", action="convergence"))
        report = block.run(max_iterations=2, on_failure="hold")
        assert "holdnet" in report.failures
        assert "ConvergenceError" in report.failures["holdnet"]
        assert report.deltas["holdnet"] == 0.0
        # The failing net's arc kept its seed delay.
        assert graph.edge_delay("launch", "rcv_out") == before
