"""Tests for repro.mor.ticer (realizable RC reduction)."""

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND, build_mna
from repro.circuit.moments import elmore_delay
from repro.circuit.topology import couple_nodes, rc_line
from repro.mor import ticer_reduce
from repro.sim import simulate_linear
from repro.units import FF, KOHM, NS, PS
from repro.waveform import ramp


def ladder(segments=10):
    circuit = Circuit("ladder")
    rc_line(circuit, "w_", "in", "out", segments, 2 * KOHM, 100 * FF)
    return circuit


def dc_resistance(circuit, a, b):
    """Two-point resistance via a probe current."""
    from repro.gates.ceff import admittance_moments
    trial = circuit.copy()
    # Ground b, probe a.
    trial.add_resistor("__short", b, GROUND, 1e-6)
    y = admittance_moments(trial, a, count=1)
    return 1.0 / y[0]


class TestStructure:
    def test_ports_survive(self):
        reduced = ticer_reduce(ladder(), keep=["in", "out"])
        assert set(reduced.nodes()) == {"in", "out"}

    def test_threshold_limits_elimination(self):
        # Per-node tau ~ (10fF)/(2*1/200ohm) = 1 ps; a tiny threshold
        # keeps everything.
        reduced = ticer_reduce(ladder(), keep=["in", "out"],
                               max_time_constant=1e-18)
        assert len(reduced.nodes()) == len(ladder().nodes())

    def test_rejects_active_circuits(self):
        circuit = ladder()
        circuit.add_vsource("v", "in", GROUND, 1.0)
        with pytest.raises(ValueError, match="passive"):
            ticer_reduce(circuit, keep=["in"])

    def test_unknown_keep(self):
        with pytest.raises(KeyError):
            ticer_reduce(ladder(), keep=["ghost"])

    def test_capacitor_only_node_kept(self):
        circuit = ladder()
        circuit.add_capacitor("cc", "out", "floaty", 5 * FF)
        circuit.add_capacitor("cg", "floaty", GROUND, 5 * FF)
        reduced = ticer_reduce(circuit, keep=["in", "out"])
        assert "floaty" in reduced.nodes()


class TestExactness:
    def test_dc_resistance_exact(self):
        full = ladder()
        reduced = ticer_reduce(full, keep=["in", "out"])
        assert dc_resistance(reduced, "in", "out") == pytest.approx(
            dc_resistance(full, "in", "out"), rel=1e-9)

    def test_total_capacitance_preserved(self):
        full = ladder()
        reduced = ticer_reduce(full, keep=["in", "out"])
        total_full = sum(c.capacitance for c in full.capacitors)
        total_reduced = sum(c.capacitance for c in reduced.capacitors)
        assert total_reduced == pytest.approx(total_full, rel=1e-9)

    def test_elmore_delay_preserved(self):
        """The charge-preserving cap rule keeps the first moment."""
        full = ladder()
        reduced = ticer_reduce(full, keep=["in", "out"])
        assert elmore_delay(reduced, "in", "out") == pytest.approx(
            elmore_delay(full, "in", "out"), rel=1e-6)


class TestTransientAccuracy:
    def test_waveform_close_with_threshold(self):
        """Eliminating only sub-5ps nodes leaves the ns-scale transient
        intact."""
        def run(circuit):
            trial = circuit.copy()
            trial.add_vsource("v", "in", GROUND,
                              ramp(0.05 * NS, 0.2 * NS, 0.0, 1.0))
            return simulate_linear(trial, 3 * NS, 1 * PS).voltage("out")

        full = ladder(segments=20)
        reduced = ticer_reduce(full, keep=["in", "out"],
                               max_time_constant=5 * PS)
        assert len(reduced.nodes()) < len(full.nodes())
        out_full = run(full)
        out_reduced = run(reduced)
        err = np.abs(out_full.values - out_reduced.values).max()
        assert err < 0.03

    def test_coupled_net_reduction(self):
        """Coupling caps survive as port-to-port capacitance."""
        circuit = Circuit("coupled")
        na = rc_line(circuit, "a_", "a_in", "a_out", 6, 1 * KOHM, 40 * FF)
        nb = rc_line(circuit, "b_", "b_in", "b_out", 6, 1 * KOHM, 40 * FF)
        couple_nodes(circuit, "x_", na, nb, 30 * FF)
        reduced = ticer_reduce(
            circuit, keep=["a_in", "a_out", "b_in", "b_out"])
        # Some capacitance now bridges the two nets' kept nodes.
        cross = sum(
            c.capacitance for c in reduced.capacitors
            if {c.node1[0], c.node2[0]} == {"a", "b"})
        assert cross > 5 * FF
