"""Tests for repro.cli."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main

DECK = """
Rv1 v_root v1 400
Rv2 v1 v_rcv 400
Cv1 v1 0 20f
Cv2 v_rcv 0 10f
Ra1 a_root a1 300
Ra2 a1 a_far 300
Ca1 a1 0 15f
Ca2 a_far 0 10f
Cc1 v1 a1 25f COUPLING
Cc2 v_rcv a_far 15f COUPLING
"""


@pytest.fixture()
def deck_path(tmp_path):
    path = tmp_path / "net.sp"
    path.write_text(DECK)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engineering_values(self):
        args = build_parser().parse_args(
            ["analyze", "x.sp", "--victim-root", "a",
             "--victim-receiver", "b", "--aggressor", "g:r:f",
             "--receiver-load", "25f", "--victim-slew", "150p"])
        assert args.receiver_load == pytest.approx(25e-15)
        assert args.victim_slew == pytest.approx(150e-12)

    def test_bad_value_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "x.sp", "--victim-root", "a",
                 "--victim-receiver", "b", "--aggressor", "g:r:f",
                 "--receiver-load", "wat"])


class TestAnalyze:
    def test_basic_run(self, deck_path, capsys):
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far:INV_X4:120p",
            "--alignment", "input-objective", "--no-rtr",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "extra delay output" in out
        assert "composite pulse" in out

    def test_plot_and_functional(self, deck_path, capsys):
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far",
            "--alignment", "input-objective", "--no-rtr",
            "--plot", "--functional",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "functional noise" in out
        assert "noiseless" in out  # the ASCII chart legend

    def test_bad_aggressor_spec(self, deck_path):
        with pytest.raises(SystemExit, match="aggressor"):
            main(["analyze", str(deck_path),
                  "--victim-root", "v_root",
                  "--victim-receiver", "v_rcv",
                  "--aggressor", "only_a_name"])

    def test_chardb_roundtrip(self, deck_path, tmp_path, capsys):
        db = tmp_path / "db.json"
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far",
            "--alignment", "input-objective", "--no-rtr",
            "--save-chardb", str(db),
        ])
        assert code == 0
        payload = json.loads(db.read_text())
        assert payload["thevenin_tables"]
        # Reload into a second run.
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far",
            "--alignment", "input-objective", "--no-rtr",
            "--chardb", str(db),
        ])
        assert code == 0
        assert "loaded characterization" in capsys.readouterr().out


class TestCharacterize:
    def test_thevenin_only(self, tmp_path, capsys):
        db = tmp_path / "char.json"
        code = main(["characterize", "--cells", "INV_X1",
                     "--slews", "200p", "--out", str(db),
                     "--skip-alignment"])
        out = capsys.readouterr().out
        assert code == 0
        assert "saved" in out
        payload = json.loads(db.read_text())
        assert len(payload["thevenin_tables"]) == 2  # rising + falling
        assert payload["alignment_tables"] == []


    def test_characterize_then_analyze(self, deck_path, tmp_path,
                                       capsys):
        """Full CLI round-trip: build a database with ``characterize``,
        then consume it via ``analyze --chardb``."""
        db = tmp_path / "db.json"
        code = main(["characterize", "--cells", "INV_X1,INV_X4",
                     "--slews", "200p,120p", "--out", str(db),
                     "--skip-alignment"])
        assert code == 0
        payload = json.loads(db.read_text())
        # 2 cells x 2 slews x 2 directions.
        assert len(payload["thevenin_tables"]) == 8

        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far:INV_X4:120p",
            "--alignment", "input-objective", "--no-rtr",
            "--chardb", str(db),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert f"loaded characterization from {db}" in out
        assert "extra delay output" in out


class TestScreen:
    def test_screen_runs(self, capsys):
        code = main(["screen", "--seed", "3", "--count", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Rtr/Rth" in out
        assert "net0" in out
        assert "# 1 nets, 0 failed" in out

    def test_screen_parallel(self, capsys):
        code = main(["screen", "--seed", "3", "--count", "2",
                     "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "net0" in out
        assert "net1" in out
        assert "# 2 nets, 0 failed" in out
        assert "jobs=2" in out
        assert "misses" in out
