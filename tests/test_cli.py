"""Tests for repro.cli."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main
from repro.obs import disable_tracing, metrics, read_trace

DECK = """
Rv1 v_root v1 400
Rv2 v1 v_rcv 400
Cv1 v1 0 20f
Cv2 v_rcv 0 10f
Ra1 a_root a1 300
Ra2 a1 a_far 300
Ca1 a1 0 15f
Ca2 a_far 0 10f
Cc1 v1 a1 25f COUPLING
Cc2 v_rcv a_far 15f COUPLING
"""


@pytest.fixture()
def deck_path(tmp_path):
    path = tmp_path / "net.sp"
    path.write_text(DECK)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engineering_values(self):
        args = build_parser().parse_args(
            ["analyze", "x.sp", "--victim-root", "a",
             "--victim-receiver", "b", "--aggressor", "g:r:f",
             "--receiver-load", "25f", "--victim-slew", "150p"])
        assert args.receiver_load == pytest.approx(25e-15)
        assert args.victim_slew == pytest.approx(150e-12)

    def test_bad_value_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "x.sp", "--victim-root", "a",
                 "--victim-receiver", "b", "--aggressor", "g:r:f",
                 "--receiver-load", "wat"])


class TestAnalyze:
    def test_basic_run(self, deck_path, capsys):
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far:INV_X4:120p",
            "--alignment", "input-objective", "--no-rtr",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "extra delay output" in out
        assert "composite pulse" in out

    def test_plot_and_functional(self, deck_path, capsys):
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far",
            "--alignment", "input-objective", "--no-rtr",
            "--plot", "--functional",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "functional noise" in out
        assert "noiseless" in out  # the ASCII chart legend

    def test_bad_aggressor_spec(self, deck_path):
        with pytest.raises(SystemExit, match="aggressor"):
            main(["analyze", str(deck_path),
                  "--victim-root", "v_root",
                  "--victim-receiver", "v_rcv",
                  "--aggressor", "only_a_name"])

    def test_chardb_roundtrip(self, deck_path, tmp_path, capsys):
        db = tmp_path / "db.json"
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far",
            "--alignment", "input-objective", "--no-rtr",
            "--save-chardb", str(db),
        ])
        assert code == 0
        payload = json.loads(db.read_text())
        assert payload["thevenin_tables"]
        # Reload into a second run.
        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far",
            "--alignment", "input-objective", "--no-rtr",
            "--chardb", str(db),
        ])
        assert code == 0
        assert "loaded characterization" in capsys.readouterr().out


class TestCharacterize:
    def test_thevenin_only(self, tmp_path, capsys):
        db = tmp_path / "char.json"
        code = main(["characterize", "--cells", "INV_X1",
                     "--slews", "200p", "--out", str(db),
                     "--skip-alignment"])
        out = capsys.readouterr().out
        assert code == 0
        assert "saved" in out
        payload = json.loads(db.read_text())
        assert len(payload["thevenin_tables"]) == 2  # rising + falling
        assert payload["alignment_tables"] == []


    def test_characterize_then_analyze(self, deck_path, tmp_path,
                                       capsys):
        """Full CLI round-trip: build a database with ``characterize``,
        then consume it via ``analyze --chardb``."""
        db = tmp_path / "db.json"
        code = main(["characterize", "--cells", "INV_X1,INV_X4",
                     "--slews", "200p,120p", "--out", str(db),
                     "--skip-alignment"])
        assert code == 0
        payload = json.loads(db.read_text())
        # 2 cells x 2 slews x 2 directions.
        assert len(payload["thevenin_tables"]) == 8

        code = main([
            "analyze", str(deck_path),
            "--victim-root", "v_root", "--victim-receiver", "v_rcv",
            "--aggressor", "agg0:a_root:a_far:INV_X4:120p",
            "--alignment", "input-objective", "--no-rtr",
            "--chardb", str(db),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert f"loaded characterization from {db}" in out
        assert "extra delay output" in out


class TestScreen:
    def test_screen_runs(self, capsys):
        code = main(["screen", "--seed", "3", "--count", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Rtr/Rth" in out
        assert "net0" in out
        assert "# 1 nets, 0 failed" in out

    def test_screen_parallel(self, capsys):
        code = main(["screen", "--seed", "3", "--count", "2",
                     "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "net0" in out
        assert "net1" in out
        assert "# 2 nets, 0 failed" in out
        assert "jobs=2" in out
        assert "misses" in out

    def test_resume_requires_checkpoint(self, capsys):
        code = main(["screen", "--count", "1", "--resume"])
        assert code == 2

    def test_screen_checkpoint_and_inject(self, tmp_path, capsys):
        """--inject labels injected failures; --checkpoint records
        every net; --resume answers from the checkpoint."""
        from repro.resilience import clear_faults, load_checkpoint

        plan = tmp_path / "plan.json"
        plan.write_text('[{"point": "analysis.net", "match": "net0",'
                        ' "action": "convergence"}]')
        ckpt = tmp_path / "run.jsonl"
        try:
            code = main(["screen", "--seed", "3", "--count", "2",
                         "--inject", str(plan),
                         "--checkpoint", str(ckpt)])
        finally:
            clear_faults()
        out = capsys.readouterr().out
        assert code == 1
        assert "ConvergenceError x1" in out
        assert len(load_checkpoint(ckpt)) == 2

        code = main(["screen", "--seed", "3", "--count", "2",
                     "--checkpoint", str(ckpt), "--resume"])
        out = capsys.readouterr().out
        assert code == 1
        assert "2 resumed from checkpoint" in out


class TestTieredScreening:
    """``screen --noise-threshold``: the tiered triage front end."""

    def test_audit_rate_requires_threshold(self, capsys):
        code = main(["screen", "--count", "1",
                     "--prune-audit-rate", "0.5"])
        assert code == 2
        assert "--noise-threshold" in capsys.readouterr().out

    def test_audit_rate_range_validated(self, capsys):
        code = main(["screen", "--count", "1",
                     "--noise-threshold", "0.5",
                     "--prune-audit-rate", "1.5"])
        assert code == 2
        assert "[0, 1]" in capsys.readouterr().out

    def test_all_pruned_run_skips_tier2(self, tmp_path, capsys):
        """An unreachable threshold prunes every net at tier 0: no
        table rows, no characterization of the pruned nets, and the
        manifest records the per-tier split."""
        from repro.obs import load_manifest

        manifest_file = tmp_path / "run.json"
        metrics().reset()
        code = main(["screen", "--preset", "screening", "--seed", "3",
                     "--count", "4", "--noise-threshold", "100",
                     "--manifest", str(manifest_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "# screening: threshold 100.000 V" in out
        assert "4 pruned (100.0%), 0 escalated" in out
        assert "net0" not in out  # pruned nets render no table row

        payload = load_manifest(manifest_file)
        sc = payload["screening"]
        assert sc["pruned"] == 4
        assert sc["by_tier"]["0"] == 4
        assert sc["escalated"] == 0
        assert payload["config"]["noise_threshold"] == 100.0
        assert payload["config"]["tier_policy"] == "auto"
        assert "triage" in payload["stages"]

    def test_full_policy_analyzes_all(self, capsys):
        code = main(["screen", "--seed", "3", "--count", "1",
                     "--noise-threshold", "100",
                     "--tier-policy", "full"])
        out = capsys.readouterr().out
        assert code == 0
        assert "net0" in out  # escalated by policy, so a row renders
        assert "1 escalated" in out

    def test_clean_prune_audit(self, capsys):
        code = main(["screen", "--preset", "screening", "--seed", "3",
                     "--count", "2", "--noise-threshold", "100",
                     "--prune-audit-rate", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# prune audit: 2/2 pruned net(s) re-run at tier 2, " \
            "0 unsound" in out


class TestObservability:
    SUMMARY_COLUMNS = ("stage", "count", "total s", "self s",
                       "p50 ms", "p95 ms")

    def test_bare_invocation_prints_help_exit_2(self, capsys):
        assert main([]) == 2
        captured = capsys.readouterr()
        assert "usage:" in captured.err
        assert captured.out == ""

    def test_screen_trace_metrics_and_summarize(self, tmp_path,
                                                capsys):
        """End-to-end: ``screen --trace/--metrics`` writes artifacts
        that ``trace summarize`` and plain JSON tooling can consume."""
        trace_file = tmp_path / "run.jsonl"
        metrics_file = tmp_path / "run.json"
        # The registry is process-global and cumulative; zero it so the
        # written metrics describe this run alone.
        metrics().reset()
        try:
            code = main(["screen", "--seed", "3", "--count", "1",
                         "--trace", str(trace_file),
                         "--metrics", str(metrics_file)])
        finally:
            disable_tracing()
        out = capsys.readouterr().out
        assert code == 0
        assert f"spans to {trace_file}" in out
        assert f"metrics to {metrics_file}" in out

        records = read_trace(trace_file)
        names = {r["name"] for r in records}
        assert {"net.analyze", "net.superposition", "net.alignment",
                "net.receiver_eval", "exec.analyze_nets"} <= names
        net_spans = [r for r in records if r["name"] == "net.analyze"]
        assert [r["attrs"]["net"] for r in net_spans] == ["net0"]

        payload = json.loads(metrics_file.read_text())
        assert payload["counters"]["analysis.nets"] == 1
        assert payload["histograms"]["newton.iterations"]["count"] > 0

        code = main(["trace", "summarize", str(trace_file)])
        out = capsys.readouterr().out
        assert code == 0
        for column in self.SUMMARY_COLUMNS:
            assert column in out
        assert "net.analyze" in out
        assert "total traced time" in out

    def test_trace_summarize_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 1
        captured = capsys.readouterr()
        assert "no spans" in captured.out

    def test_quiet_suppresses_program_output(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        trace_file.write_text(json.dumps(
            {"id": 1, "parent": None, "name": "net.analyze",
             "start": 0.0, "dur": 0.5, "attrs": {}}) + "\n")
        assert main(["-q", "trace", "summarize",
                     str(trace_file)]) == 0
        assert capsys.readouterr().out == ""

    def test_verbose_flag_parses(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        trace_file.write_text(json.dumps(
            {"id": 1, "parent": None, "name": "net.analyze",
             "start": 0.0, "dur": 0.5, "attrs": {}}) + "\n")
        assert main(["-v", "trace", "summarize",
                     str(trace_file)]) == 0
        assert "net.analyze" in capsys.readouterr().out


class TestBenchPerf:
    def test_requires_perf_flag(self, capsys):
        assert main(["bench"]) == 2
        assert "--perf" in capsys.readouterr().out

    def test_quick_perf_run_writes_payload(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(["bench", "--perf", "--quick", "--count", "1",
                     "--t-stop", "0.1n", "--sparse-dim", "0",
                     "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.bench.perf/v5"
        assert payload["equivalence"]["within_tolerance"] is True
        assert payload["equivalence"]["max_state_delta"] <= 1e-9
        assert payload["equivalence"]["batched_within_tolerance"] is True
        assert "sparse" not in payload  # --sparse-dim 0 disables
        for kernel in ("legacy", "fast"):
            assert payload["kernels"][kernel]["transient_steps"] > 0
        assert "newton_throughput" in payload["speedup"]
        text = capsys.readouterr().out
        assert "equivalence: max state delta" in text
        assert "-> ok" in text

    def test_quick_perf_sparse_phase(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(["bench", "--perf", "--quick", "--count", "1",
                     "--t-stop", "0.1n", "--sparse-dim", "600",
                     "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        sp = payload["sparse"]
        assert sp["dim"] >= 512
        assert sp["within_tolerance"] is True
        assert sp["max_state_delta"] <= sp["tolerance"]
        assert sp["speedup"] > 0
        assert "analysis_sparse_s" not in sp  # --quick skips it
        assert "sparse phase: dim=" in capsys.readouterr().out


class TestRunLedger:
    """``--manifest``/``--progress``, ``report``, ``trace export`` and
    the bench history comparator."""

    def test_screen_manifest_and_progress(self, tmp_path, capsys):
        from repro.obs import load_manifest

        manifest_file = tmp_path / "run.json"
        metrics().reset()
        code = main(["screen", "--seed", "3", "--count", "2",
                     "--manifest", str(manifest_file), "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert f"manifest to {manifest_file}" in captured.out
        # The live progress line renders on stderr and terminates.
        assert "[2/2]" in captured.err
        assert "nets/s" in captured.err

        payload = load_manifest(manifest_file)
        assert payload["schema"] == "repro.obs.manifest/v1"
        assert payload["command"] == "screen"
        assert payload["config"]["seed"] == 3
        assert payload["git"]["revision"]  # tests run in a checkout
        assert payload["host"]["cpu_count"] >= 1
        assert payload["resources"]["peak_rss_bytes"] > 0
        for stage in ("characterization", "analysis",
                      "functional-screen"):
            assert payload["stages"][stage] >= 0.0
        assert payload["progress"]["nets"] == 2
        assert payload["progress"]["total"] == 2
        # The acceptance budget: telemetry costs under 1% of the wall.
        assert payload["telemetry_overhead"]["fraction"] < 0.01
        assert payload["failures"]["total"] == 0

        # `repro report` renders the ledger back.
        code = main(["report", str(manifest_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "run: screen" in out
        assert "git:" in out
        assert "peak RSS" in out
        assert "telemetry overhead" in out

    def test_manifest_counters_parity_serial_vs_parallel(self,
                                                         tmp_path,
                                                         capsys):
        """jobs=1 and jobs=2 manifests report identical counter
        totals — the worker drain/absorb path loses nothing."""
        from repro.obs import load_manifest

        serial_file = tmp_path / "serial.json"
        parallel_file = tmp_path / "parallel.json"
        metrics().reset()
        assert main(["screen", "--seed", "3", "--count", "2",
                     "--manifest", str(serial_file)]) == 0
        metrics().reset()
        assert main(["screen", "--seed", "3", "--count", "2",
                     "--jobs", "2",
                     "--manifest", str(parallel_file)]) == 0
        capsys.readouterr()
        serial = load_manifest(serial_file)["metrics"]["counters"]
        parallel = load_manifest(parallel_file)["metrics"]["counters"]

        # Solver-cache hit/miss counters track per-process LRU state,
        # which legitimately differs between one warm parent and two
        # cold workers, and the pool path registers still-zero crash
        # counters the serial path never touches; every counter that
        # recorded analysis *work* must agree exactly.
        def work(counters):
            return {name: value for name, value in counters.items()
                    if value and "_cache." not in name}

        assert work(serial) == work(parallel)
        assert serial["analysis.nets"] == 2

    def test_report_rejects_foreign_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "not/a-manifest"}))
        assert main(["report", str(path)]) == 1
        assert "not a run manifest" in capsys.readouterr().out

    def test_trace_export_chrome(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        chrome_file = tmp_path / "chrome.json"
        metrics().reset()
        try:
            assert main(["screen", "--seed", "3", "--count", "1",
                         "--trace", str(trace_file)]) == 0
        finally:
            disable_tracing()
        assert main(["trace", "export", str(trace_file),
                     "--chrome", str(chrome_file)]) == 0
        assert "ui.perfetto.dev" in capsys.readouterr().out

        payload = json.loads(chrome_file.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert events
        for event in events:
            assert event["pid"] == 1
            assert event["tid"] >= 1
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        # Same-track events nest properly (parent encloses child).
        by_tid = {}
        for event in events:
            by_tid.setdefault(event["tid"], []).append(event)
        for tid_events in by_tid.values():
            tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
            for a, b in zip(tid_events, tid_events[1:]):
                a_end = a["ts"] + a["dur"]
                assert b["ts"] + b["dur"] <= a_end or b["ts"] >= a_end

    def test_trace_export_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "export", str(empty),
                     "--chrome", str(tmp_path / "c.json")]) == 1
        assert "no spans" in capsys.readouterr().out

    def test_baseline_requires_history(self, capsys):
        assert main(["bench", "--perf", "--baseline"]) == 2
        assert "--baseline requires --history" in \
            capsys.readouterr().out


class TestBenchHistoryCLI:
    """History append + comparator via a stubbed run_perf (the real
    kernels are exercised by TestBenchPerf)."""

    PAYLOAD = {
        "schema": "repro.bench.perf/v5",
        "config": {"seed": 1, "count": 1, "t_stop": 1e-10},
        "kernels": {"fast": {"transient_s": 0.05,
                             "steps_per_second": 20000.0}},
        "speedup": {"newton_throughput": 2.5},
        "equivalence": {"within_tolerance": True,
                        "batched_within_tolerance": True},
    }

    @pytest.fixture()
    def stub_perf(self, monkeypatch):
        import repro.bench.perf as perf_module

        monkeypatch.setattr(perf_module, "run_perf",
                            lambda **kwargs: dict(self.PAYLOAD))
        monkeypatch.setattr(perf_module, "format_perf",
                            lambda payload: "stubbed perf table")

    def test_history_appends_and_passes(self, tmp_path, capsys,
                                        stub_perf):
        history = tmp_path / "hist.jsonl"
        out = tmp_path / "bench.json"
        assert main(["bench", "--perf", "--out", str(out),
                     "--history", str(history)]) == 0
        assert main(["bench", "--perf", "--out", str(out),
                     "--history", str(history), "--baseline"]) == 0
        text = capsys.readouterr().out
        assert f"appended history entry #1 to {history}" in text
        assert f"appended history entry #2 to {history}" in text
        assert "no tracked phase regressed" in text
        lines = history.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"]
                   == "repro.bench.history/v1" for line in lines)

    def test_doctored_history_fails_baseline(self, tmp_path, capsys,
                                             stub_perf):
        """Acceptance: a synthetic >10% drop exits non-zero."""
        history = tmp_path / "hist.jsonl"
        doctored = dict(self.PAYLOAD)
        doctored["speedup"] = {"newton_throughput": 10.0}
        from repro.bench.history import append_history, history_record

        append_history(history, history_record(doctored))
        out = tmp_path / "bench.json"
        assert main(["bench", "--perf", "--out", str(out),
                     "--history", str(history), "--baseline"]) == 1
        text = capsys.readouterr().out
        assert "regressed more than 10%" in text
        assert "newton_throughput" in text

    def test_threshold_flag_relaxes_comparator(self, tmp_path, capsys,
                                               stub_perf):
        history = tmp_path / "hist.jsonl"
        doctored = dict(self.PAYLOAD)
        doctored["speedup"] = {"newton_throughput": 2.6}  # -4% drop
        from repro.bench.history import append_history, history_record

        append_history(history, history_record(doctored))
        out = tmp_path / "bench.json"
        assert main(["bench", "--perf", "--out", str(out),
                     "--history", str(history), "--baseline",
                     "--regression-threshold", "0.5"]) == 0
        assert "threshold 50%" in capsys.readouterr().out

    def test_bench_manifest(self, tmp_path, capsys, stub_perf):
        from repro.obs import load_manifest

        manifest_file = tmp_path / "bench_manifest.json"
        out = tmp_path / "bench.json"
        assert main(["bench", "--perf", "--out", str(out),
                     "--manifest", str(manifest_file)]) == 0
        capsys.readouterr()
        payload = load_manifest(manifest_file)
        assert payload["command"] == "bench"
        assert payload["stages"]["perf"] >= 0.0
        assert payload["speedup"] == {"newton_throughput": 2.5}
