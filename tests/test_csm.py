"""Tests for repro.gates.csm (current-source driver models)."""

import numpy as np
import pytest

from repro.gates import (
    CurrentSourceModel,
    PiModel,
    characterize_csm,
    inverter,
    simulate_csm_driver,
)
from repro.sim import simulate_nonlinear
from repro.units import FF, KOHM, NS, PS
from repro.waveform import Waveform, ramp, triangular_pulse

VDD = 1.8


@pytest.fixture(scope="module")
def csm():
    return characterize_csm(inverter(scale=2), grid_points=13)


class TestCharacterization:
    def test_metadata(self, csm):
        assert csm.gate_name == "INV_X2"
        assert csm.inverting
        assert csm.c_out > 0
        assert csm.c_in > 0

    def test_corner_signs(self, csm):
        # Input low, output low: PMOS pulls up -> positive current in.
        assert csm.output_current(0.0, 0.0) > 1e-4
        # Input high, output high: NMOS pulls down -> negative current.
        assert csm.output_current(VDD, VDD) < -1e-4

    def test_equilibria_at_rails(self, csm):
        # Input low, output AT the high rail: (almost) no current.
        assert abs(csm.output_current(0.0, VDD)) < 2e-5
        assert abs(csm.output_current(VDD, 0.0)) < 2e-5

    def test_clamping_outside_grid(self, csm):
        inside = csm.output_current(0.0, 0.0)
        outside = csm.output_current(-1.0, -1.0)
        assert outside == pytest.approx(inside)

    def test_conductance_positive_when_holding(self, csm):
        # Holding low (input high): triode NMOS, strong conductance.
        g = csm.output_conductance(VDD, 0.1)
        assert g > 1e-4

    def test_table_shape_validation(self):
        with pytest.raises(ValueError):
            CurrentSourceModel("X", VDD, np.linspace(0, 1, 3),
                               np.linspace(0, 1, 3), np.zeros((2, 3)),
                               1e-15, 1e-15, True)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            characterize_csm(inverter(), grid_points=2)


class TestTransientAccuracy:
    @pytest.mark.parametrize("c_load", [10 * FF, 40 * FF, 120 * FF])
    def test_matches_transistor_transition(self, csm, c_load):
        """CSM crossing times within ~2 ps of the transistor gate."""
        inv = inverter(scale=2)
        wave = ramp(0.2 * NS, 0.2 * NS, VDD, 0.0)  # output rises
        ref = simulate_nonlinear(
            inv.driven_circuit(wave, c_load_external=c_load),
            5 * NS, 1 * PS).voltage("out")
        out = simulate_csm_driver(csm, wave, c_load, 5 * NS, 1 * PS)
        for level in (0.1 * VDD, 0.5 * VDD, 0.9 * VDD):
            t_ref = ref.crossing_time(level, rising=True)
            t_csm = out.crossing_time(level, rising=True)
            assert t_csm == pytest.approx(t_ref, abs=3 * PS)

    def test_pi_load(self, csm):
        """π-loaded CSM stays bounded and settles at the rail."""
        wave = ramp(0.2 * NS, 0.2 * NS, VDD, 0.0)
        pi = PiModel(c_near=15 * FF, r=1 * KOHM, c_far=40 * FF)
        out = simulate_csm_driver(csm, wave, pi, 5 * NS, 1 * PS)
        assert out.values[-1] == pytest.approx(VDD, abs=0.02)
        lo, hi = out.value_range()
        assert lo > -0.05 and hi < VDD + 0.05

    def test_dc_start_matches_input(self, csm):
        # Constant high input -> output starts (and stays) low.
        out = simulate_csm_driver(csm, Waveform.constant(VDD, 0, 1 * NS),
                                  20 * FF, 1 * NS, 1 * PS)
        assert abs(out.values[0]) < 0.05
        assert abs(out.values[-1]) < 0.05

    def test_noise_injection_hook(self, csm):
        """Injected current perturbs the switching CSM like the Rtr
        driver pair perturbs the transistor gate."""
        wave = ramp(0.2 * NS, 0.2 * NS, VDD, 0.0)
        pulse = triangular_pulse(0.45 * NS, -1.0e-3, 0.1 * NS)
        clean = simulate_csm_driver(csm, wave, 30 * FF, 3 * NS, 1 * PS)
        noisy = simulate_csm_driver(csm, wave, 30 * FF, 3 * NS, 1 * PS,
                                    i_inject=pulse)
        diff = noisy - clean
        assert diff.value_range()[0] < -0.05  # visible dip
        assert abs(diff.values[-1]) < 1e-3    # recovers

    def test_csm_noise_response_matches_transistor(self, csm):
        """The CSM replay of an injected noise current reproduces the
        transistor-level V'n within ~10% of area — the fast path for
        Rtr-style computations."""
        from repro.circuit import GROUND
        inv = inverter(scale=2)
        wave = ramp(0.2 * NS, 0.2 * NS, VDD, 0.0)
        pulse = triangular_pulse(0.45 * NS, -0.8e-3, 0.12 * NS)

        clean_c = inv.driven_circuit(wave, c_load_external=30 * FF)
        noisy_c = inv.driven_circuit(wave, c_load_external=30 * FF)
        noisy_c.add_isource("inj", "out", GROUND, pulse)
        v1 = simulate_nonlinear(clean_c, 3 * NS, 1 * PS).voltage("out")
        v2 = simulate_nonlinear(noisy_c, 3 * NS, 1 * PS).voltage("out")
        ref = v2 - v1

        c1 = simulate_csm_driver(csm, wave, 30 * FF, 3 * NS, 1 * PS)
        c2 = simulate_csm_driver(csm, wave, 30 * FF, 3 * NS, 1 * PS,
                                 i_inject=pulse)
        fast = c2 - c1
        assert fast.integral() == pytest.approx(ref.integral(), rel=0.1)
