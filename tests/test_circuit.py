"""Tests for repro.circuit (elements, netlist, MNA stamping)."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    GROUND,
    Resistor,
    build_mna,
)
from repro.devices import default_technology, nmos_params
from repro.units import FF, KOHM, NS
from repro.waveform import ramp


class TestElements:
    def test_resistor_validation(self):
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", -5.0)

    def test_capacitor_validation(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", "b", 0.0)

    def test_coupling_flag(self):
        c = Capacitor("cc", "a", "b", 1 * FF, coupling=True)
        assert c.coupling


class TestCircuit:
    def build(self):
        c = Circuit("t")
        c.add_vsource("vin", "in", GROUND, 1.0)
        c.add_resistor("r1", "in", "out", 1 * KOHM)
        c.add_capacitor("c1", "out", GROUND, 10 * FF)
        return c

    def test_nodes_exclude_ground(self):
        c = self.build()
        assert set(c.nodes()) == {"in", "out"}

    def test_duplicate_names_rejected(self):
        c = self.build()
        with pytest.raises(ValueError, match="duplicate"):
            c.add_resistor("r1", "x", "y", 1.0)

    def test_element_count(self):
        assert self.build().element_count() == 3

    def test_grounded_cap_at(self):
        c = self.build()
        c.add_capacitor("c2", "out", GROUND, 5 * FF)
        c.add_capacitor("cc", "out", "agg", 7 * FF, coupling=True)
        assert c.grounded_cap_at("out") == pytest.approx(15 * FF)
        assert c.total_cap_at("out") == pytest.approx(22 * FF)

    def test_coupling_caps_listed(self):
        c = self.build()
        c.add_capacitor("cc", "out", "agg", 7 * FF, coupling=True)
        assert [x.name for x in c.coupling_caps()] == ["cc"]

    def test_merge_with_prefix(self):
        a = self.build()
        b = self.build()
        a.merge(b, prefix="x_")
        assert "x_out" in a.nodes()
        assert a.element_count() == 6

    def test_merge_with_node_map(self):
        a = self.build()
        b = Circuit("load")
        b.add_capacitor("cl", "port", GROUND, 20 * FF)
        a.merge(b, prefix="l_", node_map={"port": "out"})
        assert a.grounded_cap_at("out") == pytest.approx(30 * FF)

    def test_merge_ground_never_renamed(self):
        a = Circuit("a")
        b = Circuit("b")
        b.add_resistor("r", "x", GROUND, 1.0)
        a.merge(b, prefix="p_")
        assert GROUND not in a.nodes()
        assert "p_x" in a.nodes()

    def test_copy_independent(self):
        a = self.build()
        c = a.copy()
        c.add_resistor("rx", "q", GROUND, 1.0)
        assert a.element_count() == 3
        assert c.element_count() == 4

    def test_without(self):
        a = self.build()
        trimmed = a.without(["c1"])
        assert trimmed.element_count() == 2
        assert a.element_count() == 3

    def test_mosfet_registration(self):
        c = self.build()
        c.add_mosfet("m1", nmos_params(default_technology(), 1e-6),
                     "out", "in", GROUND)
        assert len(c.mosfets) == 1
        assert "out" in c.nodes()


class TestMna:
    def test_rejects_devices_by_default(self):
        c = Circuit("nl")
        c.add_mosfet("m1", nmos_params(default_technology(), 1e-6),
                     "d", "g", GROUND)
        with pytest.raises(ValueError, match="MOSFET"):
            build_mna(c)
        build_mna(c, allow_devices=True)  # explicitly allowed

    def test_dimensions(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_capacitor("c1", "b", GROUND, 1.0)
        mna = build_mna(c)
        assert mna.n_nodes == 2
        assert mna.dim == 3

    def test_conductance_stamp_symmetry(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 2.0)
        c.add_resistor("r2", "b", GROUND, 4.0)
        mna = build_mna(c)
        ia, ib = mna.index_of("a"), mna.index_of("b")
        assert mna.G[ia, ia] == pytest.approx(0.5)
        assert mna.G[ib, ib] == pytest.approx(0.5 + 0.25)
        assert mna.G[ia, ib] == mna.G[ib, ia] == pytest.approx(-0.5)

    def test_capacitance_stamp(self):
        c = Circuit("t")
        c.add_capacitor("c1", "a", "b", 3.0)
        mna = build_mna(c)
        ia, ib = mna.index_of("a"), mna.index_of("b")
        assert mna.C[ia, ia] == 3.0
        assert mna.C[ia, ib] == -3.0
        np.testing.assert_allclose(mna.C, mna.C.T)

    def test_ground_index_raises(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(c)
        with pytest.raises(KeyError):
            mna.index_of(GROUND)

    def test_rhs_with_waveform_source(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, ramp(0.0, 1 * NS, 0.0, 1.8))
        c.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(c)
        rhs = mna.rhs_matrix(np.array([0.0, 0.5 * NS, 2 * NS]))
        row = mna.vsource_index["v1"]
        np.testing.assert_allclose(rhs[row], [0.0, 0.9, 1.8])

    def test_rhs_current_source_signs(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_resistor("r2", "b", GROUND, 1.0)
        c.add_isource("i1", "a", "b", 2.0)
        mna = build_mna(c)
        rhs = mna.rhs_matrix(np.array([0.0]))
        assert rhs[mna.index_of("a"), 0] == 2.0
        assert rhs[mna.index_of("b"), 0] == -2.0

    def test_input_incidence_shape_and_content(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_isource("i1", "b", GROUND, 1.0)
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_resistor("r2", "b", GROUND, 1.0)
        mna = build_mna(c)
        B = mna.input_incidence()
        assert B.shape == (mna.dim, 2)
        assert B[mna.n_nodes, 0] == 1.0  # vsource row
        assert B[mna.index_of("b"), 1] == 1.0  # isource injection

    def test_output_incidence(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_resistor("r2", "b", GROUND, 1.0)
        mna = build_mna(c)
        L = mna.output_incidence(["b"])
        assert L.shape == (mna.dim, 1)
        assert L[mna.index_of("b"), 0] == 1.0
