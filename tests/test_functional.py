"""Tests for repro.core.functional (static-victim noise) and the quiet
holding resistance."""

import pytest

from repro.bench.netgen import canonical_net
from repro.core.functional import functional_noise
from repro.gates import inverter
from repro.units import FF, NS


class TestQuietHoldingResistance:
    def test_positive_and_ohmic_range(self):
        r = inverter(scale=1).holding_resistance(output_high=True)
        assert 50.0 < r < 100_000.0

    def test_scales_inversely_with_size(self):
        r1 = inverter(scale=1).holding_resistance(True)
        r4 = inverter(scale=4).holding_resistance(True)
        assert r4 == pytest.approx(r1 / 4, rel=0.1)

    def test_pullup_vs_pulldown_differ(self):
        inv = inverter(scale=1)
        r_high = inv.holding_resistance(True)   # PMOS holds high
        r_low = inv.holding_resistance(False)   # NMOS holds low
        assert r_high != pytest.approx(r_low, rel=0.05)

    def test_quiet_holding_stiffer_than_thevenin(self, single_engine):
        """A quiet driver in triode holds better (lower R) than the
        transition-average Thevenin resistance of the same gate."""
        from repro.core.superposition import VICTIM
        gate = single_engine.net.victim_driver.gate
        r_quiet = gate.holding_resistance(False)
        assert r_quiet < single_engine.models[VICTIM].rth


class TestFunctionalNoise:
    @pytest.fixture(scope="class")
    def report(self, single_aggressor_net, model_cache):
        return functional_noise(single_aggressor_net, cache=model_cache)

    def test_default_victim_level(self, report):
        # Falling aggressor attacks a high victim.
        assert report.victim_high

    def test_pulse_polarity(self, report):
        assert report.input_peak < 0.0
        assert report.input_width > 0.0

    def test_receiver_filters(self, report):
        """Output deviation is bounded; for this mild net it stays
        below the failure threshold."""
        assert abs(report.output_peak) < abs(report.input_peak) * 3
        assert not report.fails

    def test_heavy_coupling_fails(self, model_cache):
        """Crank the coupling until the pulse propagates: the verdict
        must flip."""
        net = canonical_net(n_aggressors=2, coupling_ratio=3.0,
                            aggressor_scale=8.0, victim_scale=0.5,
                            receiver_load=4 * FF)
        report = functional_noise(net, cache=model_cache)
        assert abs(report.input_peak) > 0.55  # big injected pulse
        assert report.fails

    def test_engine_reuse(self, single_aggressor_net, single_engine,
                          model_cache):
        direct = functional_noise(single_aggressor_net,
                                  cache=model_cache)
        reused = functional_noise(single_aggressor_net,
                                  engine=single_engine)
        assert reused.input_peak == pytest.approx(direct.input_peak,
                                                  rel=1e-6)

    def test_threshold_override(self, single_aggressor_net, single_engine):
        strict = functional_noise(single_aggressor_net,
                                  engine=single_engine,
                                  threshold=1e-3)
        assert strict.fails  # any visible output wiggle trips 1 mV
