"""Tests for repro.bench.runner (stats + table formatting)."""

import numpy as np
import pytest

from repro.bench.runner import ErrorStats, format_table


class TestErrorStats:
    def stats(self):
        return ErrorStats(predicted=[90.0, 110.0, 95.0],
                          golden=[100.0, 100.0, 100.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorStats([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            ErrorStats([], [])

    def test_mean_abs_error(self):
        assert self.stats().mean_abs_error() == pytest.approx(25.0 / 3)

    def test_worst_abs_error(self):
        assert self.stats().worst_abs_error() == pytest.approx(10.0)

    def test_pct_errors(self):
        s = self.stats()
        assert s.mean_abs_pct_error() == pytest.approx(100 * 25 / 300)
        assert s.worst_abs_pct_error() == pytest.approx(10.0)

    def test_all_zero_golden(self):
        """Regression: an all-zero golden vector used to emit a
        RuntimeWarning (mean of empty slice) and return NaN."""
        import warnings
        s = ErrorStats([1.0, 2.0], [0.0, 0.0])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert s.mean_abs_pct_error() == 0.0
            assert s.worst_abs_pct_error() == 0.0
        # A floor restores a meaningful percentage.
        assert s.mean_abs_pct_error(floor=1.0) == pytest.approx(150.0)

    def test_pct_error_floor(self):
        s = ErrorStats([1.0, 5.0], [0.0, 10.0])
        # Zero golden is masked out entirely without a floor...
        assert s.mean_abs_pct_error() == pytest.approx(50.0)
        # ...and guarded with one: |1|/2 = 50% and |5|/10 = 50%.
        assert s.mean_abs_pct_error(floor=2.0) == pytest.approx(50.0)

    def test_underestimation_fraction(self):
        assert self.stats().underestimation_fraction() == \
            pytest.approx(2 / 3)

    def test_correlation(self):
        s = ErrorStats([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        assert s.correlation() == pytest.approx(1.0)

    def test_correlation_degenerate(self):
        s = ErrorStats([1.0, 2.0], [3.0, 3.0])
        assert np.isnan(s.correlation())


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["b", 123456.789]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "alpha" in lines[3]
        # Float formatting trims digits.
        assert "1.235e+05" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_column_alignment(self):
        text = format_table(["x", "y"], [["long-entry", 1], ["s", 2]])
        lines = text.splitlines()
        # All rows have the same y-column offset.
        offsets = {line.find("y") if i == 0 else None
                   for i, line in enumerate(lines)}
        assert len(lines[2]) >= len("long-entry")


class TestRecordResult:
    def test_replaces_previous_content(self, tmp_path):
        from repro.bench import record_result

        path = record_result(tmp_path, "fig01", "first run")
        assert path == tmp_path / "fig01.txt"
        assert path.read_text() == "first run\n"
        record_result(tmp_path, "fig01", "second run")
        # Replaced, not appended: only the latest run's rows remain.
        assert path.read_text() == "second run\n"

    def test_creates_directory(self, tmp_path):
        from repro.bench import record_result

        target = tmp_path / "nested" / "results"
        path = record_result(target, "fig02", "rows")
        assert path.read_text() == "rows\n"
