"""Tests for repro.core.superposition (the Figure-1 flow)."""

import numpy as np
import pytest

from repro.core.superposition import VICTIM, ModelCache, SuperpositionEngine
from repro.units import FF, NS, PS

VDD = 1.8


class TestEngineConstruction:
    def test_models_for_all_drivers(self, two_engine):
        assert set(two_engine.models) == {VICTIM, "agg0", "agg1"}
        assert set(two_engine.ceffs) == {VICTIM, "agg0", "agg1"}

    def test_ceff_below_total_cap(self, two_engine):
        # Ceff must be shielded below the total capacitance each driver
        # sees (wire + coupling + receiver load).
        for key, ceff in two_engine.ceffs.items():
            assert 5 * FF < ceff < 500 * FF

    def test_rth_positive_and_ordered(self, two_engine):
        # Victim is an X1, aggressors X4: victim must be weaker.
        assert two_engine.models[VICTIM].rth > \
            two_engine.models["agg0"].rth

    def test_horizon_covers_transitions(self, two_engine):
        assert two_engine.t_stop > 1 * NS

    def test_cache_shared(self, two_aggressor_net, model_cache):
        before = len(model_cache)
        SuperpositionEngine(two_aggressor_net, cache=model_cache)
        # All tables already cached by the session fixture.
        assert len(model_cache) == before


class TestVictimTransition:
    def test_delta_full_swing(self, single_engine):
        out = single_engine.victim_transition()
        assert out.at_receiver.values[-1] == pytest.approx(VDD, rel=0.01)
        assert out.at_root.values[-1] == pytest.approx(VDD, rel=0.01)

    def test_absolute_adds_initial_level(self, single_engine):
        # Rising victim starts at 0, so absolute == delta.
        delta = single_engine.victim_transition()
        absolute = single_engine.victim_transition_absolute()
        np.testing.assert_allclose(absolute.at_receiver.values,
                                   delta.at_receiver.values)

    def test_root_leads_receiver(self, single_engine):
        out = single_engine.victim_transition()
        t_root = out.at_root.crossing_time(VDD / 2, rising=True)
        t_recv = out.at_receiver.crossing_time(VDD / 2, rising=True)
        assert t_root < t_recv


class TestAggressorNoise:
    def test_noise_pulse_shape(self, single_engine):
        noise = single_engine.aggressor_noise("agg0")
        # Falling aggressor on rising victim: negative pulse.
        lo, hi = noise.at_receiver.value_range()
        assert lo < -0.1
        assert hi < 0.25 * abs(lo)
        # Noise returns to zero.
        assert abs(noise.at_receiver.values[-1]) < 0.01

    def test_unknown_aggressor(self, single_engine):
        with pytest.raises(KeyError):
            single_engine.aggressor_noise("nope")
        with pytest.raises(KeyError):
            single_engine.aggressor_noise(VICTIM)

    def test_shift_moves_pulse_exactly(self, single_engine):
        """LTI: a shifted launch produces an identically shifted pulse."""
        from repro.waveform.pulses import pulse_peak
        base = single_engine.aggressor_noise("agg0").at_receiver
        shifted = single_engine.aggressor_noise(
            "agg0", shift=0.3 * NS).at_receiver
        t0, h0 = pulse_peak(base)
        t1, h1 = pulse_peak(shifted)
        assert t1 - t0 == pytest.approx(0.3 * NS, abs=2 * PS)
        assert h1 == pytest.approx(h0, rel=1e-6)

    def test_higher_holding_r_more_noise(self, single_engine):
        rth = single_engine.models[VICTIM].rth
        weak = single_engine.aggressor_noise(
            "agg0", victim_r=3 * rth).at_receiver
        strong = single_engine.aggressor_noise(
            "agg0", victim_r=rth / 3).at_receiver
        assert abs(weak.value_range()[0]) > abs(strong.value_range()[0])

    def test_total_noise_superposes(self, two_engine):
        shifts = {"agg0": 0.0, "agg1": 0.1 * NS}
        total = two_engine.total_noise(shifts)
        individual = [
            two_engine.aggressor_noise("agg0").at_receiver,
            two_engine.aggressor_noise("agg1", shift=0.1 * NS).at_receiver,
        ]
        probe = np.linspace(0, two_engine.t_stop, 60)
        expected = individual[0](probe) + individual[1](probe)
        np.testing.assert_allclose(total.at_receiver(probe), expected,
                                   atol=1e-9)

    def test_total_noise_with_empty_shift_dict(self, single_engine):
        # Missing shift entries default to zero.
        out = single_engine.total_noise({})
        assert out.at_receiver.value_range()[0] < -0.1


class TestDriverView:
    def test_view_contains_holders(self, two_engine):
        view = two_engine.driver_view(VICTIM)
        holders = [r for r in view.resistors if "hold" in r.name]
        assert len(holders) == 2  # one per aggressor

    def test_view_unknown_driver(self, two_engine):
        with pytest.raises(KeyError):
            two_engine.driver_view("ghost")


class TestAgainstGolden:
    def test_noiseless_victim_matches_golden(self, single_aggressor_net,
                                             single_engine):
        """Paper: 'the noiseless victim transition using a standard
        Thevenin model is quite accurate' — check 50% crossing within a
        few ps of the full transistor-level simulation."""
        from repro.core.golden import golden_simulation
        lin = single_engine.victim_transition_absolute().at_receiver
        gold = golden_simulation(single_aggressor_net, 3.5 * NS,
                                 aggressors_switching=False)
        t_lin = lin.crossing_time(VDD / 2, rising=True)
        t_gold = gold.at_receiver_input.crossing_time(VDD / 2, rising=True)
        assert t_lin == pytest.approx(t_gold, abs=10 * PS)
