"""Tests for repro.units."""

import pytest

from repro import units


def test_time_constants_ordering():
    assert units.FS < units.PS < units.NS < units.US < units.MS < units.S


def test_basic_values():
    assert units.PS == 1e-12
    assert units.FF == 1e-15
    assert units.KOHM == 1e3
    assert units.UM == 1e-6
    assert units.MV == 1e-3


def test_from_engineering():
    assert units.from_engineering(1.5, "k") == pytest.approx(1500.0)
    assert units.from_engineering(20, "f") == pytest.approx(2e-14)
    assert units.from_engineering(3, "meg") == pytest.approx(3e6)
    assert units.from_engineering(7, "") == 7


def test_from_engineering_case_insensitive():
    assert units.from_engineering(1, "K") == 1e3
    assert units.from_engineering(1, "MEG") == 1e6


def test_from_engineering_unknown_suffix():
    with pytest.raises(ValueError):
        units.from_engineering(1, "q")
