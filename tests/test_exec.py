"""Tests for repro.exec (parallel net-analysis engine)."""

import pytest

from repro.bench.netgen import canonical_net
from repro.bench.runner import extra_delay_arrays, run_population
from repro.exec import (
    ExecResult,
    ExecStats,
    NetFailure,
    analyze_nets,
    build_snapshot,
    restore_analyzer,
)
from repro.units import FF, NS


@pytest.fixture(scope="module")
def population():
    """Three small nets sharing the session analyzer's cell family."""
    return [
        canonical_net(n_aggressors=1, name="net0"),
        canonical_net(n_aggressors=1, coupling_ratio=0.7, name="net1"),
        canonical_net(n_aggressors=1, receiver_load=20 * FF, name="net2"),
    ]


@pytest.fixture(scope="module")
def serial_result(analyzer, population):
    return analyze_nets(population, jobs=1, analyzer=analyzer,
                        alignment="table")


class TestSerial:
    def test_reports_in_input_order(self, serial_result, population):
        assert serial_result.ok
        assert [r.net_name for r in serial_result.reports] == \
            [n.name for n in population]

    def test_stats(self, serial_result):
        s = serial_result.stats
        assert s.jobs == 1
        assert s.nets == 3
        assert s.failures == 0
        assert s.wall_time > 0
        assert s.nets_per_second > 0

    def test_report_by_name(self, serial_result):
        rep = serial_result.report("net1")
        assert rep.net_name == "net1"
        with pytest.raises(KeyError, match="no net named"):
            serial_result.report("missing")


class TestParallelEquivalence:
    def test_bit_identical_to_serial(self, analyzer, population,
                                     serial_result):
        """jobs=4 workers warm-started from the snapshot reproduce the
        serial reports bit-for-bit, with zero characterization misses."""
        parallel = analyze_nets(population, jobs=4, analyzer=analyzer,
                                alignment="table")
        assert parallel.ok
        assert [r.net_name for r in parallel.reports] == \
            [n.name for n in population]
        for ser, par in zip(serial_result.reports, parallel.reports):
            assert par.extra_delay_output == ser.extra_delay_output
            assert par.extra_delay_input == ser.extra_delay_input
            assert par.rtr == ser.rtr
            assert par.pulse_height == ser.pulse_height
            assert par.victim_slew == ser.victim_slew
            assert par.aggressor_shifts == ser.aggressor_shifts
        # Warm start means no worker ever re-characterizes.
        assert parallel.stats.cache_misses == 0
        assert parallel.stats.cache_hits > 0
        assert parallel.stats.jobs == 4
        assert parallel.stats.nets_per_second > 0


class TestFailures:
    def test_per_net_failure_captured(self, analyzer):
        good = canonical_net(n_aggressors=1, name="good")
        broken = canonical_net(n_aggressors=1, name="broken")
        broken.aggressors.clear()
        result = analyze_nets([broken, good], jobs=2, analyzer=analyzer,
                              alignment="table")
        assert not result.ok
        assert result.reports[0] is None
        assert result.reports[1].net_name == "good"
        (failure,) = result.failures
        assert failure.net_name == "broken"
        assert "ValueError" in failure.error
        assert "no aggressors" in failure.error
        assert "Traceback" in failure.traceback
        assert result.stats.failures == 1
        with pytest.raises(KeyError, match="failed"):
            result.report("broken")
        with pytest.raises(RuntimeError, match="broken: ValueError"):
            result.raise_on_failure()

    def test_timeout_becomes_failure(self, analyzer):
        net = canonical_net(n_aggressors=1, name="slowpoke")
        result = analyze_nets([net], jobs=1, analyzer=analyzer,
                              timeout=0.001, alignment="table")
        assert result.reports == [None]
        (failure,) = result.failures
        assert "NetTimeout" in failure.error

    def test_jobs_validated(self, analyzer):
        with pytest.raises(ValueError, match="jobs"):
            analyze_nets([], jobs=0, analyzer=analyzer)

    def test_raise_on_failure_noop_when_ok(self):
        result = ExecResult(reports=[], failures=[],
                            stats=ExecStats(jobs=1))
        result.raise_on_failure()  # must not raise

    def test_failure_record_fields(self):
        f = NetFailure(net_name="n", error="ValueError: x",
                       traceback="tb")
        assert (f.net_name, f.error, f.traceback) == \
            ("n", "ValueError: x", "tb")

    def test_failure_record_round_trips(self):
        f = NetFailure(net_name="n", error="ValueError: x",
                       traceback="tb", error_type="ValueError")
        assert NetFailure.from_dict(f.to_dict()) == f

    def test_report_lookup_uses_cached_index(self, serial_result):
        """Name lookups build the index once and reuse it (O(1) per
        call), instead of scanning the report list every time."""
        serial_result.report("net0")
        index = serial_result.__dict__.get("_by_name")
        assert index is not None
        serial_result.report("net2")
        assert serial_result.__dict__.get("_by_name") is index


class TestSnapshot:
    def test_roundtrip_preserves_caches(self, analyzer, population,
                                        serial_result):
        snapshot = build_snapshot(analyzer)
        restored = restore_analyzer(snapshot)
        assert len(restored.cache) == len(analyzer.cache)
        assert len(restored.alignment_tables()) == \
            len(analyzer.alignment_tables())
        assert restored.dt == analyzer.dt
        assert restored.table_kwargs == analyzer.table_kwargs
        # The restored analyzer answers from cache, not by building.
        restored.cache.table_for(population[0].victim_driver)
        assert restored.cache.misses == 0
        assert restored.cache.hits == 1


class TestHeartbeats:
    def test_serial_heartbeats_in_input_order(self, analyzer,
                                              population):
        beats = []
        result = analyze_nets(population, jobs=1, analyzer=analyzer,
                              alignment="table",
                              on_heartbeat=beats.append)
        assert [b.net for b in beats] == [n.name for n in population]
        assert all(b.seconds >= 0.0 for b in beats)
        assert all(b.rss_bytes > 0 for b in beats)
        assert all(b.pid != 0 for b in beats)
        assert not any(b.failed for b in beats)
        assert result.stats.peak_rss_bytes > 0

    def test_parallel_heartbeats_cover_population(self, analyzer,
                                                  population):
        beats = []
        result = analyze_nets(population, jobs=2, analyzer=analyzer,
                              alignment="table",
                              on_heartbeat=beats.append)
        assert sorted(b.net for b in beats) == \
            sorted(n.name for n in population)
        assert all(b.rss_bytes > 0 for b in beats)
        assert result.stats.peak_rss_bytes > 0

    def test_failed_net_still_beats(self, analyzer):
        broken = canonical_net(n_aggressors=1, name="broken")
        broken.aggressors.clear()
        beats = []
        result = analyze_nets([broken], jobs=1, analyzer=analyzer,
                              alignment="table",
                              on_heartbeat=beats.append)
        assert not result.ok
        (beat,) = beats
        assert beat.net == "broken"
        assert beat.failed


class TestTierLabels:
    def test_pruned_nets_carry_no_report_and_no_failure(
            self, analyzer, population):
        beats = []
        labels = {"net0": 0, "net1": 2, "net2": 1}
        result = analyze_nets(population, jobs=1, analyzer=analyzer,
                              alignment="table", tier_labels=labels,
                              on_heartbeat=beats.append)
        assert result.ok  # pruned is not failed
        assert result.reports[0] is None
        assert result.reports[1] is not None
        assert result.reports[2] is None
        assert not result.failures
        assert result.stats.pruned == 2
        assert result.stats.pruned_by_tier == {0: 1, 1: 1}
        assert not result.analyzed("net0")
        assert result.analyzed("net1")
        assert not result.analyzed("net2")
        # One tier-tagged heartbeat per net, pruned ones included.
        tiers = {b.net: b.tier for b in beats}
        assert tiers == {"net0": 0, "net1": 2, "net2": 1}

    def test_missing_names_default_to_tier2(self, analyzer, population):
        result = analyze_nets(population, jobs=1, analyzer=analyzer,
                              alignment="table",
                              tier_labels={"net0": 0})
        assert result.reports[0] is None
        assert all(r is not None for r in result.reports[1:])
        assert result.stats.pruned == 1

    def test_unknown_net_name_rejected(self, analyzer, population):
        with pytest.raises(ValueError, match="unknown nets"):
            analyze_nets(population, jobs=1, analyzer=analyzer,
                         tier_labels={"nope": 0})

    def test_bad_tier_value_rejected(self, analyzer, population):
        with pytest.raises(ValueError, match="tier labels"):
            analyze_nets(population, jobs=1, analyzer=analyzer,
                         tier_labels={"net0": 3})

    def test_run_hash_unchanged_without_labels(self, analyzer,
                                               population):
        """tier_labels=None must hash exactly like the pre-screening
        code: old checkpoints stay resumable."""
        from repro.exec.pool import _run_identity
        kwargs = {"alignment": "table"}
        base = _run_identity(population, analyzer, kwargs)
        assert _run_identity(population, analyzer, kwargs,
                             tier_labels=None) == base
        assert _run_identity(population, analyzer, kwargs,
                             tier_labels={"net0": 0}) != base


class TestBenchFront:
    def test_run_population(self, analyzer, population, serial_result):
        result = run_population([population[0]], analyzer=analyzer,
                                alignment="table")
        assert isinstance(result, ExecResult)
        assert result.ok
        assert result.reports[0].extra_delay_output == \
            serial_result.reports[0].extra_delay_output

    def test_extra_delay_arrays_skip_failures(self, serial_result):
        reports = list(serial_result.reports) + [None]
        inp, out = extra_delay_arrays(reports)
        assert inp.shape == out.shape == (3,)
        assert (out > 0).all()
