"""Tests for repro.extract (layout-level parasitic extraction)."""

import pytest

from repro.circuit import GROUND
from repro.core.net import DriverSpec, ReceiverSpec
from repro.extract import (
    ParasiticTech,
    Wire,
    coupled_net_from_layout,
    extract_interconnect,
    parallel_overlap,
)
from repro.gates import inverter
from repro.units import FF, NS, OHM, PS, UM

TECH = ParasiticTech()


def bus(victim_len=600 * UM, spacing_tracks=1):
    """Victim on track 0, aggressor ``spacing_tracks`` away."""
    return [
        Wire("vic", 0, 0.0, victim_len),
        Wire("agg", spacing_tracks, 0.0, victim_len),
    ]


class TestGeometry:
    def test_wire_validation(self):
        with pytest.raises(ValueError):
            Wire("n", 0, 5.0, 5.0)

    def test_overlap(self):
        a = Wire("a", 0, 0.0, 10.0)
        b = Wire("b", 1, 4.0, 20.0)
        assert parallel_overlap(a, b) == pytest.approx(6.0)
        assert parallel_overlap(b, a) == pytest.approx(6.0)

    def test_same_track_no_overlap(self):
        a = Wire("a", 0, 0.0, 10.0)
        b = Wire("b", 0, 2.0, 5.0)
        assert parallel_overlap(a, b) == 0.0

    def test_disjoint(self):
        a = Wire("a", 0, 0.0, 1.0)
        b = Wire("b", 1, 2.0, 3.0)
        assert parallel_overlap(a, b) == 0.0

    def test_spacing(self):
        a = Wire("a", 0, 0.0, 1.0)
        b = Wire("b", 3, 0.0, 1.0)
        assert a.spacing_to(b, TECH.pitch) == pytest.approx(3 * TECH.pitch)


class TestParasiticTech:
    def test_coupling_falls_with_spacing(self):
        c1 = TECH.coupling_per_length(TECH.pitch)
        c2 = TECH.coupling_per_length(2 * TECH.pitch)
        assert c1 == pytest.approx(TECH.c_coupling_at_pitch)
        assert c2 == pytest.approx(c1 / 2)

    def test_cutoff(self):
        far = (TECH.max_coupling_tracks + 1) * TECH.pitch
        assert TECH.coupling_per_length(far) == 0.0

    def test_same_track_rejected(self):
        with pytest.raises(ValueError):
            TECH.coupling_per_length(0.0)


class TestExtraction:
    def test_totals_scale_with_length(self):
        circuit, _ = extract_interconnect(bus(victim_len=600 * UM), TECH)
        r_total = sum(r.resistance for r in circuit.resistors) / 2
        assert r_total == pytest.approx(TECH.r_per_length * 600 * UM)
        ground = sum(c.capacitance for c in circuit.capacitors
                     if not c.coupling) / 2
        assert ground == pytest.approx(
            TECH.c_ground_per_length * 600 * UM)

    def test_coupling_total(self):
        circuit, _ = extract_interconnect(bus(victim_len=600 * UM), TECH)
        cc = sum(c.capacitance for c in circuit.coupling_caps())
        assert cc == pytest.approx(TECH.c_coupling_at_pitch * 600 * UM)

    def test_partial_overlap(self):
        wires = [Wire("vic", 0, 0.0, 600 * UM),
                 Wire("agg", 1, 300 * UM, 900 * UM)]
        circuit, _ = extract_interconnect(wires, TECH)
        cc = sum(c.capacitance for c in circuit.coupling_caps())
        assert cc == pytest.approx(TECH.c_coupling_at_pitch * 300 * UM)

    def test_duplicate_signal_net_rejected(self):
        wires = [Wire("x", 0, 0.0, 1 * UM), Wire("x", 1, 0.0, 1 * UM)]
        with pytest.raises(ValueError, match="single wire"):
            extract_interconnect(wires, TECH)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            extract_interconnect([], TECH)

    def test_shield_tied_to_ground(self):
        wires = bus() + [Wire("gnd", 2, 0.0, 600 * UM)]
        circuit, nodes = extract_interconnect(wires, TECH)
        ties = [r for r in circuit.resistors if "tie" in r.name]
        assert len(ties) == 2
        assert all(GROUND in (r.node1, r.node2) for r in ties)


class TestCoupledNetBuilder:
    def victim_driver(self):
        return DriverSpec(inverter(1), 0.2 * NS, True, 0.2 * NS)

    def agg_driver(self):
        return DriverSpec(inverter(4), 0.12 * NS, False, 0.2 * NS)

    def build(self, wires):
        return coupled_net_from_layout(
            wires, TECH, "vic", self.victim_driver(),
            ReceiverSpec(inverter(2), 10 * FF),
            {"agg": self.agg_driver()})

    def test_net_assembles(self):
        net = self.build(bus())
        assert net.victim_root.endswith("left")
        assert net.victim_receiver_node.endswith("right")
        assert len(net.aggressors) == 1

    def test_missing_driver_rejected(self):
        wires = bus() + [Wire("orphan", 3, 0.0, 100 * UM)]
        with pytest.raises(ValueError, match="without drivers"):
            self.build(wires)

    def test_unknown_victim(self):
        with pytest.raises(ValueError, match="victim net"):
            coupled_net_from_layout(
                bus(), TECH, "ghost", self.victim_driver(),
                ReceiverSpec(inverter(2), 10 * FF),
                {"agg": self.agg_driver()})

    def test_shield_insertion_cuts_noise(self, model_cache):
        """The classic fix: moving the aggressor a track out and putting
        a grounded shield between halves-or-better the noise pulse."""
        from repro.core.superposition import SuperpositionEngine
        from repro.waveform.pulses import pulse_peak

        unshielded = self.build(bus(spacing_tracks=1))
        shielded = self.build(
            [Wire("vic", 0, 0.0, 600 * UM),
             Wire("gnd", 1, 0.0, 600 * UM),
             Wire("agg", 2, 0.0, 600 * UM)])

        def noise_peak(net):
            engine = SuperpositionEngine(net, cache=model_cache)
            return abs(pulse_peak(
                engine.aggressor_noise("agg").at_receiver)[1])

        assert noise_peak(shielded) < 0.5 * noise_peak(unshielded)
