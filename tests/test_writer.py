"""Tests for repro.circuit.writer (netlist emission + round-trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, GROUND
from repro.circuit.parser import parse_netlist
from repro.circuit.writer import format_value, write_netlist
from repro.units import FF, KOHM, NS
from repro.waveform import Waveform, ramp


class TestFormatValue:
    @pytest.mark.parametrize("value,text", [
        (1200.0, "1.2k"),
        (35e-15, "35f"),
        (0.0, "0"),
        (2e6, "2meg"),
        (-4.7e-12, "-4.7p"),
        (1.0, "1"),
    ])
    def test_known_values(self, value, text):
        assert format_value(value) == text

    @given(st.floats(1e-15, 1e12))
    @settings(max_examples=200)
    def test_parse_inverse(self, value):
        from repro.circuit.parser import parse_value
        assert parse_value(format_value(value)) == \
            pytest.approx(value, rel=1e-5)


def sample_circuit():
    c = Circuit("rt")
    c.add_resistor("R1", "a", "b", 1.2 * KOHM)
    c.add_capacitor("C1", "b", GROUND, 35 * FF)
    c.add_capacitor("Cc", "b", "agg", 12 * FF, coupling=True)
    c.add_vsource("Vin", "a", GROUND, ramp(0.0, 1 * NS, 0.0, 1.8))
    c.add_isource("Inoise", "b", GROUND, 1e-3)
    return c


class TestRoundTrip:
    def test_structure_preserved(self):
        text = write_netlist(sample_circuit())
        again = parse_netlist(text)
        assert len(again.resistors) == 1
        assert len(again.capacitors) == 2
        assert again.coupling_caps()[0].capacitance == \
            pytest.approx(12 * FF, rel=1e-5)
        assert again.resistors[0].resistance == \
            pytest.approx(1.2 * KOHM, rel=1e-5)

    def test_pwl_source_roundtrip(self):
        text = write_netlist(sample_circuit())
        again = parse_netlist(text)
        wave = again.vsources[0].value
        assert isinstance(wave, Waveform)
        assert wave(0.5 * NS) == pytest.approx(0.9, rel=1e-4)

    def test_dc_source_roundtrip(self):
        text = write_netlist(sample_circuit())
        again = parse_netlist(text)
        assert again.isources[0].value == pytest.approx(1e-3, rel=1e-5)

    def test_card_prefix_added(self):
        c = Circuit("odd")
        c.add_resistor("wire0", "a", GROUND, 1.0)
        text = write_netlist(c)
        assert "Rwire0" in text
        parse_netlist(text)  # and it parses

    def test_mosfets_rejected(self):
        from repro.devices import default_technology, nmos_params
        c = Circuit("nl")
        c.add_mosfet("m1", nmos_params(default_technology(), 1e-6),
                     "d", "g", GROUND)
        with pytest.raises(ValueError, match="MOSFET"):
            write_netlist(c)

    def test_ticer_output_exportable(self):
        """Reduced circuits survive a write/parse cycle with identical
        DC behaviour."""
        from repro.circuit.topology import rc_line
        from repro.gates.ceff import admittance_moments
        from repro.mor import ticer_reduce
        full = Circuit("line")
        rc_line(full, "w_", "in", "out", 10, 2 * KOHM, 100 * FF)
        reduced = ticer_reduce(full, keep=["in", "out"])
        again = parse_netlist(write_netlist(reduced))
        probe_a = reduced.copy()
        probe_b = again.copy()
        for probe in (probe_a, probe_b):
            probe.add_resistor("__anchor", "out", GROUND, 1e-3)
        ya = admittance_moments(probe_a, "in", 2)
        yb = admittance_moments(probe_b, "in", 2)
        np.testing.assert_allclose(ya, yb, rtol=1e-4)
