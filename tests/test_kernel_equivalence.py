"""Fast-vs-legacy Newton kernel equivalence (property-style sweep).

The fast kernel (shared base factorization + Woodbury updates, modified
Newton fallback, vectorized device stamping) must land on the same
transient states as the pre-rework dense solver for every circuit class
it can meet — seeded coupled-net golden circuits, device-free RC
networks, coupling-only floating nodes — and must keep matching when
the recovery ladders (dt bisection, gmin stepping, source ramping) are
forced through fault injection.
"""

import numpy as np
import pytest

from repro.bench.netgen import NetGenerator
from repro.circuit import GROUND, Circuit
from repro.core.golden import golden_circuit
from repro.devices import default_technology, nmos_params, pmos_params
from repro.obs import metrics
from repro.resilience import FaultPlan, clear_faults, install_faults
from repro.sim import (
    ConvergenceError,
    dc_operating_point,
    kernel_mode,
    simulate_nonlinear,
)
from repro.units import FF, KOHM, NS, PS, UM
from repro.waveform import ramp

#: Maximum per-state voltage difference between the kernels.  Both drive
#: the damped Newton update below the same 1e-6 V acceptance tolerance;
#: the converged roots agree to far tighter than this (see
#: repro.bench.perf.EQUIVALENCE_TOLERANCE).
TOLERANCE = 1e-9

TECH = default_technology()
VDD = TECH.vdd


@pytest.fixture(autouse=True)
def no_leaked_faults():
    clear_faults()
    yield
    clear_faults()


def run_both(build, t_stop, dt, plan_factory=None, x0=None):
    """Simulate a circuit under both kernels; return (legacy, fast).

    ``plan_factory`` builds a *fresh* fault plan per kernel run, so
    one-shot faults fire identically for both.
    """
    results = {}
    for mode in ("legacy", "fast"):
        clear_faults()
        if plan_factory is not None:
            install_faults(plan_factory())
        with kernel_mode(mode):
            results[mode] = simulate_nonlinear(build(), t_stop, dt, x0=x0)
        clear_faults()
    return results["legacy"], results["fast"]


def assert_states_match(legacy, fast, tolerance=TOLERANCE):
    delta = float(np.abs(fast.states - legacy.states).max())
    assert delta <= tolerance, f"kernel state drift {delta:.3e} V"


def inverter_circuit(input_wave, c_load=20 * FF):
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", GROUND, VDD)
    c.add_vsource("vin", "in", GROUND, input_wave)
    c.add_mosfet("mn", nmos_params(TECH, 1 * UM), "out", "in", GROUND)
    c.add_mosfet("mp", pmos_params(TECH, 2.2 * UM), "out", "in", "vdd")
    c.add_capacitor("cl", "out", GROUND, c_load)
    return c


def rc_circuit():
    """Device-free circuit: the fast kernel's pure-Woodbury k=0 path."""
    c = Circuit("rc")
    c.add_vsource("vin", "in", GROUND, ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
    c.add_resistor("r1", "in", "mid", 1 * KOHM)
    c.add_capacitor("c1", "mid", GROUND, 50 * FF)
    c.add_resistor("r2", "mid", "out", 2 * KOHM)
    c.add_capacitor("c2", "out", GROUND, 20 * FF)
    return c


def floating_node_circuit():
    """A node reached only through a coupling capacitor.

    Its G row is empty (singular at DC) but ``A = C/h + G`` is regular,
    so the transient itself is well-posed once an initial state is
    supplied.
    """
    c = Circuit("floating")
    c.add_vsource("vin", "agg", GROUND, ramp(0.1 * NS, 0.1 * NS, 0.0, VDD))
    c.add_capacitor("cc", "agg", "victim", 30 * FF)
    c.add_capacitor("cg", "victim", GROUND, 50 * FF)
    return c


class TestSeededPopulation:
    @pytest.mark.parametrize("seed", [1, 7])
    def test_golden_circuits_match(self, seed):
        for net in NetGenerator(seed=seed).population(2):
            legacy, fast = run_both(lambda: golden_circuit(net),
                                    1 * NS, 1 * PS)
            assert_states_match(legacy, fast)

    def test_dc_operating_points_match(self):
        for net in NetGenerator(seed=3).population(2):
            circuit = golden_circuit(net)
            with kernel_mode("legacy"):
                x_legacy = dc_operating_point(circuit)
            with kernel_mode("fast"):
                x_fast = dc_operating_point(circuit)
            assert float(np.abs(x_fast - x_legacy).max()) <= TOLERANCE


class TestCircuitClasses:
    def test_device_free_rc(self):
        legacy, fast = run_both(rc_circuit, 1 * NS, 0.5 * PS)
        assert_states_match(legacy, fast)

    def test_inverter(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        legacy, fast = run_both(lambda: inverter_circuit(wave),
                                2 * NS, 1 * PS)
        assert_states_match(legacy, fast)

    def test_coupling_only_floating_node_transient(self):
        from repro.circuit.mna import build_mna

        build = floating_node_circuit
        dim = build_mna(build(), allow_devices=True).dim
        legacy, fast = run_both(build, 1 * NS, 1 * PS, x0=np.zeros(dim))
        assert_states_match(legacy, fast)

    def test_coupling_only_floating_node_dc_fails_identically(self):
        """With no conductive path the DC Jacobian is singular; both
        kernels must walk the whole recovery ladder and raise."""
        for mode in ("legacy", "fast"):
            with kernel_mode(mode):
                with pytest.raises(ConvergenceError):
                    dc_operating_point(floating_node_circuit())


class TestThroughRecoveryLadders:
    def test_dt_bisection(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        recovered = metrics().counter("newton.recovered.substep")
        before = recovered.value
        legacy, fast = run_both(
            lambda: inverter_circuit(wave), 1 * NS, 1 * PS,
            plan_factory=lambda: FaultPlan().add(
                "newton.step", match="t=", action="convergence", times=1))
        assert recovered.value == before + 2  # once per kernel
        assert_states_match(legacy, fast)

    def test_gmin_stepping(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        recovered = metrics().counter("newton.recovered.gmin")
        before = recovered.value
        legacy, fast = run_both(
            lambda: inverter_circuit(wave), 0.5 * NS, 1 * PS,
            plan_factory=lambda: FaultPlan().add(
                "newton.step", match="DC operating point",
                action="convergence", times=1))
        assert recovered.value == before + 2
        assert_states_match(legacy, fast)

    def test_source_ramp(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        recovered = metrics().counter("newton.recovered.source_ramp")
        before = recovered.value
        legacy, fast = run_both(
            lambda: inverter_circuit(wave), 0.5 * NS, 1 * PS,
            plan_factory=lambda: FaultPlan()
            .add("newton.step", match="DC operating point",
                 action="convergence", times=1)
            .add("newton.step", match="gmin",
                 action="convergence", times=1))
        assert recovered.value == before + 2
        assert_states_match(legacy, fast)


class TestKernelModeSwitch:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="kernel mode"):
            with kernel_mode("turbo"):
                pass

    def test_context_restores_previous_mode(self):
        from repro.sim.nonlinear import _KERNEL_MODE  # noqa: F401
        import repro.sim.nonlinear as nl
        assert nl._KERNEL_MODE == "fast"
        with kernel_mode("legacy"):
            assert nl._KERNEL_MODE == "legacy"
        assert nl._KERNEL_MODE == "fast"


class TestBatchScalarCrossover:
    def test_scalar_and_vector_paths_agree(self, monkeypatch):
        """_DeviceBatch.evaluate: the n < _BATCH_EVAL_MIN scalar loop and
        the vectorized evaluate_batch path compute the same currents and
        derivatives."""
        import repro.sim.nonlinear as nl
        from repro.circuit.mna import build_mna

        net = next(iter(NetGenerator(seed=5).population(1)))
        circuit = golden_circuit(net)
        mna = build_mna(circuit, allow_devices=True)
        batch = nl._DeviceBatch(circuit.mosfets, mna)
        rng = np.random.default_rng(42)
        for _ in range(5):
            x = rng.uniform(-0.5, VDD + 0.5, mna.dim)
            monkeypatch.setattr(nl, "_BATCH_EVAL_MIN", 10 ** 9)
            i_scalar, d_scalar = batch.evaluate(x)
            monkeypatch.setattr(nl, "_BATCH_EVAL_MIN", 0)
            i_vector, d_vector = batch.evaluate(x)
            np.testing.assert_allclose(i_vector, i_scalar, rtol=1e-12,
                                       atol=1e-18)
            np.testing.assert_allclose(d_vector, d_scalar, rtol=1e-12,
                                       atol=1e-18)
