"""Tests for repro.sim.result (SimulationResult container)."""

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND, build_mna
from repro.sim import SimulationResult, simulate_linear, time_grid
from repro.units import FF, KOHM, NS, PS
from repro.waveform import ramp


def small_result():
    c = Circuit("t")
    c.add_vsource("vin", "in", GROUND, ramp(0.0, 0.5 * NS, 0.0, 1.0))
    c.add_resistor("r", "in", "out", 1 * KOHM)
    c.add_capacitor("c", "out", GROUND, 20 * FF)
    return simulate_linear(c, 1 * NS, 5 * PS)


class TestSimulationResult:
    def test_shape_validation(self):
        result = small_result()
        with pytest.raises(ValueError, match="inconsistent"):
            SimulationResult(result.mna, result.times,
                             result.states[:, :-1])

    def test_voltage_unknown_node(self):
        with pytest.raises(KeyError):
            small_result().voltage("nowhere")

    def test_branch_current_unknown(self):
        with pytest.raises(KeyError):
            small_result().branch_current("nosrc")

    def test_final_voltages(self):
        finals = small_result().final_voltages()
        assert set(finals) == {"in", "out"}
        assert finals["in"] == pytest.approx(1.0, abs=1e-9)
        assert finals["out"] == pytest.approx(1.0, rel=1e-3)

    def test_voltage_is_waveform(self):
        wave = small_result().voltage("out")
        assert wave.t_start == 0.0
        assert wave.t_end == pytest.approx(1 * NS)

    def test_states_align_with_grid(self):
        result = small_result()
        assert result.states.shape[1] == result.times.size
        np.testing.assert_allclose(result.times,
                                   time_grid(1 * NS, 5 * PS))
