"""Tests for repro.waveform.waveform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.waveform import Waveform


def simple_ramp():
    return Waveform([0.0, 1.0, 2.0, 3.0], [0.0, 0.0, 1.0, 1.0])


class TestConstruction:
    def test_basic(self):
        w = simple_ramp()
        assert len(w) == 4
        assert w.t_start == 0.0
        assert w.t_end == 3.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Waveform([0, 1, 2], [0, 1])

    def test_rejects_non_monotonic(self):
        with pytest.raises(ValueError):
            Waveform([0, 2, 1], [0, 1, 2])

    def test_rejects_duplicate_times(self):
        with pytest.raises(ValueError):
            Waveform([0, 1, 1], [0, 1, 2])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            Waveform([0], [1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Waveform([[0, 1]], [[0, 1]])

    def test_constant(self):
        w = Waveform.constant(2.5, 0.0, 5.0)
        assert w(3.0) == 2.5
        assert w(-1.0) == 2.5

    def test_immutability(self):
        w = simple_ramp()
        with pytest.raises(ValueError):
            w.times[0] = 99.0


class TestEvaluation:
    def test_interpolation(self):
        w = simple_ramp()
        assert w(1.5) == pytest.approx(0.5)
        assert w(2.5) == pytest.approx(1.0)

    def test_extrapolation_holds_edges(self):
        w = simple_ramp()
        assert w(-10.0) == 0.0
        assert w(+10.0) == 1.0

    def test_vectorized(self):
        w = simple_ramp()
        out = w(np.array([0.0, 1.5, 3.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])


class TestArithmetic:
    def test_add_waveforms_union_grid(self):
        a = Waveform([0.0, 2.0], [0.0, 2.0])
        b = Waveform([1.0, 3.0], [1.0, 3.0])
        c = a + b
        assert c(1.0) == pytest.approx(1.0 + 1.0)
        assert c(2.0) == pytest.approx(2.0 + 2.0)

    def test_add_scalar(self):
        w = simple_ramp() + 1.0
        assert w(0.0) == 1.0
        assert w(3.0) == 2.0

    def test_radd_for_sum(self):
        parts = [simple_ramp(), simple_ramp()]
        total = sum(parts, 0.0)
        assert total(3.0) == pytest.approx(2.0)

    def test_subtract(self):
        w = simple_ramp() - simple_ramp()
        assert np.allclose(w.values, 0.0)

    def test_rsub(self):
        w = 1.0 - simple_ramp()
        assert w(3.0) == pytest.approx(0.0)
        assert w(0.0) == pytest.approx(1.0)

    def test_scale_and_neg(self):
        w = simple_ramp() * 2.0
        assert w(3.0) == 2.0
        assert (-w)(3.0) == -2.0
        assert (3.0 * simple_ramp())(3.0) == 3.0


class TestTransformations:
    def test_shifted(self):
        w = simple_ramp().shifted(10.0)
        assert w.t_start == 10.0
        assert w(11.5) == pytest.approx(0.5)

    def test_clipped(self):
        w = simple_ramp().clipped(1.5, 2.5)
        assert w.t_start == 1.5
        assert w.t_end == 2.5
        assert w(1.5) == pytest.approx(0.5)

    def test_clipped_invalid(self):
        with pytest.raises(ValueError):
            simple_ramp().clipped(2.0, 1.0)

    def test_resampled(self):
        w = simple_ramp().resampled(np.linspace(0, 3, 31))
        assert len(w) == 31
        assert w(1.5) == pytest.approx(0.5)

    def test_extended(self):
        w = simple_ramp().extended(t_start=-5.0, t_end=7.0)
        assert w.t_start == -5.0
        assert w.t_end == 7.0
        assert w(-5.0) == 0.0
        assert w(7.0) == 1.0

    def test_extended_noop_when_inside(self):
        w = simple_ramp().extended(t_start=1.0, t_end=2.0)
        assert w.t_start == 0.0
        assert w.t_end == 3.0


class TestCalculus:
    def test_derivative_of_ramp(self):
        w = Waveform([0.0, 1.0], [0.0, 2.0])
        d = w.derivative()
        assert d(0.5) == pytest.approx(2.0)

    def test_derivative_piecewise(self):
        d = simple_ramp().derivative()
        assert d(1.5) == pytest.approx(1.0)
        # Flat regions differentiate to zero.
        assert d(0.2) == pytest.approx(0.0)

    def test_integral(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        assert w.integral() == pytest.approx(1.0)

    def test_abs_integral(self):
        w = Waveform([0.0, 1.0, 2.0], [-1.0, 1.0, -1.0])
        assert w.abs_integral() >= abs(w.integral())


class TestCrossings:
    def test_single_crossing(self):
        w = simple_ramp()
        assert w.crossing_time(0.5) == pytest.approx(1.5)

    def test_rising_vs_falling(self):
        w = Waveform([0, 1, 2], [0.0, 1.0, 0.0])
        assert w.crossing_time(0.5, rising=True) == pytest.approx(0.5)
        assert w.crossing_time(0.5, rising=False) == pytest.approx(1.5)

    def test_which_last(self):
        w = Waveform([0, 1, 2, 3, 4], [0.0, 1.0, 0.0, 1.0, 1.0])
        assert w.crossing_time(0.5, rising=True, which="last") == \
            pytest.approx(2.5)

    def test_no_crossing_raises(self):
        w = simple_ramp()
        with pytest.raises(ValueError, match="never crosses"):
            w.crossing_time(2.0)

    def test_invalid_which(self):
        with pytest.raises(ValueError):
            simple_ramp().crossing_time(0.5, which="median")

    def test_crossings_count(self):
        w = Waveform([0, 1, 2, 3, 4], [0.0, 1.0, 0.0, 1.0, 0.0])
        assert w.crossings(0.5).size == 4
        assert w.crossings(0.5, rising=True).size == 2

    def test_peak(self):
        w = Waveform([0, 1, 2], [0.0, -2.0, 0.5])
        t, v = w.peak()
        assert t == 1.0
        assert v == -2.0

    def test_settles_to(self):
        w = simple_ramp()
        assert w.settles_to(1.0, 1e-9)
        assert not w.settles_to(0.0, 0.5)


class TestProperties:
    """Hypothesis property tests on waveform algebra invariants."""

    @given(
        st.lists(st.floats(-5, 5), min_size=2, max_size=12),
        st.floats(-3, 3),
    )
    @settings(max_examples=100)
    def test_shift_preserves_values(self, values, delta):
        times = np.arange(len(values), dtype=float)
        w = Waveform(times, values)
        shifted = w.shifted(delta)
        mid_times = times[:-1] + 0.5
        np.testing.assert_allclose(
            shifted(mid_times + delta), w(mid_times), atol=1e-9)

    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=12))
    @settings(max_examples=100)
    def test_add_commutes(self, values):
        times = np.arange(len(values), dtype=float)
        a = Waveform(times, values)
        b = Waveform(times * 1.5 + 0.25, values[::-1])
        left = a + b
        right = b + a
        probe = np.linspace(-1, times[-1] * 2, 37)
        np.testing.assert_allclose(left(probe), right(probe), atol=1e-9)

    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=12),
           st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=100)
    def test_scaling_linear(self, values, s1, s2):
        times = np.arange(len(values), dtype=float)
        w = Waveform(times, values)
        probe = np.linspace(0, times[-1], 17)
        np.testing.assert_allclose(
            (w * (s1 + s2))(probe), (w * s1 + w * s2)(probe), atol=1e-7)

    @given(st.lists(st.floats(0.01, 5), min_size=2, max_size=10))
    @settings(max_examples=100)
    def test_integral_additive_under_sum(self, values):
        times = np.arange(len(values), dtype=float)
        a = Waveform(times, values)
        b = Waveform(times, values[::-1])
        assert (a + b).integral() == pytest.approx(
            a.integral() + b.integral(), rel=1e-9)


class TestNearDuplicateTimes:
    """Regression: summing a waveform with an almost-identically shifted
    copy must not create near-duplicate time points whose finite
    differences blow up the derivative (float rounding amplification)."""

    def test_sum_with_tiny_shift_is_clean(self):
        times = np.arange(0, 2000) * 1e-12
        values = np.sin(times / 3e-10)
        w = Waveform(times, values)
        # A shift that is float-noise away from a multiple of the grid.
        noisy_shift = 137e-12 + 3e-22
        total = w + w.shifted(noisy_shift)
        d = total.derivative()
        # The true slope is bounded by 2 * max|cos|/3e-10.
        assert np.abs(d.values).max() < 3.0 / 3e-10

    def test_derivative_times_strictly_increasing(self):
        times = np.arange(0, 500) * 1e-12
        w = Waveform(times, np.linspace(0, 1, 500))
        total = w + w.shifted(1e-22) + w.shifted(50e-12 - 1e-22)
        d = total.derivative()  # must not raise
        assert (np.diff(d.times) > 0).all()

    def test_legitimate_fine_steps_preserved(self):
        # 1 fs separations are real features (ideal steps) — kept.
        w = Waveform([0.0, 1e-15, 1e-12], [0.0, 1.0, 1.0])
        total = w + Waveform([0.0, 1e-12], [0.0, 0.0])
        assert len(total) >= 3
        assert total(5e-13) == pytest.approx(1.0)
