"""Tests for repro.circuit.parser."""

import pytest

from repro.circuit import GROUND
from repro.circuit.parser import NetlistError, parse_netlist, parse_value
from repro.units import FF, KOHM
from repro.waveform import Waveform


class TestParseValue:
    @pytest.mark.parametrize("token,expected", [
        ("1.2k", 1200.0),
        ("35f", 35e-15),
        ("0.4n", 0.4e-9),
        ("2meg", 2e6),
        ("10", 10.0),
        ("-3.5p", -3.5e-12),
        ("1e-12", 1e-12),
        ("1.5E3", 1500.0),
    ])
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage(self):
        with pytest.raises(NetlistError):
            parse_value("abc")

    def test_bad_suffix(self):
        with pytest.raises(NetlistError):
            parse_value("1.5q")


class TestParseNetlist:
    def test_rc_deck(self):
        deck = """
        * simple RC
        Vdrv in 0 DC 1.8
        R1 in mid 1k
        R2 mid out 500
        C1 mid 0 20f
        C2 out 0 35f
        .end
        """
        c = parse_netlist(deck)
        assert len(c.resistors) == 2
        assert len(c.capacitors) == 2
        assert c.resistors[0].resistance == pytest.approx(1 * KOHM)
        assert c.capacitors[1].capacitance == pytest.approx(35 * FF)

    def test_coupling_tag(self):
        c = parse_netlist("Cc1 v1 a1 12f COUPLING\nR1 v1 0 1k")
        assert c.coupling_caps()[0].capacitance == pytest.approx(12 * FF)

    def test_unknown_cap_flag(self):
        with pytest.raises(NetlistError):
            parse_netlist("Cc1 v1 a1 12f WEIRD")

    def test_gnd_alias(self):
        c = parse_netlist("R1 a GND 1k")
        assert c.resistors[0].node2 == GROUND

    def test_pwl_source(self):
        c = parse_netlist("Vin in 0 PWL(0 0 1n 1.8)")
        wave = c.vsources[0].value
        assert isinstance(wave, Waveform)
        assert wave(0.5e-9) == pytest.approx(0.9)

    def test_pwl_with_commas(self):
        c = parse_netlist("Iin n1 0 PWL(0 0, 1n 1m, 2n 0)")
        assert c.isources[0].value(1e-9) == pytest.approx(1e-3)

    def test_bare_dc_number(self):
        c = parse_netlist("Vdd vdd 0 1.8")
        assert c.vsources[0].value == pytest.approx(1.8)

    def test_continuation_lines(self):
        deck = "Vin in 0 PWL(0 0\n+ 1n 1.8)"
        c = parse_netlist(deck)
        assert c.vsources[0].value(1e-9) == pytest.approx(1.8)

    def test_comments_and_blanks(self):
        deck = "* header\n\nR1 a 0 1k ; trailing comment\n* tail"
        c = parse_netlist(deck)
        assert len(c.resistors) == 1

    def test_end_stops_parsing(self):
        deck = "R1 a 0 1k\n.end\nR2 b 0 1k"
        c = parse_netlist(deck)
        assert len(c.resistors) == 1

    def test_dot_cards_ignored(self):
        c = parse_netlist(".tran 1p 1n\nR1 a 0 1k")
        assert len(c.resistors) == 1

    def test_malformed_resistor(self):
        with pytest.raises(NetlistError):
            parse_netlist("R1 a 0")

    def test_unsupported_card(self):
        with pytest.raises(NetlistError, match="unsupported card"):
            parse_netlist("L1 a 0 1n")

    def test_odd_pwl_pairs(self):
        with pytest.raises(NetlistError):
            parse_netlist("Vin in 0 PWL(0 0 1n)")

    def test_orphan_continuation(self):
        with pytest.raises(NetlistError):
            parse_netlist("+ 1n 1.8")

    def test_roundtrip_through_mna(self):
        from repro.circuit import build_mna
        from repro.sim import simulate_linear
        deck = """
        Vin in 0 PWL(0 0 0.1n 1.8)
        R1 in out 1k
        C1 out 0 100f
        """
        result = simulate_linear(parse_netlist(deck), 2e-9, 1e-12)
        assert result.voltage("out").values[-1] == pytest.approx(1.8,
                                                                 rel=1e-3)
