"""Tests for the run-ledger layer: atomic writes, resource sampling,
progress heartbeats, run manifests, Chrome trace export and the bench
history ledger."""

import io
import json

import pytest

from repro.bench.history import (
    HISTORY_SCHEMA,
    Regression,
    append_history,
    detect_regressions,
    format_regressions,
    history_record,
    load_history,
)
from repro.obs import (
    Heartbeat,
    MANIFEST_SCHEMA,
    ProgressTracker,
    RunManifest,
    Tracer,
    atomic_write_json,
    atomic_write_text,
    format_manifest,
    git_revision,
    host_info,
    load_manifest,
    metrics,
    peak_rss_bytes,
    resource_summary,
    to_chrome_trace,
    write_chrome_trace,
    write_trace,
)
from repro.obs.progress import MIN_STRAGGLER_SAMPLES, STRAGGLER_FACTOR
from repro.obs.resources import ResourceSampler, reset_sampler


@pytest.fixture()
def clean_registry():
    metrics().reset()
    reset_sampler()
    yield metrics()
    metrics().reset()
    reset_sampler()


# ----------------------------------------------------------------------
# Atomic writes (satellite: tmp + os.replace everywhere)
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": [1, 2]})
        assert json.loads(path.read_text()) == {"a": [1, 2]}

    def test_failure_preserves_existing(self, tmp_path, monkeypatch):
        import repro.obs.ioutil as ioutil_module

        path = tmp_path / "out.json"
        atomic_write_json(path, {"generation": 1})
        original = path.read_text()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ioutil_module.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_json(path, {"generation": 2})
        monkeypatch.undo()
        assert path.read_text() == original
        assert list(tmp_path.glob("*.tmp")) == []

    def test_write_trace_is_atomic(self, tmp_path, monkeypatch):
        """A crashed trace export must not truncate a previous trace."""
        import repro.obs.ioutil as ioutil_module

        tracer = Tracer(enabled=True)
        with tracer.span("only"):
            pass
        records = tracer.records()
        path = tmp_path / "trace.jsonl"
        write_trace(path, records)
        original = path.read_text()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ioutil_module.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            write_trace(path, records + records)
        monkeypatch.undo()
        assert path.read_text() == original
        assert list(tmp_path.glob("*.tmp")) == []


# ----------------------------------------------------------------------
# Resource accounting
# ----------------------------------------------------------------------
class TestResources:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 0

    def test_sampler_instruments(self, clean_registry):
        sampler = ResourceSampler()
        sampler.sample()  # primes the CPU baseline
        sum(i * i for i in range(100_000))
        sampler.sample()
        snap = clean_registry.snapshot()
        assert snap["gauges"]["resource.peak_rss_bytes"]["max"] > 0
        # One CPU delta (the priming call observes none), two overheads.
        assert snap["timers"]["resource.cpu.user"]["count"] == 1
        assert snap["timers"]["resource.cpu.user"]["total"] >= 0.0
        assert snap["timers"]["obs.overhead"]["count"] == 2

    def test_summary_folds_snapshot(self, clean_registry):
        sampler = ResourceSampler()
        sampler.sample()
        sampler.sample()
        summary = resource_summary(clean_registry.snapshot())
        assert summary["peak_rss_bytes"] > 0
        assert summary["samples"] == 2
        assert summary["sampling_overhead_s"] >= 0.0

    def test_summary_empty_snapshot_is_zeros(self):
        summary = resource_summary({})
        assert summary == {"peak_rss_bytes": 0, "cpu_user_s": 0.0,
                           "cpu_system_s": 0.0, "samples": 0,
                           "sampling_overhead_s": 0.0}


# ----------------------------------------------------------------------
# Progress tracking
# ----------------------------------------------------------------------
def beat(name="net0", seconds=0.1, failed=False):
    return Heartbeat(net=name, seconds=seconds, rss_bytes=1 << 20,
                     pid=1234, failed=failed)


class TestProgress:
    def test_counts_and_snapshot(self):
        tracker = ProgressTracker(3)
        tracker.record(beat("net0"))
        tracker.record(beat("net1", failed=True))
        snap = tracker.snapshot()
        assert snap["nets"] == 2
        assert snap["total"] == 3
        assert snap["failed"] == 1
        assert snap["p50_s"] == pytest.approx(0.1)

    def test_straggler_flagged_after_min_samples(self):
        tracker = ProgressTracker(10)
        for i in range(MIN_STRAGGLER_SAMPLES):
            tracker.record(beat(f"net{i}", seconds=0.1))
        tracker.record(beat("slowpoke",
                            seconds=0.1 * STRAGGLER_FACTOR * 2))
        assert tracker.stragglers == ["slowpoke"]

    def test_no_straggler_verdict_on_few_samples(self):
        tracker = ProgressTracker(10)
        tracker.record(beat("net0", seconds=0.1))
        tracker.record(beat("huge", seconds=100.0))
        assert tracker.stragglers == []

    def test_render_line_contents(self):
        tracker = ProgressTracker(100)
        for i in range(6):
            tracker.record(beat(f"net{i}", seconds=0.01))
        line = tracker.render_line()
        assert "[  6/100]" in line
        assert "nets/s" in line
        assert "eta" in line
        assert "p95" in line

    def test_stream_rendering_and_finish(self):
        stream = io.StringIO()
        tracker = ProgressTracker(2, stream=stream, min_interval=0.0)
        tracker.record(beat("net0"))
        tracker.record(beat("net1"))
        tracker.finish()
        text = stream.getvalue()
        assert "\r" in text
        assert "[2/2]" in text
        assert text.endswith("\n")

    def test_silent_without_stream(self):
        tracker = ProgressTracker(1)
        tracker.record(beat())
        tracker.finish()  # must not raise

    def test_heartbeat_to_dict(self):
        hb = beat("n", seconds=0.5, failed=True)
        assert hb.to_dict() == {"net": "n", "seconds": 0.5,
                                "rss_bytes": 1 << 20, "pid": 1234,
                                "failed": True, "tier": 2}


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
class _FakeFailure:
    def __init__(self, net_name, error_type):
        self.net_name = net_name
        self.error_type = error_type


class TestManifest:
    def test_git_and_host_shapes(self):
        git = git_revision()
        assert set(git) == {"revision", "dirty"}
        host = host_info()
        assert host["cpu_count"] >= 1
        assert "python" in host["versions"]

    def test_git_degrades_outside_checkout(self, tmp_path):
        git = git_revision(cwd=tmp_path)
        assert git == {"revision": None, "dirty": None}

    def test_stage_accumulates(self, clean_registry):
        manifest = RunManifest("screen")
        manifest.add_stage("analysis", 1.0)
        manifest.add_stage("analysis", 0.5)
        with manifest.stage("functional-screen"):
            pass
        assert manifest.stages["analysis"] == pytest.approx(1.5)
        assert manifest.stages["functional-screen"] >= 0.0

    def test_finalize_payload(self, clean_registry):
        manifest = RunManifest("screen", config={"seed": 3})
        manifest.add_stage("analysis", 2.0)
        payload = manifest.finalize(
            failures=[_FakeFailure("net1", "Timeout"),
                      _FakeFailure("net4", "Timeout")],
            degraded={"total": 1, "stages": ["alignment"]},
            progress={"nets": 5, "total": 5})
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["command"] == "screen"
        assert payload["config"] == {"seed": 3}
        assert payload["wall_time_s"] > 0.0
        assert payload["resources"]["peak_rss_bytes"] > 0
        assert payload["failures"] == {"total": 2,
                                       "by_type": {"Timeout": 2},
                                       "nets": ["net1", "net4"]}
        assert payload["degraded"]["stages"] == ["alignment"]
        assert payload["progress"]["nets"] == 5
        assert payload["telemetry_overhead"]["fraction"] < 0.5
        assert "counters" in payload["metrics"]

    def test_write_load_roundtrip(self, tmp_path, clean_registry):
        path = tmp_path / "run.json"
        RunManifest("bench").write(path, extra={"speedup": {"x": 2.0}})
        loaded = load_manifest(path)
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["speedup"] == {"x": 2.0}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(path)

    def test_format_manifest_renders(self, clean_registry):
        manifest = RunManifest("screen", config={"count": 8})
        manifest.add_stage("analysis", 1.25)
        payload = manifest.finalize(
            failures=[_FakeFailure("net2", "WorkerCrash")])
        text = format_manifest(payload)
        assert "run: screen" in text
        assert "analysis" in text
        assert "peak RSS" in text
        assert "WorkerCrash x1" in text


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def rec(id, name, start, dur, parent=None, **attrs):
    return {"id": id, "parent": parent, "name": name,
            "start": start, "dur": dur, "attrs": attrs}


class TestChromeTrace:
    def test_serial_nesting_single_track(self):
        records = [rec(2, "child", 1.0, 2.0, parent=1),
                   rec(1, "root", 0.0, 10.0)]
        payload = to_chrome_trace(records)
        events = {e["name"]: e for e in payload["traceEvents"]
                  if e["ph"] == "X"}
        assert events["root"]["tid"] == events["child"]["tid"]
        assert events["root"]["ts"] == 0.0
        assert events["child"]["ts"] == pytest.approx(1e6)
        assert events["child"]["dur"] == pytest.approx(2e6)
        # Child strictly inside the parent on the shared track.
        assert events["child"]["ts"] >= events["root"]["ts"]
        assert events["child"]["ts"] + events["child"]["dur"] <= \
            events["root"]["ts"] + events["root"]["dur"]

    def test_overlapping_siblings_get_new_track(self):
        """jobs=N subtrees overlap in time and need separate lanes."""
        records = [rec(1, "root", 0.0, 10.0),
                   rec(2, "a", 1.0, 4.0, parent=1),
                   rec(3, "b", 2.0, 4.0, parent=1)]
        payload = to_chrome_trace(records)
        events = {e["name"]: e for e in payload["traceEvents"]
                  if e["ph"] == "X"}
        assert events["a"]["tid"] == events["root"]["tid"]
        assert events["b"]["tid"] != events["root"]["tid"]

    def test_child_clamped_into_parent(self):
        """Worker clock skew cannot break the nesting invariant."""
        records = [rec(1, "root", 0.0, 1.0),
                   rec(2, "skewed", 0.5, 5.0, parent=1)]
        payload = to_chrome_trace(records)
        events = {e["name"]: e for e in payload["traceEvents"]
                  if e["ph"] == "X"}
        child_end = events["skewed"]["ts"] + events["skewed"]["dur"]
        root_end = events["root"]["ts"] + events["root"]["dur"]
        assert child_end <= root_end

    def test_event_shape_and_metadata(self):
        records = [rec(1, "root", 100.0, 1.0, net="n0")]
        payload = to_chrome_trace(records)
        assert payload["displayTimeUnit"] == "ms"
        (event,) = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"]
        assert event["ts"] == 0.0  # rebased to the earliest span
        assert event["cat"] == "repro"
        assert event["args"] == {"net": "n0"}
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M"}
        assert "process_name" in names
        assert "thread_name" in names

    def test_write_chrome_trace_valid_json(self, tmp_path):
        path = tmp_path / "chrome.json"
        count = write_chrome_trace(
            path, [rec(1, "root", 0.0, 1.0),
                   rec(2, "child", 0.1, 0.5, parent=1)])
        assert count == 2
        payload = json.loads(path.read_text())
        assert all(e["dur"] >= 0 for e in payload["traceEvents"]
                   if e["ph"] == "X")


# ----------------------------------------------------------------------
# Bench history ledger
# ----------------------------------------------------------------------
def perf_payload(newton=2.5, batched=4.0, sparse=25.0):
    return {
        "schema": "repro.bench.perf/v5",
        "config": {"seed": 1, "count": 2, "t_stop": 2e-9, "dt": 1e-12,
                   "sparse_dim": 2000},
        "kernels": {"fast": {"transient_s": 0.1,
                             "steps_per_second": 20000.0}},
        "speedup": {"newton_throughput": newton,
                    "alignment_search_batched": batched},
        "sparse": {"speedup": sparse},
    }


class TestHistory:
    def test_record_shape(self):
        record = history_record(perf_payload())
        assert record["schema"] == HISTORY_SCHEMA
        assert record["phases"] == {"newton_throughput": 2.5,
                                    "alignment_search_batched": 4.0,
                                    "sparse_speedup": 25.0}
        assert record["bench_schema"] == "repro.bench.perf/v5"
        assert record["config"]["seed"] == 1
        assert record["wall"]["steps_per_second_fast"] == 20000.0

    def test_record_skips_missing_phases(self):
        payload = perf_payload()
        del payload["sparse"]
        record = history_record(payload)
        assert "sparse_speedup" not in record["phases"]

    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        assert load_history(path) == []
        assert append_history(path, history_record(perf_payload())) == 1
        assert append_history(path, history_record(perf_payload())) == 2
        records = load_history(path)
        assert len(records) == 2
        assert all(r["schema"] == HISTORY_SCHEMA for r in records)

    def test_load_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(path, history_record(perf_payload()))
        with open(path, "a") as handle:
            handle.write("{not json\n\n")
        append_history(path, history_record(perf_payload()))
        assert len(load_history(path)) == 2

    def test_no_history_no_regression(self):
        assert detect_regressions([], history_record(perf_payload())) \
            == []

    def test_within_threshold_passes(self):
        history = [history_record(perf_payload(newton=2.5))]
        current = history_record(perf_payload(newton=2.3))  # -8%
        assert detect_regressions(history, current) == []

    def test_doctored_drop_detected(self):
        """The acceptance case: a synthetic >10% drop must fail."""
        history = [history_record(perf_payload(newton=2.5))
                   for _ in range(3)]
        current = history_record(perf_payload(newton=2.0))  # -20%
        (reg,) = detect_regressions(history, current)
        assert reg.phase == "newton_throughput"
        assert reg.baseline == pytest.approx(2.5)
        assert reg.current == pytest.approx(2.0)
        assert reg.drop_fraction == pytest.approx(0.2)

    def test_rolling_window_uses_recent_records(self):
        """Old glory days age out of the baseline."""
        history = [history_record(perf_payload(newton=10.0))] \
            + [history_record(perf_payload(newton=2.0))
               for _ in range(5)]
        current = history_record(perf_payload(newton=1.95))
        assert detect_regressions(history, current, window=5) == []

    def test_threshold_override(self):
        history = [history_record(perf_payload(newton=2.5))]
        current = history_record(perf_payload(newton=2.3))  # -8%
        regs = detect_regressions(history, current, threshold=0.05)
        assert [r.phase for r in regs] == ["newton_throughput"]

    def test_format_regressions(self):
        text = format_regressions([])
        assert "no tracked phase regressed" in text
        reg = Regression(phase="sparse_speedup", baseline=25.0,
                         current=10.0, samples=3)
        text = format_regressions([reg])
        assert "sparse_speedup" in text
        assert "-60.0%" in text
