"""Tests for repro.waveform.metrics."""

import pytest

from repro.units import NS, V
from repro.waveform import (
    Waveform,
    crossing_delay,
    extra_delay,
    ramp,
    transition_slew,
    triangular_pulse,
)

VDD = 1.8 * V


class TestCrossingDelay:
    def test_pure_shift(self):
        a = ramp(0.0, 1 * NS, 0.0, VDD)
        b = a.shifted(0.3 * NS)
        assert crossing_delay(a, b, VDD) == pytest.approx(0.3 * NS)

    def test_inverting_stage(self):
        a = ramp(0.0, 1 * NS, 0.0, VDD)
        b = ramp(0.6 * NS, 1 * NS, VDD, 0.0)
        d = crossing_delay(a, b, VDD, launch_rising=True,
                           capture_rising=False)
        assert d == pytest.approx(0.6 * NS)

    def test_which_last_penalizes_recrossing(self):
        a = ramp(0.0, 1 * NS, 0.0, VDD)
        # Capture rises, dips back below 50%, then recovers.
        b = Waveform(
            [0.0, 1.0 * NS, 1.2 * NS, 1.5 * NS, 2.0 * NS],
            [0.0, VDD, 0.4 * VDD, 0.4 * VDD, VDD],
        )
        d_last = crossing_delay(a, b, VDD, which="last")
        d_first = crossing_delay(a, b, VDD, which="first")
        assert d_last > d_first


class TestTransitionSlew:
    def test_linear_ramp_recovers_transition_time(self):
        # 10-90% of a clean 0-100% ramp spans 80% of it; x1.25 restores it.
        w = ramp(0.0, 1 * NS, 0.0, VDD)
        assert transition_slew(w, VDD, rising=True) == \
            pytest.approx(1 * NS, rel=1e-6)

    def test_falling(self):
        w = ramp(0.0, 0.4 * NS, VDD, 0.0)
        assert transition_slew(w, VDD, rising=False) == \
            pytest.approx(0.4 * NS, rel=1e-6)

    def test_slew_scales(self):
        fast = ramp(0.0, 0.1 * NS, 0.0, VDD)
        slow = ramp(0.0, 1.0 * NS, 0.0, VDD)
        assert transition_slew(slow, VDD, True) > \
            transition_slew(fast, VDD, True)


class TestExtraDelay:
    def test_no_noise_zero(self):
        clean = ramp(0.0, 1 * NS, 0.0, VDD)
        assert extra_delay(clean, clean, VDD, rising=True) == \
            pytest.approx(0.0)

    def test_opposing_noise_increases_delay(self):
        clean = ramp(0.0, 1 * NS, 0.0, VDD)
        # Negative pulse near the 50% crossing delays the last crossing.
        noise = triangular_pulse(0.5 * NS, -0.5 * VDD, 0.2 * NS)
        noisy = clean + noise
        assert extra_delay(clean, noisy, VDD, rising=True) > 0.0

    def test_aiding_noise_decreases_delay(self):
        clean = ramp(0.0, 1 * NS, 0.0, VDD)
        noise = triangular_pulse(0.45 * NS, +0.4 * VDD, 0.3 * NS)
        noisy = clean + noise
        assert extra_delay(clean, noisy, VDD, rising=True) < 0.0

    def test_late_noise_after_transition_is_harmless(self):
        clean = ramp(0.0, 1 * NS, 0.0, VDD)
        noise = triangular_pulse(5 * NS, -0.4 * VDD, 0.2 * NS)
        noisy = clean + noise
        assert extra_delay(clean, noisy, VDD, rising=True) == \
            pytest.approx(0.0, abs=1e-15)

    def test_falling_victim(self):
        clean = ramp(0.0, 1 * NS, VDD, 0.0)
        noise = triangular_pulse(0.55 * NS, +0.5 * VDD, 0.2 * NS)
        noisy = clean + noise
        assert extra_delay(clean, noisy, VDD, rising=False) > 0.0
