"""End-to-end variants: falling victims, NAND/NOR drivers and receivers.

The figure benches exercise the canonical rising-victim / inverter
configuration; these tests prove the flow composes for the other shapes
a real design contains.
"""

import pytest

from repro.bench.netgen import canonical_net
from repro.circuit import Circuit, GROUND
from repro.circuit.topology import couple_nodes, rc_line
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.golden import golden_extra_delays
from repro.core.net import AggressorSpec, CoupledNet, DriverSpec, ReceiverSpec
from repro.gates import nand2, nor2, standard_cell
from repro.units import FF, KOHM, NS, PS


@pytest.fixture(scope="module")
def variant_analyzer(model_cache):
    return DelayNoiseAnalyzer(cache=model_cache)


class TestFallingVictim:
    @pytest.fixture(scope="class")
    def report(self, variant_analyzer):
        net = canonical_net(victim_rising=False, name="falling")
        return variant_analyzer.analyze(net, alignment="table"), net

    def test_pulse_polarity_positive(self, report):
        rep, _net = report
        # Rising aggressors push the falling victim back up.
        assert rep.pulse_height > 0.1

    def test_delay_noise_positive(self, report):
        rep, _net = report
        assert rep.extra_delay_input > 10 * PS
        assert rep.extra_delay_output > 10 * PS

    def test_rtr_exceeds_rth(self, report):
        rep, _net = report
        # NMOS pull-down mid-transition: holding is weaker than Rth.
        assert rep.rtr > 0

    def test_against_golden(self, report):
        rep, net = report
        golden = golden_extra_delays(
            net, max(4 * NS, rep.noiseless_input.t_end),
            aggressor_shifts=rep.aggressor_shifts)
        assert golden.extra_input > 10 * PS
        # Linear flow within 25% of golden at the same alignment.
        assert rep.extra_delay_input == pytest.approx(
            golden.extra_input, rel=0.25)


def nand_nor_net() -> CoupledNet:
    """Victim driven by a NAND2, received by a NOR2, NAND2 aggressor."""
    wires = Circuit("nn_wires")
    v_nodes = rc_line(wires, "v_", "v_root", "v_rcv", 6, 1 * KOHM,
                      40 * FF)
    a_nodes = rc_line(wires, "a_", "a_root", "a_far", 6, 0.6 * KOHM,
                      30 * FF)
    wires.add_capacitor("a_load", "a_far", GROUND, 8 * FF)
    couple_nodes(wires, "x_", v_nodes, a_nodes, 45 * FF)
    return CoupledNet(
        name="nand_nor",
        interconnect=wires,
        victim_root="v_root",
        victim_receiver_node="v_rcv",
        victim_driver=DriverSpec(gate=nand2(scale=1),
                                 input_slew=0.2 * NS,
                                 output_rising=True,
                                 input_start=0.2 * NS),
        receiver=ReceiverSpec(gate=nor2(scale=2), c_load=10 * FF),
        aggressors=[AggressorSpec(
            name="agg0",
            driver=DriverSpec(gate=standard_cell("NAND2_X4"),
                              input_slew=0.12 * NS,
                              output_rising=False,
                              input_start=0.2 * NS),
            root="a_root", far_end="a_far")],
    )


class TestNandNorNet:
    @pytest.fixture(scope="class")
    def report(self, variant_analyzer):
        return variant_analyzer.analyze(nand_nor_net(), alignment="table")

    def test_flow_completes(self, report):
        assert report.rtr > 0
        assert report.ceff_victim > 1 * FF

    def test_noise_and_delay(self, report):
        assert report.pulse_height < -0.05
        assert report.extra_delay_input > 5 * PS

    def test_golden_agreement(self, report):
        net = nand_nor_net()
        golden = golden_extra_delays(
            net, max(4 * NS, report.noiseless_input.t_end),
            aggressor_shifts=report.aggressor_shifts)
        assert report.extra_delay_input == pytest.approx(
            golden.extra_input, rel=0.3, abs=10 * PS)


class TestDeterminism:
    def test_same_net_same_report(self, variant_analyzer):
        """The whole flow is deterministic: two runs agree exactly."""
        a = variant_analyzer.analyze(canonical_net(name="det1"),
                                     alignment="table")
        b = variant_analyzer.analyze(canonical_net(name="det2"),
                                     alignment="table")
        assert a.extra_delay_output == pytest.approx(
            b.extra_delay_output, abs=1e-18)
        assert a.rtr == pytest.approx(b.rtr, abs=1e-12)


class TestBufferReceiver:
    """Non-inverting receiver: output polarity follows the victim."""

    @pytest.fixture(scope="class")
    def buffered_net(self):
        from repro.gates.library import buffer
        net = canonical_net(name="buffered")
        net.receiver = ReceiverSpec(gate=buffer(scale=2), c_load=10 * FF)
        return net

    def test_analyzer_runs(self, buffered_net, variant_analyzer):
        rep = variant_analyzer.analyze(buffered_net,
                                       alignment="input-objective",
                                       use_rtr=False)
        assert rep.extra_delay_input > 10 * PS
        # Output delay must be measured on the RISING output edge.
        assert rep.noiseless_output.values[-1] == pytest.approx(
            1.8, abs=0.05)

    def test_golden_polarity(self, buffered_net):
        golden = golden_extra_delays(buffered_net, 4 * NS,
                                     aggressor_shifts={"agg0": 0.35 * NS})
        out = golden.clean.at_receiver_output
        assert out(0.0) == pytest.approx(0.0, abs=0.1)
        assert out.values[-1] == pytest.approx(1.8, abs=0.1)
