"""Tests for repro.sta (windows, graph, coupling iteration)."""

import pytest

from repro.sta import (
    CoupledSta,
    CouplingBinding,
    OverlapDeltaModel,
    SweepDeltaModel,
    TimingGraph,
    Window,
)
from repro.units import NS, PS


class TestWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            Window(2.0, 1.0)

    def test_span_shift_pad(self):
        w = Window(1.0, 3.0)
        assert w.span == 2.0
        assert w.shifted(1.0) == Window(2.0, 4.0)
        assert w.padded(0.5) == Window(0.5, 3.5)
        assert w.padded(0.5, 1.0) == Window(0.5, 4.0)

    def test_overlap(self):
        assert Window(0, 2).overlaps(Window(1, 3))
        assert Window(0, 2).overlaps(Window(2, 3))  # touching counts
        assert not Window(0, 1).overlaps(Window(2, 3))

    def test_intersection(self):
        assert Window(0, 2).intersection(Window(1, 3)) == Window(1, 2)
        assert Window(0, 1).intersection(Window(2, 3)) is None

    def test_union_hull_and_merge(self):
        assert Window(0, 1).union_hull(Window(2, 3)) == Window(0, 3)
        assert Window.merge([Window(0, 1), Window(2, 3),
                             Window(-1, 0)]) == Window(-1, 3)
        with pytest.raises(ValueError):
            Window.merge([])

    def test_contains_and_clamp(self):
        w = Window(1.0, 2.0)
        assert w.contains(1.5)
        assert not w.contains(2.5)
        assert w.clamp(0.0) == 1.0
        assert w.clamp(9.0) == 2.0

    def test_propagate(self):
        assert Window.propagate(Window(1, 2), 0.5, 1.0) == Window(1.5, 3.0)


def chain_graph():
    """in -> a -> b with simple delays."""
    g = TimingGraph()
    g.add_input("in", Window(0.0, 0.1))
    g.add_edge("in", "a", 1.0, 1.2)
    g.add_edge("a", "b", 0.5, 0.7)
    return g


class TestTimingGraph:
    def test_chain_propagation(self):
        windows = chain_graph().propagate_windows()
        assert windows["a"] == Window(1.0, 1.3)
        assert windows["b"] == Window(1.5, 2.0)

    def test_fanin_merge(self):
        g = TimingGraph()
        g.add_input("i1", Window(0.0, 0.0))
        g.add_input("i2", Window(1.0, 1.0))
        g.add_edge("i1", "y", 1.0, 1.0)
        g.add_edge("i2", "y", 0.5, 0.5)
        windows = g.propagate_windows()
        assert windows["y"] == Window(1.0, 1.5)

    def test_cycle_rejected(self):
        g = chain_graph()
        with pytest.raises(ValueError, match="cycle"):
            g.add_edge("b", "in", 0.1, 0.1)

    def test_invalid_delay(self):
        g = chain_graph()
        with pytest.raises(ValueError):
            g.add_edge("b", "c", 1.0, 0.5)

    def test_no_inputs(self):
        with pytest.raises(ValueError):
            TimingGraph().propagate_windows()

    def test_latest_arrival(self):
        assert chain_graph().latest_arrival("b") == pytest.approx(2.0)
        with pytest.raises(KeyError):
            chain_graph().latest_arrival("ghost")

    def test_set_edge_delay(self):
        g = chain_graph()
        g.set_edge_delay("a", "b", 0.5, 1.7)
        assert g.latest_arrival("b") == pytest.approx(3.0)
        with pytest.raises(KeyError):
            g.set_edge_delay("a", "zz", 0, 0)

    def test_critical_path(self):
        g = TimingGraph()
        g.add_input("i1", Window(0.0, 0.0))
        g.add_input("i2", Window(0.0, 0.0))
        g.add_edge("i1", "y", 2.0, 2.0)
        g.add_edge("i2", "y", 1.0, 1.0)
        g.add_edge("y", "z", 1.0, 1.0)
        assert g.critical_path("z") == ["i1", "y", "z"]


def coupled_graph():
    """Victim path in->v->out; aggressor path ain->agg."""
    g = TimingGraph()
    g.add_input("in", Window(0.0, 0.1 * NS))
    g.add_input("ain", Window(0.0, 0.3 * NS))
    g.add_edge("in", "v", 0.4 * NS, 0.5 * NS, name="victim_net")
    g.add_edge("v", "out", 0.2 * NS, 0.3 * NS)
    g.add_edge("ain", "agg", 0.1 * NS, 0.2 * NS)
    return g


class TestOverlapModel:
    def test_overlap_applies_delta(self):
        g = coupled_graph()
        binding = CouplingBinding(("in", "v"), ["agg"], 0.5 * NS)
        sta = CoupledSta(g, [binding],
                         OverlapDeltaModel(worst_delta=0.15 * NS,
                                           interaction_pad=0.1 * NS))
        windows = sta.run()
        # Aggressor window [0.1, 0.5] overlaps victim [0.4, 0.6]:
        # delta applies and the victim window grows.
        assert windows["v"].latest == pytest.approx(0.75 * NS)
        assert sta.deltas[("in", "v")] == pytest.approx(0.15 * NS)

    def test_no_overlap_no_delta(self):
        g = TimingGraph()
        g.add_input("in", Window(0.0, 0.0))
        g.add_input("ain", Window(5 * NS, 6 * NS))
        g.add_edge("in", "v", 0.4 * NS, 0.5 * NS)
        g.add_edge("ain", "agg", 0.0, 0.0)
        binding = CouplingBinding(("in", "v"), ["agg"], 0.5 * NS)
        sta = CoupledSta(g, [binding],
                         OverlapDeltaModel(worst_delta=0.15 * NS))
        windows = sta.run()
        assert windows["v"].latest == pytest.approx(0.5 * NS)
        assert sta.deltas[("in", "v")] == 0.0

    def test_converges_in_few_iterations(self):
        g = coupled_graph()
        binding = CouplingBinding(("in", "v"), ["agg"], 0.5 * NS)
        sta = CoupledSta(g, [binding],
                         OverlapDeltaModel(worst_delta=0.15 * NS,
                                           interaction_pad=0.1 * NS))
        sta.run()
        assert sta.iterations <= 3

    def test_delta_can_enable_more_coupling(self):
        """Classic windows interaction: adding the first delta widens a
        downstream victim's window into overlap with another aggressor —
        the reason iteration (refs [8][9]) is needed at all."""
        g = TimingGraph()
        g.add_input("in", Window(0.0, 0.0))
        g.add_input("a1", Window(0.0, 0.5 * NS))
        g.add_input("a2", Window(1.25 * NS, 1.3 * NS))
        g.add_edge("in", "v1", 0.3 * NS, 0.4 * NS)
        g.add_edge("v1", "v2", 0.5 * NS, 0.6 * NS)
        g.add_edge("a1", "agg1", 0.0, 0.0)
        g.add_edge("a2", "agg2", 0.0, 0.0)
        b1 = CouplingBinding(("in", "v1"), ["agg1"], 0.4 * NS)
        b2 = CouplingBinding(("v1", "v2"), ["agg2"], 0.6 * NS)
        sta = CoupledSta(
            g, [b1, b2], OverlapDeltaModel(worst_delta=0.2 * NS))
        windows = sta.run()
        # Without b1's delta, v2's window tops out at 1.0 ns and misses
        # agg2 at 1.25; with it, v2 reaches 1.2 -> still short. The pad
        # is zero, so check the documented behaviour quantitatively:
        assert sta.deltas[("in", "v1")] == pytest.approx(0.2 * NS)
        # v2 latest = 0.4 + 0.2 + 0.6 (+ possible delta2)
        assert windows["v2"].latest >= 1.2 * NS - 1e-18
        assert sta.iterations >= 2


class TestSweepModel:
    def curve(self, offset):
        # Triangular delay-vs-offset curve peaking at offset 0.
        peak = 0.2 * NS
        halfwidth = 0.3 * NS
        return max(0.0, peak * (1 - abs(offset) / halfwidth))

    def test_feasible_peak_gets_best_delta(self):
        g = coupled_graph()
        binding = CouplingBinding(("in", "v"), ["agg"], 0.5 * NS)
        offsets = [i * 0.05 * NS for i in range(-6, 7)]
        model = SweepDeltaModel(curve=self.curve, offsets=offsets)
        sta = CoupledSta(g, [binding], model)
        windows = sta.run()
        # Victim latest ~0.6+; aggressor window [0.1,0.5]: only negative
        # offsets feasible -> partial delta.
        assert 0.0 < sta.deltas[("in", "v")] <= 0.2 * NS

    def test_infeasible_zero(self):
        g = TimingGraph()
        g.add_input("in", Window(0.0, 0.0))
        g.add_input("ain", Window(9 * NS, 9.5 * NS))
        g.add_edge("in", "v", 0.4 * NS, 0.5 * NS)
        g.add_edge("ain", "agg", 0.0, 0.0)
        binding = CouplingBinding(("in", "v"), ["agg"], 0.5 * NS)
        model = SweepDeltaModel(curve=self.curve,
                                offsets=[0.0, 0.1 * NS, -0.1 * NS])
        sta = CoupledSta(g, [binding], model)
        sta.run()
        assert sta.deltas[("in", "v")] == 0.0

    def test_offsets_required(self):
        model = SweepDeltaModel(curve=self.curve)
        with pytest.raises(ValueError):
            model.delta(CouplingBinding(("a", "b"), [], 0.0),
                        Window(0, 1), [Window(0, 1)])


class TestWindowProperties:
    """Hypothesis property tests on window algebra."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    bounds = st.tuples(st.floats(-10, 10), st.floats(0, 10))

    @staticmethod
    def make(lo_span):
        lo, span = lo_span
        return Window(lo, lo + span)

    @given(bounds, bounds)
    @settings(max_examples=100)
    def test_overlap_symmetric(self, a, b):
        wa, wb = self.make(a), self.make(b)
        assert wa.overlaps(wb) == wb.overlaps(wa)

    @given(bounds, bounds)
    @settings(max_examples=100)
    def test_intersection_inside_both(self, a, b):
        wa, wb = self.make(a), self.make(b)
        inter = wa.intersection(wb)
        if inter is None:
            assert not wa.overlaps(wb)
        else:
            assert wa.earliest <= inter.earliest
            assert inter.latest <= wa.latest
            assert wb.earliest <= inter.earliest
            assert inter.latest <= wb.latest

    @given(bounds, bounds)
    @settings(max_examples=100)
    def test_hull_contains_both(self, a, b):
        wa, wb = self.make(a), self.make(b)
        hull = wa.union_hull(wb)
        for w in (wa, wb):
            assert hull.earliest <= w.earliest
            assert w.latest <= hull.latest

    @given(bounds, st.floats(-5, 5))
    @settings(max_examples=100)
    def test_shift_preserves_span(self, a, delta):
        w = self.make(a)
        import math
        assert math.isclose(w.shifted(delta).span, w.span,
                            rel_tol=0, abs_tol=1e-9)

    @given(bounds, st.floats(-20, 20))
    @settings(max_examples=100)
    def test_clamp_lands_inside(self, a, t):
        w = self.make(a)
        assert w.contains(w.clamp(t))

    @given(bounds, bounds, st.floats(0, 3), st.floats(0, 3))
    @settings(max_examples=100)
    def test_propagation_monotone(self, a, b, dmin, extra):
        """Propagating through an edge preserves window ordering."""
        wa, wb = self.make(a), self.make(b)
        out = Window.propagate(wa, dmin, dmin + extra)
        assert out.earliest >= wa.earliest
        assert out.span >= wa.span - 1e-12


class TestSlackAnalysis:
    def graph(self):
        g = TimingGraph()
        g.add_input("in", Window(0.0, 0.1))
        g.add_edge("in", "a", 1.0, 1.2)
        g.add_edge("a", "b", 0.5, 0.7)
        g.add_edge("a", "c", 0.2, 0.3)
        return g

    def test_required_times_backward(self):
        g = self.graph()
        req = g.required_times({"b": 3.0, "c": 2.0})
        assert req["b"] == 3.0
        assert req["c"] == 2.0
        # a must satisfy both fanouts: min(3.0-0.7, 2.0-0.3) = 1.7.
        assert req["a"] == pytest.approx(1.7)
        assert req["in"] == pytest.approx(1.7 - 1.2)

    def test_own_requirement_tightens(self):
        g = self.graph()
        req = g.required_times({"b": 3.0, "a": 1.0})
        assert req["a"] == pytest.approx(1.0)

    def test_slacks(self):
        g = self.graph()
        slacks = g.slacks({"b": 3.0, "c": 2.0})
        # latest(b) = 0.1+1.2+0.7 = 2.0 -> slack 1.0
        assert slacks["b"] == pytest.approx(1.0)
        # latest(c) = 0.1+1.2+0.3 = 1.6 -> slack 0.4
        assert slacks["c"] == pytest.approx(0.4)
        assert g.worst_slack({"b": 3.0, "c": 2.0}) == pytest.approx(0.4)

    def test_coupling_delta_erodes_slack(self):
        """The end-to-end story: a coupling delta turns positive slack
        negative — the sign-off failure crosstalk causes."""
        g = TimingGraph()
        g.add_input("in", Window(0.0, 0.0))
        g.add_input("ain", Window(0.0, 0.5 * NS))
        g.add_edge("in", "v", 0.4 * NS, 0.5 * NS)
        g.add_edge("ain", "agg", 0.0, 0.0)
        requirement = {"v": 0.55 * NS}
        assert g.worst_slack(requirement) > 0

        binding = CouplingBinding(("in", "v"), ["agg"], 0.5 * NS)
        sta = CoupledSta(g, [binding],
                         OverlapDeltaModel(worst_delta=0.2 * NS,
                                           interaction_pad=0.2 * NS))
        sta.run()
        assert g.worst_slack(requirement) < 0

    def test_validation(self):
        g = self.graph()
        with pytest.raises(ValueError):
            g.required_times({})
        with pytest.raises(KeyError):
            g.required_times({"ghost": 1.0})
        with pytest.raises(ValueError):
            # Constrained node unreachable from inputs.
            g2 = TimingGraph()
            g2.add_input("in", Window(0.0, 0.0))
            g2.add_edge("orphan_src", "orphan", 1.0, 1.0)
            g2.worst_slack({"orphan": 5.0})
