"""Integration tests for repro.core.analysis (the full ClariNet flow)."""

import pytest

from repro.bench.netgen import canonical_net
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.golden import golden_extra_delays
from repro.units import FF, NS, PS

VDD = 1.8


@pytest.fixture(scope="module")
def report(analyzer, two_aggressor_net):
    return analyzer.analyze(two_aggressor_net, alignment="table")


class TestReportContents:
    def test_models(self, report):
        assert report.rth_victim > 0
        assert report.rtr > 0
        assert report.ceff_victim > 1 * FF
        assert report.rtr_result is not None

    def test_pulse_features(self, report):
        assert report.pulse_height < -0.1        # opposing noise
        assert report.pulse_width > 20 * PS
        assert report.victim_slew > 50 * PS

    def test_waveforms_consistent(self, report):
        # noisy = noiseless + composite at every probe point.
        import numpy as np
        probe = np.linspace(0, report.noiseless_input.t_end, 50)
        np.testing.assert_allclose(
            report.noisy_input(probe),
            report.noiseless_input(probe) + report.composite(probe),
            atol=1e-9)

    def test_outer_iterations_bounded(self, report):
        assert 1 <= report.iterations <= 2

    def test_delay_noise_positive(self, report):
        assert report.extra_delay_input > 10 * PS
        assert report.extra_delay_output > 10 * PS

    def test_rtr_noise_at_least_thevenin(self, report):
        """Rtr holding (weaker) can only increase the predicted noise
        relative to the traditional model."""
        assert report.extra_delay_output >= \
            report.extra_delay_output_thevenin - 1 * PS

    def test_shift_entries_per_aggressor(self, report, two_aggressor_net):
        assert set(report.aggressor_shifts) == \
            {a.name for a in two_aggressor_net.aggressors}


class TestAlignmentMethods:
    def test_invalid_method(self, analyzer, two_aggressor_net):
        with pytest.raises(ValueError):
            analyzer.analyze(two_aggressor_net, alignment="vibes")

    def test_no_aggressors_rejected(self, analyzer):
        net = canonical_net(n_aggressors=1)
        net.aggressors.clear()
        with pytest.raises(ValueError, match="no aggressors"):
            analyzer.analyze(net)

    def test_outer_iterations_validated(self, analyzer,
                                        two_aggressor_net):
        """Regression: outer_iterations=0 used to crash deep in the flow
        with a NameError on the unbound loop variable ``pulses``."""
        with pytest.raises(ValueError, match="outer_iterations"):
            analyzer.analyze(two_aggressor_net, outer_iterations=0)
        with pytest.raises(ValueError, match="outer_iterations"):
            analyzer.analyze(two_aggressor_net, outer_iterations=-1)

    def test_exhaustive_at_least_table(self, analyzer, two_aggressor_net,
                                       report):
        best = analyzer.analyze(two_aggressor_net, alignment="exhaustive",
                                exhaustive_steps=25)
        assert best.extra_delay_output >= \
            report.extra_delay_output - 5 * PS

    def test_table_close_to_exhaustive(self, analyzer, two_aggressor_net,
                                       report):
        """Paper Figure 14: predicted alignment lands within ~10% of the
        exhaustive worst case at the receiver output."""
        best = analyzer.analyze(two_aggressor_net, alignment="exhaustive",
                                exhaustive_steps=25)
        assert report.extra_delay_output >= \
            0.85 * best.extra_delay_output


class TestAgainstGolden:
    def test_rtr_closer_than_thevenin(self, analyzer, two_aggressor_net):
        """Figure 13's headline: at the same alignment, the Rtr flow's
        extra delay is closer to golden than the Thevenin flow's, and
        both underestimate."""
        rep = analyzer.analyze(two_aggressor_net, alignment="table")
        gold = golden_extra_delays(
            two_aggressor_net,
            max(4 * NS, rep.noiseless_input.t_end),
            aggressor_shifts=rep.aggressor_shifts)
        err_rtr = abs(rep.extra_delay_input - gold.extra_input)
        err_th = abs(rep.extra_delay_input_thevenin - gold.extra_input)
        assert err_rtr < err_th
        assert rep.extra_delay_input < gold.extra_input + 2 * PS


class TestTableCache:
    def test_table_reused(self, analyzer, two_aggressor_net):
        t1 = analyzer.alignment_table_for(two_aggressor_net.receiver.gate,
                                          True)
        t2 = analyzer.alignment_table_for(two_aggressor_net.receiver.gate,
                                          True)
        assert t1 is t2

    def test_register_table(self, two_aggressor_net):
        import numpy as np
        from repro.core.precharacterize import AlignmentTable
        analyzer = DelayNoiseAnalyzer()
        table = AlignmentTable(
            gate_name="INV_X2", vdd=VDD, victim_rising=True,
            c_load=2 * FF, slews=(0.1 * NS, 0.5 * NS),
            widths=(0.1 * NS, 0.4 * NS), heights=(0.3, 0.8),
            va=np.full((2, 2, 2), 1.2))
        analyzer.register_table(table)
        fetched = analyzer.alignment_table_for(
            two_aggressor_net.receiver.gate, True)
        assert fetched is table

    def test_alignment_tables_accessor(self):
        import numpy as np
        from repro.core.precharacterize import AlignmentTable
        analyzer = DelayNoiseAnalyzer()
        assert analyzer.alignment_tables() == []
        table = AlignmentTable(
            gate_name="INV_X2", vdd=VDD, victim_rising=True,
            c_load=2 * FF, slews=(0.1 * NS, 0.5 * NS),
            widths=(0.1 * NS, 0.4 * NS), heights=(0.3, 0.8),
            va=np.full((2, 2, 2), 1.2))
        analyzer.register_table(table)
        assert analyzer.alignment_tables() == [table]

    def test_table_cache_counters(self):
        import numpy as np
        from repro.core.precharacterize import AlignmentTable
        from repro.gates.library import inverter
        analyzer = DelayNoiseAnalyzer()
        table = AlignmentTable(
            gate_name="INV_X2", vdd=VDD, victim_rising=True,
            c_load=2 * FF, slews=(0.1 * NS, 0.5 * NS),
            widths=(0.1 * NS, 0.4 * NS), heights=(0.3, 0.8),
            va=np.full((2, 2, 2), 1.2))
        analyzer.register_table(table)
        assert (analyzer.table_hits, analyzer.table_misses) == (0, 0)
        analyzer.alignment_table_for(inverter(2.0), True)
        assert (analyzer.table_hits, analyzer.table_misses) == (1, 0)


class TestCsmEngineOption:
    def test_analyze_with_csm_rtr(self, analyzer, two_aggressor_net):
        fast = analyzer.analyze(two_aggressor_net, alignment="table",
                                rtr_driver_engine="csm")
        ref = analyzer.analyze(two_aggressor_net, alignment="table")
        assert fast.rtr == pytest.approx(ref.rtr, rel=0.1)
        assert fast.extra_delay_output == pytest.approx(
            ref.extra_delay_output, rel=0.05)
