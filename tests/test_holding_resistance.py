"""Tests for repro.core.holding_resistance (paper Section 2)."""

import pytest

from repro.core.holding_resistance import compute_rtr
from repro.core.superposition import VICTIM
from repro.units import NS
from repro.waveform.pulses import pulse_peak


def mid_transition_shift(engine):
    """Shift placing the aggressor pulse peak at the victim's receiver
    50% crossing — the canonical delay-noise alignment."""
    vic = engine.victim_transition_absolute().at_receiver
    t50 = vic.crossing_time(0.9, rising=True)
    t_peak, _ = pulse_peak(engine.aggressor_noise("agg0").at_receiver)
    return {a.name: t50 - t_peak for a in engine.net.aggressors}


class TestComputeRtr:
    @pytest.fixture(scope="class")
    def result(self, single_engine):
        return compute_rtr(single_engine, mid_transition_shift(single_engine))

    def test_rtr_exceeds_rth(self, result):
        """Mid-transition the victim driver holds worse than its
        transition-average Thevenin resistance suggests."""
        assert result.rtr > result.rth

    def test_converges_quickly(self, result):
        # Paper: "a single or at most two iterations are necessary".
        assert result.converged
        assert result.iterations <= 3

    def test_noise_waveforms_consistent(self, result):
        """V'n (non-linear driver response) and Vn (linear with Rtr)
        agree in polarity and match in area by construction."""
        _, h_nl = pulse_peak(result.noise_nonlinear)
        _, h_lin = pulse_peak(result.noise_linear)
        assert h_nl < 0 and h_lin < 0

    def test_area_match(self, result, single_engine):
        """Step 5: area of linear noise with Rtr ~ area of V'n."""
        area_nl = result.noise_nonlinear.integral()
        area_lin = result.noise_linear.integral()
        assert area_lin == pytest.approx(area_nl, rel=0.15)

    def test_rtr_in_sane_range(self, result):
        assert 100.0 < result.rtr < 1e5
        assert 1.0 < result.ratio < 3.0


class TestModes:
    def test_ceff_mode_runs(self, single_engine):
        res = compute_rtr(single_engine,
                          mid_transition_shift(single_engine),
                          driver_load="ceff")
        assert res.driver_load == "ceff"
        assert res.rtr > 0

    def test_pi_corrects_more_than_ceff(self, single_engine):
        """The π-load variant (see DESIGN.md) corrects further toward the
        golden noise than the strict lumped-Ceff variant."""
        shifts = mid_transition_shift(single_engine)
        r_pi = compute_rtr(single_engine, shifts, driver_load="pi").rtr
        r_ceff = compute_rtr(single_engine, shifts, driver_load="ceff").rtr
        assert r_pi > r_ceff

    def test_invalid_mode(self, single_engine):
        with pytest.raises(ValueError):
            compute_rtr(single_engine, {}, driver_load="banana")


class TestAlignmentDependence:
    def test_late_noise_restores_rth(self, single_engine):
        """Noise arriving long after the transition sees the settled
        driver, whose holding is close to (or better than) Rth."""
        late = {a.name: 2.0 * NS for a in single_engine.net.aggressors}
        res_late = compute_rtr(single_engine, late)
        shifts = mid_transition_shift(single_engine)
        res_mid = compute_rtr(single_engine, shifts)
        assert res_late.ratio < res_mid.ratio

    def test_rtr_against_golden_noise(self, single_engine,
                                      single_aggressor_net):
        """The Rtr linear noise should land much closer to the golden
        (full transistor) noise than the Rth linear noise — the heart of
        Figures 2/5/13."""
        from repro.core.golden import golden_simulation
        shifts = mid_transition_shift(single_engine)
        res = compute_rtr(single_engine, shifts)

        t_stop = single_engine.t_stop + 1 * NS
        clean = golden_simulation(single_aggressor_net, t_stop,
                                  aggressors_switching=False)
        noisy = golden_simulation(single_aggressor_net, t_stop,
                                  aggressor_shifts=shifts)
        golden = noisy.at_root - clean.at_root
        _, h_gold = pulse_peak(golden)

        lin_rth = single_engine.total_noise(shifts,
                                            victim_r=res.rth).at_root
        lin_rtr = single_engine.total_noise(shifts,
                                            victim_r=res.rtr).at_root
        _, h_rth = pulse_peak(lin_rth)
        _, h_rtr = pulse_peak(lin_rtr)

        err_rth = abs(h_rth - h_gold)
        err_rtr = abs(h_rtr - h_gold)
        assert err_rtr < err_rth
        # And both underestimate (noise magnitudes below golden).
        assert abs(h_rth) < abs(h_gold)


class TestHolderRtrExtension:
    """The paper's noted extension: transient holding resistance for the
    shorted *aggressor* drivers while the victim switches."""

    def test_aggressor_rtr_computes(self, single_engine):
        from repro.core.holding_resistance import compute_holder_rtr
        res = compute_holder_rtr(single_engine, "agg0")
        assert res.rtr > 0
        assert res.iterations <= 3

    def test_same_driver_rejected(self, single_engine):
        from repro.core.holding_resistance import compute_holder_rtr
        with pytest.raises(ValueError, match="must differ"):
            compute_holder_rtr(single_engine, "agg0", switching="agg0")

    def test_invalid_mode(self, single_engine):
        from repro.core.holding_resistance import compute_holder_rtr
        with pytest.raises(ValueError):
            compute_holder_rtr(single_engine, "agg0", driver_load="x")

    def test_victim_transition_with_aggressor_rtr(self, single_engine):
        """Using the aggressor Rtr in the Figure-1(c) sim perturbs the
        victim waveform only slightly (the paper calls the effect
        indirect), but the machinery must compose."""
        from repro.core.holding_resistance import compute_holder_rtr
        res = compute_holder_rtr(single_engine, "agg0")
        base = single_engine.victim_transition()
        adjusted = single_engine.victim_transition(
            aggressor_r={"agg0": res.rtr})
        t_base = base.at_receiver.crossing_time(0.9, rising=True)
        t_adj = adjusted.at_receiver.crossing_time(0.9, rising=True)
        assert abs(t_adj - t_base) < 20e-12


class TestNoiseOnHolder:
    def test_victim_injects_on_aggressor(self, single_engine):
        """A rising victim injects a positive pulse on the (quiet-low...
        actually falling) aggressor net."""
        noise = single_engine.noise_on_holder("agg0", "victim")
        from repro.waveform.pulses import pulse_peak
        _, h = pulse_peak(noise)
        assert h > 0.05  # rising victim couples upward

    def test_bad_keys(self, single_engine):
        with pytest.raises(KeyError):
            single_engine.noise_on_holder("ghost", "victim")
        with pytest.raises(KeyError):
            single_engine.noise_on_holder("agg0", "agg0")


class TestCsmDriverEngine:
    """Rtr with the current-source-model fast path."""

    def test_csm_matches_transistor_rtr(self, single_engine):
        shifts = mid_transition_shift(single_engine)
        ref = compute_rtr(single_engine, shifts)
        fast = compute_rtr(single_engine, shifts, driver_engine="csm")
        assert fast.rtr == pytest.approx(ref.rtr, rel=0.1)
        assert fast.rtr > fast.rth

    def test_invalid_engine(self, single_engine):
        with pytest.raises(ValueError, match="driver_engine"):
            compute_rtr(single_engine, {}, driver_engine="spice")

    def test_csm_cached_on_engine(self, single_engine):
        shifts = mid_transition_shift(single_engine)
        compute_rtr(single_engine, shifts, driver_engine="csm")
        cache = getattr(single_engine, "_csm_cache", {})
        assert single_engine.net.victim_driver.gate.name in cache
