"""Tests for repro.circuit.moments (Elmore / D2M wire delay metrics)."""

import math

import pytest

from repro.circuit import Circuit, GROUND
from repro.circuit.moments import (
    d2m_delay,
    elmore_delay,
    transfer_voltage_moments,
)
from repro.circuit.topology import rc_line
from repro.sim import simulate_linear
from repro.units import FF, KOHM, NS, PS
from repro.waveform import step


def single_rc(r=1 * KOHM, c=50 * FF):
    net = Circuit("rc")
    net.add_resistor("r", "in", "out", r)
    net.add_capacitor("c", "out", GROUND, c)
    return net


def line_net(segments=12, r=2 * KOHM, c=120 * FF):
    net = Circuit("line")
    rc_line(net, "w_", "in", "out", segments, r, c)
    return net


class TestMoments:
    def test_m0_is_unity(self):
        m = transfer_voltage_moments(single_rc(), "in", "out")
        assert m[0] == pytest.approx(1.0, rel=1e-9)

    def test_single_pole_moments(self):
        # H(s) = 1/(1+sRC): m1 = -RC, m2 = (RC)^2.
        rc = 1 * KOHM * 50 * FF
        m = transfer_voltage_moments(single_rc(), "in", "out")
        assert m[1] == pytest.approx(-rc, rel=1e-9)
        assert m[2] == pytest.approx(rc * rc, rel=1e-9)

    def test_disconnected_sink_rejected(self):
        net = single_rc()
        net.add_capacitor("cx", "float", GROUND, 1 * FF)
        net.add_capacitor("cc", "out", "float", 1 * FF, coupling=True)
        with pytest.raises(ValueError, match="DC-connected|singular at DC"):
            elmore_delay(net, "in", "float")


class TestElmore:
    def test_single_pole_exact(self):
        assert elmore_delay(single_rc(), "in", "out") == \
            pytest.approx(1 * KOHM * 50 * FF, rel=1e-9)

    def test_distributed_line_half_rc(self):
        # Distributed line Elmore to the far end: R*C/2 (+ discretization).
        rc = 2 * KOHM * 120 * FF
        d = elmore_delay(line_net(segments=24), "in", "out")
        assert d == pytest.approx(rc / 2, rel=0.05)

    def test_upper_bounds_simulated_t50(self):
        """Elmore is an upper bound on the 50% step delay of RC trees."""
        net = line_net()
        elmore = elmore_delay(net, "in", "out")
        trial = net.copy()
        trial.add_vsource("vs", "in", GROUND, step(0.0, 0.0, 1.0))
        t50 = simulate_linear(trial, 6 * elmore,
                              elmore / 400).voltage("out").crossing_time(0.5)
        assert t50 <= elmore


class TestD2M:
    def test_single_pole_matches_analytic(self):
        # One pole: t50 = RC ln2 exactly; D2M gives ln2*m1^2/sqrt(m2)
        # = ln2 * RC — exact here.
        rc = 1 * KOHM * 50 * FF
        assert d2m_delay(single_rc(), "in", "out") == \
            pytest.approx(rc * math.log(2), rel=1e-9)

    def test_tighter_than_elmore_on_line(self):
        """D2M lands much closer to the simulated 50% delay."""
        net = line_net()
        elmore = elmore_delay(net, "in", "out")
        d2m = d2m_delay(net, "in", "out")
        trial = net.copy()
        trial.add_vsource("vs", "in", GROUND, step(0.0, 0.0, 1.0))
        t50 = simulate_linear(trial, 6 * elmore,
                              elmore / 400).voltage("out").crossing_time(0.5)
        assert abs(d2m - t50) < abs(elmore - t50)
        assert d2m == pytest.approx(t50, rel=0.15)

    def test_near_driver_node(self):
        """Near-driver sinks are where Elmore is worst; D2M stays sane."""
        net = line_net(segments=12)
        mid = "w_n2"  # a quarter down the line
        elmore = elmore_delay(net, "in", mid)
        d2m = d2m_delay(net, "in", mid)
        trial = net.copy()
        trial.add_vsource("vs", "in", GROUND, step(0.0, 0.0, 1.0))
        t50 = simulate_linear(trial, 20 * elmore,
                              elmore / 200).voltage(mid).crossing_time(0.5)
        assert abs(d2m - t50) < abs(elmore - t50)


class TestStaIntegration:
    def test_metrics_feed_timing_graph(self):
        """The metric plugs straight into the STA substrate."""
        from repro.sta import TimingGraph, Window
        net = line_net()
        d = d2m_delay(net, "in", "out")
        g = TimingGraph()
        g.add_input("launch", Window(0.0, 0.05 * NS))
        g.add_edge("launch", "recv", 0.8 * d, d)
        assert g.latest_arrival("recv") == pytest.approx(0.05 * NS + d)
