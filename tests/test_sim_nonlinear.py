"""Tests for repro.sim.nonlinear (inverter-level validation)."""

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND
from repro.devices import default_technology, nmos_params, pmos_params
from repro.sim import ConvergenceError, simulate_linear, simulate_nonlinear
from repro.units import FF, KOHM, NS, PS, UM
from repro.waveform import ramp, triangular_pulse

TECH = default_technology()
VDD = TECH.vdd


def inverter_circuit(input_wave, c_load=20 * FF, wn=1 * UM, wp=2.2 * UM):
    """Inverter driven by an ideal source, loaded by a capacitor."""
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", GROUND, VDD)
    c.add_vsource("vin", "in", GROUND, input_wave)
    c.add_mosfet("mn", nmos_params(TECH, wn), "out", "in", GROUND)
    c.add_mosfet("mp", pmos_params(TECH, wp), "out", "in", "vdd")
    c.add_capacitor("cl", "out", GROUND, c_load)
    return c


class TestDcOperatingPoint:
    def test_input_low_output_high(self):
        c = inverter_circuit(0.0)
        result = simulate_nonlinear(c, 0.1 * NS, 1 * PS)
        assert result.voltage("out")(0.0) == pytest.approx(VDD, abs=0.01)

    def test_input_high_output_low(self):
        c = inverter_circuit(VDD)
        result = simulate_nonlinear(c, 0.1 * NS, 1 * PS)
        assert result.voltage("out")(0.0) == pytest.approx(0.0, abs=0.01)

    def test_midpoint_input_intermediate_output(self):
        c = inverter_circuit(VDD / 2)
        result = simulate_nonlinear(c, 0.1 * NS, 1 * PS)
        v = result.voltage("out")(0.0)
        assert 0.1 * VDD < v < 0.98 * VDD


class TestInverterTransient:
    def test_falling_output_on_rising_input(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        result = simulate_nonlinear(inverter_circuit(wave), 2 * NS, 1 * PS)
        out = result.voltage("out")
        assert out(0.0) == pytest.approx(VDD, abs=0.01)
        assert out.values[-1] == pytest.approx(0.0, abs=0.01)

    def test_delay_increases_with_load(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        delays = []
        for c_load in (10 * FF, 40 * FF, 160 * FF):
            result = simulate_nonlinear(inverter_circuit(wave, c_load),
                                        4 * NS, 1 * PS)
            delays.append(
                result.voltage("out").crossing_time(VDD / 2, rising=False))
        assert delays[0] < delays[1] < delays[2]

    def test_delay_decreases_with_size(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        small = simulate_nonlinear(
            inverter_circuit(wave, 40 * FF, wn=1 * UM, wp=2.2 * UM),
            4 * NS, 1 * PS)
        large = simulate_nonlinear(
            inverter_circuit(wave, 40 * FF, wn=4 * UM, wp=8.8 * UM),
            4 * NS, 1 * PS)
        t_small = small.voltage("out").crossing_time(VDD / 2, rising=False)
        t_large = large.voltage("out").crossing_time(VDD / 2, rising=False)
        assert t_large < t_small

    def test_rail_to_rail_swing(self):
        wave = ramp(0.2 * NS, 0.2 * NS, VDD, 0.0)
        result = simulate_nonlinear(inverter_circuit(wave), 3 * NS, 1 * PS)
        lo, hi = result.voltage("out").value_range()
        assert lo > -0.05
        assert hi < VDD + 0.05


class TestNoiseInjection:
    def test_holding_driver_resists_noise(self):
        """A static (non-switching) driver fights an injected pulse; the
        resulting disturbance is far smaller than on a floating node."""
        c = inverter_circuit(VDD, c_load=20 * FF)  # output held low
        # 0.5 mA pulse: below the holding NMOS saturation current, so the
        # driver's triode conductance bounds the bounce.
        pulse = triangular_pulse(0.5 * NS, 0.5e-3, 0.1 * NS)
        c.add_isource("inoise", "out", GROUND, pulse)
        result = simulate_nonlinear(c, 1.5 * NS, 1 * PS)
        v = result.voltage("out")
        peak = v.value_range()[1]
        assert 0.05 < peak < 0.5 * VDD  # bounced but clamped by the driver
        assert abs(v.values[-1]) < 0.01  # recovers

    def test_noise_on_switching_driver(self):
        """Inject during a transition: output is perturbed then recovers
        to the rail — the scenario behind the Rtr model."""
        wave = ramp(0.2 * NS, 0.2 * NS, 0.0, VDD)
        clean_c = inverter_circuit(wave, 30 * FF)
        clean = simulate_nonlinear(clean_c, 3 * NS, 1 * PS).voltage("out")

        noisy_c = inverter_circuit(wave, 30 * FF)
        pulse = triangular_pulse(0.35 * NS, 1.5e-3, 0.1 * NS)
        noisy_c.add_isource("inoise", "out", GROUND, pulse)
        noisy = simulate_nonlinear(noisy_c, 3 * NS, 1 * PS).voltage("out")

        diff = noisy - clean
        assert diff.value_range()[1] > 0.02  # visible noise bump
        assert abs(diff.values[-1]) < 1e-3   # both settle to the same rail


class TestAgainstLinearSolver:
    def test_linear_circuit_matches_linear_solver(self):
        """With no devices, the non-linear path must agree with the
        trapezoidal linear solver (both converge to the true response)."""
        def build():
            c = Circuit("rc")
            c.add_vsource("vin", "in", GROUND,
                          ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
            c.add_resistor("r1", "in", "out", 1 * KOHM)
            c.add_capacitor("c1", "out", GROUND, 50 * FF)
            return c

        dt = 0.25 * PS
        lin = simulate_linear(build(), 1 * NS, dt).voltage("out")
        nl = simulate_nonlinear(build(), 1 * NS, dt).voltage("out")
        probe = np.linspace(0, 1 * NS, 40)
        np.testing.assert_allclose(nl(probe), lin(probe), atol=5e-3)


class TestChaining:
    def test_x0_chaining(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        c = inverter_circuit(wave)
        full = simulate_nonlinear(c, 2 * NS, 1 * PS)
        first = simulate_nonlinear(c, 1 * NS, 1 * PS)
        second = simulate_nonlinear(c, 2 * NS, 1 * PS, t_start=1 * NS,
                                    x0=first.states[:, -1])
        v_full = full.voltage("out")(1.5 * NS)
        v_chained = second.voltage("out")(1.5 * NS)
        assert v_chained == pytest.approx(v_full, abs=5e-3)

    def test_bad_x0(self):
        c = inverter_circuit(0.0)
        with pytest.raises(ValueError):
            simulate_nonlinear(c, 1 * NS, 1 * PS, x0=np.zeros(3))


class TestValidation:
    def test_degenerate_time_grid_rejected_eagerly(self):
        c = inverter_circuit(0.0)
        with pytest.raises(ValueError, match="degenerate time grid"):
            simulate_nonlinear(c, 0.0, 1 * PS)
        with pytest.raises(ValueError, match="t_stop"):
            simulate_nonlinear(c, 1 * NS, 1 * PS, t_start=1 * NS)
        with pytest.raises(ValueError, match="degenerate time grid"):
            simulate_nonlinear(c, 0.5 * NS, 1 * PS, t_start=1 * NS)

    def test_nonpositive_dt_rejected(self):
        c = inverter_circuit(0.0)
        with pytest.raises(ValueError, match="dt must be positive"):
            simulate_nonlinear(c, 1 * NS, 0.0)
        with pytest.raises(ValueError, match="dt must be positive"):
            simulate_nonlinear(c, 1 * NS, -1 * PS)


class TestNonConvergenceDiagnostics:
    def test_message_reports_applied_damped_step(self):
        """The diagnostic reports the update actually applied (after the
        ±0.5 V damping clamp), not the raw undamped Newton step."""
        from repro.sim.nonlinear import _newton_solve

        def residual(_x):
            # Constant residual: undamped step stays 1e9, applied 0.5 V.
            return np.array([1e9, 1.0])

        with pytest.raises(ConvergenceError) as excinfo:
            _newton_solve(np.eye(2), residual, [], np.zeros(2), "probe")
        message = str(excinfo.value)
        assert "last applied step 5.000e-01 V" in message
        assert "worst residual 1.000e+09" in message
