"""Sparse MNA backend and factorization-facade tests.

Covers the extracted-scale solve path end-to-end: triplet-stream
stamping parity between the dense and sparse ``build_mna`` backends, the
SuperLU backend behind :class:`repro.sim.factor.Factorization` (shape
contract, singular-matrix error parity with the dense backends), the
linear / non-linear / batched simulators forced through sparse systems
on hand-sized circuits via :func:`repro.circuit.mna.sparse_threshold`,
the ``large_tree`` net generator, and the regressions fixed alongside:
the MNA cache miss counter and the ``time_grid`` dt-vs-h drift in the
CSM driver integrator.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bench.netgen import NetGenerator
from repro.circuit import Circuit, GROUND
from repro.circuit.mna import (
    SPARSE_MIN_DIM,
    build_mna,
    sparse_threshold,
)
from repro.circuit.topology import couple_nodes, rc_line
from repro.devices import default_technology, nmos_params, pmos_params
from repro.gates.csm import CurrentSourceModel, simulate_csm_driver
from repro.obs import metrics
from repro.sim import (
    simulate_linear,
    simulate_nonlinear,
    simulate_nonlinear_batch,
)
from repro.sim.factor import (
    _INVERSE_MAX,
    Factorization,
    factorize,
    is_sparse_matrix,
)
from repro.sim.result import time_grid
from repro.units import FF, KOHM, NS, PS
from repro.waveform import ramp

TECH = default_technology()
VDD = TECH.vdd


def coupled_rc_circuit(segments=12):
    """Two coupled RC lines, victim driven by a ramp."""
    c = Circuit("pair")
    v = rc_line(c, "v_", "v_root", "v_rcv", segments, 1.2 * KOHM, 45 * FF)
    a = rc_line(c, "a_", "a_root", "a_far", segments, 0.8 * KOHM, 35 * FF)
    couple_nodes(c, "x_", v, a, 30 * FF)
    c.add_vsource("vs", "v_root", GROUND, ramp(0.1 * NS, 0.1 * NS, 0.0, 1.2))
    c.add_resistor("rh", "a_root", GROUND, 150.0)
    return c


def inverter_circuit(input_wave, c_load=20 * FF):
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", GROUND, VDD)
    c.add_vsource("vin", "in", GROUND, input_wave)
    c.add_mosfet("mn", nmos_params(TECH, 1e-6), "out", "in", GROUND)
    c.add_mosfet("mp", pmos_params(TECH, 2.2e-6), "out", "in", "vdd")
    c.add_capacitor("cl", "out", GROUND, c_load)
    return c


def spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return A @ A.T + n * np.eye(n)


class TestSparseStamping:
    def test_sparse_matches_dense_entry_for_entry(self):
        c = coupled_rc_circuit()
        dense = build_mna(c, sparse=False)
        sparse = build_mna(c, sparse=True)
        assert sparse.is_sparse and not dense.is_sparse
        assert np.array_equal(sparse.G.toarray(), dense.G)
        assert np.array_equal(sparse.C.toarray(), dense.C)
        assert sparse.node_index == dense.node_index
        assert sparse.vsource_index == dense.vsource_index

    def test_auto_threshold(self):
        c = coupled_rc_circuit()
        assert not build_mna(c).is_sparse  # tiny -> dense
        with sparse_threshold(1):
            assert build_mna(c).is_sparse
        assert not build_mna(c).is_sparse  # restored on exit

    def test_g_array_c_array(self):
        c = coupled_rc_circuit()
        dense = build_mna(c, sparse=False)
        sparse = build_mna(c, sparse=True)
        assert isinstance(sparse.G_array(), np.ndarray)
        assert np.array_equal(sparse.G_array(), dense.G_array())
        assert np.array_equal(sparse.C_array(), dense.C_array())
        # Dense systems hand back their own arrays (no copy).
        assert dense.G_array() is dense.G

    def test_backends_cached_independently(self):
        c = coupled_rc_circuit()
        dense = build_mna(c, sparse=False)
        sparse = build_mna(c, sparse=True)
        assert build_mna(c, sparse=False) is dense
        assert build_mna(c, sparse=True) is sparse

    def test_rhs_and_incidence_unchanged_by_backend(self):
        c = coupled_rc_circuit()
        dense = build_mna(c, sparse=False)
        sparse = build_mna(c, sparse=True)
        times = time_grid(1 * NS, 10 * PS)
        assert np.array_equal(sparse.rhs_matrix(times),
                              dense.rhs_matrix(times))
        assert np.array_equal(sparse.input_incidence(),
                              dense.input_incidence())


class TestMnaCacheCounters:
    def test_every_build_counts_as_miss(self):
        """Regression: builds bypassing the cache store (or populating a
        fresh backend slot) must still increment the miss counter."""
        hit = metrics().counter("sim.mna_cache.hit")
        miss = metrics().counter("sim.mna_cache.miss")
        c = coupled_rc_circuit()
        h0, m0 = hit.value, miss.value
        build_mna(c, sparse=False)
        build_mna(c, sparse=True)  # same topology, other backend
        assert (miss.value - m0, hit.value - h0) == (2, 0)
        build_mna(c, sparse=False)
        build_mna(c, sparse=True)
        assert (miss.value - m0, hit.value - h0) == (2, 2)


class TestFactorizationBackends:
    @pytest.mark.parametrize("n", [8, _INVERSE_MAX + 8])
    def test_dense_vs_sparse_solutions_agree(self, n):
        A = spd_matrix(n)
        b = np.arange(n, dtype=float)
        B = np.linspace(0.0, 1.0, 3 * n).reshape(n, 3)
        dense = factorize(A)
        sparse = factorize(sp.csc_matrix(A))
        expected = np.linalg.solve(A, b)
        assert np.allclose(dense.solve(b), expected, atol=1e-10)
        assert np.allclose(sparse.solve(b), expected, atol=1e-10)
        assert np.allclose(sparse.solve(B), dense.solve(B), atol=1e-10)
        assert np.allclose(sparse.solve_rows(B.T), dense.solve_rows(B.T),
                           atol=1e-10)

    @pytest.mark.parametrize("make", [
        lambda A: A,                      # dense (inverse or LU by size)
        lambda A: sp.csc_matrix(A),       # SuperLU
        lambda A: sp.csr_matrix(A),       # conversion path
    ])
    def test_shape_contract(self, make):
        n = 10
        fact = factorize(make(spd_matrix(n)))
        assert fact.shape == (n, n)
        b = np.ones(n)
        B = np.ones((n, 4))
        assert fact.solve(b).shape == (n,)
        assert fact.solve(B).shape == (n, 4)
        assert fact.solve_rows(np.ones((5, n))).shape == (5, n)

    @pytest.mark.parametrize("make", [
        lambda A: A,
        lambda A: sp.csc_matrix(A),
    ])
    def test_solve_rows_rejects_1d(self, make):
        fact = factorize(make(spd_matrix(6)))
        with pytest.raises(ValueError, match="2-D"):
            fact.solve_rows(np.ones(6))

    @pytest.mark.parametrize("n", [8, _INVERSE_MAX + 8])
    def test_exactly_singular_raises_linalgerror_dense(self, n):
        A = spd_matrix(n)
        A[:, 0] = 0.0  # exactly singular: zero pivot on every backend
        with pytest.raises(np.linalg.LinAlgError):
            factorize(A)

    def test_exactly_singular_raises_linalgerror_sparse(self):
        A = spd_matrix(12)
        A[:, 0] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            factorize(sp.csc_matrix(A))
        with pytest.raises(np.linalg.LinAlgError):
            factorize(sp.csc_matrix(np.zeros((5, 5))))

    def test_near_singular_still_solves_on_both_backends(self):
        A = spd_matrix(12)
        A[0, :] *= 1e-13  # terrible scaling, but non-singular
        b = np.ones(12)
        xd = factorize(A).solve(b)
        xs = factorize(sp.csc_matrix(A)).solve(b)
        assert np.isfinite(xd).all() and np.isfinite(xs).all()
        # Both backends must agree with each other (and neither may
        # raise): near-singular is a warning regime, not an error.
        assert np.allclose(xd, xs, rtol=1e-4)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            factorize(np.ones((3, 4)))
        with pytest.raises(ValueError):
            factorize(sp.csc_matrix(np.ones((3, 4))))

    def test_is_sparse_matrix(self):
        assert is_sparse_matrix(sp.eye(3, format="csc"))
        assert not is_sparse_matrix(np.eye(3))
        assert not is_sparse_matrix([[1.0]])


class TestSparseSimulators:
    def test_simulate_linear_sparse_matches_dense(self):
        c = coupled_rc_circuit()
        dense = simulate_linear(build_mna(c, sparse=False), 1 * NS, 2 * PS)
        sparse = simulate_linear(build_mna(c, sparse=True), 1 * NS, 2 * PS)
        assert np.abs(dense.states - sparse.states).max() < 1e-9

    def test_simulate_linear_sparse_dc_fallback_floating_node(self):
        # A node reached only through a coupling cap floats at DC: the
        # sparse factorization fails and the dense least-squares fallback
        # must pick up, exactly as the dense path does.
        c = Circuit("float")
        c.add_vsource("vs", "a", GROUND, ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        c.add_resistor("r", "a", "b", 1 * KOHM)
        c.add_capacitor("cb", "b", GROUND, 10 * FF)
        c.add_capacitor("cc", "b", "c", 5 * FF)
        c.add_capacitor("cg", "c", GROUND, 5 * FF)
        dense = simulate_linear(build_mna(c, sparse=False), 1 * NS, 2 * PS)
        sparse = simulate_linear(build_mna(c, sparse=True), 1 * NS, 2 * PS)
        assert np.abs(dense.states - sparse.states).max() < 1e-9

    def test_simulate_nonlinear_through_sparse_mna(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        reference = simulate_nonlinear(inverter_circuit(wave), 1 * NS,
                                       1 * PS)
        with sparse_threshold(1):
            forced = simulate_nonlinear(inverter_circuit(wave), 1 * NS,
                                        1 * PS)
        assert np.abs(reference.states - forced.states).max() < 1e-9

    def test_simulate_batched_through_sparse_mna(self):
        waves = [ramp(0.1 * NS + k * 20 * PS, 0.1 * NS, 0.0, VDD)
                 for k in range(3)]
        circuit = inverter_circuit(waves[0])
        overrides = [{"vin": w} for w in waves]
        reference = simulate_nonlinear_batch(circuit, overrides,
                                             1 * NS, 1 * PS)
        with sparse_threshold(1):
            forced = simulate_nonlinear_batch(inverter_circuit(waves[0]),
                                              overrides, 1 * NS, 1 * PS)
        for a, b in zip(reference, forced):
            assert np.abs(a.states - b.states).max() < 1e-9


class TestLargeTree:
    def test_large_tree_shape(self):
        gen = NetGenerator(seed=3)
        net = gen.large_tree(nodes=200, n_aggressors=2)
        c = net.interconnect
        nodes = c.nodes()
        assert "v_root" in nodes and "v_rcv" in nodes
        assert len(nodes) >= 200
        assert len(net.aggressors) == 2
        # Coupling caps present (tagged by couple_nodes).
        assert any(getattr(cap, "coupling", False) for cap in c.capacitors)

    def test_large_tree_is_deterministic_per_seed(self):
        a = NetGenerator(seed=5).large_tree(nodes=100)
        b = NetGenerator(seed=5).large_tree(nodes=100)
        assert ([r.resistance for r in a.interconnect.resistors]
                == [r.resistance for r in b.interconnect.resistors])

    def test_large_tree_crosses_sparse_threshold(self):
        nodes = SPARSE_MIN_DIM + 64
        net = NetGenerator(seed=1).large_tree(nodes=nodes)
        mna = build_mna(net.interconnect)
        assert mna.dim >= SPARSE_MIN_DIM
        assert mna.is_sparse

    def test_large_tree_rejects_tiny(self):
        with pytest.raises(ValueError):
            NetGenerator(seed=0).large_tree(nodes=4)


class TestCsmGridStep:
    @staticmethod
    def _model():
        # Synthetic table: a linear pull-up I = g (vdd - v_out),
        # independent of v_in — analytically an RC with tau = c/g.
        vdd, g = 1.2, 2e-3
        vin = np.linspace(0.0, vdd, 3)
        vout = np.linspace(0.0, vdd, 9)
        current = np.tile(g * (vdd - vout), (vin.size, 1))
        return CurrentSourceModel(
            gate_name="SYNTH", vdd=vdd, vin_grid=vin, vout_grid=vout,
            current=current, c_out=5 * FF, c_in=1 * FF, inverting=True)

    def test_non_divisible_span_matches_exact_grid(self):
        """Regression: the backward-Euler update must be keyed on the
        actual grid step, not the requested dt.  Calling with a dt the
        span does not divide must agree exactly with calling at the
        snapped step (same grid, same arithmetic)."""
        model = self._model()
        wave = ramp(0.1 * NS, 0.2 * NS, 0.0, model.vdd)
        t_stop, dt = 1 * NS, 0.03 * NS  # round(33.33) = 33 steps
        times = time_grid(t_stop, dt)
        h = times[1] - times[0]
        assert h != dt  # the premise of the regression
        drifted = simulate_csm_driver(model, wave, 20 * FF, t_stop, dt,
                                      v_out0=0.0)
        exact = simulate_csm_driver(model, wave, 20 * FF, t_stop, h,
                                    v_out0=0.0)
        assert np.array_equal(drifted.values, exact.values)

    def test_matches_analytic_rc_settling(self):
        # With the fix, a coarse non-divisible grid still lands on the
        # right DC target (backward Euler is A-stable; the end value is
        # grid-step independent).
        model = self._model()
        flat = ramp(0.0, 1 * PS, 0.0, 0.0)
        out = simulate_csm_driver(model, flat, 20 * FF, 1.05 * NS,
                                  0.04 * NS, v_out0=0.0)
        assert out.values[-1] == pytest.approx(model.vdd, abs=1e-3)
