"""Tests for repro.devices (technology + MOSFET model)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    Mosfet,
    MosfetParams,
    default_technology,
    nmos_params,
    pmos_params,
)
from repro.units import UM

TECH = default_technology()


def make_nmos(width=1 * UM):
    return Mosfet("mn", nmos_params(TECH, width), "d", "g", "s")


def make_pmos(width=2 * UM):
    return Mosfet("mp", pmos_params(TECH, width), "d", "g", "vdd")


class TestTechnology:
    def test_defaults_sane(self):
        assert 0 < TECH.vt_n < TECH.vdd
        assert 0 < TECH.vt_p < TECH.vdd
        assert TECH.k_n > TECH.k_p  # electrons faster than holes

    def test_caps_scale_with_width(self):
        assert TECH.gate_cap(2 * UM) == pytest.approx(2 * TECH.gate_cap(UM))
        assert TECH.diff_cap(2 * UM) == pytest.approx(2 * TECH.diff_cap(UM))

    def test_default_is_singleton(self):
        assert default_technology() is default_technology()


class TestParams:
    def test_beta(self):
        p = nmos_params(TECH, 1 * UM)
        assert p.beta == pytest.approx(TECH.k_n * 1 * UM / TECH.l_min)

    def test_invalid_polarity(self):
        with pytest.raises(ValueError):
            MosfetParams("x", 0.4, 1e-4, 0.1, 1e-6, 1e-7)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MosfetParams("n", 0.4, 1e-4, 0.1, -1e-6, 1e-7)


class TestNmosRegions:
    def test_cutoff_tiny_current(self):
        m = make_nmos()
        i, *_ = m.evaluate(vg=0.0, vd=TECH.vdd, vs=0.0)
        # Only gmin shunt + smoothing residue.
        assert abs(i) < 1e-5

    def test_saturation_current_positive(self):
        m = make_nmos()
        i, *_ = m.evaluate(vg=TECH.vdd, vd=TECH.vdd, vs=0.0)
        assert i > 1e-4  # hundreds of uA for a 1um device

    def test_square_law_in_saturation(self):
        m = make_nmos()
        vgs1, vgs2 = 1.0, 1.4
        i1, *_ = m.evaluate(vg=vgs1, vd=TECH.vdd, vs=0.0)
        i2, *_ = m.evaluate(vg=vgs2, vd=TECH.vdd, vs=0.0)
        expected = ((vgs2 - TECH.vt_n) / (vgs1 - TECH.vt_n)) ** 2
        # Channel-length modulation perturbs the ratio slightly.
        assert i2 / i1 == pytest.approx(expected, rel=0.05)

    def test_triode_resistive(self):
        m = make_nmos()
        i1, *_ = m.evaluate(vg=TECH.vdd, vd=0.05, vs=0.0)
        i2, *_ = m.evaluate(vg=TECH.vdd, vd=0.10, vs=0.0)
        assert i2 == pytest.approx(2 * i1, rel=0.05)

    def test_symmetry_vds_negative(self):
        m = make_nmos()
        i_fwd, *_ = m.evaluate(vg=1.8, vd=0.3, vs=0.0)
        i_rev, *_ = m.evaluate(vg=1.8, vd=0.0, vs=0.3)
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_current_scales_with_width(self):
        i1, *_ = make_nmos(1 * UM).evaluate(1.8, 1.8, 0.0)
        i2, *_ = make_nmos(2 * UM).evaluate(1.8, 1.8, 0.0)
        # gmin does not scale; subtract its contribution.
        assert i2 == pytest.approx(2 * i1, rel=1e-3)


class TestPmos:
    def test_on_current_sign(self):
        m = make_pmos()
        # Inverter pulling output (drain) up: vg=0, vs=vdd, vd=0.
        i, *_ = m.evaluate(vg=0.0, vd=0.0, vs=TECH.vdd)
        assert i < -1e-4  # current flows out of drain node into the channel

    def test_off_when_gate_high(self):
        m = make_pmos()
        i, *_ = m.evaluate(vg=TECH.vdd, vd=0.0, vs=TECH.vdd)
        assert abs(i) < 1e-5

    def test_weaker_than_nmos_at_same_width(self):
        i_n, *_ = make_nmos(1 * UM).evaluate(1.8, 1.8, 0.0)
        i_p, *_ = Mosfet("mp", pmos_params(TECH, 1 * UM), "d", "g",
                         "vdd").evaluate(0.0, 0.0, 1.8)
        assert abs(i_n) > abs(i_p)


class TestDerivatives:
    """Analytic derivatives must match finite differences everywhere —
    the Newton solver depends on it."""

    @staticmethod
    def fd_check(device, vg, vd, vs, eps=1e-6):
        i0, dg, dd, dsrc = device.evaluate(vg, vd, vs)
        dg_fd = (device.evaluate(vg + eps, vd, vs)[0] - i0) / eps
        dd_fd = (device.evaluate(vg, vd + eps, vs)[0] - i0) / eps
        ds_fd = (device.evaluate(vg, vd, vs + eps)[0] - i0) / eps
        assert dg == pytest.approx(dg_fd, rel=1e-3, abs=1e-9)
        assert dd == pytest.approx(dd_fd, rel=1e-3, abs=1e-9)
        assert dsrc == pytest.approx(ds_fd, rel=1e-3, abs=1e-9)

    @given(st.floats(0.0, 1.8), st.floats(0.0, 1.8), st.floats(0.0, 1.8))
    @settings(max_examples=150, deadline=None)
    def test_nmos_derivatives(self, vg, vd, vs):
        self.fd_check(make_nmos(), vg, vd, vs)

    @given(st.floats(0.0, 1.8), st.floats(0.0, 1.8), st.floats(0.0, 1.8))
    @settings(max_examples=150, deadline=None)
    def test_pmos_derivatives(self, vg, vd, vs):
        self.fd_check(make_pmos(), vg, vd, vs)

    @given(st.floats(0.0, 1.8), st.floats(0.0, 1.8))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_vgs(self, vgs_lo, vds):
        """Id is non-decreasing in Vgs at fixed Vds >= 0 (NMOS)."""
        m = make_nmos()
        i_lo, *_ = m.evaluate(vgs_lo, vds, 0.0)
        i_hi, *_ = m.evaluate(vgs_lo + 0.1, vds, 0.0)
        assert i_hi >= i_lo - 1e-12

    @given(st.floats(0.0, 1.8), st.floats(0.0, 1.7))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_vds(self, vg, vds_lo):
        """Id is non-decreasing in Vds at fixed Vgs (NMOS, lambda > 0)."""
        m = make_nmos()
        i_lo, *_ = m.evaluate(vg, vds_lo, 0.0)
        i_hi, *_ = m.evaluate(vg, vds_lo + 0.1, 0.0)
        assert i_hi >= i_lo - 1e-12

    def test_continuity_at_cutoff(self):
        m = make_nmos()
        vt = TECH.vt_n
        i_below, *_ = m.evaluate(vt - 1e-4, 1.0, 0.0)
        i_above, *_ = m.evaluate(vt + 1e-4, 1.0, 0.0)
        assert abs(i_above - i_below) < 1e-5

    def test_continuity_at_vds_zero(self):
        m = make_nmos()
        i_neg, *_ = m.evaluate(1.8, -1e-6, 0.0)
        i_pos, *_ = m.evaluate(1.8, +1e-6, 0.0)
        assert abs(i_pos - i_neg) < 1e-6
        assert i_pos > 0 > i_neg


class TestRepr:
    def test_repr_mentions_polarity_and_width(self):
        text = repr(make_nmos())
        assert "nmos" in text
        assert "um" in text.lower()


class TestBatchEvaluation:
    """evaluate_batch / evaluate_one against the Mosfet.evaluate reference."""

    def _devices(self):
        return [make_nmos(), make_pmos(), make_nmos(0.5 * UM),
                make_pmos(4 * UM), make_nmos(2 * UM)]

    def test_evaluate_batch_matches_scalar(self):
        import numpy as np

        from repro.devices import batch_params, evaluate_batch

        devices = self._devices()
        params = batch_params(devices)
        rng = np.random.default_rng(7)
        for _ in range(50):
            # Uniform draws across (and beyond) the rails exercise all
            # regions including drain/source swap (vd < vs).
            vg, vd, vs = rng.uniform(-0.5, TECH.vdd + 0.5,
                                     (3, len(devices)))
            i, dg, dd, ds = evaluate_batch(params, vg, vd, vs)
            for j, m in enumerate(devices):
                ref = m.evaluate(vg[j], vd[j], vs[j])
                assert i[j] == pytest.approx(ref[0], rel=1e-12, abs=1e-18)
                assert dg[j] == pytest.approx(ref[1], rel=1e-12, abs=1e-18)
                assert dd[j] == pytest.approx(ref[2], rel=1e-12, abs=1e-18)
                assert ds[j] == pytest.approx(ref[3], rel=1e-12, abs=1e-18)

    def test_evaluate_one_bit_identical_to_method(self):
        import numpy as np

        from repro.devices import batch_params, evaluate_one

        devices = self._devices()
        p = batch_params(devices)
        rng = np.random.default_rng(11)
        for _ in range(50):
            vg, vd, vs = rng.uniform(-0.5, TECH.vdd + 0.5,
                                     (3, len(devices)))
            for j, m in enumerate(devices):
                got = evaluate_one(
                    float(p.sign[j]), float(p.beta[j]), float(p.vt[j]),
                    float(p.lam[j]), float(p.gmin[j]),
                    float(vg[j]), float(vd[j]), float(vs[j]))
                ref = m.evaluate(vg[j], vd[j], vs[j])
                assert got == tuple(ref)  # bit-identical floats

    def test_derivatives_sum_to_zero(self):
        """Terminal current depends on voltage *differences*, so the
        three derivatives must cancel — batch path included."""
        import numpy as np

        from repro.devices import batch_params, evaluate_batch

        params = batch_params(self._devices())
        rng = np.random.default_rng(3)
        vg, vd, vs = rng.uniform(0.0, TECH.vdd, (3, 5))
        _, dg, dd, ds = evaluate_batch(params, vg, vd, vs)
        np.testing.assert_allclose(dg + dd + ds, 0.0, atol=1e-12)
