"""Property-based tests on MNA stamping and the linear solver.

Random RC networks are generated with hypothesis and checked against
structural invariants: symmetry and positive-semidefiniteness of the
stamped matrices, passivity of the transient response, and linearity
(superposition) of the solver.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, GROUND, build_mna
from repro.sim import simulate_linear
from repro.units import FF, KOHM, NS, PS
from repro.waveform import ramp


@st.composite
def random_rc_circuit(draw):
    """A connected random RC ladder/tree with a grounded anchor."""
    n_nodes = draw(st.integers(2, 8))
    nodes = [f"n{i}" for i in range(n_nodes)]
    circuit = Circuit("rand")
    # Spanning structure: each node i > 0 connects to a previous node.
    for i in range(1, n_nodes):
        j = draw(st.integers(0, i - 1))
        r = draw(st.floats(0.1, 10.0)) * KOHM
        circuit.add_resistor(f"r{i}", nodes[j], nodes[i], r)
    circuit.add_resistor("r_gnd", nodes[0], GROUND,
                         draw(st.floats(0.1, 5.0)) * KOHM)
    # Random capacitors.
    n_caps = draw(st.integers(1, 6))
    for k in range(n_caps):
        a = draw(st.integers(0, n_nodes - 1))
        to_ground = draw(st.booleans())
        b = GROUND if to_ground else nodes[draw(st.integers(0,
                                                            n_nodes - 1))]
        if b == nodes[a]:
            b = GROUND
        circuit.add_capacitor(f"c{k}", nodes[a], b,
                              draw(st.floats(1.0, 100.0)) * FF)
    return circuit


class TestStampInvariants:
    @given(random_rc_circuit())
    @settings(max_examples=60, deadline=None)
    def test_matrices_symmetric_psd(self, circuit):
        mna = build_mna(circuit)
        for M in (mna.G, mna.C):
            np.testing.assert_allclose(M, M.T, atol=1e-15)
            eig = np.linalg.eigvalsh(M)
            assert eig.min() >= -1e-12

    @given(random_rc_circuit())
    @settings(max_examples=60, deadline=None)
    def test_row_sums_bounded(self, circuit):
        """Each G row sums to the node's conductance to ground (>= 0):
        off-diagonals cancel against the diagonal for floating pairs."""
        mna = build_mna(circuit)
        row_sums = mna.G.sum(axis=1)
        assert (row_sums >= -1e-15).all()


class TestSolverProperties:
    @given(random_rc_circuit(), st.floats(0.1, 1.5), st.floats(0.1, 1.5))
    @settings(max_examples=25, deadline=None)
    def test_superposition(self, circuit, a1, a2):
        """Response to a1*u1 + a2*u2 equals the weighted sum of the
        individual responses (driving the anchor node)."""
        u1 = ramp(0.1 * NS, 0.2 * NS, 0.0, 1.0)
        u2 = ramp(0.3 * NS, 0.1 * NS, 0.0, -0.5)
        node = circuit.nodes()[-1]

        def run(stimulus):
            trial = circuit.copy()
            trial.add_isource("i_in", "n0", GROUND, stimulus)
            return simulate_linear(trial, 1 * NS, 2 * PS).voltage(node)

        combined = run(u1 * a1 + u2 * a2)
        separate = run(u1) * a1 + run(u2) * a2
        probe = np.linspace(0, 1 * NS, 40)
        np.testing.assert_allclose(combined(probe), separate(probe),
                                   atol=1e-9)

    @given(random_rc_circuit())
    @settings(max_examples=25, deadline=None)
    def test_passivity_settles(self, circuit):
        """With a step source, every node settles within the source
        range (no energy creation) and reaches DC."""
        trial = circuit.copy()
        trial.add_vsource("v_in", "n0", GROUND,
                          ramp(0.05 * NS, 0.1 * NS, 0.0, 1.0))
        result = simulate_linear(trial, 100 * NS, 50 * PS)
        for node in trial.nodes():
            wave = result.voltage(node)
            lo, hi = wave.value_range()
            # Margin covers trapezoidal ringing on stiff sub-step time
            # constants (the method is A-stable but not L-stable); the
            # physical response of a passive RC stays within [0, 1].
            # Fuzzing has produced passive networks ringing past a 10%
            # band (worst observed ~1.1004), so the bound only claims
            # "bounded, no blow-up" — the strict settle check below is
            # what pins the DC answer.
            assert lo >= -0.25
            assert hi <= 1.25
            assert wave.values[-1] == pytest.approx(1.0, abs=0.01)
