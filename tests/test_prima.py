"""Tests for repro.mor (PRIMA reduction)."""

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND, build_mna
from repro.circuit.topology import couple_nodes, rc_line
from repro.mor import ReducedModel, prima_reduce, transfer_moments
from repro.sim import simulate_linear, time_grid
from repro.units import FF, KOHM, NS, PS
from repro.waveform import triangular_pulse


def current_driven_line(n_segments=12):
    """RC line driven by a current source — symmetric PSD G and C."""
    circuit = Circuit("line")
    rc_line(circuit, "w_", "in", "out", n_segments, 2 * KOHM, 150 * FF)
    circuit.add_resistor("rterm", "in", GROUND, 500.0)  # makes G nonsingular
    circuit.add_isource("iin", "in", GROUND, 0.0)
    return circuit


class TestPrimaBasics:
    def test_basis_orthonormal(self):
        mna = build_mna(current_driven_line())
        parts = prima_reduce(mna.G, mna.C, mna.input_incidence(), order=6)
        V = parts["V"]
        np.testing.assert_allclose(V.T @ V, np.eye(V.shape[1]), atol=1e-10)

    def test_reduced_dimensions(self):
        mna = build_mna(current_driven_line())
        parts = prima_reduce(mna.G, mna.C, mna.input_incidence(), order=5)
        assert parts["Gr"].shape == (5, 5)
        assert parts["Br"].shape == (5, 1)

    def test_order_capped_at_dimension(self):
        mna = build_mna(current_driven_line(n_segments=2))
        parts = prima_reduce(mna.G, mna.C, mna.input_incidence(), order=50)
        assert parts["Gr"].shape[0] <= mna.dim

    def test_invalid_order(self):
        mna = build_mna(current_driven_line())
        with pytest.raises(ValueError):
            prima_reduce(mna.G, mna.C, mna.input_incidence(), order=0)

    def test_mismatched_b(self):
        mna = build_mna(current_driven_line())
        with pytest.raises(ValueError):
            prima_reduce(mna.G, mna.C, np.zeros((3, 1)), order=2)


class TestMomentMatching:
    def test_moments_match_floor_q_over_p(self):
        circuit = current_driven_line()
        mna = build_mna(circuit)
        B = mna.input_incidence()
        L = mna.output_incidence(["out"])
        q = 6
        full = transfer_moments(mna.G, mna.C, B, L, q)
        model = ReducedModel.from_mna(mna, ["out"], q)
        red = model.moments(q)
        # Single input: q matched moments expected.
        for k in range(q):
            np.testing.assert_allclose(
                red[k], full[k], rtol=1e-6, atol=1e-30,
                err_msg=f"moment {k} mismatch")

    def test_zeroth_moment_is_dc_gain(self):
        circuit = current_driven_line()
        mna = build_mna(circuit)
        B = mna.input_incidence()
        L = mna.output_incidence(["out"])
        m0 = transfer_moments(mna.G, mna.C, B, L, 1)[0]
        # DC: current through rterm only; v_out = v_in = I * 500.
        assert m0[0, 0] == pytest.approx(500.0, rel=1e-9)


class TestPassivity:
    def test_congruence_preserves_definiteness(self):
        """For RC with current inputs, G and C are sym. PSD; the reduced
        matrices must stay sym. PSD — the heart of PRIMA's passivity."""
        circuit = current_driven_line()
        mna = build_mna(circuit)
        parts = prima_reduce(mna.G, mna.C, mna.input_incidence(), order=6)
        for M in (parts["Gr"], parts["Cr"]):
            np.testing.assert_allclose(M, M.T, atol=1e-12)
            eig = np.linalg.eigvalsh(M)
            assert eig.min() >= -1e-12

    def test_reduced_poles_stable(self):
        circuit = current_driven_line()
        mna = build_mna(circuit)
        parts = prima_reduce(mna.G, mna.C, mna.input_incidence(), order=6)
        # Generalized eigenvalues of (Gr, -Cr) are the poles s: Gr v = -s Cr v.
        import scipy.linalg as sla
        poles = sla.eigvals(parts["Gr"], -parts["Cr"])
        finite = poles[np.isfinite(poles)]
        assert (finite.real <= 1e-6).all()


class TestTransientAccuracy:
    def test_reduced_matches_full_transient(self):
        """Order-8 reduction of a 24-node coupled net reproduces the
        far-end noise waveform of the full simulation."""
        circuit = Circuit("coupled")
        na = rc_line(circuit, "v_", "vin", "vout", 10, 1.5 * KOHM, 80 * FF)
        nb = rc_line(circuit, "a_", "ain", "aout", 10, 1.5 * KOHM, 80 * FF)
        couple_nodes(circuit, "x_", na, nb, 60 * FF)
        circuit.add_resistor("rv", "vin", GROUND, 800.0)   # victim holder
        circuit.add_resistor("ra_far", "aout", GROUND, 10 * KOHM)
        pulse = triangular_pulse(0.4 * NS, 1.2e-3, 0.15 * NS)
        circuit.add_isource("iagg", "ain", GROUND, pulse)

        full = simulate_linear(circuit, 2 * NS, 1 * PS)
        mna = full.mna

        model = ReducedModel.from_mna(mna, ["vout"], order=8)
        times = full.times
        inputs = np.atleast_2d(pulse(times))
        reduced_out = model.simulate(times, inputs)["vout"]

        full_out = full.voltage("vout")
        peak_full = np.abs(full_out.values).max()
        err = np.abs(reduced_out.values - full_out.values).max()
        assert peak_full > 1e-3  # the test is non-trivial
        assert err < 0.02 * peak_full

    def test_input_shape_validation(self):
        circuit = current_driven_line()
        mna = build_mna(circuit)
        model = ReducedModel.from_mna(mna, ["out"], 4)
        times = time_grid(1 * NS, 10 * PS)
        with pytest.raises(ValueError):
            model.simulate(times, np.zeros((2, times.size)))

    def test_speedup_structure(self):
        """Reduced model is much smaller than the original."""
        circuit = current_driven_line(n_segments=60)
        mna = build_mna(circuit)
        model = ReducedModel.from_mna(mna, ["out"], 8)
        assert model.order <= 8 < mna.dim
