"""Tests for repro.core.hold (aiding noise / min-delay analysis)."""

import pytest

from repro.bench.netgen import canonical_net
from repro.core.hold import hold_speedup
from repro.units import PS


class TestHoldSpeedup:
    @pytest.fixture(scope="class")
    def report(self, model_cache):
        return hold_speedup(canonical_net(n_aggressors=1),
                            cache=model_cache)

    def test_aiding_pulse_polarity(self, report):
        # Rising victim, rising aggressor: positive pulse.
        assert report.pulse_height > 0.1

    def test_speedup_negative(self, report):
        assert report.speedup_input < -10 * PS
        assert report.speedup_output < -10 * PS

    def test_noisy_input_leads_clean(self, report):
        t_clean = report.noiseless_input.crossing_time(0.9, rising=True,
                                                       which="first")
        t_noisy = report.noisy_input.crossing_time(0.9, rising=True,
                                                   which="first")
        assert t_noisy < t_clean

    def test_speedup_bounded_by_setup_delta(self, report, analyzer,
                                            model_cache):
        """Aiding and opposing worst cases are the same circuit seen
        from both sides: comparable magnitudes, opposite signs."""
        setup = analyzer.analyze(canonical_net(n_aggressors=1),
                                 alignment="table")
        assert setup.extra_delay_input > 0
        ratio = abs(report.speedup_input) / setup.extra_delay_input
        assert 0.2 < ratio < 3.0

    def test_requires_aggressors(self, model_cache):
        net = canonical_net(n_aggressors=1)
        net.aggressors.clear()
        with pytest.raises(ValueError, match="no aggressors"):
            hold_speedup(net, cache=model_cache)

    def test_original_net_untouched(self, model_cache):
        net = canonical_net(n_aggressors=1)
        hold_speedup(net, cache=model_cache)
        # The direction override happened on a copy.
        assert not net.aggressors[0].driver.output_rising
