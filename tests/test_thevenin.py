"""Tests for repro.gates.thevenin (model fitting + table)."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND
from repro.devices import default_technology
from repro.gates import TheveninTable, characterize_thevenin, inverter
from repro.gates.thevenin import TheveninModel, ramp_rc_crossing
from repro.sim import simulate_linear, simulate_nonlinear
from repro.units import FF, NS, PS
from repro.waveform import ramp

TECH = default_technology()
VDD = TECH.vdd


class TestRampRcCrossing:
    def test_no_rc_limit(self):
        # tau -> 0: crossing of fraction f at f*dt.
        assert ramp_rc_crossing(0.5, 1e-9, 1e-15) == \
            pytest.approx(0.5e-9, rel=1e-3)

    def test_rc_dominated(self):
        # dt -> 0: pure exponential, t50 = tau*ln(2).
        assert ramp_rc_crossing(0.5, 1e-15, 1e-9) == \
            pytest.approx(math.log(2) * 1e-9, rel=1e-3)

    def test_monotone_in_fraction(self):
        ts = [ramp_rc_crossing(f, 1e-9, 0.3e-9) for f in (0.1, 0.5, 0.9)]
        assert ts[0] < ts[1] < ts[2]

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            ramp_rc_crossing(1.5, 1e-9, 1e-9)

    def test_matches_linear_simulation(self):
        """Closed-form crossing agrees with the trapezoidal simulator."""
        dt_ramp, tau = 0.4 * NS, 0.15 * NS
        r, c = 1e3, tau / 1e3
        circuit = Circuit("rrc")
        circuit.add_vsource("vs", "s", GROUND, ramp(0.0, dt_ramp, 0.0, 1.0))
        circuit.add_resistor("r", "s", "o", r)
        circuit.add_capacitor("c", "o", GROUND, c)
        result = simulate_linear(circuit, 3 * NS, 0.5 * PS)
        for f in (0.1, 0.5, 0.9):
            t_sim = result.voltage("o").crossing_time(f)
            assert ramp_rc_crossing(f, dt_ramp, tau) == \
                pytest.approx(t_sim, abs=2 * PS)


class TestTheveninModel:
    def model(self):
        return TheveninModel(t0=0.1e-9, dt=0.3e-9, rth=800.0,
                             v_start=0.0, v_end=VDD)

    def test_properties(self):
        m = self.model()
        assert m.rising
        assert m.delta_v == pytest.approx(VDD)

    def test_falling(self):
        m = TheveninModel(0.0, 1e-9, 500.0, VDD, 0.0)
        assert not m.rising
        assert m.delta_v == pytest.approx(-VDD)

    def test_source_waveforms(self):
        m = self.model()
        assert m.source_delta()(1.0) == pytest.approx(VDD)
        assert m.source_absolute()(0.0) == pytest.approx(0.0)

    def test_shifted(self):
        m = self.model().shifted(1e-9)
        assert m.t0 == pytest.approx(1.1e-9)
        assert m.rth == 800.0

    def test_install_switching(self):
        c = Circuit("t")
        c.add_capacitor("cl", "net", GROUND, 10 * FF)
        self.model().install_switching(c, "d_", "net")
        assert len(c.vsources) == 1
        assert c.resistors[0].resistance == 800.0

    def test_install_holding_with_override(self):
        c = Circuit("t")
        c.add_capacitor("cl", "net", GROUND, 10 * FF)
        self.model().install_holding(c, "d_", "net", resistance=1463.0)
        assert c.resistors[0].resistance == 1463.0


class TestCharacterization:
    def test_fit_reproduces_crossings(self):
        """The fitted linear model must match the non-linear gate's
        10/50/90 crossings at the characterization load."""
        inv = inverter(scale=2)
        c_load = 60 * FF
        slew = 0.3 * NS
        model = characterize_thevenin(inv, slew, output_rising=False,
                                      c_load=c_load)
        assert model.rth > 0
        assert model.dt > 0

        # Non-linear reference.
        c_ext = c_load - inv.output_capacitance()
        v_in = ramp(0.0, slew, 0.0, VDD)
        nl = simulate_nonlinear(inv.driven_circuit(v_in, c_load_external=c_ext),
                                4 * NS, 0.5 * PS).voltage("out")
        # Linear model driving the same lumped load.
        lin_circuit = Circuit("lin")
        model.install_switching(lin_circuit, "d_", "out")
        lin_circuit.add_capacitor("cl", "out", GROUND, c_load)
        lin = simulate_linear(lin_circuit, 4 * NS, 0.5 * PS).voltage("out")
        # Compare crossings (linear model is in delta domain; output falls
        # from 0 to -VDD, so compare VDD + delta against the absolute).
        for f in (0.1, 0.5, 0.9):
            level = VDD * (1 - f)
            t_nl = nl.crossing_time(level, rising=False)
            t_lin = (lin + VDD).crossing_time(level, rising=False)
            assert t_lin == pytest.approx(t_nl, abs=3 * PS), f"at {f}"

    def test_rth_decreases_with_gate_size(self):
        m1 = characterize_thevenin(inverter(1), 0.2 * NS, False, 50 * FF)
        m4 = characterize_thevenin(inverter(4), 0.2 * NS, False, 50 * FF)
        assert m4.rth < m1.rth

    def test_rising_direction(self):
        m = characterize_thevenin(inverter(1), 0.2 * NS, True, 40 * FF)
        assert m.rising
        assert m.v_end == pytest.approx(VDD)


class TestTheveninTable:
    @pytest.fixture(scope="class")
    def table(self):
        return TheveninTable.build(inverter(scale=2), 0.25 * NS,
                                   output_rising=False, points=4)

    def test_models_cover_grid(self, table):
        assert len(table.models) == 4

    def test_lookup_interpolates(self, table):
        mid = math.sqrt(table.loads[0] * table.loads[1])
        m = table.lookup(mid)
        assert table.models[0].dt <= m.dt <= table.models[1].dt or \
            table.models[1].dt <= m.dt <= table.models[0].dt

    def test_lookup_at_grid_point_exact(self, table):
        m = table.lookup(float(table.loads[2]))
        assert m.dt == pytest.approx(table.models[2].dt, rel=1e-9)
        assert m.rth == pytest.approx(table.models[2].rth, rel=1e-9)

    def test_lookup_clamps_out_of_range(self, table):
        low = table.lookup(table.loads[0] / 100)
        # tau is clamped, so rth scales with 1/c_load.
        assert low.rth == pytest.approx(
            table.models[0].rth * 100, rel=1e-6)

    def test_dt_grows_with_load(self, table):
        # Heavier loads slow the driver: the fitted ramp+tau lengthen.
        tau = [m.rth * c for m, c in zip(table.models, table.loads)]
        assert tau[-1] > tau[0]
