"""Tests for repro.mor.awe (AWE pole/residue macromodels)."""

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND, build_mna
from repro.circuit.topology import rc_line
from repro.mor import PoleResidueModel, awe_from_mna, pade_poles
from repro.sim import simulate_linear, time_grid
from repro.units import FF, KOHM, NS, PS
from repro.waveform import ramp, step


def single_pole_mna(r=1 * KOHM, c=50 * FF):
    circuit = Circuit("rc")
    circuit.add_vsource("vin", "in", GROUND, 0.0)
    circuit.add_resistor("r", "in", "out", r)
    circuit.add_capacitor("c", "out", GROUND, c)
    return build_mna(circuit), r * c


def line_mna(segments=12):
    circuit = Circuit("line")
    circuit.add_vsource("vin", "in", GROUND, 0.0)
    rc_line(circuit, "w_", "in", "out", segments, 2 * KOHM, 120 * FF)
    return build_mna(circuit)


class TestPadePoles:
    def test_single_pole_exact(self):
        mna, tau = single_pole_mna()
        model = awe_from_mna(mna, "out", order=1)
        assert model.order == 1
        assert model.poles[0].real == pytest.approx(-1.0 / tau, rel=1e-9)
        assert model.dc_gain() == pytest.approx(1.0, rel=1e-9)

    def test_moment_match(self):
        mna = line_mna()
        model = awe_from_mna(mna, "out", order=3)
        from repro.mor import transfer_moments
        B = mna.input_incidence()[:, [0]]
        L = mna.output_incidence(["out"])
        exact = np.array([float(m[0, 0]) for m in
                          transfer_moments(mna.G, mna.C, B, L,
                                           2 * model.order)])
        fitted = model.moments(2 * model.order)
        np.testing.assert_allclose(fitted, exact, rtol=1e-5)

    def test_all_poles_stable(self):
        model = awe_from_mna(line_mna(), "out", order=4)
        assert (model.poles.real < 0).all()

    def test_order_validation(self):
        with pytest.raises(ValueError):
            pade_poles(np.array([1.0, -1.0]), 0)

    def test_insufficient_moments_degrade(self):
        # Only 2 moments available: a 3-pole request falls back to 1.
        poles, residues = pade_poles(np.array([1.0, -1e-10]), 3)
        assert poles.size == 1


class TestModel:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PoleResidueModel(np.array([-1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            PoleResidueModel(np.array([]), np.array([]))

    def test_dominant_time_constant(self):
        model = PoleResidueModel(np.array([-1e9, -1e11]),
                                 np.array([1e9, 1e10]))
        assert model.dominant_time_constant() == pytest.approx(1e-9)

    def test_response_grid_validation(self):
        model = PoleResidueModel(np.array([-1e9]), np.array([1e9]))
        with pytest.raises(ValueError):
            model.response(step(0, 0, 1), np.array([0.0]))


class TestResponseAccuracy:
    def test_single_pole_step_exact(self):
        mna, tau = single_pole_mna()
        model = awe_from_mna(mna, "out", order=1)
        times = time_grid(5 * tau, tau / 50)
        # The input must be resolved by the grid: a step strictly before
        # the first sample is seen as the constant 1 everywhere.
        out = model.response(step(-1 * PS, 0.0, 1.0), times)
        expected = 1.0 - np.exp(-times / tau)
        np.testing.assert_allclose(out.values[1:], expected[1:],
                                   atol=1e-9)

    def test_step_insensitive_to_grid(self):
        """The recursive convolution is exact per segment: a coarse grid
        agrees with a fine one at shared points."""
        mna, tau = single_pole_mna()
        model = awe_from_mna(mna, "out", order=1)
        u = ramp(0.0, 3 * tau, 0.0, 1.0)
        coarse = model.response(u, np.linspace(0, 6 * tau, 7))
        fine = model.response(u, np.linspace(0, 6 * tau, 601))
        for t in coarse.times[1:]:
            assert coarse(t) == pytest.approx(fine(t), abs=1e-9)

    def test_line_matches_simulator(self):
        """4-pole AWE of a 12-segment line tracks the transient within
        a couple percent of full simulation."""
        circuit = Circuit("line")
        wave = ramp(0.05 * NS, 0.2 * NS, 0.0, 1.0)
        circuit.add_vsource("vin", "in", GROUND, wave)
        rc_line(circuit, "w_", "in", "out", 12, 2 * KOHM, 120 * FF)
        full = simulate_linear(circuit, 3 * NS, 1 * PS)

        model = awe_from_mna(full.mna, "out", order=4)
        approx = model.response(wave, full.times)
        err = np.abs(approx.values - full.voltage("out").values).max()
        assert err < 0.03

    def test_dc_gain_of_divider(self):
        circuit = Circuit("div")
        circuit.add_vsource("vin", "in", GROUND, 0.0)
        circuit.add_resistor("r1", "in", "out", 1 * KOHM)
        circuit.add_resistor("r2", "out", GROUND, 3 * KOHM)
        circuit.add_capacitor("c", "out", GROUND, 10 * FF)
        model = awe_from_mna(build_mna(circuit), "out", order=1)
        assert model.dc_gain() == pytest.approx(0.75, rel=1e-9)
