"""Numerical-trust layer: residual audits, escalation, watchdog, audit.

Covers the trust-but-verify machinery end to end: the residual/condition
primitives in :mod:`repro.trust`, the bit-identity property (a clean run
is unchanged by verification — scalar, batched and linear paths), the
escalation ladder under injected solver corruption, the adaptive hang
deadline (including the first-net warm-up regression), the worker
init-timeout and RSS-budget paths, the checkpoint run-hash guard, and
the differential audit against the legacy oracle.
"""

import dataclasses
import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro import trust
from repro.bench.netgen import canonical_net
from repro.circuit import GROUND, Circuit
from repro.circuit.mna import build_mna
from repro.devices import default_technology, nmos_params, pmos_params
from repro.exec import analyze_nets
from repro.obs import metrics
from repro.obs.progress import (
    MIN_STRAGGLER_SAMPLES,
    WATCHDOG_CEILING_S,
    WATCHDOG_FLOOR_S,
    AdaptiveDeadline,
    Heartbeat,
    ProgressTracker,
)
from repro.resilience import (
    CheckpointWriter,
    FaultPlan,
    StaleCheckpoint,
    clear_faults,
    install_faults,
    load_checkpoint,
    load_checkpoint_header,
)
from repro.resilience.faults import FaultSpec
from repro.sim import (
    ConvergenceError,
    kernel_mode,
    simulate_nonlinear,
    simulate_nonlinear_batch,
)
from repro.sim.factor import factorize
from repro.sim.linear import simulate_linear
from repro.units import FF, KOHM, NS, PS, UM
from repro.waveform import ramp

TECH = default_technology()
VDD = TECH.vdd


@pytest.fixture(autouse=True)
def clean_trust_state():
    """No leaked faults, events or config changes between tests."""
    clear_faults()
    trust.drain_events()
    saved = trust.config()
    yield
    clear_faults()
    trust.drain_events()
    trust.configure(**dataclasses.asdict(saved))


def inverter_circuit(input_wave, c_load=20 * FF):
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", GROUND, VDD)
    c.add_vsource("vin", "in", GROUND, input_wave)
    c.add_mosfet("mn", nmos_params(TECH, 1 * UM), "out", "in", GROUND)
    c.add_mosfet("mp", pmos_params(TECH, 2.2 * UM), "out", "in", "vdd")
    c.add_capacitor("cl", "out", GROUND, c_load)
    return c


def rc_circuit(input_wave):
    c = Circuit("rc")
    c.add_vsource("vin", "in", GROUND, input_wave)
    c.add_resistor("r1", "in", "mid", 1 * KOHM)
    c.add_capacitor("c1", "mid", GROUND, 50 * FF)
    c.add_resistor("r2", "mid", "out", 2 * KOHM)
    c.add_capacitor("c2", "out", GROUND, 20 * FF)
    return c


def default_wave():
    return ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)


# ----------------------------------------------------------------------
# Residual and condition primitives
# ----------------------------------------------------------------------
class TestResidualMath:
    def test_zero_residual_is_zero(self):
        rel = trust.relative_residual(
            np.zeros(3), 1.0, np.ones(3), np.ones(3))
        assert rel == 0.0

    def test_scales_with_matrix_and_state_norms(self):
        r = np.array([1e-6, 0.0])
        x = np.array([1.0, 2.0])
        b = np.array([3.0, 0.0])
        rel = trust.relative_residual(r, 10.0, x, b, floor=1.0)
        # ||r|| / (||A|| * (||x|| + floor) + ||b||) with inf-norms.
        assert rel == pytest.approx(1e-6 / (10.0 * 3.0 + 3.0))

    def test_voltage_floor_prevents_zero_over_zero(self):
        rel = trust.relative_residual(
            np.array([1e-12]), 1.0, np.zeros(1), np.zeros(1))
        assert np.isfinite(rel) and rel > 0.0

    def test_nonfinite_residual_always_violates(self):
        assert trust.relative_residual(
            np.array([np.nan]), 1.0, np.ones(1), np.ones(1)) == np.inf
        assert trust.relative_residual(
            np.array([1.0]), 1.0, np.array([np.inf]),
            np.ones(1)) == np.inf

    def test_tolerance_grows_with_sqrt_dim(self):
        base = 1e-9
        assert trust.residual_tolerance(1, base) == base
        assert trust.residual_tolerance(100, base) == \
            pytest.approx(10.0 * base)

    def test_matrix_norm1_sparse_matches_dense(self):
        rng = np.random.default_rng(7)
        dense = rng.standard_normal((6, 6))
        assert trust.matrix_norm1(sp.csc_matrix(dense)) == \
            pytest.approx(trust.matrix_norm1(dense))


class TestConditionMonitoring:
    def test_ill_conditioned_factorization_counts(self):
        near_singular = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-14]])
        fact = factorize(near_singular)
        counter = metrics().counter("trust.condition_warnings")
        before = counter.value
        rcond = trust.observe_factorization(fact, "test")
        if rcond is None:
            pytest.skip("backend has no rcond estimate")
        assert rcond < trust.config().rcond_min
        assert counter.value == before + 1

    def test_well_conditioned_factorization_quiet(self):
        fact = factorize(np.eye(3))
        counter = metrics().counter("trust.condition_warnings")
        before = counter.value
        rcond = trust.observe_factorization(fact, "test")
        assert rcond is None or rcond > trust.config().rcond_min
        assert counter.value == before

    def test_disabled_layer_is_noop(self):
        fact = factorize(np.eye(2))
        with trust.trust_mode(False):
            assert trust.observe_factorization(fact) is None


# ----------------------------------------------------------------------
# Property: a clean run is bit-identical with verification on or off
# ----------------------------------------------------------------------
class TestCleanPathBitIdentity:
    def test_scalar_transient(self):
        circuit = inverter_circuit(default_wave())
        with kernel_mode("fast"):
            with trust.trust_mode(True):
                on = simulate_nonlinear(circuit, 1 * NS, 1 * PS)
            with trust.trust_mode(False):
                off = simulate_nonlinear(circuit, 1 * NS, 1 * PS)
        assert np.array_equal(on.states, off.states)
        assert not trust.drain_events()

    def test_batched_transient(self):
        waves = [ramp(0.2 * NS + i * 0.05 * NS, 0.1 * NS, 0.0, VDD)
                 for i in range(3)]
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        with kernel_mode("fast"):
            with trust.trust_mode(True):
                on = simulate_nonlinear_batch(circuit, stimuli,
                                              0.5 * NS, 1 * PS)
            with trust.trust_mode(False):
                off = simulate_nonlinear_batch(circuit, stimuli,
                                               0.5 * NS, 1 * PS)
        for a, b in zip(on, off):
            assert np.array_equal(a.states, b.states)
        assert not trust.drain_events()

    def test_linear_transient(self):
        circuit = rc_circuit(default_wave())
        mna = build_mna(circuit)
        with trust.trust_mode(True):
            on = simulate_linear(mna, 1 * NS, 1 * PS)
        with trust.trust_mode(False):
            off = simulate_linear(mna, 1 * NS, 1 * PS)
        assert np.array_equal(on.states, off.states)
        assert not trust.drain_events()

    def test_residual_checks_are_sampled(self):
        """The trusted run audits some solves but far from all."""
        circuit = inverter_circuit(default_wave())
        checks = metrics().counter("trust.residual_checks")
        before = checks.value
        with kernel_mode("fast"), trust.trust_mode(True):
            run = simulate_nonlinear(circuit, 1 * NS, 1 * PS)
        sampled = checks.value - before
        steps = run.states.shape[1] - 1
        assert 0 < sampled < steps


# ----------------------------------------------------------------------
# Escalation ladder under injected solver corruption
# ----------------------------------------------------------------------
class TestEscalation:
    @pytest.mark.parametrize("kind", ["nan", "perturb"])
    def test_injected_corruption_recovers_exactly(self, kind):
        circuit = inverter_circuit(default_wave())
        with kernel_mode("fast"), trust.trust_mode(True):
            clean = simulate_nonlinear(circuit, 0.5 * NS, 1 * PS).states
            trust.drain_events()
            install_faults(FaultPlan(specs=[FaultSpec(
                point="trust.verify", action=kind, times=1)]))
            try:
                faulted = simulate_nonlinear(circuit, 0.5 * NS,
                                             1 * PS).states
            finally:
                clear_faults()
        events = trust.drain_events()
        kinds = {e["kind"] for e in events}
        assert "violation" in kinds
        assert "escalated" in kinds
        assert np.isfinite(faulted).all()
        # The escalated hop re-solves the same system exactly.
        assert np.array_equal(faulted, clean)

    def test_analyzer_labels_trust_degradation(self, analyzer):
        """An escalation during analyze() flips the report quality and
        attaches a Degradation(stage="trust") provenance entry."""
        net = canonical_net(n_aggressors=1, name="trustnet")
        install_faults(FaultPlan(specs=[FaultSpec(
            point="trust.verify", action="nan", times=1)]))
        try:
            report = analyzer.analyze(net, alignment="table")
        finally:
            clear_faults()
        assert report.quality != "exact"
        stages = {d.stage for d in report.degradations}
        assert "trust" in stages
        hops = {d.fallback for d in report.degradations
                if d.stage == "trust"}
        assert hops and "none" not in hops

    def test_trust_violation_joins_recovery_ladders(self):
        assert issubclass(trust.TrustViolation, ConvergenceError)

    def test_batched_suspect_demoted_to_scalar(self):
        """Corrupting a batched block row flags the candidate and the
        scalar fallback re-solves it within the equivalence gate."""
        waves = [ramp(0.2 * NS + i * 0.05 * NS, 0.1 * NS, 0.0, VDD)
                 for i in range(3)]
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        with kernel_mode("fast"), trust.trust_mode(True):
            clean = simulate_nonlinear_batch(circuit, stimuli,
                                             0.5 * NS, 1 * PS)
            trust.drain_events()
            violations = metrics().counter("trust.batched.violations")
            before = violations.value
            # Match the block-solve context only: the same fault point
            # also guards the scalar DC solve that precedes the block
            # loop, which must not consume the single shot.
            install_faults(FaultPlan(specs=[FaultSpec(
                point="trust.verify", match="batch of", action="nan",
                times=1)]))
            try:
                faulted = simulate_nonlinear_batch(circuit, stimuli,
                                                   0.5 * NS, 1 * PS)
            finally:
                clear_faults()
        assert violations.value > before
        events = trust.drain_events()
        hops = {e["hop"] for e in events if e["kind"] == "escalated"}
        assert "scalar-resolve" in hops
        for a, b in zip(faulted, clean):
            assert np.isfinite(a.states).all()
            assert float(np.abs(a.states - b.states).max()) <= 1e-9


# ----------------------------------------------------------------------
# Adaptive hang deadline
# ----------------------------------------------------------------------
class TestAdaptiveDeadline:
    def make(self, durations, **kwargs):
        tracker = ProgressTracker(total=100)
        for i, seconds in enumerate(durations):
            tracker.record(Heartbeat(net=f"n{i}", seconds=seconds,
                                     rss_bytes=0))
        return AdaptiveDeadline(tracker, **kwargs)

    def test_first_net_without_static_timeout_never_kills(self):
        """Regression: before any net completes the rolling p95 is 0.0,
        and 4 x 0.0 would kill every first net instantly.  With no
        samples and no static timeout, hang detection must be off."""
        assert self.make([]).seconds() is None

    def test_first_net_falls_back_to_static_timeout(self):
        deadline = self.make([], static_timeout=30.0)
        assert deadline.seconds() == 30.0

    def test_below_sample_floor_stays_static(self):
        durations = [0.01] * (MIN_STRAGGLER_SAMPLES - 1)
        deadline = self.make(durations, static_timeout=30.0)
        assert deadline.seconds() == 30.0

    def test_adaptive_after_sample_floor(self):
        deadline = self.make([2.0] * MIN_STRAGGLER_SAMPLES)
        assert deadline.seconds() == pytest.approx(8.0)

    def test_floor_clamp_for_fast_populations(self):
        deadline = self.make([0.001] * MIN_STRAGGLER_SAMPLES)
        assert deadline.seconds() == WATCHDOG_FLOOR_S

    def test_ceiling_clamp_for_slow_populations(self):
        deadline = self.make([1000.0] * MIN_STRAGGLER_SAMPLES)
        assert deadline.seconds() == WATCHDOG_CEILING_S

    def test_static_timeout_is_an_upper_bound(self):
        deadline = self.make([2.0] * MIN_STRAGGLER_SAMPLES,
                             static_timeout=3.0)
        assert deadline.seconds() == 3.0

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError, match="factor"):
            self.make([], factor=0.0)


# ----------------------------------------------------------------------
# Checkpoint run-hash guard
# ----------------------------------------------------------------------
class TestCheckpointHeader:
    def test_header_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        CheckpointWriter(path, header={"run_hash": "abc123"})
        header = load_checkpoint_header(path)
        assert header["run_hash"] == "abc123"
        assert header["kind"] == "header"
        assert load_checkpoint(path) == {}

    def test_header_precedes_records(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        writer = CheckpointWriter(path, header={"run_hash": "abc123"})
        writer.append("net0", "report", {"x": 1})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        assert json.loads(lines[1])["net"] == "net0"
        assert load_checkpoint(path).keys() == {"net0"}

    def test_resume_preserves_stored_header(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        CheckpointWriter(path, header={"run_hash": "old"}) \
            .append("net0", "report", {})
        resumed = CheckpointWriter(path, resume=True,
                                   header={"run_hash": "new"})
        assert load_checkpoint_header(path)["run_hash"] == "old"
        assert "net0" in resumed.names

    def test_headerless_checkpoint_reads_as_none(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        CheckpointWriter(path).append("net0", "report", {})
        assert load_checkpoint_header(path) is None


class TestStaleResume:
    @pytest.fixture()
    def nets(self):
        return [canonical_net(n_aggressors=1, name="sr0"),
                canonical_net(n_aggressors=1, coupling_ratio=0.7,
                              name="sr1")]

    def test_resume_same_config_passes_guard(self, analyzer, nets,
                                             tmp_path):
        path = tmp_path / "screen.ckpt.jsonl"
        analyze_nets(nets, jobs=1, analyzer=analyzer, checkpoint=path,
                     alignment="table")
        result = analyze_nets(nets, jobs=1, analyzer=analyzer,
                              checkpoint=path, resume=True,
                              alignment="table")
        assert result.stats.resumed == 2

    def test_config_change_raises_stale_checkpoint(self, analyzer,
                                                   nets, tmp_path):
        path = tmp_path / "screen.ckpt.jsonl"
        analyze_nets(nets, jobs=1, analyzer=analyzer, checkpoint=path,
                     alignment="table")
        with pytest.raises(StaleCheckpoint, match="different "
                                                  "configuration"):
            analyze_nets(nets, jobs=1, analyzer=analyzer,
                         checkpoint=path, resume=True,
                         alignment="table", use_rtr=False)

    def test_force_resume_overrides_guard(self, analyzer, nets,
                                          tmp_path):
        path = tmp_path / "screen.ckpt.jsonl"
        analyze_nets(nets, jobs=1, analyzer=analyzer, checkpoint=path,
                     alignment="table")
        result = analyze_nets(nets, jobs=1, analyzer=analyzer,
                              checkpoint=path, resume=True,
                              force_resume=True, alignment="table",
                              use_rtr=False)
        assert result.stats.resumed == 2

    def test_population_change_raises_stale_checkpoint(self, analyzer,
                                                       nets, tmp_path):
        path = tmp_path / "screen.ckpt.jsonl"
        analyze_nets(nets, jobs=1, analyzer=analyzer, checkpoint=path,
                     alignment="table")
        grown = nets + [canonical_net(n_aggressors=2, name="sr2")]
        with pytest.raises(StaleCheckpoint):
            analyze_nets(grown, jobs=1, analyzer=analyzer,
                         checkpoint=path, resume=True,
                         alignment="table")

    def test_headerless_checkpoint_resumes_unguarded(self, analyzer,
                                                     nets, tmp_path):
        path = tmp_path / "screen.ckpt.jsonl"
        analyze_nets(nets, jobs=1, analyzer=analyzer, checkpoint=path,
                     alignment="table")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        path.write_text("\n".join(lines[1:]) + "\n")
        result = analyze_nets(nets, jobs=1, analyzer=analyzer,
                              checkpoint=path, resume=True,
                              alignment="table", use_rtr=False)
        assert result.stats.resumed == 2


# ----------------------------------------------------------------------
# Differential audit against the legacy oracle
# ----------------------------------------------------------------------
class TestRunAudit:
    @pytest.fixture()
    def screened(self, analyzer):
        nets = [canonical_net(n_aggressors=1, name="aud0")]
        result = analyze_nets(nets, jobs=1, analyzer=analyzer,
                              alignment="table")
        reports = {r.net_name: r for r in result.reports}
        return nets, reports

    def test_clean_population_passes(self, analyzer, screened):
        nets, reports = screened
        audit = trust.run_audit(nets, reports, analyzer, rate=1.0,
                                analyze_kwargs={"alignment": "table"})
        assert audit["ok"]
        assert audit["eligible"] == 1
        assert audit["checked"] == 1
        assert audit["mismatches"] == []

    def test_fabricated_drift_fails_loudly(self, analyzer, screened):
        nets, reports = screened
        report = reports[nets[0].name]
        reports[nets[0].name] = dataclasses.replace(
            report,
            extra_delay_output=report.extra_delay_output + 1e-6)
        audit = trust.run_audit(nets, reports, analyzer, rate=1.0,
                                analyze_kwargs={"alignment": "table"})
        assert not audit["ok"]
        fields = {m["field"] for m in audit["mismatches"]}
        assert "extra_delay_output" in fields

    def test_zero_rate_samples_nothing(self, analyzer, screened):
        nets, reports = screened
        audit = trust.run_audit(nets, reports, analyzer, rate=0.0)
        assert audit["ok"]
        assert audit["sampled"] == []
        assert audit["checked"] == 0

    def test_degraded_reports_are_ineligible(self, analyzer, screened):
        nets, reports = screened
        reports[nets[0].name] = dataclasses.replace(
            reports[nets[0].name], quality="degraded")
        audit = trust.run_audit(nets, reports, analyzer, rate=1.0)
        assert audit["eligible"] == 0
        assert audit["checked"] == 0


# ----------------------------------------------------------------------
# Worker watchdog paths (jobs > 1)
# ----------------------------------------------------------------------
class TestWorkerGuards:
    def test_worker_init_timeout(self, analyzer):
        """A hung warm-start restore becomes structured per-net
        WorkerInitTimeout failures, not a silent stall."""
        nets = [canonical_net(n_aggressors=1, name="it0"),
                canonical_net(n_aggressors=1, coupling_ratio=0.7,
                              name="it1")]
        install_faults(FaultPlan(specs=[FaultSpec(
            point="exec.worker_init", action="sleep", seconds=30.0)]))
        try:
            result = analyze_nets(nets, jobs=2, analyzer=analyzer,
                                  init_timeout=0.5, retries=0,
                                  alignment="table")
        finally:
            clear_faults()
        assert result.stats.failures == 2
        assert {f.error_type for f in result.failures} == \
            {"WorkerInitTimeout"}

    def test_rss_budget_flags_but_keeps_results(self, analyzer):
        """A worker over the RSS budget is recycled; a net that
        nevertheless succeeded keeps its report."""
        nets = [canonical_net(n_aggressors=1, name="rb0"),
                canonical_net(n_aggressors=1, coupling_ratio=0.7,
                              name="rb1")]
        result = analyze_nets(nets, jobs=2, analyzer=analyzer,
                              rss_budget_bytes=1, alignment="table")
        assert result.stats.rss_flagged >= 1
        assert result.stats.failures == 0
        assert all(r is not None for r in result.reports)
        assert result.stats.sparse_retries == 0


# ----------------------------------------------------------------------
# Bench trust phase
# ----------------------------------------------------------------------
class TestTrustBenchPhase:
    def test_short_run_skips_budget_gate(self):
        """A few-ms population cannot resolve a 5% overhead ratio; the
        phase flags itself unmeasurable and passes the gate vacuously
        instead of failing on scheduler noise (regression: --quick
        bench runs tripped the budget gate)."""
        from repro.bench.perf import (
            TRUST_MIN_MEASURABLE_S,
            run_trust_phase,
        )
        circuit = inverter_circuit(default_wave())
        block = run_trust_phase([circuit], t_stop=0.05 * NS, dt=1 * PS)
        assert block["bit_identical"]
        assert block["max_state_delta"] == 0.0
        assert block["measurable"] == (
            block["untrusted_s"] >= TRUST_MIN_MEASURABLE_S)
        if not block["measurable"]:
            assert block["within_budget"]
