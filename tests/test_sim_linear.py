"""Tests for repro.sim.linear against analytic RC responses."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND, build_mna
from repro.circuit.topology import rc_line
from repro.sim import simulate_linear, time_grid
from repro.units import FF, KOHM, NS, PS
from repro.waveform import Waveform, ramp, step, triangular_pulse


def rc_charging_circuit(r=1 * KOHM, c=100 * FF):
    circuit = Circuit("rc")
    circuit.add_vsource("vin", "in", GROUND, step(0.1 * NS, 0.0, 1.0))
    circuit.add_resistor("r1", "in", "out", r)
    circuit.add_capacitor("c1", "out", GROUND, c)
    return circuit


class TestTimeGrid:
    def test_includes_endpoints(self):
        g = time_grid(1 * NS, 10 * PS)
        assert g[0] == 0.0
        assert g[-1] == pytest.approx(1 * NS)

    def test_validation(self):
        with pytest.raises(ValueError):
            time_grid(0.0, 1 * PS)
        with pytest.raises(ValueError):
            time_grid(1 * NS, -1 * PS)


class TestRcStep:
    def test_exponential_charging(self):
        r, c = 1 * KOHM, 100 * FF
        tau = r * c
        result = simulate_linear(rc_charging_circuit(r, c), 2 * NS, 0.5 * PS)
        out = result.voltage("out")
        for multiple in (0.5, 1.0, 2.0, 3.0):
            t = 0.1 * NS + multiple * tau
            expected = 1.0 - math.exp(-multiple)
            assert out(t) == pytest.approx(expected, abs=2e-3)

    def test_initial_dc_state(self):
        # Source is 0 before the step: output starts at 0.
        result = simulate_linear(rc_charging_circuit(), 1 * NS, 1 * PS)
        assert result.voltage("out")(0.0) == pytest.approx(0.0, abs=1e-9)

    def test_final_value(self):
        result = simulate_linear(rc_charging_circuit(), 3 * NS, 1 * PS)
        assert result.voltage("out").values[-1] == pytest.approx(1.0,
                                                                 rel=1e-4)

    def test_branch_current(self):
        result = simulate_linear(rc_charging_circuit(), 2 * NS, 1 * PS)
        i = result.branch_current("vin")
        # 10 ps (= tau/10) after the step the source still sinks nearly
        # -1V/1k = -1mA (current flows out of the + terminal, MNA measures
        # into it): exp(-0.1) ~ 0.905 mA.
        assert i(0.11 * NS) == pytest.approx(-0.905e-3, rel=0.05)
        assert abs(i.values[-1]) < 1e-6


class TestElmoreLadder:
    def test_distributed_line_delay(self):
        """50% step delay of a distributed RC line ~ 0.38 * R * C
        (Sakurai's closed form for the open-ended distributed line)."""
        circuit = Circuit("line")
        circuit.add_vsource("vin", "drv", GROUND, step(0.0, 0.0, 1.0))
        rc_line(circuit, "w_", "drv", "rcv", 20, 2 * KOHM, 200 * FF)
        rc = 2 * KOHM * 200 * FF
        result = simulate_linear(circuit, 3 * rc, rc / 1000)
        t50 = result.voltage("rcv").crossing_time(0.5)
        assert t50 == pytest.approx(0.38 * rc, rel=0.05)


class TestSuperposition:
    def test_two_sources_superpose(self):
        """Linear system: response to both sources = sum of individual."""
        def build(v1_on, v2_on):
            circuit = Circuit("sp")
            w1 = ramp(0.1 * NS, 0.2 * NS, 0.0, 1.0) if v1_on else 0.0
            w2 = triangular_pulse(0.5 * NS, 0.8, 0.1 * NS) if v2_on else 0.0
            circuit.add_vsource("v1", "a", GROUND, w1)
            circuit.add_vsource("v2", "b", GROUND, w2)
            circuit.add_resistor("r1", "a", "x", 1 * KOHM)
            circuit.add_resistor("r2", "b", "y", 2 * KOHM)
            circuit.add_capacitor("cc", "x", "y", 20 * FF, coupling=True)
            circuit.add_capacitor("c1", "x", GROUND, 50 * FF)
            circuit.add_capacitor("c2", "y", GROUND, 30 * FF)
            return simulate_linear(circuit, 2 * NS, 1 * PS).voltage("x")

        both = build(True, True)
        only1 = build(True, False)
        only2 = build(False, True)
        probe = np.linspace(0, 2 * NS, 50)
        np.testing.assert_allclose(
            both(probe), only1(probe) + only2(probe), atol=1e-9)


class TestCurrentInjection:
    def test_current_source_into_rc(self):
        """I into R||C: final voltage = I*R."""
        circuit = Circuit("irc")
        circuit.add_isource("inoise", "n", GROUND, 1e-3)
        circuit.add_resistor("r", "n", GROUND, 1 * KOHM)
        circuit.add_capacitor("c", "n", GROUND, 100 * FF)
        result = simulate_linear(circuit, 2 * NS, 1 * PS)
        assert result.voltage("n").values[-1] == pytest.approx(1.0, rel=1e-3)

    def test_pulse_current_returns_to_zero(self):
        circuit = Circuit("irc")
        pulse = triangular_pulse(0.3 * NS, 1e-3, 0.1 * NS)
        circuit.add_isource("inoise", "n", GROUND, pulse)
        circuit.add_resistor("r", "n", GROUND, 1 * KOHM)
        circuit.add_capacitor("c", "n", GROUND, 50 * FF)
        result = simulate_linear(circuit, 3 * NS, 1 * PS)
        v = result.voltage("n")
        assert abs(v.values[-1]) < 1e-4
        assert v.value_range()[1] > 0.3  # pulse actually developed voltage


class TestMnaReuse:
    def test_prebuilt_mna_accepted(self):
        circuit = rc_charging_circuit()
        mna = build_mna(circuit)
        r1 = simulate_linear(mna, 1 * NS, 1 * PS)
        r2 = simulate_linear(circuit, 1 * NS, 1 * PS)
        np.testing.assert_allclose(r1.states, r2.states)

    def test_explicit_x0(self):
        circuit = rc_charging_circuit()
        mna = build_mna(circuit)
        x0 = np.zeros(mna.dim)
        result = simulate_linear(mna, 1 * NS, 1 * PS, x0=x0)
        assert result.states[:, 0] == pytest.approx(x0)

    def test_bad_x0_shape(self):
        circuit = rc_charging_circuit()
        with pytest.raises(ValueError):
            simulate_linear(circuit, 1 * NS, 1 * PS, x0=np.zeros(99))


class TestEnergyConservation:
    def test_rc_discharge_charge_balance(self):
        """Charge delivered by the source equals Q = C*V (within tol)."""
        r, c = 1 * KOHM, 100 * FF
        result = simulate_linear(rc_charging_circuit(r, c), 4 * NS, 0.5 * PS)
        i_src = result.branch_current("vin")
        delivered = -i_src.integral()  # current into + terminal is negative
        assert delivered == pytest.approx(c * 1.0, rel=1e-3)
