"""Tests for repro.gates.ceff (driving-point π + effective capacitance)."""

import pytest

from repro.circuit import Circuit, GROUND
from repro.circuit.topology import couple_nodes, rc_line
from repro.gates import (
    PiModel,
    TheveninTable,
    driving_point_pi,
    effective_capacitance,
    inverter,
)
from repro.gates.ceff import admittance_moments
from repro.devices import default_technology
from repro.units import FF, KOHM, NS, OHM

TECH = default_technology()
VDD = TECH.vdd


def lumped_net(c=50 * FF):
    net = Circuit("lumped")
    net.add_capacitor("c", "port", GROUND, c)
    # Tiny series R so the port node exists in a resistive path.
    net.add_resistor("r", "port", "far", 1 * OHM)
    net.add_capacitor("cf", "far", GROUND, 1 * FF)
    return net


def shielded_net(r=5 * KOHM, c_near=10 * FF, c_far=90 * FF):
    net = Circuit("shielded")
    net.add_capacitor("cn", "port", GROUND, c_near)
    net.add_resistor("r", "port", "far", r)
    net.add_capacitor("cf", "far", GROUND, c_far)
    return net


class TestAdmittanceMoments:
    def test_single_cap_first_moment(self):
        y = admittance_moments(lumped_net(50 * FF), "port", count=2)
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(51 * FF, rel=1e-6)

    def test_distributed_line_total_cap(self):
        net = Circuit("line")
        rc_line(net, "w_", "port", "end", 10, 2 * KOHM, 120 * FF)
        y = admittance_moments(net, "port", count=2)
        assert y[1] == pytest.approx(120 * FF, rel=1e-9)

    def test_coupling_caps_seen_through_held_aggressor(self):
        net = Circuit("coupled")
        rc_line(net, "v_", "port", "vend", 4, 1 * KOHM, 40 * FF)
        rc_line(net, "a_", "aroot", "aend", 4, 1 * KOHM, 40 * FF)
        va = [f"v_n{i}" for i in range(1, 4)]
        aa = [f"a_n{i}" for i in range(1, 4)]
        couple_nodes(net, "x_", va, aa, 30 * FF)
        net.add_resistor("rhold", "aroot", GROUND, 500.0)
        y = admittance_moments(net, "port", count=2)
        # Low-frequency: coupling caps appear at full value.
        assert y[1] == pytest.approx(70 * FF, rel=1e-6)


class TestDrivingPointPi:
    def test_recovers_exact_pi(self):
        pi = driving_point_pi(shielded_net(), "port")
        assert pi.c_near == pytest.approx(10 * FF, rel=1e-6)
        assert pi.r == pytest.approx(5 * KOHM, rel=1e-6)
        assert pi.c_far == pytest.approx(90 * FF, rel=1e-6)

    def test_total_cap_preserved_for_line(self):
        net = Circuit("line")
        rc_line(net, "w_", "port", "end", 12, 3 * KOHM, 150 * FF)
        pi = driving_point_pi(net, "port")
        assert pi.total_cap == pytest.approx(150 * FF, rel=1e-6)
        assert pi.r > 0

    def test_lumped_degenerates(self):
        pi = driving_point_pi(lumped_net(), "port")
        assert pi.total_cap == pytest.approx(51 * FF, rel=1e-3)

    def test_install_roundtrip(self):
        pi = PiModel(c_near=10 * FF, r=2 * KOHM, c_far=30 * FF)
        c = Circuit("t")
        c.add_resistor("anchor", "p", GROUND, 1e9)
        pi.install(c, "pi_", "p")
        rebuilt = driving_point_pi(c, "p")
        assert rebuilt.c_near == pytest.approx(10 * FF, rel=1e-3)
        assert rebuilt.c_far == pytest.approx(30 * FF, rel=1e-3)

    def test_degenerate_install(self):
        pi = PiModel(c_near=20 * FF, r=0.0, c_far=0.0)
        c = Circuit("t")
        pi.install(c, "pi_", "p")
        assert c.grounded_cap_at("p") == pytest.approx(20 * FF)
        assert not c.resistors


class TestEffectiveCapacitance:
    @pytest.fixture(scope="class")
    def table(self):
        inv = inverter(scale=2)
        return TheveninTable.build(inv, 0.25 * NS, output_rising=False,
                                   points=5)

    def test_lumped_net_ceff_equals_total(self, table):
        net = lumped_net(60 * FF)
        ceff, model = effective_capacitance(table.lookup, net, "port", VDD)
        assert ceff == pytest.approx(61 * FF, rel=0.05)
        assert model.rth > 0

    def test_shielding_reduces_ceff(self, table):
        """Far cap behind big wire resistance is partially hidden: Ceff
        strictly between near cap and total cap."""
        net = shielded_net(r=10 * KOHM, c_near=10 * FF, c_far=90 * FF)
        ceff, _ = effective_capacitance(table.lookup, net, "port", VDD)
        assert 10 * FF < ceff < 95 * FF
        assert ceff < 85 * FF  # meaningful shielding visible

    def test_weak_shielding_near_total(self, table):
        net = shielded_net(r=50 * OHM, c_near=10 * FF, c_far=90 * FF)
        ceff, _ = effective_capacitance(table.lookup, net, "port", VDD)
        assert ceff == pytest.approx(100 * FF, rel=0.08)

    def test_ceff_monotone_in_shielding(self, table):
        values = []
        for r in (0.1 * KOHM, 2 * KOHM, 20 * KOHM):
            net = shielded_net(r=r)
            ceff, _ = effective_capacitance(table.lookup, net, "port", VDD)
            values.append(ceff)
        assert values[0] > values[1] > values[2]

    def test_empty_net_rejected(self, table):
        net = Circuit("empty")
        net.add_resistor("r", "port", GROUND, 1 * KOHM)
        with pytest.raises(ValueError, match="capacitance"):
            effective_capacitance(table.lookup, net, "port", VDD)
