"""Tests for repro.core.alignment and repro.core.exhaustive."""

import numpy as np
import pytest

from repro.core.alignment import (
    composite_pulse,
    input_objective_peak_time,
    peak_align_shifts,
)
from repro.core.exhaustive import (
    combined_extra_delays,
    exhaustive_worst_alignment,
    receiver_output_waveform,
)
from repro.core.net import ReceiverSpec
from repro.gates import inverter
from repro.units import FF, NS, PS
from repro.waveform import noise_pulse, ramp, triangular_pulse
from repro.waveform.pulses import pulse_peak

VDD = 1.8


class TestPeakAlignment:
    def pulses(self):
        return {
            "a": triangular_pulse(1.0 * NS, -0.4, 0.2 * NS),
            "b": triangular_pulse(1.5 * NS, -0.3, 0.3 * NS),
        }

    def test_shifts_move_peaks_to_target(self):
        pulses = self.pulses()
        shifts = peak_align_shifts(pulses, 2.0 * NS)
        for name, pulse in pulses.items():
            t, _ = pulse_peak(pulse.shifted(shifts[name]))
            assert t == pytest.approx(2.0 * NS, abs=1 * PS)

    def test_aligned_composite_maximizes_height(self):
        """Aligned peaks give the tallest composite (Section 3.1)."""
        pulses = self.pulses()
        aligned = composite_pulse(pulses, peak_align_shifts(pulses, 2 * NS))
        offset = composite_pulse(pulses, {"a": 1.0 * NS, "b": 0.2 * NS})
        assert abs(pulse_peak(aligned)[1]) >= abs(pulse_peak(offset)[1])
        assert pulse_peak(aligned)[1] == pytest.approx(-0.7, abs=0.01)

    def test_composite_empty_rejected(self):
        with pytest.raises(ValueError):
            composite_pulse({})

    def test_composite_identity_without_shifts(self):
        pulses = self.pulses()
        total = composite_pulse(pulses)
        probe = np.linspace(0, 3 * NS, 50)
        np.testing.assert_allclose(
            total(probe), pulses["a"](probe) + pulses["b"](probe),
            atol=1e-12)


class TestInputObjective:
    def victim(self):
        return ramp(0.0, 1.0 * NS, 0.0, VDD, pad=1 * NS)

    def test_rising_victim_level(self):
        """Peak goes where the victim crosses Vdd/2 + |Vp|."""
        t = input_objective_peak_time(self.victim(), -0.45, VDD, True)
        assert self.victim()(t) == pytest.approx(VDD / 2 + 0.45, rel=1e-6)

    def test_falling_victim_level(self):
        falling = ramp(0.0, 1.0 * NS, VDD, 0.0, pad=1 * NS)
        t = input_objective_peak_time(falling, 0.45, VDD, False)
        assert falling(t) == pytest.approx(VDD / 2 - 0.45, rel=1e-6)

    def test_oversized_pulse_clamped(self):
        # |Vp| > Vdd/2 would demand a level above the rail; clamped.
        t = input_objective_peak_time(self.victim(), -1.5, VDD, True)
        assert t <= 1.0 * NS

    def test_later_for_taller_pulse(self):
        t_small = input_objective_peak_time(self.victim(), -0.2, VDD, True)
        t_big = input_objective_peak_time(self.victim(), -0.6, VDD, True)
        assert t_big > t_small


@pytest.fixture(scope="module")
def receiver():
    return ReceiverSpec(inverter(scale=2), c_load=5 * FF)


@pytest.fixture(scope="module")
def victim_wave():
    return ramp(-0.15 * NS, 0.3 * NS, 0.0, VDD, pad=0.5 * NS)


class TestReceiverOutput:
    def test_inverts(self, receiver, victim_wave):
        out = receiver_output_waveform(receiver, victim_wave, 2 * NS)
        assert out(victim_wave.t_start) == pytest.approx(VDD, abs=0.02)
        assert out.values[-1] == pytest.approx(0.0, abs=0.02)

    def test_extra_delays_zero_without_noise(self, receiver, victim_wave):
        ein, eout, _ = combined_extra_delays(
            receiver, victim_wave, victim_wave, VDD, True, 2 * NS)
        assert ein == pytest.approx(0.0, abs=1 * PS)
        assert eout == pytest.approx(0.0, abs=1 * PS)

    def test_opposing_noise_adds_delay(self, receiver, victim_wave):
        pulse = noise_pulse(0.05 * NS, -0.5, 0.15 * NS)
        noisy = victim_wave + pulse
        ein, eout, _ = combined_extra_delays(
            receiver, victim_wave, noisy, VDD, True, 2 * NS)
        assert ein > 10 * PS
        assert eout > 10 * PS

    def test_receiver_filters_late_pulse(self, receiver, victim_wave):
        """Figure 3: a pulse arriving after the receiver finished its
        transition yields a big input disturbance but ~zero output
        delay — the noise pulse is filtered below the functional-noise
        threshold."""
        pulse = noise_pulse(1.0 * NS, -0.5, 0.08 * NS)
        noisy = victim_wave + pulse
        ein, eout, noisy_out = combined_extra_delays(
            receiver, victim_wave, noisy, VDD, True, 2.5 * NS)
        assert eout == pytest.approx(0.0, abs=2 * PS)
        # The receiver output pulse is small (paper: < 100 mV).
        tail = noisy_out.clipped(0.9 * NS, 2.0 * NS)
        assert tail.value_range()[1] < 0.35


class TestExhaustiveSearch:
    def test_finds_interior_maximum(self, receiver, victim_wave):
        pulse = noise_pulse(0.0, -0.45, 0.12 * NS)
        sweep = exhaustive_worst_alignment(
            receiver, victim_wave, pulse, VDD, True, steps=21, refine=6,
            dt=2 * PS)
        assert sweep.best_extra_output > 20 * PS
        # The optimum is mid-transition, not at the span edges.
        assert sweep.peak_times[0] < sweep.best_peak_time \
            < sweep.peak_times[-1]

    def test_refine_improves_or_matches(self, receiver, victim_wave):
        pulse = noise_pulse(0.0, -0.45, 0.12 * NS)
        coarse = exhaustive_worst_alignment(
            receiver, victim_wave, pulse, VDD, True, steps=9, dt=2 * PS)
        fine = exhaustive_worst_alignment(
            receiver, victim_wave, pulse, VDD, True, steps=9, refine=8,
            dt=2 * PS)
        assert fine.best_extra_output >= coarse.best_extra_output - 1e-15

    def test_delay_at_interpolates(self, receiver, victim_wave):
        pulse = noise_pulse(0.0, -0.4, 0.12 * NS)
        sweep = exhaustive_worst_alignment(
            receiver, victim_wave, pulse, VDD, True, steps=11, dt=2 * PS)
        mid = 0.5 * (sweep.peak_times[3] + sweep.peak_times[4])
        val = sweep.delay_at(mid)
        lo = min(sweep.extra_output_delays[3], sweep.extra_output_delays[4])
        hi = max(sweep.extra_output_delays[3], sweep.extra_output_delays[4])
        assert lo <= val <= hi

    def test_too_few_steps_rejected(self, receiver, victim_wave):
        pulse = noise_pulse(0.0, -0.4, 0.12 * NS)
        with pytest.raises(ValueError, match="steps"):
            exhaustive_worst_alignment(
                receiver, victim_wave, pulse, VDD, True, steps=1)

    def test_refined_grid_is_strictly_increasing(self, receiver,
                                                 victim_wave):
        """An odd refine count lands a fine point exactly on the coarse
        optimum; the merged grid must de-duplicate it so delay_at's
        interpolation table stays monotone."""
        pulse = noise_pulse(0.0, -0.45, 0.12 * NS)
        sweep = exhaustive_worst_alignment(
            receiver, victim_wave, pulse, VDD, True, steps=9, refine=3,
            dt=2 * PS)
        assert np.all(np.diff(sweep.peak_times) > 0)
        assert sweep.extra_output_delays.shape == sweep.peak_times.shape
        assert sweep.extra_input_delays.shape == sweep.peak_times.shape

    def test_output_objective_differs_from_input(self, receiver,
                                                 victim_wave):
        """The input-objective alignment is NOT the output worst case in
        general (the paper's central argument)."""
        pulse = noise_pulse(0.0, -0.5, 0.12 * NS)
        sweep = exhaustive_worst_alignment(
            receiver, victim_wave, pulse, VDD, True, steps=25, refine=8,
            dt=2 * PS)
        t_input_obj = input_objective_peak_time(victim_wave, -0.5, VDD,
                                                True)
        d_at_input_obj = sweep.delay_at(t_input_obj)
        assert sweep.best_extra_output > d_at_input_obj
