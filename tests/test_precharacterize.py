"""Tests for repro.core.precharacterize (Section 3.2)."""

import numpy as np
import pytest

from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.net import ReceiverSpec
from repro.core.precharacterize import (
    AlignmentTable,
    build_alignment_table,
    characterization_victim,
)
from repro.gates import inverter
from repro.units import FF, NS, PS
from repro.waveform import noise_pulse

VDD = 1.8


class TestCharacterizationVictim:
    def test_fifty_percent_at_zero(self):
        v = characterization_victim(0.3 * NS, VDD, rising=True)
        assert v.crossing_time(VDD / 2, rising=True) == \
            pytest.approx(0.0, abs=1 * PS)

    def test_slew_recovered(self):
        from repro.waveform import transition_slew
        for slew in (0.15 * NS, 0.5 * NS):
            v = characterization_victim(slew, VDD, rising=True)
            assert transition_slew(v, VDD, True) == \
                pytest.approx(slew, rel=0.02)

    def test_falling(self):
        v = characterization_victim(0.3 * NS, VDD, rising=False)
        assert v.values[0] == pytest.approx(VDD)
        assert v.values[-1] == pytest.approx(0.0, abs=0.01)

    def test_has_settling_tail(self):
        """Ramp-RC shape: the approach to the rail is gradual."""
        v = characterization_victim(0.3 * NS, VDD, rising=True)
        t90 = v.crossing_time(0.9 * VDD, rising=True)
        t99 = v.crossing_time(0.99 * VDD, rising=True)
        assert t99 - t90 > 20 * PS

    def test_invalid_slew(self):
        with pytest.raises(ValueError):
            characterization_victim(0.0, VDD, True)


@pytest.fixture(scope="module")
def table():
    """A coarse (fast) table for an X2 inverter receiver."""
    return build_alignment_table(inverter(scale=2), sweep_steps=13,
                                 refine_steps=6, dt=2 * PS)


class TestTableStructure:
    def test_shape_and_metadata(self, table):
        assert table.va.shape == (2, 2, 2)
        assert table.gate_name == "INV_X2"
        assert table.victim_rising

    def test_va_within_transition(self, table):
        """Alignment voltages live strictly inside the swing — above
        Vdd/2 for a rising victim (the pulse must drag the crossing)."""
        assert (table.va > 0.5 * VDD).all()
        assert (table.va < VDD).all()

    def test_va_increases_with_height(self, table):
        """Taller pulses can be placed later (higher victim voltage) —
        the monotonicity behind Figure 8(b)."""
        assert (table.va[:, :, 1] >= table.va[:, :, 0] - 0.05).all()

    def test_invalid_shape_rejected(self, table):
        with pytest.raises(ValueError):
            AlignmentTable("X", VDD, True, 2 * FF, table.slews,
                           table.widths, table.heights,
                           np.zeros((2, 2)))


class TestInterpolation:
    def test_corner_recovery(self, table):
        """At a characterized corner, interpolation returns the stored
        value exactly."""
        v = table.alignment_voltage(table.widths[0], table.heights[1],
                                    slew_index=1)
        assert v == pytest.approx(table.va[1, 0, 1])

    def test_clamping_outside_range(self, table):
        tiny = table.alignment_voltage(1 * PS, 0.01, 0)
        assert tiny == pytest.approx(table.va[0, 0, 0])
        huge = table.alignment_voltage(10 * NS, 5.0, 0)
        assert huge == pytest.approx(table.va[0, 1, 1])

    def test_midpoint_between_corners(self, table):
        mid_w = 0.5 * (table.widths[0] + table.widths[1])
        v = table.alignment_voltage(mid_w, table.heights[0], 0)
        lo = min(table.va[0, 0, 0], table.va[0, 1, 0])
        hi = max(table.va[0, 0, 0], table.va[0, 1, 0])
        assert lo <= v <= hi


class TestPrediction:
    def test_predicted_time_before_cliff(self, table):
        """The guard-banded prediction must land at-or-before the true
        worst case (never off the cliff)."""
        receiver = ReceiverSpec(inverter(scale=2), c_load=2 * FF)
        victim = characterization_victim(0.3 * NS, VDD, True)
        pulse = noise_pulse(0.0, -0.5, 0.15 * NS)
        sweep = exhaustive_worst_alignment(receiver, victim, pulse, VDD,
                                           True, steps=25, refine=8,
                                           dt=2 * PS)
        pred = table.predict_peak_time(victim, 0.15 * NS, -0.5, 0.3 * NS)
        assert pred <= sweep.best_peak_time + 5 * PS

    def test_predicted_delay_close_to_worst(self, table):
        """Paper Figure 9: delay at predicted alignment within ~10% of
        the exhaustive worst case (at characterization-like conditions)."""
        receiver = ReceiverSpec(inverter(scale=2), c_load=2 * FF)
        victim = characterization_victim(0.4 * NS, VDD, True)
        pulse = noise_pulse(0.0, -0.45, 0.2 * NS)
        sweep = exhaustive_worst_alignment(receiver, victim, pulse, VDD,
                                           True, steps=25, refine=8,
                                           dt=2 * PS)
        pred = table.predict_peak_time(victim, 0.2 * NS, -0.45, 0.4 * NS)
        d_pred = sweep.delay_at(pred)
        assert d_pred >= 0.85 * sweep.best_extra_output

    def test_prediction_monotone_in_height(self, table):
        victim = characterization_victim(0.3 * NS, VDD, True)
        t_small = table.predict_peak_time(victim, 0.2 * NS, -0.3, 0.3 * NS)
        t_big = table.predict_peak_time(victim, 0.2 * NS, -0.7, 0.3 * NS)
        assert t_big >= t_small - 1 * PS

    def test_prediction_uses_actual_waveform(self, table):
        """The same (w, h, slew) on a shifted victim maps to a shifted
        time — the va -> time mapping goes through the real waveform."""
        victim = characterization_victim(0.3 * NS, VDD, True)
        shifted = victim.shifted(1.0 * NS)
        t0 = table.predict_peak_time(victim, 0.2 * NS, -0.4, 0.3 * NS)
        t1 = table.predict_peak_time(shifted, 0.2 * NS, -0.4, 0.3 * NS)
        assert t1 - t0 == pytest.approx(1.0 * NS, abs=1 * PS)
