"""Tests for repro.core.filtering (aggressor ranking / demotion)."""

import pytest

from repro.bench.netgen import canonical_net
from repro.circuit import Circuit, GROUND
from repro.circuit.topology import couple_nodes, rc_line
from repro.core.filtering import (
    filter_aggressors,
    partition_nodes,
    rank_aggressors,
)
from repro.core.net import AggressorSpec, CoupledNet, DriverSpec, ReceiverSpec
from repro.gates import inverter
from repro.units import FF, KOHM, NS, PS


def lopsided_net() -> CoupledNet:
    """One big aggressor, one tiny one."""
    wires = Circuit("lop_wires")
    v_nodes = rc_line(wires, "v_", "v_root", "v_rcv", 6, 1 * KOHM,
                      40 * FF)
    big = rc_line(wires, "b_", "b_root", "b_far", 6, 0.6 * KOHM, 30 * FF)
    tiny = rc_line(wires, "t_", "t_root", "t_far", 6, 0.6 * KOHM,
                   30 * FF)
    couple_nodes(wires, "xb_", v_nodes, big, 40 * FF)
    couple_nodes(wires, "xt_", v_nodes, tiny, 1.5 * FF)
    wires.add_capacitor("b_load", "b_far", GROUND, 8 * FF)
    wires.add_capacitor("t_load", "t_far", GROUND, 8 * FF)

    def agg(name, root, far):
        return AggressorSpec(
            name=name,
            driver=DriverSpec(gate=inverter(4), input_slew=0.12 * NS,
                              output_rising=False, input_start=0.2 * NS),
            root=root, far_end=far)

    return CoupledNet(
        name="lopsided",
        interconnect=wires,
        victim_root="v_root",
        victim_receiver_node="v_rcv",
        victim_driver=DriverSpec(gate=inverter(1), input_slew=0.2 * NS,
                                 output_rising=True,
                                 input_start=0.2 * NS),
        receiver=ReceiverSpec(gate=inverter(2), c_load=10 * FF),
        aggressors=[agg("big", "b_root", "b_far"),
                    agg("tiny", "t_root", "t_far")],
    )


class TestPartition:
    def test_every_wire_node_assigned(self):
        net = lopsided_net()
        assignment = partition_nodes(net)
        assert assignment["v_root"] == "victim"
        assert assignment["v_rcv"] == "victim"
        assert assignment["b_far"] == "big"
        assert assignment["t_n3"] == "tiny"

    def test_canonical_net(self):
        net = canonical_net(n_aggressors=2)
        assignment = partition_nodes(net)
        assert assignment["a0_root"] == "agg0"
        assert assignment["a1_root"] == "agg1"


class TestPartitionCache:
    def _counters(self):
        from repro.obs import metrics
        counters = metrics().snapshot()["counters"]
        return (counters.get("filtering.partition.hits", 0),
                counters.get("filtering.partition.misses", 0))

    def test_repeat_call_hits_cache(self):
        net = lopsided_net()
        first = partition_nodes(net)
        hits_before, _ = self._counters()
        second = partition_nodes(net)
        hits_after, _ = self._counters()
        assert second is first  # the cached assignment, not a rebuild
        assert hits_after == hits_before + 1

    def test_topology_change_invalidates(self):
        net = lopsided_net()
        first = partition_nodes(net)
        # Any element addition bumps the interconnect's topology
        # version; the stale partition must not be served.
        net.interconnect.add_resistor("bridge", "v_rcv", "v_n3",
                                      1 * KOHM)
        _, misses_before = self._counters()
        second = partition_nodes(net)
        _, misses_after = self._counters()
        assert second is not first
        assert misses_after == misses_before + 1
        assert second["v_root"] == "victim"

    def test_aggressor_set_part_of_key(self):
        """Same interconnect, different aggressor list -> recompute."""
        from dataclasses import replace
        net = lopsided_net()
        full = partition_nodes(net)
        slim = replace(net, aggressors=net.aggressors[:1])
        assert "tiny" not in partition_nodes(slim).values()
        assert "tiny" in full.values()


class TestRanking:
    def test_order_and_values(self):
        ranks = rank_aggressors(lopsided_net())
        assert [r.name for r in ranks] == ["big", "tiny"]
        assert ranks[0].coupling_cap == pytest.approx(40 * FF)
        assert ranks[1].coupling_cap == pytest.approx(1.5 * FF)
        assert ranks[0].significant
        assert not ranks[1].significant

    def test_charge_ratio_bounded(self):
        for rank in rank_aggressors(canonical_net(n_aggressors=3)):
            assert 0.0 < rank.charge_ratio < 1.0


class TestFiltering:
    def test_tiny_aggressor_demoted(self):
        net = lopsided_net()
        filtered = filter_aggressors(net, threshold=0.05)
        assert [a.name for a in filtered.aggressors] == ["big"]
        # Tiny's wire is gone; its coupling reappears as grounded cap.
        assert "t_root" not in filtered.interconnect.nodes()
        demoted = [c for c in filtered.interconnect.capacitors
                   if c.name.startswith("__demoted")]
        assert sum(c.capacitance for c in demoted) == \
            pytest.approx(1.5 * FF)

    def test_victim_total_cap_preserved(self):
        """Demotion must not lose victim-side capacitance."""
        net = lopsided_net()
        filtered = filter_aggressors(net, threshold=0.05)
        nets_before = partition_nodes(net)
        nets_after = partition_nodes(filtered)

        def victim_cap(circuit, assignment):
            total = 0.0
            for c in circuit.capacitors:
                if assignment.get(c.node1) == "victim" or \
                        assignment.get(c.node2) == "victim":
                    total += c.capacitance
            return total

        assert victim_cap(filtered.interconnect, nets_after) == \
            pytest.approx(victim_cap(net.interconnect, nets_before))

    def test_keep_overrides_threshold(self):
        net = lopsided_net()
        filtered = filter_aggressors(net, threshold=0.05, keep={"tiny"})
        assert {a.name for a in filtered.aggressors} == {"big", "tiny"}

    def test_no_demotion_returns_same_object(self):
        net = lopsided_net()
        assert filter_aggressors(net, threshold=1e-6) is net

    def test_filtered_net_analyzable(self, model_cache):
        """The filtered net runs the full flow; delay noise within a few
        percent of the unfiltered analysis (tiny aggressor dropped)."""
        from repro.core.analysis import DelayNoiseAnalyzer
        analyzer = DelayNoiseAnalyzer(cache=model_cache)
        net = lopsided_net()
        full = analyzer.analyze(net, alignment="input-objective",
                                use_rtr=False)
        filtered = filter_aggressors(net, threshold=0.05)
        slim = analyzer.analyze(filtered, alignment="input-objective",
                                use_rtr=False)
        assert slim.extra_delay_input == pytest.approx(
            full.extra_delay_input, rel=0.1, abs=3 * PS)
