"""Smoke tests: every example script must run to completion.

These are the repository's user-facing entry points; a refactor that
breaks one must fail CI.  Each runs as a subprocess (fresh interpreter,
no shared caches) and is checked for a zero exit code plus a key phrase
in its output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", "golden"),
    ("alignment_objectives.py", "receiver-OUTPUT objective"),
    ("netlist_analysis.py", "worst-case extra delay"),
    ("sta_coupling.py", "converged"),
    ("precharacterize_library.py", "alignment voltage"),
    ("noise_screening.py", "delay noise"),
    ("layout_shielding.py", "shielded"),
    ("block_timing.py", "worst slack"),
]


@pytest.mark.parametrize("script,phrase", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, phrase):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=900)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert phrase in result.stdout, \
        f"{script} output missing {phrase!r}:\n{result.stdout}"
