"""Batched multi-candidate kernel vs the serial scalar path.

The batched transient kernel (:mod:`repro.sim.batched`) must land every
candidate on the same Newton root as a serial
:func:`~repro.sim.nonlinear.simulate_nonlinear` run with that candidate's
waveform bound — within the 1e-9 V equivalence gate for S > 1 (BLAS
gemm-vs-gemv rounding), bit-identically for S == 1 — while the active-set
mask, the scalar fallback ladder and the factorization caches do what
their counters claim.
"""

import pickle

import numpy as np
import pytest

from repro.circuit import GROUND, Circuit
from repro.circuit.mna import build_mna
from repro.core import ReceiverSpec, exhaustive_worst_alignment
from repro.devices import default_technology, nmos_params, pmos_params
from repro.gates import inverter
from repro.obs import metrics
from repro.resilience import FaultPlan, clear_faults, install_faults
from repro.sim import kernel_mode, simulate_nonlinear, simulate_nonlinear_batch
from repro.sim.batched import _batched_kernel
from repro.sim.result import time_grid
from repro.units import FF, KOHM, NS, PS, UM
from repro.waveform import noise_pulse, ramp

#: Same gate as the kernel-equivalence suite: converged Newton roots
#: agree far tighter; the bound absorbs BLAS reduction-order noise.
TOLERANCE = 1e-9

TECH = default_technology()
VDD = TECH.vdd


@pytest.fixture(autouse=True)
def no_leaked_faults():
    clear_faults()
    yield
    clear_faults()


def inverter_circuit(input_wave, c_load=20 * FF):
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", GROUND, VDD)
    c.add_vsource("vin", "in", GROUND, input_wave)
    c.add_mosfet("mn", nmos_params(TECH, 1 * UM), "out", "in", GROUND)
    c.add_mosfet("mp", pmos_params(TECH, 2.2 * UM), "out", "in", "vdd")
    c.add_capacitor("cl", "out", GROUND, c_load)
    return c


def rc_circuit(input_wave):
    """Device-free circuit: the batched kernel's pure-linear k=0 path."""
    c = Circuit("rc")
    c.add_vsource("vin", "in", GROUND, input_wave)
    c.add_resistor("r1", "in", "mid", 1 * KOHM)
    c.add_capacitor("c1", "mid", GROUND, 50 * FF)
    c.add_resistor("r2", "mid", "out", 2 * KOHM)
    c.add_capacitor("c2", "out", GROUND, 20 * FF)
    return c


def shifted_ramps(n, spread=0.15 * NS):
    base = 0.2 * NS
    return [ramp(base + i * spread / max(n - 1, 1), 0.1 * NS, 0.0, VDD)
            for i in range(n)]


def serial_reference(circuit, stimuli, t_stop, dt, *, t_start=0.0):
    """Serial sweep the way the batch's own fallback rebinds sources."""
    results = []
    saved = {name: circuit.source_value(name)
             for overrides in stimuli for name in overrides}
    try:
        for overrides in stimuli:
            for name, stim in overrides.items():
                circuit.set_source_value(name, stim)
            results.append(simulate_nonlinear(circuit, t_stop, dt,
                                              t_start=t_start))
    finally:
        for name, stim in saved.items():
            circuit.set_source_value(name, stim)
    return results


def assert_batch_matches(batched, serial, tolerance=TOLERANCE):
    assert len(batched) == len(serial)
    for c, (b, s) in enumerate(zip(batched, serial)):
        np.testing.assert_array_equal(b.times, s.times)
        delta = float(np.abs(b.states - s.states).max())
        assert delta <= tolerance, \
            f"candidate {c} drifted {delta:.3e} V from serial"


class TestBatchedEquivalence:
    def test_inverter_batch_matches_serial(self):
        waves = shifted_ramps(5)
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        batched = simulate_nonlinear_batch(circuit, stimuli, 1 * NS, 1 * PS)
        serial = serial_reference(circuit, stimuli, 1 * NS, 1 * PS)
        assert_batch_matches(batched, serial)

    def test_device_free_rc_batch(self):
        waves = shifted_ramps(3, spread=0.1 * NS)
        circuit = rc_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        batched = simulate_nonlinear_batch(circuit, stimuli, 1 * NS,
                                           0.5 * PS)
        serial = serial_reference(circuit, stimuli, 1 * NS, 0.5 * PS)
        assert_batch_matches(batched, serial)

    def test_single_candidate_bit_identical(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        circuit = inverter_circuit(wave)
        batched, = simulate_nonlinear_batch(circuit, [{"vin": wave}],
                                            1 * NS, 1 * PS)
        scalar = simulate_nonlinear(circuit, 1 * NS, 1 * PS)
        assert np.array_equal(batched.states, scalar.states)

    def test_legacy_kernel_delegates_to_serial(self):
        waves = shifted_ramps(3)
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        solves = metrics().counter("newton.batched.solves")
        before = solves.value
        with kernel_mode("legacy"):
            batched = simulate_nonlinear_batch(circuit, stimuli,
                                               0.5 * NS, 1 * PS)
            serial = serial_reference(circuit, stimuli, 0.5 * NS, 1 * PS)
        assert solves.value == before  # no block solves under legacy
        for b, s in zip(batched, serial):
            assert np.array_equal(b.states, s.states)

    def test_x0_broadcast_and_block(self):
        waves = shifted_ramps(2)
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        dim = build_mna(circuit, allow_devices=True).dim
        x0 = simulate_nonlinear(circuit, 2 * PS, 1 * PS).states[:, 0]
        from_flat = simulate_nonlinear_batch(circuit, stimuli, 0.5 * NS,
                                             1 * PS, x0=x0)
        from_block = simulate_nonlinear_batch(
            circuit, stimuli, 0.5 * NS, 1 * PS,
            x0=np.broadcast_to(x0, (2, dim)))
        for a, b in zip(from_flat, from_block):
            assert np.array_equal(a.states, b.states)

    def test_warm_cache_second_batch_identical(self):
        """Re-running the same batch through the now-populated kernel
        caches must reproduce the first run exactly."""
        waves = shifted_ramps(3)
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        first = simulate_nonlinear_batch(circuit, stimuli, 0.5 * NS, 1 * PS)
        second = simulate_nonlinear_batch(circuit, stimuli, 0.5 * NS,
                                          1 * PS)
        for a, b in zip(first, second):
            assert np.array_equal(a.states, b.states)


class TestActiveSetMask:
    def test_converged_candidates_drop_from_active_set(self):
        """A candidate started at the step's Newton root converges on
        iteration one and must stop costing candidate-iterations."""
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        circuit = inverter_circuit(wave)
        mna = build_mna(circuit, allow_devices=True)
        times = time_grid(1 * NS, 1 * PS, 0.0)
        h = times[1] - times[0]
        kernel = _batched_kernel(circuit, mna, h)
        assert kernel.available

        # A converged step from the serial reference, mid-transition.
        res = simulate_nonlinear(circuit, 1 * NS, 1 * PS)
        k = int(np.searchsorted(times, 0.25 * NS))
        x_prev, x_root = res.states[:, k - 1], res.states[:, k]
        b = kernel.Ch @ x_prev + mna.rhs_matrix(times[k:k + 1])[:, 0]
        B = np.stack([b, b])
        cold = np.zeros_like(x_root)

        active = metrics().counter("newton.batched.active")
        base = active.value
        X, failed = kernel.solve_block(np.stack([B[0], B[1]]),
                                       np.stack([cold, cold]), "both cold")
        both_cold = active.value - base
        assert not failed
        base = active.value
        X, failed = kernel.solve_block(B, np.stack([x_root, cold]),
                                       "one warm")
        one_warm = active.value - base
        assert not failed
        # Same root either way; the warm candidate must have dropped out
        # after its first iteration instead of riding along.
        assert float(np.abs(X - x_root).max()) < 1e-5
        assert both_cold >= 4  # 0.5 V damping cap over a ~1.8 V travel
        assert one_warm < both_cold
        assert one_warm == both_cold // 2 + 1

    def test_counters_account_for_batch(self):
        waves = shifted_ramps(4)
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        solves = metrics().counter("newton.batched.solves")
        active = metrics().counter("newton.batched.active")
        fallback = metrics().counter("newton.batched.fallback")
        s0, a0, f0 = solves.value, active.value, fallback.value
        simulate_nonlinear_batch(circuit, stimuli, 1 * NS, 1 * PS)
        steps = time_grid(1 * NS, 1 * PS, 0.0).size - 1
        assert solves.value - s0 == steps
        # Every active candidate costs at least one iteration per solve,
        # and the mask keeps the total well under the no-drop ceiling.
        assert active.value - a0 >= steps * len(waves)
        assert active.value - a0 < steps * len(waves) * 10
        assert fallback.value == f0


class TestScalarFallback:
    def test_block_fault_demotes_step_to_scalar(self):
        """A convergence fault on the block solve must drop every
        candidate of that step to the scalar ladder — and the results
        must still match the serial reference."""
        waves = shifted_ramps(3)
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        serial = serial_reference(circuit, stimuli, 0.5 * NS, 1 * PS)
        fallback = metrics().counter("newton.batched.fallback")
        before = fallback.value
        install_faults(FaultPlan().add(
            "newton.batched", match="t=", action="convergence", times=1))
        batched = simulate_nonlinear_batch(circuit, stimuli, 0.5 * NS,
                                           1 * PS)
        clear_faults()
        assert fallback.value == before + len(waves)
        assert_batch_matches(batched, serial)

    def test_candidate_falls_through_to_bisection(self):
        """Chained faults: block solve fails, then one candidate's
        full-dt scalar retry fails too — that candidate alone must walk
        the dt-bisection ladder and still land on the serial states."""
        waves = shifted_ramps(3)
        circuit = inverter_circuit(waves[0])
        stimuli = [{"vin": w} for w in waves]
        serial = serial_reference(circuit, stimuli, 0.5 * NS, 1 * PS)
        recovered = metrics().counter("newton.recovered.substep")
        before = recovered.value
        install_faults(
            FaultPlan()
            .add("newton.batched", match="t=", action="convergence",
                 times=1)
            .add("newton.step", match="candidate 1", action="convergence",
                 times=1))
        batched = simulate_nonlinear_batch(circuit, stimuli, 0.5 * NS,
                                           1 * PS)
        clear_faults()
        assert recovered.value == before + 1
        assert_batch_matches(batched, serial)


class TestValidation:
    def test_empty_stimuli_rejected(self):
        circuit = rc_circuit(ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        with pytest.raises(ValueError, match="empty stimuli"):
            simulate_nonlinear_batch(circuit, [], 1 * NS, 1 * PS)

    def test_unknown_source_rejected(self):
        circuit = rc_circuit(ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        with pytest.raises(ValueError, match="unknown source 'nope'"):
            simulate_nonlinear_batch(circuit, [{"nope": 1.0}], 1 * NS,
                                     1 * PS)

    def test_degenerate_grid_rejected(self):
        circuit = rc_circuit(ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        with pytest.raises(ValueError, match="dt must be positive"):
            simulate_nonlinear_batch(circuit, [{}], 1 * NS, 0.0)
        with pytest.raises(ValueError, match="degenerate time grid"):
            simulate_nonlinear_batch(circuit, [{}], 0.0, 1 * PS)

    def test_bad_x0_shape_rejected(self):
        circuit = rc_circuit(ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        with pytest.raises(ValueError, match="x0 must have shape"):
            simulate_nonlinear_batch(circuit, [{}, {}], 1 * NS, 1 * PS,
                                     x0=np.zeros(3))


class TestFactorCaches:
    def test_serial_sweep_reuses_factorizations(self):
        """The satellite fix behind the alignment speedup: rebinding a
        source keeps the topology version, so a serial sweep pays the
        DC + transient factorizations once and hits the cache after."""
        hit = metrics().counter("sim.factor_cache.hit")
        miss = metrics().counter("sim.factor_cache.miss")
        waves = shifted_ramps(4)
        circuit = inverter_circuit(waves[0])
        h0, m0 = hit.value, miss.value
        simulate_nonlinear(circuit, 0.2 * NS, 1 * PS)
        assert miss.value - m0 == 2  # one DC + one transient solver
        assert hit.value == h0
        for wave in waves[1:]:
            circuit.set_source_value("vin", wave)
            simulate_nonlinear(circuit, 0.2 * NS, 1 * PS)
        assert miss.value - m0 == 2
        assert hit.value - h0 == 2 * (len(waves) - 1)

    def test_batched_kernel_cached_per_h(self):
        wave = ramp(0.2 * NS, 0.1 * NS, 0.0, VDD)
        circuit = inverter_circuit(wave)
        mna = build_mna(circuit, allow_devices=True)
        k1 = _batched_kernel(circuit, mna, 1 * PS)
        assert _batched_kernel(circuit, mna, 1 * PS) is k1
        assert _batched_kernel(circuit, mna, 2 * PS) is not k1

    def test_mna_cache_invalidated_by_topology_change(self):
        hit = metrics().counter("sim.mna_cache.hit")
        miss = metrics().counter("sim.mna_cache.miss")
        circuit = rc_circuit(ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        h0, m0 = hit.value, miss.value
        first = build_mna(circuit, allow_devices=True)
        assert build_mna(circuit, allow_devices=True) is first
        assert (miss.value - m0, hit.value - h0) == (1, 1)
        # Rebinding a source value is NOT a topology change ...
        circuit.set_source_value("vin", 0.5)
        assert build_mna(circuit, allow_devices=True) is first
        # ... but adding an element is.
        circuit.add_capacitor("cx", "out", GROUND, 1 * FF)
        assert build_mna(circuit, allow_devices=True) is not first
        assert miss.value - m0 == 2


class TestCircuitRebinding:
    def test_set_source_value_rebinds(self):
        circuit = rc_circuit(ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        circuit.set_source_value("vin", 0.25)
        assert circuit.source_value("vin") == 0.25

    def test_unknown_source_raises_keyerror(self):
        circuit = rc_circuit(ramp(0.1 * NS, 0.1 * NS, 0.0, 1.0))
        with pytest.raises(KeyError):
            circuit.source_value("nope")
        with pytest.raises(KeyError):
            circuit.set_source_value("nope", 0.0)

    def test_pickle_drops_mna_cache(self):
        """Worker handoff (repro.exec) pickles circuits; the cached MNA
        system (with factored solvers attached) must not ride along."""
        circuit = inverter_circuit(ramp(0.2 * NS, 0.1 * NS, 0.0, VDD))
        build_mna(circuit, allow_devices=True)
        assert "_mna_cache" in circuit.__dict__
        clone = pickle.loads(pickle.dumps(circuit))
        assert "_mna_cache" not in clone.__dict__
        # The clone still simulates identically.
        a = simulate_nonlinear(circuit, 0.1 * NS, 1 * PS)
        b = simulate_nonlinear(clone, 0.1 * NS, 1 * PS)
        assert np.array_equal(a.states, b.states)


class TestAlignmentSweepEquivalence:
    def test_batched_sweep_matches_serial_sweep(self):
        """The end-to-end satellite gate: exhaustive_worst_alignment with
        batch=True must reproduce the serial sweep's grid exactly and its
        delays inside the kernel tolerance."""
        receiver = ReceiverSpec(inverter(scale=2), c_load=5 * FF)
        victim = ramp(-0.15 * NS, 0.3 * NS, 0.0, VDD, pad=0.5 * NS)
        pulse = noise_pulse(0.0, -0.45, 0.12 * NS)
        kwargs = dict(steps=9, refine=4, dt=2 * PS)
        serial = exhaustive_worst_alignment(
            receiver, victim, pulse, VDD, True, batch=False, **kwargs)
        batched = exhaustive_worst_alignment(
            receiver, victim, pulse, VDD, True, batch=True, **kwargs)
        np.testing.assert_array_equal(batched.peak_times,
                                      serial.peak_times)
        np.testing.assert_allclose(batched.extra_output_delays,
                                   serial.extra_output_delays,
                                   atol=TOLERANCE, rtol=0)
        assert batched.best_peak_time == serial.best_peak_time
        assert batched.best_extra_output == pytest.approx(
            serial.best_extra_output, abs=TOLERANCE)

    def test_candidate_counter_tracks_sweep_size(self):
        receiver = ReceiverSpec(inverter(scale=2), c_load=5 * FF)
        victim = ramp(-0.15 * NS, 0.3 * NS, 0.0, VDD, pad=0.5 * NS)
        pulse = noise_pulse(0.0, -0.45, 0.12 * NS)
        candidates = metrics().counter("alignment.candidates")
        before = candidates.value
        exhaustive_worst_alignment(receiver, victim, pulse, VDD, True,
                                   steps=7, dt=2 * PS)
        # steps pulse positions plus the noiseless reference.
        assert candidates.value - before == 8
