"""Tests for repro.gates.gate and repro.gates.library."""

import pytest

from repro.circuit import Circuit, GROUND
from repro.devices import default_technology
from repro.gates import inverter, nand2, nor2, standard_cell
from repro.gates.gate import DeviceTemplate, Gate
from repro.devices.mosfet import nmos_params
from repro.sim import simulate_nonlinear
from repro.units import FF, NS, PS
from repro.waveform import ramp

TECH = default_technology()
VDD = TECH.vdd


class TestLibrary:
    def test_inverter_structure(self):
        inv = inverter()
        assert inv.name == "INV_X1"
        assert inv.inputs == ["a"]
        assert len(inv.devices) == 2

    def test_scaling_names(self):
        assert inverter(scale=4).name == "INV_X4"
        assert nand2(scale=2).name == "NAND2_X2"

    def test_standard_cell_parsing(self):
        assert standard_cell("INV_X2").name == "INV_X2"
        assert standard_cell("NOR2_X1").inputs == ["a", "b"]

    def test_standard_cell_rejects_garbage(self):
        with pytest.raises(ValueError):
            standard_cell("XOR_X1")
        with pytest.raises(ValueError):
            standard_cell("INV_4")

    def test_input_cap_scales_with_size(self):
        assert standard_cell("INV_X4").input_capacitance() == pytest.approx(
            4 * standard_cell("INV_X1").input_capacitance())

    def test_nand_noncontrolling_high(self):
        assert nand2().side_input_high
        assert not nor2().side_input_high

    def test_unknown_pin_rejected(self):
        with pytest.raises(ValueError):
            inverter().input_capacitance("zz")

    def test_template_validates_nodes(self):
        with pytest.raises(ValueError, match="unknown"):
            Gate("BAD", TECH,
                 [DeviceTemplate("m", nmos_params(TECH, 1e-6),
                                 "out", "a", "mystery")],
                 inputs=["a"])


class TestInstantiation:
    def test_missing_port_rejected(self):
        c = Circuit("t")
        with pytest.raises(ValueError, match="missing ports"):
            inverter().instantiate(c, "u1_", {"out": "n1"})

    def test_devices_and_parasitics_added(self):
        c = Circuit("t")
        inverter().instantiate(c, "u1_", {"a": "in", "out": "n1",
                                          "vdd": "vdd"})
        assert len(c.mosfets) == 2
        # Gate cap on input + diffusion cap on output.
        assert c.grounded_cap_at("in") > 0
        assert c.grounded_cap_at("n1") > 0

    def test_internal_nodes_prefixed(self):
        c = Circuit("t")
        nand2().instantiate(c, "u1_", {"a": "in1", "b": "in2",
                                       "out": "n1", "vdd": "vdd"})
        assert "u1_x" in c.nodes()

    def test_two_instances_no_collision(self):
        c = Circuit("t")
        inv = inverter()
        inv.instantiate(c, "u1_", {"a": "a1", "out": "y1", "vdd": "vdd"})
        inv.instantiate(c, "u2_", {"a": "y1", "out": "y2", "vdd": "vdd"})
        assert len(c.mosfets) == 4

    def test_rail_tied_pin_skips_cap(self):
        c = Circuit("t")
        nand2().instantiate(c, "u1_", {"a": "in", "b": "vdd",
                                       "out": "n1", "vdd": "vdd"})
        # No cap was stamped from the vdd rail to ground for pin b.
        names = [cap.name for cap in c.capacitors]
        assert "u1_cg_b" not in names
        assert "u1_cg_a" in names

    def test_diffusion_cap_matches_method(self):
        c = Circuit("t")
        inv = inverter()
        inv.instantiate(c, "u1_", {"a": "in", "out": "n1", "vdd": "vdd"})
        assert c.grounded_cap_at("n1") == pytest.approx(
            inv.output_capacitance())


class TestDrivenCircuit:
    def test_inverter_inverts(self):
        inv = inverter()
        wave = ramp(0.1 * NS, 0.2 * NS, 0.0, VDD)
        circuit = inv.driven_circuit(wave, c_load_external=10 * FF)
        result = simulate_nonlinear(circuit, 2 * NS, 1 * PS)
        out = result.voltage("out")
        assert out(0.0) == pytest.approx(VDD, abs=0.02)
        assert out.values[-1] == pytest.approx(0.0, abs=0.02)

    @pytest.mark.parametrize("cell,expect_low", [
        ("NAND2_X1", True),   # a ramps high, b tied high -> out falls
        ("NOR2_X1", False),   # NOR with side input low behaves as inverter
    ])
    def test_multi_input_cells_invert(self, cell, expect_low):
        gate = standard_cell(cell)
        wave = ramp(0.1 * NS, 0.2 * NS, 0.0, VDD)
        circuit = gate.driven_circuit(wave, c_load_external=10 * FF)
        result = simulate_nonlinear(circuit, 2.5 * NS, 1 * PS)
        final = result.voltage("out").values[-1]
        assert final == pytest.approx(0.0, abs=0.05)

    def test_drive_resistance_estimate_orders(self):
        r1 = inverter(scale=1).drive_resistance_estimate(True)
        r4 = inverter(scale=4).drive_resistance_estimate(True)
        assert r4 == pytest.approx(r1 / 4, rel=1e-6)
        assert 100 < r1 < 100_000  # sane ohmic range

    def test_drive_resistance_rising_uses_pmos(self):
        inv = inverter()
        # PMOS is weaker per width but wider; both finite and different.
        r_up = inv.drive_resistance_estimate(True)
        r_down = inv.drive_resistance_estimate(False)
        assert r_up != r_down


class TestBuffer:
    def test_structure(self):
        from repro.gates.library import buffer
        buf = buffer(scale=2)
        assert buf.name == "BUF_X2"
        assert not buf.inverting
        assert len(buf.devices) == 4
        assert "x" in buf.internal

    def test_non_inverting_transient(self):
        from repro.gates.library import buffer
        buf = buffer(scale=1)
        wave = ramp(0.1 * NS, 0.2 * NS, 0.0, VDD)
        circuit = buf.driven_circuit(wave, c_load_external=10 * FF)
        result = simulate_nonlinear(circuit, 2.5 * NS, 1 * PS)
        out = result.voltage("out")
        assert out(0.0) == pytest.approx(0.0, abs=0.05)
        assert out.values[-1] == pytest.approx(VDD, abs=0.05)

    def test_standard_cell_name(self):
        assert standard_cell("BUF_X4").name == "BUF_X4"

    def test_thevenin_characterization(self):
        """The Thevenin fit understands non-inverting input polarity."""
        from repro.gates import characterize_thevenin
        from repro.gates.library import buffer
        model = characterize_thevenin(buffer(scale=2), 0.2 * NS,
                                      output_rising=True, c_load=40 * FF)
        assert model.rising
        assert model.rth > 0

    def test_quiet_holding_levels(self):
        from repro.gates.library import buffer
        buf = buffer(scale=1)
        r_hi = buf.holding_resistance(True)
        r_lo = buf.holding_resistance(False)
        assert 50 < r_hi < 1e5
        assert 50 < r_lo < 1e5


class TestComplexGates:
    """AOI21 / OAI21 with per-pin sensitizing tie levels."""

    @pytest.mark.parametrize("name", ["AOI21_X1", "OAI21_X2"])
    def test_pin_a_sensitized(self, name):
        gate = standard_cell(name)
        wave = ramp(0.1 * NS, 0.2 * NS, 0.0, VDD)
        circuit = gate.driven_circuit(wave, c_load_external=10 * FF)
        result = simulate_nonlinear(circuit, 2.5 * NS, 1 * PS)
        out = result.voltage("out")
        assert out(0.0) == pytest.approx(VDD, abs=0.05)
        assert out.values[-1] == pytest.approx(0.0, abs=0.05)

    def test_tie_levels(self):
        from repro.gates.library import aoi21, oai21
        a = aoi21()
        assert a.tie_level_high("b") and not a.tie_level_high("c")
        o = oai21()
        assert not o.tie_level_high("b") and o.tie_level_high("c")

    def test_three_inputs(self):
        gate = standard_cell("AOI21_X1")
        assert gate.inputs == ["a", "b", "c"]
        assert gate.input_capacitance("c") > 0

    def test_thevenin_fit(self):
        from repro.gates import characterize_thevenin
        model = characterize_thevenin(standard_cell("AOI21_X2"),
                                      0.2 * NS, output_rising=False,
                                      c_load=40 * FF)
        assert model.rth > 0
        assert not model.rising

    def test_quiet_holding(self):
        gate = standard_cell("OAI21_X1")
        assert 50 < gate.holding_resistance(True) < 1e6
        assert 50 < gate.holding_resistance(False) < 1e6
