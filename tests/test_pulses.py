"""Tests for repro.waveform.pulses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import NS, PS, V
from repro.waveform import (
    pulse_peak,
    pulse_width,
    raised_cosine_pulse,
    ramp,
    step,
    triangular_pulse,
)


class TestRamp:
    def test_endpoints(self):
        w = ramp(1 * NS, 0.2 * NS, 0.0, 1.8)
        assert w(1 * NS) == 0.0
        assert w(1.2 * NS) == pytest.approx(1.8)
        assert w(1.1 * NS) == pytest.approx(0.9)

    def test_pad(self):
        w = ramp(1 * NS, 0.2 * NS, 0.0, 1.8, pad=0.5 * NS)
        assert w.t_start == pytest.approx(0.5 * NS)
        assert w.t_end == pytest.approx(1.7 * NS)

    def test_falling(self):
        w = ramp(0.0, 1 * NS, 1.8, 0.0)
        assert w(0.5 * NS) == pytest.approx(0.9)

    def test_invalid_transition(self):
        with pytest.raises(ValueError):
            ramp(0, 0, 0, 1)


class TestStep:
    def test_step_is_sharp(self):
        w = step(1 * NS, 0.0, 1.8)
        assert w(1 * NS - 1 * PS) == 0.0
        assert w(1 * NS + 1 * PS) == pytest.approx(1.8)


class TestTriangularPulse:
    def test_peak_location_and_height(self):
        p = triangular_pulse(2 * NS, -0.6, 0.3 * NS)
        t, h = pulse_peak(p)
        assert t == pytest.approx(2 * NS)
        assert h == pytest.approx(-0.6)

    def test_width_at_half_height(self):
        p = triangular_pulse(2 * NS, 0.6, 0.3 * NS)
        assert pulse_width(p) == pytest.approx(0.3 * NS, rel=1e-9)

    def test_baseline(self):
        p = triangular_pulse(2 * NS, 0.5, 0.3 * NS, baseline=1.8)
        assert p(0.0) == pytest.approx(1.8)
        assert p(2 * NS) == pytest.approx(2.3)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            triangular_pulse(0, 1, 0)


class TestRaisedCosinePulse:
    def test_peak(self):
        p = raised_cosine_pulse(1 * NS, 0.9, 0.2 * NS)
        t, h = pulse_peak(p)
        assert t == pytest.approx(1 * NS, abs=5 * PS)
        assert h == pytest.approx(0.9, rel=1e-3)

    def test_width_at_half_height(self):
        p = raised_cosine_pulse(1 * NS, 0.9, 0.2 * NS, samples=257)
        assert pulse_width(p) == pytest.approx(0.2 * NS, rel=1e-3)

    def test_support_is_twice_width(self):
        p = raised_cosine_pulse(1 * NS, 0.9, 0.2 * NS)
        assert p.t_start == pytest.approx(0.8 * NS)
        assert p.t_end == pytest.approx(1.2 * NS)
        assert p(0.8 * NS) == pytest.approx(0.0, abs=1e-12)

    def test_negative_height(self):
        p = raised_cosine_pulse(1 * NS, -0.9, 0.2 * NS)
        _, h = pulse_peak(p)
        assert h == pytest.approx(-0.9, rel=1e-3)


class TestPulseMetrics:
    def test_width_fraction_validation(self):
        p = triangular_pulse(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            pulse_width(p, fraction=0.0)
        with pytest.raises(ValueError):
            pulse_width(p, fraction=1.0)

    def test_width_other_fraction(self):
        # Triangle with half-height width w has width 2w(1-f) at fraction f.
        p = triangular_pulse(0.0, 1.0, 0.5)
        assert pulse_width(p, fraction=0.25) == pytest.approx(0.75, rel=1e-9)

    def test_flat_waveform_zero_width(self):
        from repro.waveform import Waveform
        flat = Waveform.constant(0.0, 0.0, 1.0)
        assert pulse_width(flat) == 0.0

    def test_peak_with_nonzero_settle(self):
        # Pulse that settles at a non-zero baseline.
        from repro.waveform import Waveform
        w = Waveform([0, 1, 2, 3], [1.8, 1.1, 1.8, 1.8])
        t, h = pulse_peak(w)
        assert t == 1.0
        assert h == pytest.approx(-0.7)

    @given(st.floats(0.05, 1.5), st.floats(0.05, 2.0),
           st.sampled_from([1.0, -1.0]))
    @settings(max_examples=80)
    def test_triangle_roundtrip(self, height, width, sign):
        p = triangular_pulse(5.0, sign * height, width)
        t, h = pulse_peak(p)
        assert t == pytest.approx(5.0)
        assert h == pytest.approx(sign * height, rel=1e-9)
        assert pulse_width(p) == pytest.approx(width, rel=1e-6)

    @given(st.floats(0.05, 1.5), st.floats(0.05, 2.0))
    @settings(max_examples=80)
    def test_raised_cosine_roundtrip(self, height, width):
        p = raised_cosine_pulse(5.0, height, width, samples=201)
        _, h = pulse_peak(p)
        assert h == pytest.approx(height, rel=1e-3)
        assert pulse_width(p) == pytest.approx(width, rel=5e-3)


class TestNoisePulse:
    """The asymmetric double-exponential characterization pulse."""

    def test_peak_and_width_convention(self):
        from repro.waveform import noise_pulse
        p = noise_pulse(2 * NS, -0.5, 0.25 * NS)
        t, h = pulse_peak(p)
        assert t == pytest.approx(2 * NS, abs=2 * PS)
        assert h == pytest.approx(-0.5, rel=1e-3)
        assert pulse_width(p) == pytest.approx(0.25 * NS, rel=0.02)

    def test_asymmetry_tail_longer_than_rise(self):
        from repro.waveform import noise_pulse
        import numpy as np
        p = noise_pulse(0.0, 1.0, 0.2 * NS, asymmetry=4.0)
        t_peak, h = pulse_peak(p)
        half = 0.5 * h
        crossings = p.crossings(half)
        rise = t_peak - crossings[0]
        fall = crossings[-1] - t_peak
        assert fall > 1.5 * rise

    def test_higher_asymmetry_longer_tail(self):
        from repro.waveform import noise_pulse
        p2 = noise_pulse(0.0, 1.0, 0.2 * NS, asymmetry=2.0)
        p6 = noise_pulse(0.0, 1.0, 0.2 * NS, asymmetry=6.0)
        assert p6.t_end - 0.0 > p2.t_end - 0.0

    def test_baseline(self):
        from repro.waveform import noise_pulse
        p = noise_pulse(0.0, -0.4, 0.2 * NS, baseline=1.8)
        assert p.values[0] == pytest.approx(1.8)
        t, h = pulse_peak(p)
        assert h == pytest.approx(-0.4, rel=1e-3)

    def test_validation(self):
        from repro.waveform import noise_pulse
        with pytest.raises(ValueError):
            noise_pulse(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            noise_pulse(0.0, 1.0, 1 * NS, asymmetry=1.0)

    @given(st.floats(0.05, 1.5), st.floats(0.05, 2.0),
           st.floats(1.5, 8.0))
    @settings(max_examples=60)
    def test_roundtrip(self, height, width, asymmetry):
        from repro.waveform import noise_pulse
        p = noise_pulse(3.0, -height, width, asymmetry=asymmetry)
        _, h = pulse_peak(p)
        assert h == pytest.approx(-height, rel=1e-3)
        assert pulse_width(p) == pytest.approx(width, rel=0.03)


class TestHalfCrossings:
    """Regression for the half-width extraction on rippled shapes.

    The original implementation fed whole pulse flanks to ``np.interp``
    as ``xp`` — valid only for monotone flanks.  ``np.interp`` does not
    check monotonicity, so a ripple on a flank silently produced a wrong
    crossing (and hence a wrong width scale) instead of an error.
    """

    def _rippled(self):
        t = np.linspace(0.0, 10.0, 201)
        # Main pulse at t=3 plus a sub-half-height ripple on the tail.
        shape = (np.exp(-((t - 3.0) / 1.2) ** 2)
                 + 0.35 * np.exp(-((t - 6.5) / 0.6) ** 2))
        return t, shape

    def test_rippled_crossings_sit_on_the_level(self):
        from repro.waveform.pulses import _half_crossings

        t, shape = self._rippled()
        peak_idx = int(shape.argmax())
        level = 0.5 * float(shape.max())
        left, right = _half_crossings(t, shape, peak_idx, level)
        assert left < t[peak_idx] < right
        # The crossings lie on the sampled polyline at exactly `level`…
        assert np.interp(left, t, shape) == pytest.approx(level, rel=1e-9)
        assert np.interp(right, t, shape) == pytest.approx(level, rel=1e-9)
        # …and bracket a contiguous above-level region around the peak.
        inside = shape[(t > left) & (t < right)]
        assert (inside >= level).all()

    def test_np_interp_on_rippled_flank_was_wrong(self):
        """Documents the failure mode the walk replaces: with a ripple
        crossing the half-height level, np.interp's binary search on the
        non-monotone flank returns the *ripple's* outer crossing instead
        of the one adjacent to the peak, silently inflating the width."""
        from repro.waveform.pulses import _half_crossings

        t = np.linspace(0.0, 10.0, 201)
        shape = (np.exp(-((t - 3.0) / 1.2) ** 2)
                 + 0.7 * np.exp(-((t - 6.5) / 0.6) ** 2))
        peak_idx = int(shape.argmax())
        level = 0.5 * float(shape.max())
        _, right = _half_crossings(t, shape, peak_idx, level)
        old_right = float(np.interp(level, shape[peak_idx:][::-1],
                                    t[peak_idx:][::-1]))
        assert right == pytest.approx(4.0, abs=0.1)  # peak-adjacent
        assert old_right - right > 2.0               # ripple flank

    def test_flat_tail_fallback(self):
        from repro.waveform.pulses import _half_crossings

        t = np.linspace(0.0, 1.0, 11)
        shape = np.ones(11)  # never drops below the level on either side
        left, right = _half_crossings(t, shape, 5, 0.5)
        assert left == t[0]
        assert right == t[-1]

    def test_noise_pulse_width_unchanged(self):
        """The walk reproduces np.interp's crossings on the monotone
        canonical shape: constructed widths still hit their target."""
        from repro.waveform import noise_pulse

        for asymmetry in (1.5, 2.0, 4.0, 8.0):
            p = noise_pulse(1.0 * NS, 0.3, 0.2 * NS, asymmetry=asymmetry)
            assert pulse_width(p) == pytest.approx(0.2 * NS, rel=1e-3)
