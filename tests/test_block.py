"""Tests for repro.core.block (the full windows <-> noise loop)."""

import pytest

from repro.bench.netgen import canonical_net
from repro.core.block import BlockAnalyzer, BlockNet
from repro.sta import TimingGraph, Window
from repro.units import NS, PS


def small_block(agg_window=(0.0, 0.6 * NS)):
    """One coupled net inside a 3-node graph with an aggressor path."""
    graph = TimingGraph()
    graph.add_input("launch", Window(0.1 * NS, 0.2 * NS))
    graph.add_input("agg_in", Window(*agg_window))
    # Seed estimate; the block loop replaces it with measured delays.
    graph.add_edge("launch", "rcv_out", 0.3 * NS, 0.5 * NS)
    graph.add_edge("rcv_out", "capture", 0.1 * NS, 0.12 * NS)
    graph.add_edge("agg_in", "agg_out", 0.02 * NS, 0.05 * NS)

    net = canonical_net(name="blknet")
    block_net = BlockNet(net=net, launch_node="launch",
                         receiver_node="rcv_out",
                         aggressor_nodes={"agg0": "agg_out"})
    return graph, [block_net]


class TestBlockAnalyzer:
    def test_unique_names_required(self, analyzer):
        graph, nets = small_block()
        with pytest.raises(ValueError, match="unique"):
            BlockAnalyzer(graph, nets + nets, analyzer)

    def test_converges(self, analyzer):
        graph, nets = small_block()
        block = BlockAnalyzer(graph, nets, analyzer)
        report = block.run(max_iterations=4)
        assert report.converged
        assert report.iterations <= 4

    def test_overlapping_aggressor_adds_delta(self, analyzer):
        graph, nets = small_block(agg_window=(0.0, 1.2 * NS))
        block = BlockAnalyzer(graph, nets, analyzer)
        report = block.run()
        assert report.deltas["blknet"] > 10 * PS
        # Stage delay and delta both present on the victim edge.
        d_min, d_max = graph.edge_delay("launch", "rcv_out")
        assert d_max == pytest.approx(
            report.stage_delays["blknet"] + report.deltas["blknet"])
        # Capture window reflects the measured stage + noise.
        assert report.windows["capture"].latest > \
            report.windows["launch"].latest

    def test_distant_aggressor_no_delta(self, analyzer):
        """Aggressor windows far from the victim: the clamped alignment
        puts the pulse harmlessly away and the delta vanishes."""
        graph, nets = small_block(agg_window=(8 * NS, 9 * NS))
        block = BlockAnalyzer(graph, nets, analyzer)
        report = block.run()
        assert report.deltas["blknet"] < 5 * PS

    def test_victim_launch_tracks_window(self, analyzer):
        graph, nets = small_block()
        block = BlockAnalyzer(graph, nets, analyzer)
        report = block.run()
        net_report = report.reports["blknet"]
        # The victim's noiseless transition starts after its launch time.
        t50 = net_report.noiseless_input.crossing_time(0.9, rising=True)
        assert t50 > 0.2 * NS


class TestGraphValidation:
    """Regression: dangling node names used to surface mid-run as bare
    KeyErrors; they are now rejected at construction with the net and
    node named."""

    def test_missing_launch_node(self, analyzer):
        graph, nets = small_block()
        nets[0].launch_node = "nope"
        with pytest.raises(ValueError,
                           match=r"'blknet'.*launch node 'nope'"):
            BlockAnalyzer(graph, nets, analyzer)

    def test_missing_receiver_node(self, analyzer):
        graph, nets = small_block()
        nets[0].receiver_node = "ghost"
        with pytest.raises(ValueError,
                           match=r"'blknet'.*receiver node 'ghost'"):
            BlockAnalyzer(graph, nets, analyzer)

    def test_missing_victim_edge(self, analyzer):
        graph, nets = small_block()
        # Both nodes exist, but no arc connects them directly.
        nets[0].receiver_node = "capture"
        with pytest.raises(ValueError, match="no timing arc"):
            BlockAnalyzer(graph, nets, analyzer)

    def test_missing_aggressor_node(self, analyzer):
        graph, nets = small_block()
        nets[0].aggressor_nodes = {"agg0": "phantom"}
        with pytest.raises(ValueError,
                           match=r"aggressor 'agg0'.*'phantom'"):
            BlockAnalyzer(graph, nets, analyzer)


class TestParallelRun:
    @staticmethod
    def two_net_block():
        """Two independent victims fanning out of one launch node."""
        graph = TimingGraph()
        graph.add_input("launch", Window(0.1 * NS, 0.2 * NS))
        graph.add_input("agg_in", Window(0.0, 0.6 * NS))
        graph.add_edge("launch", "rcv_a", 0.3 * NS, 0.5 * NS)
        graph.add_edge("launch", "rcv_b", 0.3 * NS, 0.5 * NS)
        graph.add_edge("agg_in", "agg_out", 0.02 * NS, 0.05 * NS)
        nets = [
            BlockNet(net=canonical_net(name="neta"),
                     launch_node="launch", receiver_node="rcv_a",
                     aggressor_nodes={"agg0": "agg_out"}),
            BlockNet(net=canonical_net(name="netb", coupling_ratio=0.8),
                     launch_node="launch", receiver_node="rcv_b",
                     aggressor_nodes={"agg0": "agg_out"}),
        ]
        return graph, nets

    def test_parallel_run_matches_serial(self, analyzer):
        """run(jobs=2) is bit-identical to the serial fixed point."""
        # Fresh graphs each: run() mutates the victim edge delays.
        graph_s, nets_s = self.two_net_block()
        serial = BlockAnalyzer(graph_s, nets_s, analyzer).run(
            max_iterations=2, jobs=1)
        graph_p, nets_p = self.two_net_block()
        parallel = BlockAnalyzer(graph_p, nets_p, analyzer).run(
            max_iterations=2, jobs=2)
        assert parallel.deltas == serial.deltas
        assert parallel.stage_delays == serial.stage_delays
        assert parallel.iterations == serial.iterations
        assert len(parallel.exec_stats) == parallel.iterations
        assert parallel.exec_stats[0].jobs == 2
        # Workers never re-characterize.
        assert all(s.cache_misses == 0 for s in parallel.exec_stats)


class TestCascadedNets:
    """Two coupled nets in a chain: the first net's delta widens the
    second victim's launch window — the cross-net interaction the block
    loop exists to resolve."""

    @pytest.fixture(scope="class")
    def block(self, analyzer):
        graph = TimingGraph()
        graph.add_input("launch", Window(0.1 * NS, 0.15 * NS))
        graph.add_input("agg1_in", Window(0.0, 1.0 * NS))
        graph.add_input("agg2_in", Window(0.0, 2.0 * NS))
        graph.add_edge("launch", "rcv1", 0.3 * NS, 0.5 * NS)
        graph.add_edge("rcv1", "rcv2", 0.3 * NS, 0.5 * NS)
        graph.add_edge("agg1_in", "agg1", 0.02 * NS, 0.05 * NS)
        graph.add_edge("agg2_in", "agg2", 0.02 * NS, 0.05 * NS)

        nets = [
            BlockNet(net=canonical_net(name="stage1"),
                     launch_node="launch", receiver_node="rcv1",
                     aggressor_nodes={"agg0": "agg1"}),
            BlockNet(net=canonical_net(name="stage2"),
                     launch_node="rcv1", receiver_node="rcv2",
                     aggressor_nodes={"agg0": "agg2"}),
        ]
        analyzer_block = BlockAnalyzer(graph, nets, analyzer)
        return analyzer_block, analyzer_block.run(max_iterations=4)

    def test_converges(self, block):
        _b, report = block
        assert report.converged

    def test_both_stages_analyzed(self, block):
        _b, report = block
        assert set(report.reports) == {"stage1", "stage2"}
        assert report.deltas["stage1"] > 10 * PS
        assert report.deltas["stage2"] > 10 * PS

    def test_stage2_launch_includes_stage1_delta(self, block):
        b, report = block
        w1 = report.windows["rcv1"]
        # rcv1 latest = launch latest + stage1 (delay + delta).
        expected = (0.15 * NS + report.stage_delays["stage1"]
                    + report.deltas["stage1"])
        assert w1.latest == pytest.approx(expected, abs=1 * PS)

    def test_endpoint_slack_accounts_for_both_deltas(self, block):
        b, report = block
        requirement = {"rcv2": report.windows["rcv2"].latest - 1 * PS}
        assert b.graph.worst_slack(requirement) == pytest.approx(
            -1 * PS, abs=0.1 * PS)
