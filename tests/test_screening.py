"""Tests for repro.core.screening (tiered population screening).

The load-bearing property is *soundness*: a net pruned at tier 0 or
tier 1 must really be below the noise threshold when the full tier-2
analysis runs.  The conservatism tests check each tier's figure
dominates the measured composite pulse height on seeded populations;
the fault-injection test proves the prune audit — not the estimator —
catches a silently deflated estimate.
"""

import numpy as np
import pytest

from repro.bench.netgen import NetGenConfig, NetGenerator, canonical_net
from repro.circuit import Circuit, GROUND, build_mna
from repro.circuit.topology import couple_nodes, rc_line
from repro.core.screening import (
    DEFAULT_GUARD_BAND,
    TIER_POLICIES,
    ScreeningConfig,
    audit_prunes,
    screen_population,
    tier0_bound,
    tier1_estimate,
    triage,
)
from repro.mor import ReducedModel
from repro.resilience import FaultPlan, clear_faults, install_faults
from repro.sim.linear import simulate_linear
from repro.units import FF, KOHM, NS
from repro.waveform import Waveform


@pytest.fixture(autouse=True)
def no_leaked_faults():
    clear_faults()
    yield
    clear_faults()


def screening_population(count=10, seed=3):
    gen = NetGenerator(seed=seed, config=NetGenConfig.screening())
    return gen.population(count)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestConfig:
    def test_defaults(self):
        cfg = ScreeningConfig(noise_threshold=0.5)
        assert cfg.policy == "auto"
        assert cfg.guard_band == DEFAULT_GUARD_BAND

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="noise_threshold"):
            ScreeningConfig(noise_threshold=0.0)

    def test_policy_validated(self):
        with pytest.raises(ValueError, match="policy"):
            ScreeningConfig(noise_threshold=0.5, policy="nope")
        for policy in TIER_POLICIES:
            ScreeningConfig(noise_threshold=0.5, policy=policy)

    def test_guard_band_floor(self):
        with pytest.raises(ValueError, match="guard_band"):
            ScreeningConfig(noise_threshold=0.5, guard_band=0.9)

    def test_victim_r_scale_floor(self):
        with pytest.raises(ValueError, match="victim_r_scale"):
            ScreeningConfig(noise_threshold=0.5, victim_r_scale=0.5)


# ----------------------------------------------------------------------
# Tier 0: closed-form charge-sharing bound
# ----------------------------------------------------------------------
class TestTier0Bound:
    def test_positive_and_below_vdd(self):
        net = canonical_net(n_aggressors=2)
        bound = tier0_bound(net)
        assert 0.0 < bound < net.vdd

    def test_no_aggressors_is_zero(self):
        net = canonical_net(n_aggressors=0)
        assert tier0_bound(net) == 0.0

    def test_monotonic_in_coupling(self):
        """Doubling the coupling caps must not lower the bound."""
        from dataclasses import replace

        from repro.core.filtering import partition_nodes

        gen = NetGenerator(seed=5, config=NetGenConfig.screening())
        net = gen.population(1)[0]
        base = tier0_bound(net)
        boosted = net.interconnect.copy("boosted")
        assignment = partition_nodes(net)
        for cap in list(boosted.capacitors):
            a = assignment.get(cap.node1)
            b = assignment.get(cap.node2)
            if "victim" in (a, b) and a != b and a is not None \
                    and b is not None:
                boosted.add_capacitor(f"x_{cap.name}", cap.node1,
                                      cap.node2, cap.capacitance)
        doubled = replace(net, interconnect=boosted)
        assert tier0_bound(doubled) >= base

    def test_conservative_vs_full_analysis(self, analyzer):
        """The bound dominates the measured pulse height — the property
        every prune rests on."""
        for net in screening_population(count=6, seed=11):
            bound = tier0_bound(net)
            report = analyzer.analyze(net, alignment="table")
            assert bound >= abs(report.pulse_height), net.name


# ----------------------------------------------------------------------
# Tier 1: reduced-order linear estimate
# ----------------------------------------------------------------------
class TestTier1Estimate:
    def test_finite_and_nonnegative(self):
        net = canonical_net(n_aggressors=2)
        estimate = tier1_estimate(net)
        assert np.isfinite(estimate)
        assert estimate >= 0.0

    def test_no_aggressors_is_zero(self):
        assert tier1_estimate(canonical_net(n_aggressors=0)) == 0.0

    def test_guard_band_scales_linearly(self):
        net = canonical_net(n_aggressors=1)
        lo = tier1_estimate(net, config=ScreeningConfig(
            noise_threshold=0.5, guard_band=1.0))
        hi = tier1_estimate(net, config=ScreeningConfig(
            noise_threshold=0.5, guard_band=2.0))
        assert hi == pytest.approx(2.0 * lo)

    def test_conservative_vs_full_analysis(self, analyzer):
        """The guard-banded estimate dominates the nonlinear result."""
        for net in screening_population(count=5, seed=3):
            estimate = tier1_estimate(net)
            report = analyzer.analyze(net, alignment="table")
            assert estimate >= abs(report.pulse_height), net.name

    def test_tier1_adds_pruning_power(self):
        """At least one net whose charge bound crosses the threshold
        is still pruned by the sharper reduced-order estimate — the
        reason the tier exists."""
        nets = screening_population(count=40, seed=7)
        _, stats = triage(nets, ScreeningConfig(noise_threshold=0.45))
        assert stats.by_tier[1] >= 1
        assert stats.reasons.get("estimate-below-threshold", 0) >= 1


# ----------------------------------------------------------------------
# MOR soundness at extracted scale
# ----------------------------------------------------------------------
class TestMorSoundness:
    def _coupled_pair(self, segments):
        """Victim/aggressor RC pair: victim held, aggressor driven
        through a source resistor by a current ramp — the tier-1
        circuit shape, built explicitly."""
        circuit = Circuit("pair")
        v_nodes = rc_line(circuit, "v_", "v_root", "v_rcv", segments,
                          1 * KOHM, 20 * FF)
        a_nodes = rc_line(circuit, "a_", "a_root", "a_far", segments,
                          1 * KOHM, 20 * FF)
        couple_nodes(circuit, "cc_", v_nodes, a_nodes, 15 * FF)
        circuit.add_resistor("hold", "v_root", GROUND, 2 * KOHM)
        slew = 0.1 * NS
        # Norton drive at the aggressor root, exactly as tier 1 stamps
        # it: shunt source resistor plus a grounded current ramp.  A
        # series drive node would leave the aggressor chain floating at
        # DC (singular G) and a bare Python callable would stamp as an
        # object, so both must match the production shape.
        circuit.add_resistor("rsrc", "a_root", GROUND, 10.0)
        ramp = Waveform([0.0, slew, 1000 * slew],
                        [0.0, 1.8 / 10.0, 1.8 / 10.0])
        circuit.add_isource("iin", GROUND, "a_root", ramp)
        return circuit, slew

    def test_reduced_tracks_dense_transient(self):
        """Order-8 PRIMA output matches the dense linear transient at
        the victim receiver within a few percent of vdd."""
        circuit, slew = self._coupled_pair(segments=24)
        mna = build_mna(circuit)
        times = np.linspace(0.0, 8 * slew, 400)
        model = ReducedModel.from_mna(mna, ["v_rcv"], 8)
        inputs = np.array([[1.8 * min(max(t / slew, 0.0), 1.0) / 10.0
                            for t in times]])
        reduced = model.simulate(times, inputs)["v_rcv"].values

        run = simulate_linear(mna, times[-1], times[1] - times[0])
        full = run.states[mna.index_of("v_rcv")]
        grid = np.interp(times, run.times, full)
        assert np.max(np.abs(reduced - grid)) < 0.05 * 1.8
        assert abs(np.max(np.abs(reduced))
                   - np.max(np.abs(grid))) < 0.03 * 1.8

    def test_passivity_at_extracted_scale(self):
        """~1000-unknown coupled system (built through the sparse MNA
        backend): the congruence projection must keep the reduced
        poles strictly stable — the property the Norton drive exists
        to preserve."""
        circuit, _ = self._coupled_pair(segments=500)
        sparse = build_mna(circuit, sparse=True)
        assert sparse.dim >= 1000
        dense = build_mna(circuit, sparse=False)
        model = ReducedModel.from_mna(dense, ["v_rcv"], 10)
        poles = np.linalg.eigvals(
            np.linalg.solve(model.Cr, -model.Gr))
        assert np.all(poles.real < 0.0), poles
        # Moment match at DC, observed at the driven net's far end
        # (the victim receiver's DC transfer is identically zero —
        # capacitive coupling only — so it cannot anchor a relative
        # check).  All DC current returns through the 10-ohm source
        # resistor, so the exact gain is known too.
        far = ReducedModel.from_mna(dense, ["a_far"], 10)
        x_full = np.linalg.solve(dense.G.toarray()
                                 if hasattr(dense.G, "toarray")
                                 else dense.G,
                                 dense.input_incidence())
        full_dc = (dense.output_incidence(["a_far"]).T @ x_full)[0, 0]
        z_red = np.linalg.solve(far.Gr, far.Br)
        red_dc = (far.Lr.T @ z_red)[0, 0]
        # isource(GROUND, a_root) drives current out of a_root, so the
        # observed DC gain is minus the source resistance.
        assert full_dc == pytest.approx(-10.0, rel=1e-9)
        assert red_dc == pytest.approx(full_dc, rel=1e-6)


# ----------------------------------------------------------------------
# Triage
# ----------------------------------------------------------------------
class TestTriage:
    def test_full_policy_escalates_everything(self):
        nets = screening_population(count=6)
        decisions, stats = triage(nets, ScreeningConfig(
            noise_threshold=0.45, policy="full"))
        assert all(not d.pruned and d.tier == 2 for d in decisions)
        assert stats.pruned == 0
        assert stats.escalated == len(nets)
        assert set(stats.reasons) == {"policy-full"}

    def test_bound_only_never_runs_tier1(self):
        nets = screening_population(count=8)
        decisions, stats = triage(nets, ScreeningConfig(
            noise_threshold=0.45, policy="bound-only"))
        assert stats.by_tier[1] == 0
        assert all(d.estimate is None for d in decisions)
        assert set(stats.reasons) <= {"bound-below-threshold",
                                      "bound-above-threshold"}

    def test_auto_accounting(self):
        nets = screening_population(count=10)
        decisions, stats = triage(nets,
                                  ScreeningConfig(noise_threshold=0.45))
        assert stats.total == len(nets)
        assert sum(stats.by_tier.values()) == len(nets)
        assert stats.pruned + stats.escalated == len(nets)
        assert 0.0 <= stats.pruned_fraction <= 1.0
        for decision in decisions:
            assert decision.seconds >= 0.0
            if decision.tier == 0:
                assert decision.estimate is None
                assert decision.figure == decision.bound
            if decision.estimate is not None:
                assert decision.figure == decision.estimate

    def test_huge_threshold_prunes_everything_at_tier0(self):
        nets = screening_population(count=6)
        decisions, stats = triage(nets, ScreeningConfig(
            noise_threshold=100.0))
        assert stats.pruned == len(nets)
        assert stats.by_tier[0] == len(nets)

    def test_tiny_threshold_escalates_everything(self):
        nets = screening_population(count=4)
        _, stats = triage(nets, ScreeningConfig(noise_threshold=1e-9))
        assert stats.escalated == len(nets)

    def test_decision_round_trip(self):
        nets = screening_population(count=3)
        decisions, stats = triage(nets,
                                  ScreeningConfig(noise_threshold=0.45))
        for decision in decisions:
            payload = decision.to_dict()
            assert payload["net_name"] == decision.net_name
            assert payload["tier"] == decision.tier
        snap = stats.to_dict()
        assert snap["total"] == len(nets)
        assert set(snap["by_tier"]) == {"0", "1", "2"}


# ----------------------------------------------------------------------
# Pruning soundness
# ----------------------------------------------------------------------
class TestPruneSoundness:
    THRESHOLD = 0.45

    def test_every_prune_below_threshold(self, analyzer):
        """rate=1.0 audit: all pruned nets re-run at tier 2 measure
        below the threshold — zero unsound prunes."""
        nets = screening_population(count=10, seed=3)
        config = ScreeningConfig(noise_threshold=self.THRESHOLD)
        decisions, _ = triage(nets, config)
        audit = audit_prunes(nets, decisions, config=config,
                             analyzer=analyzer, rate=1.0,
                             analyze_kwargs={"alignment": "table"})
        assert audit["ok"], audit
        assert audit["unsound_prunes"] == 0
        assert audit["checked"] == audit["eligible"] \
            == sum(1 for d in decisions if d.pruned)

    def test_injected_underestimate_caught_by_audit(self, analyzer):
        """A silently deflated tier-1 estimate (fault injection at
        ``screening.estimate``) prunes a genuinely loud net; nothing
        raises, but the tier-2 audit must flag the unsound prune."""
        # seed=1/net18 measures ~0.56 V at tier 2 — above the 0.45 V
        # threshold — but escalates only via its tier-1 estimate.
        nets = NetGenerator(
            seed=1, config=NetGenConfig.screening()).population(19)
        config = ScreeningConfig(noise_threshold=self.THRESHOLD)
        clean_decisions, _ = triage(nets, config)
        clean = {d.net_name: d for d in clean_decisions}
        assert not clean["net18"].pruned

        install_faults(FaultPlan().add("screening.estimate",
                                      match="net18", action="nan"))
        decisions, _ = triage(nets, config)
        deflated = {d.net_name: d for d in decisions}
        assert deflated["net18"].pruned
        clear_faults()  # the audit itself must run clean

        audit = audit_prunes(nets, decisions, config=config,
                             analyzer=analyzer, rate=1.0,
                             analyze_kwargs={"alignment": "table"})
        assert not audit["ok"]
        assert audit["unsound_prunes"] >= 1
        assert any(entry["net"] == "net18"
                   for entry in audit["unsound"])

    def test_audit_rate_validation(self, analyzer):
        nets = screening_population(count=2)
        config = ScreeningConfig(noise_threshold=0.45)
        decisions, _ = triage(nets, config)
        with pytest.raises(ValueError, match="rate"):
            audit_prunes(nets, decisions, config=config,
                         analyzer=analyzer, rate=1.5)


# ----------------------------------------------------------------------
# End-to-end screen_population (pool integration)
# ----------------------------------------------------------------------
class TestScreenPopulation:
    def test_pruned_nets_skip_analysis(self, analyzer):
        from repro.obs.progress import Heartbeat

        nets = screening_population(count=8, seed=3)
        config = ScreeningConfig(noise_threshold=0.45)
        beats: list[Heartbeat] = []
        result = screen_population(nets, config, analyzer=analyzer,
                                   analyze_kwargs={"alignment": "table"},
                                   on_heartbeat=beats.append)
        assert result.stats.total == len(nets)
        assert result.stats.pruned > 0
        reports = dict(zip([n.name for n in nets],
                           result.exec_result.reports))
        for decision in result.decisions:
            if decision.pruned:
                assert reports[decision.net_name] is None
                assert not result.exec_result.analyzed(
                    decision.net_name)
            else:
                assert reports[decision.net_name] is not None
                assert result.exec_result.analyzed(decision.net_name)
        # One heartbeat per net, carrying the settling tier.
        assert len(beats) == len(nets)
        tiers = {b.net: b.tier for b in beats}
        for decision in result.decisions:
            expected = decision.tier if decision.pruned else 2
            assert tiers[decision.net_name] == expected
        # Pool-level prune accounting agrees with the triage stats.
        pool_stats = result.exec_result.stats
        assert pool_stats.pruned == result.stats.pruned
        assert sum(pool_stats.pruned_by_tier.values()) \
            == result.stats.pruned
        assert result.decision_for(nets[0].name).net_name \
            == nets[0].name

    def test_to_dict_shape(self, analyzer):
        nets = screening_population(count=4, seed=3)
        result = screen_population(
            nets, ScreeningConfig(noise_threshold=100.0),
            analyzer=analyzer)
        payload = result.to_dict()
        assert payload["pruned"] == len(nets)
        assert payload["by_tier"]["0"] == len(nets)
