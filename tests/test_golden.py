"""Tests for repro.core.golden (full non-linear co-simulation)."""

import pytest

from repro.core.golden import (
    golden_circuit,
    golden_extra_delays,
    golden_simulation,
)
from repro.units import NS, PS

VDD = 1.8


class TestGoldenCircuit:
    def test_structure(self, single_aggressor_net):
        circuit = golden_circuit(single_aggressor_net)
        # Victim driver (2) + aggressor driver (2) + receiver (2).
        assert len(circuit.mosfets) == 6
        assert len(circuit.vsources) == 3  # vdd + 2 driver inputs

    def test_quiet_aggressors_constant_input(self, single_aggressor_net):
        circuit = golden_circuit(single_aggressor_net,
                                 aggressors_switching=False)
        agg_vin = [v for v in circuit.vsources if v.name.startswith("ad_")]
        assert len(agg_vin) == 1
        assert isinstance(agg_vin[0].value, float)


class TestGoldenSimulation:
    @pytest.fixture(scope="class")
    def clean(self, single_aggressor_net):
        return golden_simulation(single_aggressor_net, 3 * NS,
                                 aggressors_switching=False)

    def test_victim_transitions(self, clean):
        assert clean.at_receiver_input(0.0) == pytest.approx(0.0, abs=0.02)
        assert clean.at_receiver_input.values[-1] == \
            pytest.approx(VDD, abs=0.02)

    def test_receiver_output_inverts(self, clean):
        assert clean.at_receiver_output(0.0) == pytest.approx(VDD,
                                                              abs=0.05)
        assert clean.at_receiver_output.values[-1] == \
            pytest.approx(0.0, abs=0.05)

    def test_quiet_aggressor_stays_high(self, clean, single_aggressor_net):
        agg_root = clean.result.voltage(
            single_aggressor_net.aggressors[0].root)
        lo, hi = agg_root.value_range()
        # Falling-aggressor quiet level is the high rail; slight sag from
        # victim coupling back into it is expected.
        assert lo > 0.5 * VDD
        assert hi < 1.1 * VDD

    def test_switching_aggressor_injects(self, single_aggressor_net,
                                         clean):
        noisy = golden_simulation(single_aggressor_net, 3 * NS,
                                  aggressor_shifts={"agg0": 0.1 * NS})
        noise = noisy.at_receiver_input - clean.at_receiver_input
        assert noise.value_range()[0] < -0.1


class TestGoldenDelays:
    def test_noise_increases_delay(self, single_aggressor_net,
                                   single_engine):
        from repro.waveform.pulses import pulse_peak
        vic = single_engine.victim_transition_absolute().at_receiver
        t50 = vic.crossing_time(VDD / 2, rising=True)
        t_peak, _ = pulse_peak(
            single_engine.aggressor_noise("agg0").at_receiver)
        shifts = {"agg0": t50 - t_peak}
        delays = golden_extra_delays(single_aggressor_net, 3.5 * NS,
                                     aggressor_shifts=shifts)
        assert delays.extra_input > 20 * PS
        assert delays.extra_output > 20 * PS

    def test_clean_reuse(self, single_aggressor_net):
        first = golden_extra_delays(single_aggressor_net, 3 * NS,
                                    aggressor_shifts={"agg0": 0.2 * NS})
        second = golden_extra_delays(single_aggressor_net, 3 * NS,
                                     aggressor_shifts={"agg0": 0.2 * NS},
                                     clean=first.clean)
        assert second.extra_input == pytest.approx(first.extra_input,
                                                   abs=0.1 * PS)

    def test_far_early_noise_harmless(self, single_aggressor_net):
        delays = golden_extra_delays(
            single_aggressor_net, 3 * NS,
            aggressor_shifts={"agg0": -3 * NS})
        assert abs(delays.extra_input) < 5 * PS
        assert abs(delays.extra_output) < 5 * PS
