"""Tests for repro.obs (tracing, metrics, logging, trace summaries)."""

import json
import logging

import numpy as np
import pytest

from repro.bench.netgen import canonical_net
from repro.exec import analyze_nets
from repro.obs import (
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    Tracer,
    current_tracer,
    disable_tracing,
    format_summary,
    metrics,
    read_trace,
    set_tracer,
    span,
    summarize_records,
    trace_total_time,
    verbosity_level,
    write_trace,
)
from repro.obs.trace import _NULL_SPAN
from repro.sim.nonlinear import ConvergenceError, _newton_solve


@pytest.fixture()
def tracer():
    """A fresh enabled tracer installed globally, restored afterwards."""
    previous = current_tracer()
    tracer = set_tracer(Tracer(enabled=True))
    yield tracer
    set_tracer(previous)


class TestTracer:
    def test_nesting_and_parenting(self, tracer):
        with span("outer", label="a") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with span("inner2"):
                pass
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner2"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["attrs"] == {"label": "a"}
        # Children finish first, so they precede their parent.
        assert [r["name"] for r in records] == \
            ["inner", "inner2", "outer"]
        assert all(r["dur"] >= 0 for r in records)

    def test_set_attrs_mid_span(self, tracer):
        with span("work") as sp:
            sp.set(iterations=3)
        (record,) = tracer.records()
        assert record["attrs"]["iterations"] == 3

    def test_exception_marks_span(self, tracer):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "ValueError"

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        cm = tracer.span("anything", x=1)
        assert cm is _NULL_SPAN
        with cm as sp:
            sp.set(y=2)  # must not raise
        assert tracer.records() == []

    def test_global_default_is_disabled(self):
        disable_tracing()
        assert not current_tracer().enabled
        with span("ignored"):
            pass
        assert current_tracer().records() == []

    def test_jsonl_roundtrip(self, tracer, tmp_path):
        with span("parent", net="n0"):
            with span("child"):
                pass
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(path)
        assert count == 2
        loaded = read_trace(path)
        assert loaded == tracer.records()
        # One JSON object per line.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["name"] for line in lines)

    def test_drain_clears_buffer(self, tracer):
        with span("one"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.records() == []

    def test_absorb_reparents_and_reids(self, tracer):
        worker = Tracer(enabled=True)
        with worker.span("net.analyze", net="w0"):
            with worker.span("net.alignment"):
                pass
        shipped = worker.drain()

        with span("exec.analyze_nets") as root:
            tracer.absorb(shipped)
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        assert by_name["net.analyze"]["parent"] == root.span_id
        assert by_name["net.alignment"]["parent"] == \
            by_name["net.analyze"]["id"]
        assert len({r["id"] for r in records}) == len(records)


class TestHistogram:
    def test_bucket_edges_inclusive(self):
        h = Histogram(bounds=(1, 2, 5))
        for value in (0, 1):        # <= 1 -> bucket 0
            h.observe(value)
        h.observe(2)                # == bound -> bucket 1
        h.observe(3)                # (2, 5] -> bucket 2
        h.observe(5)                # == last bound -> bucket 2
        h.observe(6)                # overflow bucket
        assert h.counts == [2, 1, 2, 1]
        assert h.count == 6
        assert h.total == pytest.approx(17.0)

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(bounds=(3, 1))
        with pytest.raises(ValueError, match="sorted"):
            Histogram(bounds=())

    def test_quantile(self):
        h = Histogram(bounds=(1, 2, 5))
        for _ in range(9):
            h.observe(1)
        h.observe(4)
        assert h.quantile(0.5) == 1
        assert h.quantile(0.95) == 5
        assert Histogram(bounds=(1,)).quantile(0.5) == 0.0

    def test_merge_requires_same_bounds(self):
        h = Histogram(bounds=(1, 2))
        with pytest.raises(ValueError, match="bounds"):
            h.merge({"bounds": [1, 3], "counts": [0, 0, 0],
                     "count": 0, "total": 0.0})

    def test_quantile_extremes(self):
        """q=0 and q=1 land on the first/last occupied bucket."""
        h = Histogram(bounds=(1, 2, 5))
        h.observe(2)
        h.observe(2)
        h.observe(4)
        assert h.quantile(0.0) == 2
        assert h.quantile(1.0) == 5

    def test_quantile_all_overflow(self):
        """Past-the-end observations report the last finite bound."""
        h = Histogram(bounds=(1, 2, 5))
        h.observe(100)
        h.observe(200)
        assert h.quantile(0.5) == 5
        assert h.quantile(1.0) == 5

    def test_quantile_single_bucket(self):
        h = Histogram(bounds=(5,))
        h.observe(3)
        assert h.quantile(0.0) == 5
        assert h.quantile(0.5) == 5
        assert h.quantile(1.0) == 5


class TestTimerMerge:
    def test_merge_empty_payload_is_noop(self):
        """A zero-count payload must not clobber min/max."""
        t = Timer()
        t.observe(2.0)
        empty = Timer().to_dict()
        assert empty["count"] == 0
        t.merge(empty)
        assert t.count == 1
        assert t.min == 2.0
        assert t.max == 2.0
        assert t.total == pytest.approx(2.0)

    def test_merge_empty_into_empty(self):
        t = Timer()
        t.merge(Timer().to_dict())
        assert t.count == 0
        assert t.to_dict()["min"] == 0.0  # serialized min is finite

    def test_merge_zero_count_with_stale_extrema(self):
        """Even a malformed zero-count payload carrying extrema is
        ignored: count gates the merge."""
        t = Timer()
        t.observe(5.0)
        t.merge({"count": 0, "total": 99.0, "min": 0.001, "max": 99.0})
        assert t.total == pytest.approx(5.0)
        assert t.min == 5.0
        assert t.max == 5.0


class TestGauge:
    def test_set_tracks_peak(self):
        g = Gauge()
        g.set(10.0)
        g.set(4.0)
        assert g.value == 4.0
        assert g.max == 10.0

    def test_merge_keeps_maximum(self):
        """Peak-merge: a jobs=N manifest reports the max over workers."""
        g = Gauge()
        g.set(100.0)
        g.merge({"value": 250.0, "max": 300.0})
        assert g.max == 300.0
        g.merge({"value": 5.0, "max": 7.0})
        assert g.max == 300.0

    def test_registry_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.gauge("rss").set(42.0)
        other = MetricsRegistry()
        other.merge_snapshot(reg.snapshot())
        assert other.gauge("rss").max == 42.0


class TestSpanImbalance:
    def test_out_of_order_exit_counts_imbalance(self, tracer):
        metrics().reset()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Exit the outer span while the inner one is still open.
        outer.__exit__(None, None, None)
        snap = metrics().snapshot()
        assert snap["counters"]["obs.span.imbalance"] == 1
        # The stack self-heals: the inner span still exits cleanly.
        inner.__exit__(None, None, None)
        assert metrics().snapshot()["counters"][
            "obs.span.imbalance"] == 1
        assert len(tracer.records()) == 2
        metrics().reset()

    def test_balanced_spans_do_not_count(self, tracer):
        metrics().reset()
        with span("a"):
            with span("b"):
                pass
        # Instrument identity survives reset, so the counter may exist
        # from an earlier test — it just must not have moved.
        assert metrics().snapshot()["counters"].get(
            "obs.span.imbalance", 0) == 0


class TestRegistry:
    def test_instrument_identity_survives_reset(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        counter.inc(5)
        reg.reset()
        assert counter.value == 0
        assert reg.counter("x") is counter

    def test_snapshot_merge_roundtrip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.timer("t").observe(0.5)
        a.histogram("h", bounds=(1, 2)).observe(1)
        b.counter("c").inc(1)
        b.merge_snapshot(a.snapshot())
        snap = b.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["timers"]["t"]["count"] == 1
        assert snap["timers"]["t"]["total"] == pytest.approx(0.5)
        assert snap["histograms"]["h"]["counts"] == [1, 0, 0]

    def test_timer_min_max(self):
        t = Timer()
        t.observe(0.2)
        t.observe(0.1)
        assert t.count == 2
        assert t.min == pytest.approx(0.1)
        assert t.max == pytest.approx(0.2)
        assert t.mean == pytest.approx(0.15)
        empty = Timer().to_dict()
        assert empty["min"] == 0.0

    def test_drain_resets(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        payload = reg.drain()
        assert payload["counters"]["n"] == 1
        assert reg.counter("n").value == 0


class TestNewtonTelemetry:
    def test_nonconvergence_message_and_counter(self):
        before = metrics().counter("newton.nonconverged").value
        jacobian = np.eye(2)

        def residual(_x):
            # Constant non-zero residual: the damped update never
            # shrinks below tolerance, so the solve must give up.
            return np.array([1e9, 1.0])

        with pytest.raises(ConvergenceError) as excinfo:
            _newton_solve(jacobian, residual, [], np.zeros(2), "test")
        message = str(excinfo.value)
        assert "worst residual" in message
        assert "1.000e+09" in message
        assert "node index 0" in message
        assert metrics().counter("newton.nonconverged").value == \
            before + 1

    def test_iterations_recorded(self):
        hist = metrics().histogram("newton.iterations")
        before = hist.count
        jacobian = np.eye(1)
        _newton_solve(jacobian, lambda x: x - 0.25, [], np.zeros(1),
                      "test")
        assert hist.count == before + 1


class TestPipelineTelemetry:
    @pytest.fixture(scope="class")
    def population(self):
        return [
            canonical_net(n_aggressors=1, name="obs0"),
            canonical_net(n_aggressors=1, coupling_ratio=0.7,
                          name="obs1"),
        ]

    def test_parallel_metrics_equal_serial(self, analyzer, population):
        """A jobs=2 run merges worker metrics into the parent registry
        with exactly the counts of the equivalent serial run."""
        # Warm everything first so both timed runs are characterization
        # free and therefore do identical numeric work.
        analyze_nets(population, jobs=1, analyzer=analyzer,
                     alignment="table")

        metrics().reset()
        analyze_nets(population, jobs=1, analyzer=analyzer,
                     alignment="table")
        serial = metrics().snapshot()

        metrics().reset()
        analyze_nets(population, jobs=2, analyzer=analyzer,
                     alignment="table")
        parallel = metrics().snapshot()

        assert serial["histograms"]["newton.iterations"] == \
            parallel["histograms"]["newton.iterations"]
        for name in ("analysis.nets", "alignment.probes",
                     "alignment.composites", "alignment.table_lookups"):
            assert serial["counters"][name] == \
                parallel["counters"][name], name
        assert parallel["counters"]["analysis.nets"] == 2

    def test_parallel_trace_in_input_order(self, analyzer, population,
                                           tracer):
        result = analyze_nets(population, jobs=2, analyzer=analyzer,
                              alignment="table")
        records = tracer.records()
        net_spans = [r for r in records if r["name"] == "net.analyze"]
        assert [r["attrs"]["net"] for r in net_spans] == \
            ["obs0", "obs1"]
        (exec_span,) = [r for r in records
                        if r["name"] == "exec.analyze_nets"]
        assert all(r["parent"] == exec_span["id"] for r in net_spans)
        # Every net's per-stage children made it across the process
        # boundary.
        for net_span in net_spans:
            child_names = {r["name"] for r in records
                           if r["parent"] == net_span["id"]}
            assert {"net.superposition", "net.receiver_eval",
                    "net.thevenin_reference"} <= child_names
        # The traced exec stage accounts for the measured wall time.
        assert exec_span["dur"] == \
            pytest.approx(result.stats.wall_time, rel=0.10)

    def test_failures_by_type(self, analyzer):
        broken = canonical_net(n_aggressors=1, name="broken-obs")
        broken.aggressors.clear()
        result = analyze_nets([broken], jobs=1, analyzer=analyzer,
                              alignment="table", warm=False)
        assert result.stats.failures_by_type == {"ValueError": 1}
        (failure,) = result.failures
        assert failure.error_type == "ValueError"

    def test_timeout_counted_by_type(self, analyzer):
        net = canonical_net(n_aggressors=1, name="slow-obs")
        result = analyze_nets([net], jobs=1, analyzer=analyzer,
                              timeout=0.001, alignment="table",
                              warm=False)
        assert result.stats.failures_by_type == {"NetTimeout": 1}


class TestSummary:
    RECORDS = [
        {"id": 2, "parent": 1, "name": "child", "start": 0.0,
         "dur": 0.3, "attrs": {}},
        {"id": 3, "parent": 1, "name": "child", "start": 0.4,
         "dur": 0.1, "attrs": {}},
        {"id": 1, "parent": None, "name": "root", "start": 0.0,
         "dur": 1.0, "attrs": {}},
    ]

    def test_self_vs_total(self):
        by_name = {s.name: s for s in summarize_records(self.RECORDS)}
        assert by_name["root"].total == pytest.approx(1.0)
        assert by_name["root"].self_time == pytest.approx(0.6)
        assert by_name["child"].count == 2
        assert by_name["child"].self_time == pytest.approx(0.4)
        assert by_name["child"].p50 == pytest.approx(0.3)

    def test_total_traced_time_is_roots_only(self):
        assert trace_total_time(self.RECORDS) == pytest.approx(1.0)

    def test_format_contains_documented_columns(self):
        text = format_summary(self.RECORDS)
        for column in ("stage", "count", "total s", "self s",
                       "p50 ms", "p95 ms"):
            assert column in text
        assert "total traced time" in text


class TestLogging:
    def test_verbosity_mapping(self):
        assert verbosity_level() == logging.INFO
        assert verbosity_level(verbose=1) == logging.DEBUG
        assert verbosity_level(quiet=1) == logging.WARNING
        assert verbosity_level(quiet=2) == logging.ERROR

    def test_write_read_trace_empty_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, TestSummary.RECORDS)
        path.write_text(path.read_text() + "\n\n")
        assert read_trace(path) == TestSummary.RECORDS
