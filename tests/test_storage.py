"""Tests for repro.storage (characterization persistence)."""

import json

import numpy as np
import pytest

from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.precharacterize import AlignmentTable, characterization_victim
from repro.gates import TheveninTable, characterize_thevenin, inverter
from repro.storage import (
    alignment_table_from_dict,
    alignment_table_to_dict,
    load_characterization,
    save_characterization,
    thevenin_model_from_dict,
    thevenin_model_to_dict,
    thevenin_table_from_dict,
    thevenin_table_to_dict,
)
from repro.gates.thevenin import TheveninModel
from repro.units import FF, NS


def sample_alignment_table():
    return AlignmentTable(
        gate_name="INV_X2", vdd=1.8, victim_rising=True, c_load=2 * FF,
        slews=(0.15 * NS, 1.2 * NS), widths=(0.08 * NS, 0.5 * NS),
        heights=(0.27, 0.81),
        va=np.array([[[1.2, 1.5], [1.3, 1.6]],
                     [[1.0, 1.4], [1.1, 1.5]]]),
        cliff_guard=0.08)


class TestModelRoundtrip:
    def test_thevenin_model(self):
        m = TheveninModel(1e-10, 3e-10, 850.0, 0.0, 1.8)
        again = thevenin_model_from_dict(thevenin_model_to_dict(m))
        assert again == m

    def test_alignment_table(self):
        t = sample_alignment_table()
        again = alignment_table_from_dict(alignment_table_to_dict(t))
        assert again.gate_name == t.gate_name
        np.testing.assert_allclose(again.va, t.va)
        assert again.slews == t.slews
        # Predictions agree exactly.
        victim = characterization_victim(0.3 * NS, 1.8, True)
        assert again.predict_peak_time(victim, 0.2 * NS, -0.5, 0.3 * NS) \
            == pytest.approx(
                t.predict_peak_time(victim, 0.2 * NS, -0.5, 0.3 * NS))

    def test_alignment_table_default_guard(self):
        data = alignment_table_to_dict(sample_alignment_table())
        del data["cliff_guard"]
        again = alignment_table_from_dict(data)
        assert again.cliff_guard == 0.08


class TestTheveninTableRoundtrip:
    def test_lookup_preserved(self):
        table = TheveninTable.build(inverter(scale=2), 0.2 * NS,
                                    output_rising=False, points=3)
        again = thevenin_table_from_dict(thevenin_table_to_dict(table))
        probe = float(np.sqrt(table.loads[0] * table.loads[-1]))
        a = table.lookup(probe)
        b = again.lookup(probe)
        assert b.rth == pytest.approx(a.rth, rel=1e-12)
        assert b.dt == pytest.approx(a.dt, rel=1e-12)
        assert again.gate.name == "INV_X2"


class TestDatabaseRoundtrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "chardb.json"
        source = DelayNoiseAnalyzer()
        # Populate: one thevenin table + one alignment table.
        from repro.core.net import DriverSpec
        driver = DriverSpec(inverter(scale=2), 0.2 * NS,
                            output_rising=False)
        source.cache.table_for(driver)
        source.register_table(sample_alignment_table())
        save_characterization(path, source)

        target = DelayNoiseAnalyzer()
        load_characterization(path, target)
        assert len(target.cache) == 1
        # The loaded thevenin table answers without re-characterizing.
        table = target.cache.table_for(driver)
        assert table.lookup(30 * FF).rth > 0
        fetched = target.alignment_table_for(inverter(scale=2), True)
        assert fetched.gate_name == "INV_X2"

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99,
                                    "thevenin_tables": [],
                                    "alignment_tables": []}))
        with pytest.raises(ValueError, match="format"):
            load_characterization(path, DelayNoiseAnalyzer())

    def test_atomic_save_preserves_existing_on_failure(self, tmp_path,
                                                       monkeypatch):
        """A crash mid-save must not corrupt an existing database."""
        import json as json_module

        import repro.obs.ioutil as ioutil_module

        path = tmp_path / "db.json"
        a = DelayNoiseAnalyzer()
        a.register_table(sample_alignment_table())
        save_characterization(path, a)
        original = path.read_text()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        # Fail at the final rename: the tmp file is fully written but
        # never replaces the target, and must be cleaned up.
        monkeypatch.setattr(ioutil_module.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            save_characterization(path, a)
        monkeypatch.undo()

        # Existing file intact, no temp litter, still loadable.
        assert path.read_text() == original
        assert list(tmp_path.glob("*.tmp")) == []
        fresh = DelayNoiseAnalyzer()
        load_characterization(path, fresh)
        assert len(fresh.alignment_tables()) == 1
        assert json_module.loads(original)["alignment_tables"]

    def test_save_uses_public_accessor(self, tmp_path):
        """save_characterization goes through alignment_tables(), not
        the private table dict."""
        path = tmp_path / "db.json"
        a = DelayNoiseAnalyzer()
        a.register_table(sample_alignment_table())
        assert [t.gate_name for t in a.alignment_tables()] == ["INV_X2"]
        save_characterization(path, a)
        payload = json.loads(path.read_text())
        assert [t["gate_name"] for t in payload["alignment_tables"]] == \
            ["INV_X2"]

    def test_layering_preserves_existing(self, tmp_path):
        path = tmp_path / "db.json"
        a = DelayNoiseAnalyzer()
        a.register_table(sample_alignment_table())
        save_characterization(path, a)

        b = DelayNoiseAnalyzer()
        other = sample_alignment_table()
        object.__setattr__(other, "gate_name", "INV_X4")
        b.register_table(other)
        load_characterization(path, b)
        assert len(b._tables) == 2
