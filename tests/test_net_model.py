"""Tests for repro.core.net (the CoupledNet data model)."""

import pytest

from repro.bench.netgen import NetGenerator, canonical_net
from repro.circuit import Circuit, GROUND
from repro.core.net import AggressorSpec, CoupledNet, DriverSpec, ReceiverSpec
from repro.gates import inverter
from repro.units import FF, NS


class TestDriverSpec:
    def test_input_waveform_inverts_direction(self):
        drv = DriverSpec(gate=inverter(), input_slew=0.2 * NS,
                         output_rising=True, input_start=1 * NS)
        wave = drv.input_waveform()
        # Rising output -> falling input.
        assert wave(0.9 * NS) == pytest.approx(1.8)
        assert wave(1.3 * NS) == pytest.approx(0.0)

    def test_input_waveform_shift(self):
        drv = DriverSpec(gate=inverter(), input_slew=0.2 * NS,
                         output_rising=False)
        assert drv.input_waveform(1 * NS)(0.9 * NS) == pytest.approx(0.0)

    def test_quiet_level(self):
        rising = DriverSpec(inverter(), 0.2 * NS, True)
        falling = DriverSpec(inverter(), 0.2 * NS, False)
        assert rising.quiet_input_level() == pytest.approx(1.8)
        assert falling.quiet_input_level() == pytest.approx(0.0)


class TestAggressorWindow:
    def agg(self, window):
        return AggressorSpec(
            "a", DriverSpec(inverter(), 0.1 * NS, False,
                            input_start=1 * NS),
            root="r", far_end="f", window=window)

    def test_no_window_passthrough(self):
        assert self.agg(None).clamp_shift(123.0) == 123.0

    def test_clamped_high(self):
        a = self.agg((0.5 * NS, 1.5 * NS))
        assert a.clamp_shift(2 * NS) == pytest.approx(0.5 * NS)

    def test_clamped_low(self):
        a = self.agg((0.5 * NS, 1.5 * NS))
        assert a.clamp_shift(-2 * NS) == pytest.approx(-0.5 * NS)

    def test_inside_window(self):
        a = self.agg((0.5 * NS, 1.5 * NS))
        assert a.clamp_shift(0.2 * NS) == pytest.approx(0.2 * NS)


class TestReceiverSpec:
    def test_default_pin(self):
        r = ReceiverSpec(inverter(), 10 * FF)
        assert r.pin == "a"
        assert r.input_capacitance() > 0


class TestCoupledNetValidation:
    def test_rejects_nonpassive_interconnect(self):
        wires = Circuit("w")
        wires.add_resistor("r", "v_root", "v_rcv", 1e3)
        wires.add_vsource("v", "v_root", GROUND, 1.0)
        with pytest.raises(ValueError, match="passive"):
            CoupledNet("bad", wires, "v_root", "v_rcv",
                       DriverSpec(inverter(), 0.1 * NS, True),
                       ReceiverSpec(inverter(), 10 * FF))

    def test_rejects_unknown_node(self):
        wires = Circuit("w")
        wires.add_resistor("r", "v_root", "v_rcv", 1e3)
        with pytest.raises(ValueError, match="not in interconnect"):
            CoupledNet("bad", wires, "v_root", "nowhere",
                       DriverSpec(inverter(), 0.1 * NS, True),
                       ReceiverSpec(inverter(), 10 * FF))

    def test_rejects_duplicate_aggressor_names(self):
        net = canonical_net(n_aggressors=2)
        net.aggressors[1].name = net.aggressors[0].name
        with pytest.raises(ValueError, match="duplicate"):
            CoupledNet(net.name, net.interconnect, net.victim_root,
                       net.victim_receiver_node, net.victim_driver,
                       net.receiver, net.aggressors)

    def test_canonical_net_valid(self):
        net = canonical_net(n_aggressors=2)
        assert net.vdd == pytest.approx(1.8)
        assert net.victim_rising
        assert net.victim_initial_level() == 0.0
        assert net.aggressor("agg1").root == "a1_root"
        with pytest.raises(KeyError):
            net.aggressor("nope")


class TestNetGenerator:
    def test_deterministic_with_seed(self):
        a = NetGenerator(seed=42).generate()
        b = NetGenerator(seed=42).generate()
        assert a.victim_driver.gate.name == b.victim_driver.gate.name
        assert a.receiver.c_load == b.receiver.c_load
        assert len(a.aggressors) == len(b.aggressors)

    def test_different_seeds_differ(self):
        pop_a = NetGenerator(seed=1).population(5)
        pop_b = NetGenerator(seed=2).population(5)
        fingerprints = [
            (n.receiver.c_load, len(n.aggressors)) for n in pop_a + pop_b
        ]
        assert len(set(fingerprints)) > 2

    def test_population_names_unique(self):
        pop = NetGenerator(seed=3).population(10)
        names = [n.name for n in pop]
        assert len(set(names)) == 10

    def test_all_nets_validate(self):
        # CoupledNet.__post_init__ runs validation; just generating the
        # population asserts structural integrity.
        pop = NetGenerator(seed=7).population(20)
        for net in pop:
            assert net.interconnect.coupling_caps(), \
                f"{net.name} has no coupling"
            assert 1 <= len(net.aggressors) <= 3

    def test_aggressors_oppose_victim(self):
        pop = NetGenerator(seed=5).population(10)
        for net in pop:
            assert net.victim_driver.output_rising
            for agg in net.aggressors:
                assert not agg.driver.output_rising


class TestBranchedVictims:
    def test_branches_generated(self):
        from repro.bench.netgen import NetGenConfig
        cfg = NetGenConfig(victim_branches=2)
        net = NetGenerator(seed=11, config=cfg).generate()
        nodes = net.interconnect.nodes()
        assert "vb0_leaf" in nodes
        assert "vb1_leaf" in nodes

    def test_branched_net_analyzable(self, model_cache):
        from repro.bench.netgen import NetGenConfig
        from repro.core.analysis import DelayNoiseAnalyzer
        from repro.core.golden import golden_extra_delays
        from repro.units import NS, PS
        cfg = NetGenConfig(victim_branches=2, n_aggressors=(1, 1))
        net = NetGenerator(seed=11, config=cfg).generate()
        analyzer = DelayNoiseAnalyzer(cache=model_cache)
        rep = analyzer.analyze(net, alignment="input-objective",
                               use_rtr=False)
        golden = golden_extra_delays(
            net, max(4 * NS, rep.noiseless_input.t_end),
            aggressor_shifts=rep.aggressor_shifts)
        # The flow handles the branched (tree) load: within 30% or 10 ps.
        assert rep.extra_delay_input == pytest.approx(
            golden.extra_input, rel=0.3, abs=10 * PS)
