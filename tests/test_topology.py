"""Tests for repro.circuit.topology."""

import networkx as nx
import pytest

from repro.circuit import Circuit, GROUND
from repro.circuit.topology import (
    couple_nodes,
    pi_model,
    rc_line,
    rc_tree_from_graph,
)
from repro.units import FF, KOHM, OHM, PF


class TestRcLine:
    def test_node_list(self):
        c = Circuit("t")
        nodes = rc_line(c, "w_", "drv", "rcv", 4, 1 * KOHM, 100 * FF)
        assert nodes[0] == "drv"
        assert nodes[-1] == "rcv"
        assert len(nodes) == 5

    def test_total_resistance(self):
        c = Circuit("t")
        rc_line(c, "w_", "a", "b", 5, 1 * KOHM, 100 * FF)
        assert sum(r.resistance for r in c.resistors) == \
            pytest.approx(1 * KOHM)

    def test_total_capacitance(self):
        c = Circuit("t")
        rc_line(c, "w_", "a", "b", 5, 1 * KOHM, 100 * FF)
        assert sum(x.capacitance for x in c.capacitors) == \
            pytest.approx(100 * FF)

    def test_pi_halves_at_ends(self):
        c = Circuit("t")
        rc_line(c, "w_", "a", "b", 4, 1 * KOHM, 100 * FF)
        assert c.grounded_cap_at("a") == pytest.approx(100 * FF / 4 / 2)
        assert c.grounded_cap_at("b") == pytest.approx(100 * FF / 4 / 2)

    def test_single_segment(self):
        c = Circuit("t")
        nodes = rc_line(c, "w_", "a", "b", 1, 100 * OHM, 10 * FF)
        assert nodes == ["a", "b"]

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            rc_line(Circuit("t"), "w_", "a", "b", 0, 1.0, 1.0)


class TestCoupling:
    def test_total_coupling_cap(self):
        c = Circuit("t")
        na = rc_line(c, "a_", "a0", "a1", 4, 1 * KOHM, 50 * FF)
        nb = rc_line(c, "b_", "b0", "b1", 4, 1 * KOHM, 50 * FF)
        couple_nodes(c, "x_", na, nb, 80 * FF)
        total = sum(x.capacitance for x in c.coupling_caps())
        assert total == pytest.approx(80 * FF)

    def test_mismatched_lengths(self):
        c = Circuit("t")
        na = rc_line(c, "a_", "a0", "a1", 6, 1 * KOHM, 50 * FF)
        nb = rc_line(c, "b_", "b0", "b1", 2, 1 * KOHM, 50 * FF)
        couple_nodes(c, "x_", na, nb, 30 * FF)
        assert len(c.coupling_caps()) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            couple_nodes(Circuit("t"), "x_", [], ["a"], 1 * FF)


class TestRcTree:
    def test_from_graph(self):
        tree = nx.Graph()
        tree.add_edge(0, 1, r=100.0, c=10 * FF)
        tree.add_edge(1, 2, r=200.0, c=20 * FF)
        tree.add_edge(1, 3, r=300.0, c=30 * FF)
        c = Circuit("t")
        names = rc_tree_from_graph(c, "t_", tree, root=0)
        assert len(c.resistors) == 3
        assert len(c.capacitors) == 3
        assert names[0] == "t_0"

    def test_rejects_non_tree(self):
        g = nx.cycle_graph(3)
        for u, v in g.edges:
            g.edges[u, v].update(r=1.0, c=1.0)
        with pytest.raises(ValueError, match="tree"):
            rc_tree_from_graph(Circuit("t"), "t_", g, root=0)

    def test_custom_naming(self):
        tree = nx.Graph()
        tree.add_edge("root", "leaf", r=1.0, c=1 * FF)
        c = Circuit("t")
        names = rc_tree_from_graph(
            c, "t_", tree, root="root",
            node_name=lambda v: "drv_out" if v == "root" else f"t_{v}")
        assert names["root"] == "drv_out"


class TestPiModel:
    def test_structure(self):
        c = Circuit("t")
        pi_model(c, "p_", "in", "out", 10 * FF, 500 * OHM, 20 * FF)
        assert c.grounded_cap_at("in") == pytest.approx(10 * FF)
        assert c.grounded_cap_at("out") == pytest.approx(20 * FF)
        assert c.resistors[0].resistance == 500 * OHM
