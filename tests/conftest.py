"""Shared fixtures for the test suite.

Heavy objects (Thevenin tables, alignment tables, superposition engines)
are session-scoped: they are deterministic pure functions of the library
code, so sharing them across tests only saves time.
"""

import pytest

from repro.bench.netgen import canonical_net
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.superposition import ModelCache, SuperpositionEngine


@pytest.fixture(scope="session")
def model_cache():
    """Shared Thevenin-table cache."""
    return ModelCache()


@pytest.fixture(scope="session")
def analyzer(model_cache):
    """Shared analyzer (alignment tables build once)."""
    return DelayNoiseAnalyzer(cache=model_cache)


@pytest.fixture(scope="session")
def single_aggressor_net():
    """The canonical 1-aggressor net from the figure benches."""
    return canonical_net(n_aggressors=1)


@pytest.fixture(scope="session")
def two_aggressor_net():
    return canonical_net(n_aggressors=2)


@pytest.fixture(scope="session")
def single_engine(single_aggressor_net, model_cache):
    return SuperpositionEngine(single_aggressor_net, cache=model_cache)


@pytest.fixture(scope="session")
def two_engine(two_aggressor_net, model_cache):
    return SuperpositionEngine(two_aggressor_net, cache=model_cache)
