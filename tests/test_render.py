"""Tests for repro.waveform.render (ASCII charts)."""

import pytest

from repro.units import NS
from repro.waveform import Waveform, noise_pulse, ramp
from repro.waveform.render import render_waveform, render_waveforms


class TestRender:
    def test_single_waveform(self):
        text = render_waveform(ramp(0.0, 1 * NS, 0.0, 1.8),
                               label="victim")
        assert "victim" in text
        assert "*" in text
        assert "1.800" in text

    def test_multi_series_glyphs(self):
        vic = ramp(0.0, 1 * NS, 0.0, 1.8, pad=0.2 * NS)
        noisy = vic + noise_pulse(0.6 * NS, -0.5, 0.2 * NS)
        text = render_waveforms({"clean": vic, "noisy": noisy})
        assert "* clean" in text
        assert "o noisy" in text
        assert "o" in text.splitlines()[3]  # second series drawn

    def test_dimensions(self):
        text = render_waveforms({"v": ramp(0, 1 * NS, 0, 1)},
                                width=40, height=8)
        lines = text.splitlines()
        # 8 plot rows + axis + time footer + legend.
        assert len(lines) == 11
        assert all(len(line) <= 40 + 12 for line in lines[:8])

    def test_flat_waveform_does_not_crash(self):
        text = render_waveform(Waveform.constant(0.7, 0.0, 1 * NS))
        assert "0.7" in text

    def test_time_span_override(self):
        text = render_waveforms({"v": ramp(0, 1 * NS, 0, 1)},
                                t_start=0.0, t_end=0.5 * NS)
        assert "500ps" in text or "0.5ns" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_waveforms({})
        with pytest.raises(ValueError):
            render_waveforms({"v": ramp(0, 1, 0, 1)}, width=4)
        with pytest.raises(ValueError):
            render_waveforms({"v": ramp(0, 1, 0, 1)},
                             t_start=1.0, t_end=0.5)
