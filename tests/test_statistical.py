"""Tests for repro.core.statistical (alignment-uncertainty analysis)."""

import numpy as np
import pytest

from repro.core.exhaustive import AlignmentSweep
from repro.core.statistical import (
    DelayNoiseDistribution,
    sample_alignment_delays,
)
from repro.sta import Window
from repro.units import NS, PS


def triangle_sweep(peak=100 * PS, center=1 * NS, halfwidth=0.3 * NS):
    """Synthetic delay-vs-alignment curve: triangular bump."""
    times = np.linspace(center - 2 * halfwidth, center + 2 * halfwidth,
                        201)
    delays = np.maximum(0.0,
                        peak * (1 - np.abs(times - center) / halfwidth))
    return AlignmentSweep(
        peak_times=times, extra_output_delays=delays,
        extra_input_delays=delays, best_peak_time=center,
        best_extra_output=peak)


class TestDistribution:
    def test_validation(self):
        with pytest.raises(ValueError):
            DelayNoiseDistribution(np.array([]))
        d = DelayNoiseDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            d.quantile(1.5)

    def test_statistics(self):
        d = DelayNoiseDistribution(np.array([0.0, 1.0, 2.0, 3.0]))
        assert d.mean == pytest.approx(1.5)
        assert d.worst == 3.0
        assert d.quantile(0.5) == pytest.approx(1.5)
        assert d.exceedance(1.5) == pytest.approx(0.5)


class TestSampling:
    def test_deterministic_seed(self):
        sweep = triangle_sweep()
        window = Window(0.5 * NS, 1.5 * NS)
        a = sample_alignment_delays(sweep, window, samples=500, seed=7)
        b = sample_alignment_delays(sweep, window, samples=500, seed=7)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_worst_bounded_by_sweep(self):
        sweep = triangle_sweep()
        window = Window(0.0, 2 * NS)
        dist = sample_alignment_delays(sweep, window, samples=20000)
        assert dist.worst <= sweep.best_extra_output + 1e-18

    def test_uniform_triangle_mean(self):
        """Uniform peak over a window spanning the whole triangle:
        E[delay] = area/window = peak*halfwidth / span."""
        peak, halfwidth = 100 * PS, 0.3 * NS
        sweep = triangle_sweep(peak, 1 * NS, halfwidth)
        window = Window(1 * NS - 2 * halfwidth, 1 * NS + 2 * halfwidth)
        dist = sample_alignment_delays(sweep, window, samples=200000)
        expected = peak * halfwidth / window.span
        assert dist.mean == pytest.approx(expected, rel=0.03)

    def test_narrow_window_hits_worst(self):
        sweep = triangle_sweep()
        window = Window(1 * NS, 1 * NS)  # pinned at the peak
        dist = sample_alignment_delays(sweep, window, samples=100)
        assert dist.mean == pytest.approx(sweep.best_extra_output)

    def test_far_window_zero(self):
        sweep = triangle_sweep()
        window = Window(5 * NS, 6 * NS)
        dist = sample_alignment_delays(sweep, window, samples=100)
        assert dist.worst == 0.0

    def test_pessimism_metric(self):
        sweep = triangle_sweep()
        window = Window(0.0, 2 * NS)
        dist = sample_alignment_delays(sweep, window, samples=50000)
        pessimism = dist.pessimism_of_worst_case(sweep.best_extra_output)
        # A wide window rarely samples the exact peak: positive pessimism.
        assert pessimism > 0.0

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            sample_alignment_delays(triangle_sweep(), Window(0, 1),
                                    samples=0)

    def test_end_to_end_with_real_sweep(self, single_engine,
                                        single_aggressor_net):
        """Distribution from an actual net's sweep: the 99.9% quantile
        sits at or below the deterministic worst case."""
        from repro.core.exhaustive import exhaustive_worst_alignment
        net = single_aggressor_net
        victim = (single_engine.victim_transition().at_receiver
                  + net.victim_initial_level())
        pulse = single_engine.aggressor_noise("agg0").at_receiver
        sweep = exhaustive_worst_alignment(net.receiver, victim, pulse,
                                           net.vdd, True, steps=17,
                                           refine=4, dt=2 * PS)
        window = Window(sweep.peak_times[0], sweep.peak_times[-1])
        dist = sample_alignment_delays(sweep, window, samples=5000)
        assert dist.quantile(0.999) <= sweep.best_extra_output + 1e-15
        assert dist.mean < sweep.best_extra_output
