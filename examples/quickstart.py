#!/usr/bin/env python
"""Quickstart: analyze one coupled net for worst-case delay noise.

Builds the canonical victim/aggressor circuit, runs the full ClariNet
flow (Ceff + Thevenin characterization, transient holding resistance,
pre-characterized worst-case alignment) and compares the result against
a full transistor-level golden simulation.

Run:  python examples/quickstart.py
"""

from repro.bench.netgen import canonical_net
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.golden import golden_extra_delays
from repro.units import NS, PS


def main() -> None:
    # A weak victim inverter driving an RC line, coupled over its full
    # span to a strongly-driven aggressor, into an inverter receiver.
    net = canonical_net(n_aggressors=1)
    print(f"net: {net.name}")
    print(f"  victim driver : {net.victim_driver.gate.name} "
          f"(slew {net.victim_driver.input_slew / NS:.2f} ns, rising)")
    print(f"  aggressors    : "
          f"{[a.driver.gate.name for a in net.aggressors]}")
    print(f"  receiver      : {net.receiver.gate.name} "
          f"({net.receiver.c_load * 1e15:.0f} fF load)")

    # The analyzer caches Thevenin tables and the 8-point alignment
    # table, so the first net pays the characterization cost and
    # subsequent nets are fast.
    analyzer = DelayNoiseAnalyzer()
    report = analyzer.analyze(net, alignment="table")

    print("\ndriver models")
    print(f"  victim Ceff   : {report.ceff_victim * 1e15:7.1f} fF")
    print(f"  victim Rth    : {report.rth_victim:7.0f} ohm")
    print(f"  victim Rtr    : {report.rtr:7.0f} ohm "
          f"(x{report.rtr / report.rth_victim:.2f} — the switching driver "
          f"holds worse than Rth suggests)")

    print("\ncomposite noise pulse")
    print(f"  height        : {report.pulse_height:7.3f} V")
    print(f"  width @50%    : {report.pulse_width / PS:7.0f} ps")
    print(f"  worst-case peak at {report.peak_time / NS:.3f} ns "
          f"(victim 50% crossing + alignment)")

    print("\nworst-case delay noise (receiver output objective)")
    print(f"  extra delay at receiver input : "
          f"{report.extra_delay_input / PS:6.1f} ps")
    print(f"  extra delay at receiver output: "
          f"{report.extra_delay_output / PS:6.1f} ps")
    print(f"  [traditional Thevenin holding underestimates: "
          f"{report.extra_delay_output_thevenin / PS:6.1f} ps]")

    # Golden reference: simulate every transistor of the coupled circuit.
    golden = golden_extra_delays(
        net, max(4 * NS, report.noiseless_input.t_end),
        aggressor_shifts=report.aggressor_shifts)
    print("\ngolden (full non-linear co-simulation at same alignment)")
    print(f"  extra delay at receiver input : "
          f"{golden.extra_input / PS:6.1f} ps")
    err = (report.extra_delay_input - golden.extra_input) \
        / golden.extra_input * 100
    err_th = (report.extra_delay_input_thevenin - golden.extra_input) \
        / golden.extra_input * 100
    print(f"  Rtr model error     : {err:+5.1f} %")
    print(f"  Thevenin model error: {err_th:+5.1f} %")


if __name__ == "__main__":
    main()
