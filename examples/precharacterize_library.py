#!/usr/bin/env python
"""Pre-characterize a cell library for noise analysis.

Production flow: before analyzing a design, every driver cell gets a
Thevenin table (t0, dt, Rth vs load) and every receiver cell gets the
8-point worst-case-alignment table of the paper's Section 3.2.  This
example characterizes the INV family and prints the tables.

Run:  python examples/precharacterize_library.py
"""

from repro.core.precharacterize import build_alignment_table
from repro.gates import TheveninTable, inverter
from repro.units import FF, NS, PS


def main() -> None:
    print("=== Thevenin driver tables (falling output, 0.2 ns input) ===")
    for scale in (1, 4):
        gate = inverter(scale=scale)
        table = TheveninTable.build(gate, 0.2 * NS, output_rising=False,
                                    points=4)
        print(f"\n{gate.name}:")
        print("    load (fF)    t0 (ps)    dt (ps)    Rth (ohm)")
        for load, model in zip(table.loads, table.models):
            print(f"    {load / FF:9.1f}    {model.t0 / PS:7.1f}    "
                  f"{model.dt / PS:7.1f}    {model.rth:9.0f}")

    print("\n=== Alignment tables (8 points per receiver cell) ===")
    for scale in (2,):
        gate = inverter(scale=scale)
        table = build_alignment_table(gate, sweep_steps=13,
                                      refine_steps=6)
        print(f"\n{gate.name} (rising victim, characterization load "
              f"{table.c_load / FF:.0f} fF):")
        print("    slew (ps)   width (ps)   height (V)   "
              "alignment voltage (V)")
        for i, slew in enumerate(table.slews):
            for j, width in enumerate(table.widths):
                for k, height in enumerate(table.heights):
                    print(f"    {slew / PS:8.0f}   {width / PS:9.0f}   "
                          f"{height:9.2f}   {table.va[i, j, k]:12.3f}")
        # Demonstrate a lookup.
        from repro.core.precharacterize import characterization_victim
        victim = characterization_victim(0.3 * NS, 1.8, True)
        t = table.predict_peak_time(victim, 0.2 * NS, -0.5, 0.3 * NS)
        print(f"    -> predicted worst peak for (w=200ps, h=-0.5V, "
              f"slew=300ps): {t / PS:+.0f} ps after the 50% crossing")


if __name__ == "__main__":
    main()
