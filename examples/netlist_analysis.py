#!/usr/bin/env python
"""Analyze a coupled net loaded from a SPICE-style parasitic deck.

Shows the extracted-netlist entry point: wire parasitics come from a
netlist file (as an extractor would produce), gates are bound to the
net's terminals programmatically, and the full delay-noise flow runs on
top — including a PRIMA sanity check that the interconnect can be
reduced to a small macromodel.

Run:  python examples/netlist_analysis.py
"""

from repro.circuit import build_mna
from repro.circuit.parser import parse_netlist
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.net import AggressorSpec, CoupledNet, DriverSpec, ReceiverSpec
from repro.gates import inverter
from repro.mor import ReducedModel
from repro.units import FF, NS, PS

# A victim line (v_root .. v_rcv) and one aggressor line (a_root ..
# a_far), 4 segments each, with distributed coupling — the kind of deck
# a parasitic extractor emits.
PARASITIC_DECK = """
* victim wire: 1.5k / 50fF total
Rv1 v_root v1 375
Rv2 v1 v2 375
Rv3 v2 v3 375
Rv4 v3 v_rcv 375
Cv0 v_root 0 6.25f
Cv1 v1 0 12.5f
Cv2 v2 0 12.5f
Cv3 v3 0 12.5f
Cv4 v_rcv 0 6.25f
* aggressor wire: 0.8k / 40fF total + far-end load
Ra1 a_root a1 200
Ra2 a1 a2 200
Ra3 a2 a3 200
Ra4 a3 a_far 200
Ca0 a_root 0 5f
Ca1 a1 0 10f
Ca2 a2 0 10f
Ca3 a3 0 10f
Ca4 a_far 0 5f
Cfar a_far 0 10f
* cross-coupling, 50fF distributed
Cc0 v_root a_root 10f COUPLING
Cc1 v1 a1 10f COUPLING
Cc2 v2 a2 10f COUPLING
Cc3 v3 a3 10f COUPLING
Cc4 v_rcv a_far 10f COUPLING
.end
"""


def main() -> None:
    wires = parse_netlist(PARASITIC_DECK, name="extracted_wires")
    print(f"parsed deck: {len(wires.resistors)} resistors, "
          f"{len(wires.capacitors)} capacitors "
          f"({len(wires.coupling_caps())} coupling)")

    # PRIMA sanity check: the wire network reduces to order 8 while
    # matching the driving-point behaviour (see repro.mor).  The
    # aggressor root gets a holding resistor so nothing floats at DC —
    # exactly how the superposition flow anchors quiet drivers.
    probe = wires.copy("probe")
    probe.add_isource("iprobe", "v_root", "0", 0.0)
    probe.add_resistor("rhold_victim", "v_root", "0", 1200.0)
    probe.add_resistor("rhold_agg", "a_root", "0", 300.0)
    mna = build_mna(probe)
    reduced = ReducedModel.from_mna(mna, ["v_rcv"], order=8)
    print(f"PRIMA: {mna.dim} MNA unknowns -> order-{reduced.order} "
          f"macromodel\n")

    net = CoupledNet(
        name="extracted_net",
        interconnect=wires,
        victim_root="v_root",
        victim_receiver_node="v_rcv",
        victim_driver=DriverSpec(gate=inverter(1), input_slew=0.2 * NS,
                                 output_rising=True,
                                 input_start=0.2 * NS),
        receiver=ReceiverSpec(gate=inverter(2), c_load=12 * FF),
        aggressors=[AggressorSpec(
            name="agg0",
            driver=DriverSpec(gate=inverter(4), input_slew=0.12 * NS,
                              output_rising=False, input_start=0.2 * NS),
            root="a_root", far_end="a_far",
            # Timing window from STA: the aggressor may launch anywhere
            # in [0.1, 0.9] ns.
            window=(0.1 * NS, 0.9 * NS))],
    )

    analyzer = DelayNoiseAnalyzer()
    report = analyzer.analyze(net, alignment="table")
    print(f"victim models : Ceff {report.ceff_victim / FF:.1f} fF, "
          f"Rth {report.rth_victim:.0f} ohm, Rtr {report.rtr:.0f} ohm")
    print(f"composite     : {report.pulse_height:.3f} V x "
          f"{report.pulse_width / PS:.0f} ps, "
          f"peak @ {report.peak_time / NS:.3f} ns")
    print(f"aggressor launch shift (window-clamped): "
          f"{report.aggressor_shifts['agg0'] / PS:+.0f} ps")
    print(f"worst-case extra delay: input {report.extra_delay_input / PS:.1f}"
          f" ps, output {report.extra_delay_output / PS:.1f} ps")


if __name__ == "__main__":
    main()
