#!/usr/bin/env python
"""Alignment objectives compared: receiver input vs receiver output.

Reproduces the paper's central argument (Figure 3) on a live circuit:
aligning the aggressor noise to maximize the *interconnect* delay (the
receiver-input objective of the prior art [5][6]) can place the pulse so
late that the receiver has already switched — huge input disturbance,
zero output delay, and the leftover output pulse is filtered below the
functional-noise threshold.  The receiver-output objective (this paper)
finds the true worst case.

Run:  python examples/alignment_objectives.py
"""

from repro.bench.netgen import canonical_net
from repro.core.alignment import (
    composite_pulse,
    input_objective_peak_time,
    peak_align_shifts,
)
from repro.core.exhaustive import (
    combined_extra_delays,
    exhaustive_worst_alignment,
)
from repro.core.superposition import SuperpositionEngine
from repro.units import NS, PS
from repro.waveform import transition_slew
from repro.waveform.pulses import pulse_peak, pulse_width


def main() -> None:
    net = canonical_net(n_aggressors=2)
    vdd = net.vdd
    engine = SuperpositionEngine(net)

    noiseless = (engine.victim_transition().at_receiver
                 + net.victim_initial_level())
    t50 = noiseless.crossing_time(vdd / 2, rising=True)
    slew = transition_slew(noiseless, vdd, rising=True)
    print(f"victim at receiver: 50% crossing {t50 / NS:.3f} ns, "
          f"slew {slew / PS:.0f} ps")

    pulses = {a.name: engine.aggressor_noise(a.name).at_receiver
              for a in net.aggressors}
    shape = composite_pulse(pulses, peak_align_shifts(pulses, t50))
    _, height = pulse_peak(shape)
    width = pulse_width(shape)
    print(f"composite pulse: {height:.3f} V, {width / PS:.0f} ps wide\n")

    # Sweep the pulse position and evaluate both objectives.
    sweep = exhaustive_worst_alignment(net.receiver, noiseless, shape,
                                       vdd, True, steps=33, refine=8)
    print("peak time (ns)   victim level (V)   extra@input (ps)   "
          "extra@output (ps)")
    for t, d_in, d_out in zip(sweep.peak_times[::3],
                              sweep.extra_input_delays[::3],
                              sweep.extra_output_delays[::3]):
        print(f"   {t / NS:8.3f}         {noiseless(t):6.3f}         "
              f"{d_in / PS:10.1f}          {d_out / PS:10.1f}")

    t_input_obj = input_objective_peak_time(noiseless, height, vdd, True)
    d_at_input_obj = sweep.delay_at(t_input_obj)
    print(f"\nreceiver-INPUT objective  : peak at {t_input_obj / NS:.3f} ns "
          f"-> output extra delay {d_at_input_obj / PS:6.1f} ps")
    print(f"receiver-OUTPUT objective : peak at "
          f"{sweep.best_peak_time / NS:.3f} ns "
          f"-> output extra delay {sweep.best_extra_output / PS:6.1f} ps")

    # Show the filtering: with the too-late alignment, the receiver
    # output barely twitches (paper: pulse < 100 mV at the output).
    tp0, _ = pulse_peak(shape)
    noisy_late = noiseless + shape.shifted(t_input_obj - tp0)
    _, _, out_late = combined_extra_delays(
        net.receiver, noiseless, noisy_late, vdd, True,
        sweep.peak_times[-1] + 1 * NS)
    settle = out_late.clipped(t_input_obj, out_late.t_end)
    print(f"\nresidual receiver-output pulse with the late alignment: "
          f"{settle.value_range()[1] * 1000:.0f} mV "
          f"(filtered, not a functional failure)")


if __name__ == "__main__":
    main()
