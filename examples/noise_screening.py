#!/usr/bin/env python
"""Screen a block's coupled nets for functional AND delay noise.

A noise sign-off tool checks both crosstalk failure modes the paper's
introduction distinguishes: pulses on *stable* victims that could flip
logic (functional noise) and pulses on *switching* victims that move
their delay (delay noise).  This example sweeps a small synthetic block
and prints the screening table a designer would read.

Run:  python examples/noise_screening.py
"""

from repro.bench.netgen import NetGenConfig, NetGenerator
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.functional import functional_noise
from repro.core.superposition import SuperpositionEngine
from repro.units import PS


def main() -> None:
    generator = NetGenerator(seed=7,
                             config=NetGenConfig.high_performance())
    nets = generator.population(4)
    analyzer = DelayNoiseAnalyzer()

    print("net     aggr  func peak in/out (V)   func?   "
          "delay noise in/out (ps)   Rtr/Rth")
    print("-" * 86)
    for net in nets:
        engine = SuperpositionEngine(net, cache=analyzer.cache)

        func = functional_noise(net, engine=engine)
        delay = analyzer.analyze(net, alignment="table")

        verdict = "FAIL" if func.fails else "ok"
        print(f"{net.name:6s}  {len(net.aggressors):4d}  "
              f"{func.input_peak:8.3f} / {func.output_peak:6.3f}   "
              f"{verdict:5s}   "
              f"{delay.extra_delay_input / PS:8.1f} / "
              f"{delay.extra_delay_output / PS:8.1f}     "
              f"{delay.rtr / delay.rth_victim:6.2f}")

    print("\nfunc peak: composite pulse at the receiver input and the "
          "filtered pulse at its output (quiet victim)")
    print("delay noise: worst-case extra delay at the receiver "
          "input/output (switching victim, table alignment)")


if __name__ == "__main__":
    main()
