#!/usr/bin/env python
"""Coupling-aware static timing analysis on a small block.

Combines the two halves of the library: the circuit-level delay-noise
analysis produces a delay-vs-alignment curve for a coupled net, and the
STA engine iterates switching windows against that curve until the
windows and the coupling-induced delta delays agree (the fixed point of
the paper's references [8][9]).

Run:  python examples/sta_coupling.py
"""

from repro.bench.netgen import canonical_net
from repro.core.alignment import composite_pulse, peak_align_shifts
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.superposition import SuperpositionEngine
from repro.sta import (
    CoupledSta,
    CouplingBinding,
    SweepDeltaModel,
    TimingGraph,
    Window,
)
from repro.units import NS, PS


def characterize_net_curve():
    """Delay-vs-peak-offset curve for the canonical coupled net."""
    net = canonical_net(n_aggressors=1)
    engine = SuperpositionEngine(net)
    noiseless = (engine.victim_transition().at_receiver
                 + net.victim_initial_level())
    t50 = noiseless.crossing_time(net.vdd / 2, rising=True)
    pulses = {a.name: engine.aggressor_noise(a.name).at_receiver
              for a in net.aggressors}
    shape = composite_pulse(pulses, peak_align_shifts(pulses, t50))
    sweep = exhaustive_worst_alignment(net.receiver, noiseless, shape,
                                       net.vdd, True, steps=25, refine=6)
    base_delay = noiseless.crossing_time(net.vdd / 2, rising=True)

    def curve(offset: float) -> float:
        return sweep.delay_at(t50 + offset)

    return curve, sweep, t50, base_delay


def main() -> None:
    curve, sweep, t50, base_delay = characterize_net_curve()
    worst = sweep.best_extra_output
    print(f"characterized coupled net: base delay {base_delay / PS:.0f} ps, "
          f"worst-case delta {worst / PS:.0f} ps "
          f"at peak offset {(sweep.best_peak_time - t50) / PS:+.0f} ps\n")

    # A small block: launch -> buf1 -> victim net -> capture, with an
    # aggressor path whose window the victim's delta depends on.
    graph = TimingGraph()
    graph.add_input("launch", Window(0.0, 0.05 * NS))
    graph.add_input("agg_in", Window(0.0, 0.4 * NS))
    graph.add_edge("launch", "buf1", 0.08 * NS, 0.1 * NS)
    graph.add_edge("buf1", "victim_recv", 0.9 * base_delay, base_delay,
                   name="victim_net")
    graph.add_edge("victim_recv", "capture", 0.1 * NS, 0.12 * NS)
    graph.add_edge("agg_in", "agg_out", 0.05 * NS, 0.08 * NS)

    offsets = [i * 20 * PS for i in range(-15, 16)]
    model = SweepDeltaModel(curve=curve, offsets=offsets,
                            injection_delay=0.05 * NS)
    binding = CouplingBinding(("buf1", "victim_recv"), ["agg_out"],
                              base_delay)
    sta = CoupledSta(graph, [binding], model)

    windows = sta.run()
    print("coupling-aware STA converged in "
          f"{sta.iterations} iteration(s)")
    print(f"  victim-net delta delay applied: "
          f"{sta.deltas[('buf1', 'victim_recv')] / PS:.1f} ps")
    for node in ("buf1", "victim_recv", "capture", "agg_out"):
        w = windows[node]
        print(f"  window[{node:12s}] = "
              f"[{w.earliest / NS:.3f}, {w.latest / NS:.3f}] ns")

    # Move the aggressor out of reach: the delta must vanish.
    graph2 = TimingGraph()
    graph2.add_input("launch", Window(0.0, 0.05 * NS))
    graph2.add_input("agg_in", Window(5 * NS, 5.2 * NS))
    graph2.add_edge("launch", "buf1", 0.08 * NS, 0.1 * NS)
    graph2.add_edge("buf1", "victim_recv", 0.9 * base_delay, base_delay)
    graph2.add_edge("victim_recv", "capture", 0.1 * NS, 0.12 * NS)
    graph2.add_edge("agg_in", "agg_out", 0.05 * NS, 0.08 * NS)
    sta2 = CoupledSta(graph2, [CouplingBinding(
        ("buf1", "victim_recv"), ["agg_out"], base_delay)], model)
    windows2 = sta2.run()
    print("\nwith the aggressor window moved 5 ns away:")
    print(f"  victim-net delta delay: "
          f"{sta2.deltas[('buf1', 'victim_recv')] / PS:.1f} ps "
          f"(no overlap, no penalty)")
    print(f"  capture latest arrival: "
          f"{windows2['capture'].latest / NS:.3f} ns vs "
          f"{windows['capture'].latest / NS:.3f} ns with coupling")


if __name__ == "__main__":
    main()
