#!/usr/bin/env python
"""From layout to noise sign-off: spacing and shield insertion.

Routes a victim against a strong aggressor at different spacings, and
with a grounded shield wire inserted between them — the classic layout
fixes for a noisy net — then quantifies each variant with the full
delay-noise flow.  Everything starts from *geometry*: wires on routing
tracks, extracted to RC + coupling parasitics by :mod:`repro.extract`.

Run:  python examples/layout_shielding.py
"""

from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.net import DriverSpec, ReceiverSpec
from repro.extract import ParasiticTech, Wire, coupled_net_from_layout
from repro.gates import inverter
from repro.units import FF, NS, PS, UM
from repro.waveform.render import render_waveforms

TECH = ParasiticTech()
LENGTH = 700 * UM


def route(variant: str) -> list[Wire]:
    victim = Wire("vic", 0, 0.0, LENGTH)
    if variant == "adjacent":
        return [victim, Wire("agg", 1, 0.0, LENGTH)]
    if variant == "spaced":
        return [victim, Wire("agg", 2, 0.0, LENGTH)]
    if variant == "shielded":
        return [victim, Wire("gnd", 1, 0.0, LENGTH),
                Wire("agg", 2, 0.0, LENGTH)]
    raise ValueError(variant)


def main() -> None:
    analyzer = DelayNoiseAnalyzer()
    victim_driver = DriverSpec(inverter(1), 0.2 * NS, True, 0.2 * NS)
    receiver = ReceiverSpec(inverter(2), c_load=10 * FF)
    aggressor = DriverSpec(inverter(8), 0.12 * NS, False, 0.2 * NS)

    print(f"bus: {LENGTH / UM:.0f} um parallel run, pitch "
          f"{TECH.pitch / UM:.1f} um\n")
    print("variant    coupling (fF)   pulse (V)   extra delay in/out (ps)")
    print("-" * 66)
    reports = {}
    for variant in ("adjacent", "spaced", "shielded"):
        net = coupled_net_from_layout(
            route(variant), TECH, "vic", victim_driver, receiver,
            {"agg": aggressor}, name=variant)
        from repro.core.filtering import rank_aggressors
        cc = rank_aggressors(net)[0].coupling_cap
        report = analyzer.analyze(net, alignment="table")
        reports[variant] = report
        print(f"{variant:9s}  {cc * 1e15:12.1f}   "
              f"{report.pulse_height:9.3f}   "
              f"{report.extra_delay_input / PS:10.1f} / "
              f"{report.extra_delay_output / PS:.1f}")

    print("\nnoisy receiver-input waveforms (adjacent vs shielded):")
    print(render_waveforms(
        {"adjacent": reports["adjacent"].noisy_input,
         "shielded": reports["shielded"].noisy_input},
        width=70, height=14,
        t_start=0.0, t_end=reports["adjacent"].noiseless_input.t_end))


if __name__ == "__main__":
    main()
