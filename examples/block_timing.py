#!/usr/bin/env python
"""Block-level sign-off: nets and timing windows to a fixed point.

Two coupled nets form a two-stage path; each stage's aggressor can only
switch inside its own timing window, and each stage's delay noise widens
the windows downstream.  :class:`repro.core.block.BlockAnalyzer` iterates
the circuit-level analysis against the graph until the two agree, then
the slack check tells you whether the path still makes timing.

Run:  python examples/block_timing.py
"""

from repro.bench.netgen import canonical_net
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.block import BlockAnalyzer, BlockNet
from repro.sta import TimingGraph, Window
from repro.units import NS, PS


def build_block():
    graph = TimingGraph()
    graph.add_input("launch", Window(0.1 * NS, 0.15 * NS))
    graph.add_input("agg1_in", Window(0.0, 1.0 * NS))
    graph.add_input("agg2_in", Window(0.0, 2.0 * NS))
    # Seed delays; the block loop replaces them with measured values.
    graph.add_edge("launch", "rcv1", 0.3 * NS, 0.5 * NS)
    graph.add_edge("rcv1", "rcv2", 0.3 * NS, 0.5 * NS)
    graph.add_edge("agg1_in", "agg1", 0.02 * NS, 0.05 * NS)
    graph.add_edge("agg2_in", "agg2", 0.02 * NS, 0.05 * NS)

    nets = [
        BlockNet(net=canonical_net(name="stage1"),
                 launch_node="launch", receiver_node="rcv1",
                 aggressor_nodes={"agg0": "agg1"}),
        BlockNet(net=canonical_net(name="stage2"),
                 launch_node="rcv1", receiver_node="rcv2",
                 aggressor_nodes={"agg0": "agg2"}),
    ]
    return graph, nets


def main() -> None:
    graph, nets = build_block()
    analyzer = DelayNoiseAnalyzer()
    block = BlockAnalyzer(graph, nets, analyzer)
    report = block.run(max_iterations=4)

    print(f"converged in {report.iterations} iteration(s)\n")
    print("stage    noiseless delay (ps)   delta delay (ps)")
    for name in ("stage1", "stage2"):
        print(f"{name:7s}  {report.stage_delays[name] / PS:18.1f}   "
              f"{report.deltas[name] / PS:14.1f}")

    print("\nswitching windows after convergence:")
    for node in ("launch", "rcv1", "rcv2"):
        w = report.windows[node]
        print(f"  {node:7s} [{w.earliest / NS:.3f}, "
              f"{w.latest / NS:.3f}] ns")

    # Slack check against a capture deadline.
    deadline = 1.9 * NS
    slack = graph.worst_slack({"rcv2": deadline})
    verdict = "meets timing" if slack >= 0 else "VIOLATES timing"
    print(f"\ncapture deadline {deadline / NS:.2f} ns -> worst slack "
          f"{slack / PS:+.1f} ps ({verdict})")

    # What the deadline would look like without crosstalk:
    no_noise = (0.15 * NS + report.stage_delays["stage1"]
                + report.stage_delays["stage2"])
    with_noise = report.windows["rcv2"].latest
    print(f"crosstalk costs this path "
          f"{(with_noise - no_noise) / PS:.1f} ps")


if __name__ == "__main__":
    main()
