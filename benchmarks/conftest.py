"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Each benchmark file regenerates one figure of the paper's evaluation.
Results (the rows/series the paper plots) are printed and written to
``results/figXX.txt`` next to this directory — each run *replaces* the
file, so it always holds exactly the latest run's rows — and the
paper's qualitative claims are asserted.

Environment:

* ``REPRO_FULL=1`` — run the full 300-net population (Figures 13/14);
  the default uses a smaller seeded subset to keep the suite quick.
"""

import os
import pathlib

import pytest

from repro.bench.netgen import NetGenerator
from repro.core.analysis import DelayNoiseAnalyzer
from repro.core.superposition import ModelCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def population_size(default: int, full: int) -> int:
    return full if full_run() else default


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Replace results/<name>.txt with an experiment's text output.

    Delegates to :func:`repro.bench.record_result`, which overwrites the
    file so it always reflects the latest run.
    """
    from repro.bench import record_result

    def _record(name: str, text: str) -> None:
        path = record_result(results_dir, name, text)
        print(f"\n{text}\n[saved to {path}]")
    return _record


@pytest.fixture(scope="session")
def model_cache():
    return ModelCache()


@pytest.fixture(scope="session")
def analyzer(model_cache):
    return DelayNoiseAnalyzer(cache=model_cache)


@pytest.fixture(scope="session")
def make_generator():
    """Factory for per-figure generators: execution-order independent."""
    def _make(figure: int) -> NetGenerator:
        return NetGenerator(seed=2001 + figure)  # DAC 2001
    return _make


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
