"""Figure 13 — linear driver model accuracy over a net population.

Paper: 300 nets from a high-performance microprocessor block.  For each
net, the extra delay from the linear flow — with the traditional
Thevenin holding resistance and with the transient holding resistance —
is plotted against the extra delay from full non-linear (Spice)
simulation.  Reported: average error 48.63% (Thevenin) vs 7.41% (Rtr);
the Thevenin model underestimates in every case and errs more on
larger-delay nets.

Our substitute population uses the "high-performance block" generator
preset (fast victim edges, strong coupling, slow strong aggressors — see
DESIGN.md).  Model accuracy is measured with each net's noise pulse
peak-aligned on the victim's receiver-input 50% crossing: the classic
mid-transition alignment where the extra delay is a smooth function of
the injected noise.  (At a cliff-edge worst-case alignment the
delay-vs-noise map is discontinuous, which turns a model comparison into
a coin flip on cliff-adjacent nets.)  Extra delay is measured at the
receiver input, matching the figure's axes.

Default 40 nets; set ``REPRO_FULL=1`` for the paper's 300.
"""

import numpy as np
from conftest import population_size, run_once

from repro.bench.netgen import NetGenConfig, NetGenerator
from repro.bench.runner import ErrorStats, format_table
from repro.core.alignment import peak_align_shifts
from repro.core.exhaustive import combined_extra_delays
from repro.core.golden import golden_extra_delays
from repro.core.holding_resistance import compute_rtr
from repro.core.superposition import SuperpositionEngine
from repro.units import NS, PS

#: Nets whose golden extra delay is below this are dominated by
#: measurement noise and excluded (the paper's per-net percentages
#: implicitly cover nets with measurable delay noise).
MIN_GOLDEN = 15 * PS


def experiment(model_cache):
    count = population_size(default=40, full=300)
    generator = NetGenerator(seed=2013,
                             config=NetGenConfig.high_performance())
    nets = generator.population(count)

    rows = []
    gold, rtr, thev = [], [], []
    skipped = 0
    for net in nets:
        engine = SuperpositionEngine(net, cache=model_cache)
        vdd = net.vdd
        victim = (engine.victim_transition().at_receiver
                  + net.victim_initial_level())
        t50 = victim.crossing_time(vdd / 2, rising=True)
        pulses = {a.name: engine.aggressor_noise(a.name).at_receiver
                  for a in net.aggressors}
        shifts = peak_align_shifts(pulses, t50)

        result = compute_rtr(engine, shifts)
        t_stop = engine.t_stop + 1.5 * NS
        noisy_th = victim + engine.total_noise(
            shifts, victim_r=result.rth).at_receiver
        noisy_rtr = victim + engine.total_noise(
            shifts, victim_r=result.rtr).at_receiver
        extra_th, _, _ = combined_extra_delays(
            net.receiver, victim, noisy_th, vdd, True, t_stop)
        extra_rtr, _, _ = combined_extra_delays(
            net.receiver, victim, noisy_rtr, vdd, True, t_stop)

        golden = golden_extra_delays(net, t_stop,
                                     aggressor_shifts=shifts)
        if golden.extra_input < MIN_GOLDEN:
            skipped += 1
            continue
        gold.append(golden.extra_input)
        thev.append(extra_th)
        rtr.append(extra_rtr)
        rows.append([net.name, golden.extra_input / PS, extra_th / PS,
                     extra_rtr / PS])

    stats_rtr = ErrorStats(rtr, gold)
    stats_thev = ErrorStats(thev, gold)

    table = format_table(
        ["net", "golden (ps)", "Thevenin R (ps)", "transient R (ps)"],
        rows,
        title=f"Figure 13 — extra delay, linear models vs golden "
              f"({len(rows)} nets, {skipped} below noise floor)")
    table += (
        f"\n\nThevenin R : avg err {stats_thev.mean_abs_pct_error():.2f}% "
        f"worst {stats_thev.worst_abs_pct_error():.2f}% "
        f"underestimates {100 * stats_thev.underestimation_fraction():.0f}%"
        f" of nets   (paper: avg 48.63%, all underestimate)"
        f"\ntransient R: avg err {stats_rtr.mean_abs_pct_error():.2f}% "
        f"worst {stats_rtr.worst_abs_pct_error():.2f}% "
        f"underestimates {100 * stats_rtr.underestimation_fraction():.0f}%"
        f" of nets   (paper: avg 7.41%)"
        f"\ncorrelation with golden: Thevenin "
        f"{stats_thev.correlation():.4f}, Rtr "
        f"{stats_rtr.correlation():.4f}")
    return table, stats_rtr, stats_thev


def test_fig13(benchmark, model_cache, record):
    table, stats_rtr, stats_thev = run_once(
        benchmark, lambda: experiment(model_cache))
    record("fig13_population_accuracy", table)

    # Rtr is substantially more accurate on average.
    assert stats_rtr.mean_abs_pct_error() < \
        0.55 * stats_thev.mean_abs_pct_error()
    # The Thevenin model underestimates essentially everywhere.
    assert stats_thev.underestimation_fraction() > 0.9
    # Thevenin's absolute error grows with the golden delay: correlation
    # between |error| and golden value is positive.
    corr = np.corrcoef(np.abs(stats_thev.errors), stats_thev.golden)[0, 1]
    assert corr > 0.3
