"""Ablation benches for the design choices called out in DESIGN.md.

Not paper figures — these quantify the library's own decisions:

* ``rtr_driver_load`` — the strict lumped-Ceff Rtr of the paper vs the
  π-load variant this library defaults to (the documented deviation).
* ``cliff_guard`` — the alignment predictor's early-side guard band.
* ``prima_order`` — reduced-model accuracy vs order.
* ``mor_methods`` — PRIMA vs AWE vs TICER on one coupled-noise waveform.
* ``rtr_engine`` — transistor vs current-source-model Rtr driver pairs.
* ``statistical_pessimism`` — deterministic worst case vs the delay
  distribution under window-uniform alignment.
"""

import numpy as np
from conftest import run_once

from repro.bench.netgen import canonical_net
from repro.bench.runner import format_table
from repro.circuit import Circuit, GROUND, build_mna
from repro.circuit.topology import couple_nodes, rc_line
from repro.core.exhaustive import (
    combined_extra_delays,
    exhaustive_worst_alignment,
)
from repro.core.golden import golden_extra_delays
from repro.core.holding_resistance import compute_rtr
from repro.core.net import ReceiverSpec
from repro.core.precharacterize import (
    build_alignment_table,
    characterization_victim,
)
from repro.core.superposition import SuperpositionEngine
from repro.gates import inverter
from repro.mor import ReducedModel
from repro.sim import simulate_linear
from repro.units import FF, KOHM, NS, PS
from repro.waveform import noise_pulse, triangular_pulse
from repro.waveform.pulses import pulse_peak

VDD = 1.8


def test_ablation_rtr_driver_load(benchmark, model_cache, record):
    """Thevenin vs Ceff-Rtr vs π-Rtr, against golden extra delay."""

    def experiment():
        net = canonical_net(n_aggressors=1)
        engine = SuperpositionEngine(net, cache=model_cache)
        vic = engine.victim_transition_absolute().at_receiver
        t50 = vic.crossing_time(VDD / 2, rising=True)
        t_peak, _ = pulse_peak(engine.aggressor_noise("agg0").at_receiver)
        shifts = {"agg0": t50 - t_peak}
        t_stop = engine.t_stop + 1.5 * NS

        golden = golden_extra_delays(net, t_stop,
                                     aggressor_shifts=shifts).extra_input

        rows = []
        deltas = {}
        holders = {"Thevenin Rth": engine.models["victim"].rth}
        for mode in ("ceff", "pi"):
            holders[f"Rtr ({mode})"] = compute_rtr(
                engine, shifts, driver_load=mode).rtr
        for label, r_hold in holders.items():
            noisy = vic + engine.total_noise(shifts,
                                             victim_r=r_hold).at_receiver
            extra, _, _ = combined_extra_delays(
                net.receiver, vic, noisy, VDD, True, t_stop)
            deltas[label] = extra
            rows.append([label, r_hold, extra / PS,
                         100 * (extra - golden) / golden])
        table = format_table(
            ["victim holding", "R (ohm)", "extra delay (ps)",
             "err vs golden (%)"],
            rows, title=f"Ablation — Rtr driver load "
                        f"(golden = {golden / PS:.1f} ps)")
        return table, deltas, golden

    table, deltas, golden = run_once(benchmark, experiment)
    record("ablation_rtr_driver_load", table)
    err = {k: abs(v - golden) for k, v in deltas.items()}
    assert err["Rtr (pi)"] < err["Rtr (ceff)"] < err["Thevenin Rth"]


def test_ablation_cliff_guard(benchmark, record):
    """Guarded vs unguarded alignment prediction near the delay cliff."""

    def experiment():
        gate = inverter(scale=2)
        guarded = build_alignment_table(gate, cliff_guard=0.08)
        bare = build_alignment_table(gate, cliff_guard=0.0)
        receiver = ReceiverSpec(gate, c_load=2 * FF)

        rows = []
        results = {}
        for label, table in (("guard=0.08", guarded), ("guard=0", bare)):
            losses = []
            overshoots = 0
            for slew in (0.25 * NS, 0.45 * NS):
                victim = characterization_victim(slew, VDD, True)
                for width, height in ((0.15 * NS, 0.5), (0.3 * NS, 0.65)):
                    pulse = noise_pulse(0.0, -height, width)
                    sweep = exhaustive_worst_alignment(
                        receiver, victim, pulse, VDD, True, steps=21,
                        refine=8, dt=2 * PS)
                    t_pred = table.predict_peak_time(victim, width,
                                                     -height, slew)
                    d = sweep.delay_at(t_pred)
                    loss = (sweep.best_extra_output - d) \
                        / sweep.best_extra_output
                    losses.append(loss)
                    if t_pred > sweep.best_peak_time + 2 * PS:
                        overshoots += 1
            results[label] = (float(np.mean(losses)),
                              float(np.max(losses)), overshoots)
            rows.append([label, 100 * results[label][0],
                         100 * results[label][1], overshoots])
        table_text = format_table(
            ["predictor", "avg delay loss (%)", "worst loss (%)",
             "late predictions"],
            rows, title="Ablation — cliff guard band")
        return table_text, results

    table_text, results = run_once(benchmark, experiment)
    record("ablation_cliff_guard", table_text)
    # The guard must keep the worst loss bounded.
    assert results["guard=0.08"][1] < 0.15


def test_ablation_prima_order(benchmark, record):
    """Reduced-model waveform error vs PRIMA order."""

    def experiment():
        circuit = Circuit("coupled")
        na = rc_line(circuit, "v_", "vin", "vout", 14, 2 * KOHM, 90 * FF)
        nb = rc_line(circuit, "a_", "ain", "aout", 14, 2 * KOHM, 90 * FF)
        couple_nodes(circuit, "x_", na, nb, 70 * FF)
        circuit.add_resistor("rv", "vin", GROUND, 900.0)
        circuit.add_resistor("ra", "aout", GROUND, 8 * KOHM)
        pulse = triangular_pulse(0.4 * NS, 1.0e-3, 0.15 * NS)
        circuit.add_isource("iagg", "ain", GROUND, pulse)

        full = simulate_linear(circuit, 2.5 * NS, 1 * PS)
        reference = full.voltage("vout")
        peak = float(np.abs(reference.values).max())

        rows = []
        errors = []
        for order in (2, 4, 6, 8, 12):
            model = ReducedModel.from_mna(full.mna, ["vout"], order)
            out = model.simulate(full.times,
                                 np.atleast_2d(pulse(full.times)))["vout"]
            err = float(np.abs(out.values - reference.values).max()) / peak
            errors.append(err)
            rows.append([order, model.order, 100 * err])
        table_text = format_table(
            ["requested order", "actual order", "max waveform err (%)"],
            rows, title=f"Ablation — PRIMA order (full dim "
                        f"{full.mna.dim}, peak {peak * 1e3:.1f} mV)")
        return table_text, errors

    table_text, errors = run_once(benchmark, experiment)
    record("ablation_prima_order", table_text)
    assert errors == sorted(errors, reverse=True) or errors[-1] < 1e-4
    assert errors[-1] < 0.01  # order 12 is waveform-accurate


def test_ablation_mor_methods(benchmark, record):
    """PRIMA vs AWE vs TICER on the same coupled-noise waveform.

    Three reduction philosophies on one victim/aggressor pair: PRIMA
    (projection, passive, q moments), AWE (explicit Padé poles, closed
    form), TICER (node elimination, stays an RC circuit).  The metric is
    the worst error of the victim far-end noise waveform against full
    simulation.
    """

    def experiment():
        from repro.circuit import Circuit, GROUND
        from repro.circuit.topology import couple_nodes, rc_line
        from repro.mor import ReducedModel, awe_from_mna, ticer_reduce
        from repro.sim import simulate_linear
        from repro.units import FF, KOHM, NS, PS
        from repro.waveform import triangular_pulse

        def wires():
            circuit = Circuit("coupled")
            na = rc_line(circuit, "v_", "vin", "vout", 14, 2 * KOHM,
                         90 * FF)
            nb = rc_line(circuit, "a_", "ain", "aout", 14, 2 * KOHM,
                         90 * FF)
            couple_nodes(circuit, "x_", na, nb, 70 * FF)
            circuit.add_resistor("rv", "vin", GROUND, 900.0)
            circuit.add_resistor("ra", "aout", GROUND, 8 * KOHM)
            return circuit

        pulse = triangular_pulse(0.4 * NS, 1.0e-3, 0.15 * NS)
        full_circuit = wires()
        full_circuit.add_isource("iagg", "ain", GROUND, pulse)
        full = simulate_linear(full_circuit, 2.5 * NS, 1 * PS)
        reference = full.voltage("vout")
        peak = float(np.abs(reference.values).max())

        rows = []
        errors = {}

        # PRIMA, order 6.
        prima_model = ReducedModel.from_mna(full.mna, ["vout"], 6)
        prima_out = prima_model.simulate(
            full.times, np.atleast_2d(pulse(full.times)))["vout"]
        errors["PRIMA q=6"] = float(
            np.abs(prima_out.values - reference.values).max()) / peak
        rows.append(["PRIMA q=6 (projection)", prima_model.order,
                     100 * errors["PRIMA q=6"]])

        # AWE, 4 poles (closed-form response, no time stepping).
        awe_model = awe_from_mna(full.mna, "vout", order=4)
        awe_out = awe_model.response(pulse, full.times)
        errors["AWE q=4"] = float(
            np.abs(awe_out.values - reference.values).max()) / peak
        rows.append(["AWE q=4 (Pade poles)", awe_model.order,
                     100 * errors["AWE q=4"]])

        # TICER down to the four ports, then re-simulate the RC result.
        reduced_wires = ticer_reduce(
            wires(), keep=["vin", "vout", "ain", "aout"],
            max_time_constant=20 * PS)
        reduced_circuit = reduced_wires.copy()
        reduced_circuit.add_isource("iagg", "ain", GROUND, pulse)
        ticer_out = simulate_linear(reduced_circuit, 2.5 * NS,
                                    1 * PS).voltage("vout")
        errors["TICER 20ps"] = float(
            np.abs(ticer_out(full.times) - reference.values).max()) / peak
        rows.append(["TICER tau<=20ps (realizable RC)",
                     len(reduced_wires.nodes()),
                     100 * errors["TICER 20ps"]])

        table = format_table(
            ["method", "size (order/nodes)", "max waveform err (%)"],
            rows, title=f"Ablation — reduction methods "
                        f"(full dim {full.mna.dim}, noise peak "
                        f"{peak * 1e3:.0f} mV)")
        return table, errors

    table, errors = run_once(benchmark, experiment)
    record("ablation_mor_methods", table)
    # All three stay waveform-accurate on this net.
    assert max(errors.values()) < 0.10


def test_ablation_rtr_engine(benchmark, model_cache, record):
    """Transistor-level vs CSM driver pair inside the Rtr computation.

    Same circuit, same Steps 1-6; only the Step-3 non-linear driver
    replays differ.  The CSM path trades transistor co-simulation for
    table interpolation — the row shows how close the resulting Rtr
    stays and how much wall time the table saves.
    """

    def experiment():
        import time

        net = canonical_net(n_aggressors=1, name="rtr_engine")
        engine = SuperpositionEngine(net, cache=model_cache)
        vic = engine.victim_transition_absolute().at_receiver
        t50 = vic.crossing_time(VDD / 2, rising=True)
        t_peak, _ = pulse_peak(engine.aggressor_noise("agg0").at_receiver)
        shifts = {"agg0": t50 - t_peak}

        rows = []
        results = {}
        for engine_name in ("transistor", "csm"):
            start = time.perf_counter()
            result = compute_rtr(engine, shifts,
                                 driver_engine=engine_name)
            elapsed = time.perf_counter() - start
            results[engine_name] = (result.rtr, elapsed)
            rows.append([engine_name, result.rtr, result.ratio,
                         1e3 * elapsed])
        # The first CSM call pays table characterization; report a warm
        # second call too.
        start = time.perf_counter()
        compute_rtr(engine, shifts, driver_engine="csm")
        warm = time.perf_counter() - start
        rows.append(["csm (warm)", results["csm"][0],
                     results["csm"][0] / compute_rtr(engine, shifts,
                                                     driver_engine="csm"
                                                     ).rth, 1e3 * warm])
        table = format_table(
            ["driver engine", "Rtr (ohm)", "Rtr/Rth", "wall time (ms)"],
            rows, title="Ablation — Rtr driver-pair engine")
        return table, results, warm

    table, results, warm = run_once(benchmark, experiment)
    record("ablation_rtr_engine", table)
    r_ref, _t_ref = results["transistor"]
    r_csm, _ = results["csm"]
    assert abs(r_csm - r_ref) < 0.1 * r_ref
    assert warm < results["transistor"][1]  # warm CSM beats transistor


def test_ablation_statistical_pessimism(benchmark, model_cache, record):
    """Worst-case alignment vs the statistical view.

    With the aggressor free to switch anywhere in a wide window, the
    deterministic worst case sits far out in the tail of the actual
    delay distribution — the pessimism later statistical-alignment work
    (Kahng/Liu/Xu) quantifies.  One exhaustive sweep feeds the whole
    distribution.
    """

    def experiment():
        from repro.core.statistical import sample_alignment_delays
        from repro.sta import Window

        net = canonical_net(n_aggressors=1, name="stat")
        engine = SuperpositionEngine(net, cache=model_cache)
        victim = (engine.victim_transition().at_receiver
                  + net.victim_initial_level())
        pulse = engine.aggressor_noise("agg0").at_receiver
        sweep = exhaustive_worst_alignment(net.receiver, victim, pulse,
                                           VDD, True, steps=33, refine=8)

        rows = []
        stats = {}
        for span_ns in (0.5, 1.0, 2.0):
            window = Window(sweep.best_peak_time - span_ns * 0.5 * NS,
                            sweep.best_peak_time + span_ns * 0.5 * NS)
            dist = sample_alignment_delays(sweep, window, samples=50000)
            stats[span_ns] = dist
            rows.append([span_ns, dist.mean / PS, dist.quantile(0.5) / PS,
                         dist.quantile(0.99) / PS,
                         sweep.best_extra_output / PS])
        table = format_table(
            ["window (ns)", "mean (ps)", "median (ps)", "q99 (ps)",
             "worst-case (ps)"],
            rows, title="Ablation — worst-case vs statistical alignment")
        return table, stats, sweep

    table, stats, sweep = run_once(benchmark, experiment)
    record("ablation_statistical_pessimism", table)
    # Wider windows dilute the expected delay; the worst case never
    # moves.  q99 stays below the deterministic bound.
    assert stats[2.0].mean < stats[0.5].mean
    for dist in stats.values():
        assert dist.quantile(0.99) <= sweep.best_extra_output + 1e-15
