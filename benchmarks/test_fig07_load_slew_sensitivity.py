"""Figure 7 — delay vs alignment for (a) receiver loads, (b) victim slews.

Paper:

* (a) For small receiver output loads the alignment is very sensitive —
  a small shift produces a dramatic delay change; for large loads the
  curve is flat, which is why characterizing the alignment at *minimum*
  load is safe for all loads.
* (b) Measured relative to the victim's 50% crossing, the worst-case
  alignment is nearly a *linear* function of the victim transition time
  — the basis for characterizing only two slews and interpolating.
"""

import numpy as np
from conftest import run_once

from repro.bench.runner import format_table
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.net import ReceiverSpec
from repro.core.precharacterize import characterization_victim
from repro.gates import inverter
from repro.units import FF, NS, PS
from repro.waveform import noise_pulse

VDD = 1.8
LOADS = (2 * FF, 10 * FF, 40 * FF, 160 * FF)
SLEWS = (0.15 * NS, 0.3 * NS, 0.45 * NS, 0.6 * NS, 0.75 * NS)


def sensitivity(sweep) -> float:
    """Delay lost 50 ps away from the optimum, relative to the peak —
    a scalar proxy for how 'sharp' the curve is."""
    best_t = sweep.best_peak_time
    nearby = min(sweep.delay_at(best_t - 50 * PS),
                 sweep.delay_at(best_t + 50 * PS))
    return (sweep.best_extra_output - nearby) / sweep.best_extra_output


def experiment():
    gate = inverter(scale=2)
    pulse = noise_pulse(0.0, -0.5, 0.2 * NS)

    # (a) Load sweep at fixed victim slew.
    victim = characterization_victim(0.3 * NS, VDD, True)
    load_rows = []
    sharpness = []
    for c_load in LOADS:
        receiver = ReceiverSpec(gate, c_load=c_load)
        sweep = exhaustive_worst_alignment(receiver, victim, pulse, VDD,
                                           True, steps=21, refine=8,
                                           dt=2 * PS)
        s = sensitivity(sweep)
        sharpness.append(s)
        load_rows.append([c_load / FF, sweep.best_peak_time / PS,
                          sweep.best_extra_output / PS, 100 * s])

    # (b) Slew sweep at minimum load; worst alignment relative to t50.
    receiver = ReceiverSpec(gate, c_load=2 * FF)
    slew_rows = []
    offsets = []
    for slew in SLEWS:
        victim = characterization_victim(slew, VDD, True)
        sweep = exhaustive_worst_alignment(receiver, victim, pulse, VDD,
                                           True, steps=21, refine=8,
                                           dt=2 * PS)
        offset = sweep.best_peak_time  # victim t50 is at 0 by design
        offsets.append(offset)
        slew_rows.append([slew / PS, offset / PS,
                          sweep.best_extra_output / PS])

    # Linearity of worst alignment vs slew (R^2 of a linear fit).
    slews = np.asarray(SLEWS)
    offs = np.asarray(offsets)
    coeffs = np.polyfit(slews, offs, 1)
    fit = np.polyval(coeffs, slews)
    ss_res = float(np.sum((offs - fit) ** 2))
    ss_tot = float(np.sum((offs - offs.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot

    table = format_table(
        ["load (fF)", "worst peak (ps)", "worst delay (ps)",
         "sensitivity @50ps (%)"],
        load_rows,
        title="Figure 7(a) — alignment sensitivity vs receiver load")
    table += "\n\n" + format_table(
        ["victim slew (ps)", "worst peak offset from t50 (ps)",
         "worst delay (ps)"],
        slew_rows,
        title="Figure 7(b) — worst alignment vs victim slew (min load)")
    table += f"\nlinear fit R^2 of offset vs slew: {r_squared:.4f}"
    return table, sharpness, r_squared


def test_fig07(benchmark, record):
    table, sharpness, r_squared = run_once(benchmark, experiment)
    record("fig07_load_slew_sensitivity", table)

    # (a) Sensitivity decreases monotonically from the smallest to the
    # largest load, and large loads are much flatter.
    assert sharpness[0] > sharpness[-1]
    assert sharpness[-1] < 0.5 * sharpness[0]
    # (b) Near-linear worst alignment vs slew.
    assert r_squared > 0.95
