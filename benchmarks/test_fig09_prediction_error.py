"""Figure 9 — error of the 8-point alignment prediction.

Paper: the delay obtained at the *predicted* alignment is compared with
the exhaustive worst case over (a) all victim slews x receiver loads and
(b) all pulse widths x heights.  Reported error: below 7% for (a) and
below 8% for (b).

Grid conditions interpolate *between* the characterized corners, so this
measures the table's generalization, not its fit.  Two predictors are
reported: the paper's pure table lookup, and the shipped analyzer
behaviour which additionally *measures* three earlier candidates with
the receiver simulation it runs anyway (``alignment_probes``; see
DESIGN.md — this is what turns a rare cliff overshoot into a small
early-side loss).
"""

import numpy as np
from conftest import run_once

from repro.bench.runner import ErrorStats, format_table
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.net import ReceiverSpec
from repro.core.precharacterize import (
    build_alignment_table,
    characterization_victim,
)
from repro.gates import inverter
from repro.units import FF, NS, PS
from repro.waveform import noise_pulse

VDD = 1.8
SLEWS = (0.2 * NS, 0.4 * NS, 0.6 * NS)
LOADS = (2 * FF, 20 * FF, 80 * FF)
WIDTHS = (0.12 * NS, 0.22 * NS, 0.34 * NS)
HEIGHTS = (0.32, 0.5, 0.72)


def experiment():
    gate = inverter(scale=2)
    table = build_alignment_table(gate)

    def evaluate(victim, slew, width, height, c_load):
        receiver = ReceiverSpec(gate, c_load=c_load)
        pulse = noise_pulse(0.0, -height, width)
        sweep = exhaustive_worst_alignment(receiver, victim, pulse, VDD,
                                           True, steps=21, refine=8,
                                           dt=2 * PS)
        t_pred = table.predict_peak_time(victim, width, -height, slew)
        d_pure = sweep.delay_at(t_pred)
        # The analyzer's probe refinement: measure three earlier
        # candidates as well and keep the best.
        step = 0.15 * width
        d_probed = max(sweep.delay_at(t_pred - k * step)
                       for k in range(4))
        return d_pure, d_probed, sweep.best_extra_output

    # (a) slew x load grid, mid-range pulse.
    rows_a, pure_a, probed_a, gold_a = [], [], [], []
    for slew in SLEWS:
        victim = characterization_victim(slew, VDD, True)
        for c_load in LOADS:
            d_pure, d_probed, d_best = evaluate(victim, slew, 0.2 * NS,
                                                0.5, c_load)
            pure_a.append(d_pure)
            probed_a.append(d_probed)
            gold_a.append(d_best)
            rows_a.append([slew / PS, c_load / FF, d_best / PS,
                           d_pure / PS, d_probed / PS,
                           100 * (d_probed - d_best) / d_best])

    # (b) width x height grid, mid slew / min load.
    victim = characterization_victim(0.35 * NS, VDD, True)
    rows_b, pure_b, probed_b, gold_b = [], [], [], []
    for width in WIDTHS:
        for height in HEIGHTS:
            d_pure, d_probed, d_best = evaluate(victim, 0.35 * NS,
                                                width, height, 2 * FF)
            pure_b.append(d_pure)
            probed_b.append(d_probed)
            gold_b.append(d_best)
            rows_b.append([width / PS, height, d_best / PS, d_pure / PS,
                           d_probed / PS,
                           100 * (d_probed - d_best) / d_best])

    stats = {
        "a_pure": ErrorStats(pure_a, gold_a),
        "a_probed": ErrorStats(probed_a, gold_a),
        "b_pure": ErrorStats(pure_b, gold_b),
        "b_probed": ErrorStats(probed_b, gold_b),
    }

    table_text = format_table(
        ["slew (ps)", "load (fF)", "worst (ps)", "table (ps)",
         "probed (ps)", "err (%)"],
        rows_a,
        title="Figure 9(a) — prediction error over slew x load")
    table_text += (
        f"\npure table worst |error|: "
        f"{stats['a_pure'].worst_abs_pct_error():.1f}%, probed: "
        f"{stats['a_probed'].worst_abs_pct_error():.1f}% (paper: < 7%)")
    table_text += "\n\n" + format_table(
        ["width (ps)", "height (V)", "worst (ps)", "table (ps)",
         "probed (ps)", "err (%)"],
        rows_b,
        title="Figure 9(b) — prediction error over width x height")
    table_text += (
        f"\npure table worst |error|: "
        f"{stats['b_pure'].worst_abs_pct_error():.1f}%, probed: "
        f"{stats['b_probed'].worst_abs_pct_error():.1f}% (paper: < 8%)")
    return table_text, stats


def test_fig09(benchmark, record):
    table_text, stats = run_once(benchmark, experiment)
    record("fig09_prediction_error", table_text)

    # The shipped (probed) predictor stays within the paper's band with
    # a small margin; the pure table is close behind.
    assert stats["a_probed"].worst_abs_pct_error() < 12.0
    assert stats["b_probed"].worst_abs_pct_error() < 12.0
    assert stats["a_pure"].worst_abs_pct_error() < 20.0
    assert stats["b_pure"].worst_abs_pct_error() < 20.0
    # Neither predictor exceeds the exhaustive worst case.
    for s in stats.values():
        assert (s.errors <= 1 * PS).all()
