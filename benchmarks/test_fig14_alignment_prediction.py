"""Figure 14 — predicted alignment vs exhaustive worst-case search.

Paper: over the net population, the extra delay achieved at the
*predicted* alignment (Y) is plotted against the delay from an
exhaustive alignment search (X).  Two predictors compete: the method of
[5] — maximize the delay at the receiver *input* — and this paper's
receiver-*output* objective with the 8-point table.  Reported worst-case
errors: 31 ps for [5] vs 15 ps for the paper's method.

Default 14 nets (each needs a full exhaustive sweep); ``REPRO_FULL=1``
runs 60.
"""

from conftest import population_size, run_once

from repro.bench.runner import ErrorStats, format_table
from repro.core.alignment import input_objective_peak_time
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.units import PS


def experiment(analyzer, generator):
    count = population_size(default=14, full=60)
    nets = generator.population(count)

    rows = []
    best, ours, prior = [], [], []
    for net in nets:
        report = analyzer.analyze(net, alignment="table")
        sweep = exhaustive_worst_alignment(
            net.receiver, report.noiseless_input, report.composite,
            net.vdd, net.victim_rising, steps=25, refine=8)

        d_ours = sweep.delay_at(report.peak_time)
        t_prior = input_objective_peak_time(
            report.noiseless_input, report.pulse_height, net.vdd,
            net.victim_rising)
        d_prior = sweep.delay_at(t_prior)
        d_best = sweep.best_extra_output

        best.append(d_best)
        ours.append(d_ours)
        prior.append(d_prior)
        rows.append([net.name, d_best / PS, d_prior / PS, d_ours / PS])

    stats_ours = ErrorStats(ours, best)
    stats_prior = ErrorStats(prior, best)

    table = format_table(
        ["net", "exhaustive (ps)", "input-objective [5] (ps)",
         "our prediction (ps)"],
        rows,
        title=f"Figure 14 — delay at predicted vs exhaustive worst-case "
              f"alignment ({len(rows)} nets)")
    table += (
        f"\n\ninput-objective [5]: worst err "
        f"{stats_prior.worst_abs_error() / PS:.1f} ps, avg "
        f"{stats_prior.mean_abs_error() / PS:.1f} ps   "
        f"(paper: worst 31 ps)"
        f"\nour prediction     : worst err "
        f"{stats_ours.worst_abs_error() / PS:.1f} ps, avg "
        f"{stats_ours.mean_abs_error() / PS:.1f} ps   "
        f"(paper: worst 15 ps)")
    return table, stats_ours, stats_prior


def test_fig14(benchmark, analyzer, make_generator, record):
    table, stats_ours, stats_prior = run_once(
        benchmark, lambda: experiment(analyzer, make_generator(14)))
    record("fig14_alignment_prediction", table)

    # The receiver-output objective beats the input objective, both on
    # worst-case and average error.
    assert stats_ours.worst_abs_error() < stats_prior.worst_abs_error()
    assert stats_ours.mean_abs_error() < stats_prior.mean_abs_error()
    # And never exceeds the exhaustive worst case.
    assert (stats_ours.errors <= 1 * PS).all()
