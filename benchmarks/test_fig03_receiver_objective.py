"""Figure 3 — worst-case alignment at the receiver input is not the
worst case at the receiver output.

Paper: aligning the composite pulse peak where the noiseless victim
crosses Vdd/2 + Vp maximizes the *interconnect* delay, but can place the
aggressor transition so late that the receiver has already completed its
transition — the combined delay is not increased at all, and the noise
pulse at the receiver output is filtered (no functional failure either).

The bench prints the delay-vs-alignment series at both measurement
points and the residual output pulse at the late alignment.
"""

from conftest import run_once

from repro.bench.netgen import canonical_net
from repro.bench.runner import format_table
from repro.core.alignment import (
    composite_pulse,
    input_objective_peak_time,
    peak_align_shifts,
)
from repro.core.exhaustive import (
    combined_extra_delays,
    exhaustive_worst_alignment,
)
from repro.core.superposition import SuperpositionEngine
from repro.units import NS, PS
from repro.waveform.pulses import pulse_peak


def experiment(model_cache):
    net = canonical_net(n_aggressors=2)
    vdd = net.vdd
    engine = SuperpositionEngine(net, cache=model_cache)

    noiseless = (engine.victim_transition().at_receiver
                 + net.victim_initial_level())
    t50 = noiseless.crossing_time(vdd / 2, rising=True)
    pulses = {a.name: engine.aggressor_noise(a.name).at_receiver
              for a in net.aggressors}
    shape = composite_pulse(pulses, peak_align_shifts(pulses, t50))
    _, height = pulse_peak(shape)

    sweep = exhaustive_worst_alignment(net.receiver, noiseless, shape,
                                       vdd, True, steps=33, refine=8)
    t_input_obj = input_objective_peak_time(noiseless, height, vdd, True)
    d_out_at_input_obj = sweep.delay_at(t_input_obj)

    # Residual output pulse at the late (input-objective) alignment.
    tp0, _ = pulse_peak(shape)
    noisy_late = noiseless + shape.shifted(t_input_obj - tp0)
    _, _, out_late = combined_extra_delays(
        net.receiver, noiseless, noisy_late, vdd, True,
        sweep.peak_times[-1] + 1 * NS)
    residual = out_late.clipped(t_input_obj, out_late.t_end)
    residual_mv = residual.value_range()[1] * 1000.0

    rows = [
        [f"{t / NS:.3f}", f"{noiseless(t):.3f}", d_in / PS, d_out / PS]
        for t, d_in, d_out in zip(sweep.peak_times[::4],
                                  sweep.extra_input_delays[::4],
                                  sweep.extra_output_delays[::4])
    ]
    table = format_table(
        ["peak time (ns)", "victim (V)", "extra@input (ps)",
         "extra@output (ps)"],
        rows, title="Figure 3 — delay vs alignment at both objectives")
    table += (
        f"\ninput-objective peak @ {t_input_obj / NS:.3f} ns -> output "
        f"extra delay {d_out_at_input_obj / PS:.1f} ps"
        f"\noutput-objective peak @ {sweep.best_peak_time / NS:.3f} ns -> "
        f"output extra delay {sweep.best_extra_output / PS:.1f} ps"
        f"\nresidual receiver-output pulse at the late alignment: "
        f"{residual_mv:.0f} mV")
    return table, sweep, d_out_at_input_obj, residual_mv


def test_fig03(benchmark, model_cache, record):
    table, sweep, d_out_at_input_obj, residual_mv = run_once(
        benchmark, lambda: experiment(model_cache))
    record("fig03_receiver_objective", table)

    # The input-objective alignment leaves most of the output delay on
    # the table (in this circuit: all of it).
    assert d_out_at_input_obj < 0.5 * sweep.best_extra_output
    # The receiver filters the late pulse: bounded residual, and far
    # below the switching threshold at the output.
    assert residual_mv < 0.45 * 1800
