"""Figure 6 — delay vs relative alignment of two aggressors.

Paper: with a small receiver output load the worst case occurs when the
two aggressor noise peaks coincide; with a large load the receiver acts
as a stronger low-pass filter and a wider, lower composite (non-aligned
peaks) can be worse — but the delay difference between the true worst
and the aligned-peaks approximation is tiny (2.7 ps in the paper's
example; < 5% in all their simulations).
"""

import numpy as np
from conftest import run_once

from repro.bench.netgen import canonical_net
from repro.bench.runner import format_table
from repro.core.alignment import composite_pulse, peak_align_shifts
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.net import ReceiverSpec
from repro.core.superposition import SuperpositionEngine
from repro.units import FF, NS, PS
from repro.waveform.pulses import pulse_peak

#: Relative offsets of aggressor 2's peak vs aggressor 1's peak.
OFFSETS_PS = (-300, -200, -120, -60, 0, 60, 120, 200, 300)


def experiment(model_cache):
    # Fast victim + slow, strong aggressors: the regime the paper names
    # for non-aligned worst cases ("victim transition relatively fast,
    # aggressor transition relatively slow, or receiver load large").
    net = canonical_net(n_aggressors=2, victim_slew=0.08 * NS,
                        aggressor_slew=0.3 * NS, aggressor_scale=8.0,
                        coupling_ratio=1.6)
    vdd = net.vdd
    engine = SuperpositionEngine(net, cache=model_cache)
    noiseless = (engine.victim_transition().at_receiver
                 + net.victim_initial_level())
    t50 = noiseless.crossing_time(vdd / 2, rising=True)

    pulses = {a.name: engine.aggressor_noise(a.name).at_receiver
              for a in net.aggressors}
    base_shifts = peak_align_shifts(pulses, t50)

    results = {}
    for c_load, label in ((4 * FF, "small"), (250 * FF, "large")):
        receiver = ReceiverSpec(net.receiver.gate, c_load=c_load)
        delays = []
        for offset_ps in OFFSETS_PS:
            shifts = dict(base_shifts)
            shifts["agg1"] = base_shifts["agg1"] + offset_ps * PS
            shape = composite_pulse(pulses, shifts)
            sweep = exhaustive_worst_alignment(
                receiver, noiseless, shape, vdd, True, steps=13,
                refine=6, dt=2 * PS)
            delays.append(sweep.best_extra_output)
        results[label] = np.asarray(delays)

    rows = [
        [off, results["small"][i] / PS, results["large"][i] / PS]
        for i, off in enumerate(OFFSETS_PS)
    ]
    table = format_table(
        ["peak offset (ps)", "delay, small load (ps)",
         "delay, large load (ps)"],
        rows,
        title="Figure 6 — combined delay vs inter-aggressor alignment")

    i_zero = OFFSETS_PS.index(0)
    summary_rows = []
    for label in ("small", "large"):
        best = float(results[label].max())
        at_aligned = float(results[label][i_zero])
        summary_rows.append([label, best / PS, at_aligned / PS,
                             (best - at_aligned) / PS,
                             100 * (best - at_aligned) / best])
    table += "\n" + format_table(
        ["receiver load", "worst (ps)", "aligned peaks (ps)",
         "gap (ps)", "gap (%)"],
        summary_rows)
    return table, results, i_zero


def test_fig06(benchmark, model_cache, record):
    table, results, i_zero = run_once(
        benchmark, lambda: experiment(model_cache))
    record("fig06_aggressor_alignment", table)

    for label in ("small", "large"):
        delays = results[label]
        best = delays.max()
        at_aligned = delays[i_zero]
        # Aligned peaks lose at most 5% against the true worst case
        # (the paper's bound for the aligned-peaks approximation).
        assert best - at_aligned <= 0.05 * best + 1 * PS, label

    # Small load: coincident peaks ARE the worst case.
    assert int(np.argmax(results["small"])) == i_zero
    # Large load: the receiver low-pass filters the tall, narrow aligned
    # composite; a wider non-aligned composite wins (by a little).
    assert results["large"].max() > results["large"][i_zero]
