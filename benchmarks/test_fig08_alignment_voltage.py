"""Figure 8 — the alignment *voltage* is nearly linear in pulse width
and height.

Paper: the worst-case alignment *time* is a non-linear function of the
noise pulse width and height, but expressed as the alignment voltage
(the victim voltage at the noise peak instant) the dependence becomes
nearly linear — which is what makes the 4-corner (width x height)
characterization with bilinear interpolation work.
"""

import numpy as np
from conftest import run_once

from repro.bench.runner import format_table
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.net import ReceiverSpec
from repro.core.precharacterize import characterization_victim
from repro.gates import inverter
from repro.units import FF, NS, PS
from repro.waveform import noise_pulse

VDD = 1.8
WIDTHS = (0.08 * NS, 0.16 * NS, 0.24 * NS, 0.32 * NS, 0.4 * NS)
HEIGHTS = (0.27, 0.40, 0.54, 0.68, 0.81)


def linearity(x, y) -> float:
    x = np.asarray(x)
    y = np.asarray(y)
    fit = np.polyval(np.polyfit(x, y, 1), x)
    ss_res = float(np.sum((y - fit) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    return 1.0 - ss_res / ss_tot


def experiment():
    receiver = ReceiverSpec(inverter(scale=2), c_load=2 * FF)
    victim = characterization_victim(0.3 * NS, VDD, True)

    def worst_va(width, height):
        pulse = noise_pulse(0.0, -height, width)
        sweep = exhaustive_worst_alignment(receiver, victim, pulse, VDD,
                                           True, steps=21, refine=8,
                                           dt=2 * PS)
        return float(victim(sweep.best_peak_time)), \
            sweep.best_peak_time, sweep.best_extra_output

    width_rows, va_w = [], []
    for width in WIDTHS:
        va, t, d = worst_va(width, 0.5)
        va_w.append(va)
        width_rows.append([width / PS, va, t / PS, d / PS])
    height_rows, va_h = [], []
    for height in HEIGHTS:
        va, t, d = worst_va(0.2 * NS, height)
        va_h.append(va)
        height_rows.append([height, va, t / PS, d / PS])

    r2_width = linearity(WIDTHS, va_w)
    r2_height = linearity(HEIGHTS, va_h)

    table = format_table(
        ["pulse width (ps)", "alignment voltage (V)",
         "worst peak (ps)", "worst delay (ps)"],
        width_rows,
        title="Figure 8(a) — alignment voltage vs pulse width (h=0.5V)")
    table += "\n\n" + format_table(
        ["pulse height (V)", "alignment voltage (V)",
         "worst peak (ps)", "worst delay (ps)"],
        height_rows,
        title="Figure 8(b) — alignment voltage vs pulse height (w=200ps)")
    table += (f"\nlinearity R^2: vs width {r2_width:.4f}, "
              f"vs height {r2_height:.4f}")
    return table, r2_width, r2_height, va_w, va_h


def test_fig08(benchmark, record):
    table, r2_width, r2_height, va_w, va_h = run_once(benchmark,
                                                      experiment)
    record("fig08_alignment_voltage", table)

    # Near-linear dependence: excellent in height, good in width (the
    # width dependence flattens toward wide pulses, which bilinear
    # interpolation between the corners still tracks conservatively).
    assert r2_width > 0.8
    assert r2_height > 0.95
    # Monotone: wider and taller pulses push the alignment voltage up.
    assert all(b >= a - 0.02 for a, b in zip(va_w, va_w[1:]))
    assert all(b >= a - 0.02 for a, b in zip(va_h, va_h[1:]))
