"""Figure 5 — linear noise simulation using the transient holding
resistance matches the non-linear result.

Paper: applying Rtr to the Figure-2 circuit, the linear waveforms match
the full non-linear simulation closely; the computed Rtr was 1463 ohm
against an original Thevenin resistance of 1203 ohm (ratio 1.22).

The bench reports our Rth/Rtr pair and how much of the Thevenin model's
noise-area error the Rtr model recovers against the golden simulation.
"""

from conftest import run_once

from repro.bench.netgen import canonical_net
from repro.bench.runner import format_table
from repro.core.golden import golden_simulation
from repro.core.holding_resistance import compute_rtr
from repro.core.superposition import SuperpositionEngine, VICTIM
from repro.units import NS
from repro.waveform.pulses import pulse_peak


def experiment(model_cache):
    net = canonical_net(n_aggressors=1)
    engine = SuperpositionEngine(net, cache=model_cache)
    vdd = net.vdd

    victim = engine.victim_transition_absolute().at_receiver
    t50 = victim.crossing_time(vdd / 2, rising=True)
    t_peak, _ = pulse_peak(engine.aggressor_noise("agg0").at_receiver)
    shifts = {"agg0": t50 - t_peak}

    result = compute_rtr(engine, shifts)

    t_stop = engine.t_stop + 1 * NS
    clean = golden_simulation(net, t_stop, aggressors_switching=False)
    noisy = golden_simulation(net, t_stop, aggressor_shifts=shifts)
    golden = noisy.at_root - clean.at_root

    lin_rth = engine.total_noise(shifts, victim_r=result.rth).at_root
    lin_rtr = engine.total_noise(shifts, victim_r=result.rtr).at_root

    area_gold = golden.integral()
    rows = []
    for label, wave in (("Thevenin Rth", lin_rth),
                        ("transient holding Rtr", lin_rtr),
                        ("golden (non-linear)", golden)):
        _, h = pulse_peak(wave)
        area = wave.integral()
        rows.append([label, h, area * 1e12,
                     100.0 * (area - area_gold) / area_gold])

    table = format_table(
        ["victim holding model", "noise peak (V)", "area (V*ps)",
         "area err vs golden (%)"],
        rows, title="Figure 5 — linear noise with Rtr vs non-linear")
    table += (f"\nRth = {result.rth:.0f} ohm, Rtr = {result.rtr:.0f} ohm "
              f"(ratio {result.ratio:.2f}; paper's example: 1203 -> 1463, "
              f"ratio 1.22)"
              f"\nRtr iterations: {result.iterations} "
              f"(converged={result.converged})")

    err_rth = abs(lin_rth.integral() - area_gold)
    err_rtr = abs(lin_rtr.integral() - area_gold)
    return table, result, err_rth, err_rtr


def test_fig05(benchmark, model_cache, record):
    table, result, err_rth, err_rtr = run_once(
        benchmark, lambda: experiment(model_cache))
    record("fig05_rtr_accuracy", table)

    assert result.rtr > result.rth          # switching driver holds worse
    assert result.iterations <= 3           # paper: one or two iterations
    assert err_rtr < 0.5 * err_rth          # Rtr recovers most of the gap
