"""Figure 2 — the Thevenin holding resistance underestimates the noise
injected on a switching victim.

Paper: a coupled victim/aggressor circuit simulated three ways; the
linear simulation that holds the victim with the standard Thevenin
resistance produces a visibly smaller noise pulse than the full
non-linear simulation, while the *noiseless* victim transition from the
Thevenin model is quite accurate.

This bench prints the pulse peaks/areas at the victim driver output and
asserts the paper's two observations.
"""

from conftest import run_once

from repro.bench.netgen import canonical_net
from repro.bench.runner import format_table
from repro.core.golden import golden_simulation
from repro.core.superposition import SuperpositionEngine, VICTIM
from repro.units import NS, PS
from repro.waveform.pulses import pulse_peak, pulse_width


def experiment(model_cache):
    net = canonical_net(n_aggressors=1)
    engine = SuperpositionEngine(net, cache=model_cache)
    vdd = net.vdd

    # Align the aggressor pulse onto the victim's receiver 50% crossing.
    victim = engine.victim_transition_absolute()
    t50 = victim.at_receiver.crossing_time(vdd / 2, rising=True)
    t_peak, _ = pulse_peak(engine.aggressor_noise("agg0").at_receiver)
    shifts = {"agg0": t50 - t_peak}

    rth = engine.models[VICTIM].rth
    linear = engine.total_noise(shifts, victim_r=rth).at_root

    t_stop = engine.t_stop + 1 * NS
    clean = golden_simulation(net, t_stop, aggressors_switching=False)
    noisy = golden_simulation(net, t_stop, aggressor_shifts=shifts)
    golden = noisy.at_root - clean.at_root

    rows = []
    for label, wave in (("linear, Thevenin holding R", linear),
                        ("full non-linear (golden)", golden)):
        t, h = pulse_peak(wave)
        rows.append([label, h, pulse_width(wave) / PS,
                     wave.integral() * 1e12])

    # Noiseless victim accuracy (the paper's side observation).
    t50_lin = victim.at_receiver.crossing_time(vdd / 2, rising=True)
    t50_gold = clean.at_receiver_input.crossing_time(vdd / 2, rising=True)

    table = format_table(
        ["victim model", "noise peak (V)", "width (ps)",
         "area (V*ps)"],
        rows,
        title="Figure 2 — noise on the switching victim (driver output)")
    table += (f"\nnoiseless victim 50% crossing: linear "
              f"{t50_lin / NS:.4f} ns vs golden {t50_gold / NS:.4f} ns "
              f"(err {(t50_lin - t50_gold) / PS:+.1f} ps)")

    h_lin = pulse_peak(linear)[1]
    h_gold = pulse_peak(golden)[1]
    return table, h_lin, h_gold, t50_lin, t50_gold


def test_fig02(benchmark, model_cache, record):
    table, h_lin, h_gold, t50_lin, t50_gold = run_once(
        benchmark, lambda: experiment(model_cache))
    record("fig02_thevenin_underestimation", table)

    # Claim 1: the Thevenin-held linear noise underestimates golden.
    assert abs(h_lin) < abs(h_gold)
    assert abs(h_lin) < 0.9 * abs(h_gold)  # visibly, not marginally
    # Claim 2: the noiseless victim transition is accurate (< 10 ps).
    assert abs(t50_lin - t50_gold) < 10 * PS
