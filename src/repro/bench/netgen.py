"""Synthetic coupled-net generation.

The paper evaluates on 300 nets extracted from a microprocessor block.
We substitute a seeded generator covering the same axes of variation:
driver strength, wire RC, coupling ratio, victim/aggressor edge rates,
receiver size and loading, and aggressor count.  Absolute delays differ
from the paper's silicon, but the population exposes the same model-error
mechanisms (resistive shielding, conductance variation over the victim
transition, receiver low-pass filtering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.topology import couple_nodes, rc_line, rc_tree_from_graph
from repro.core.net import AggressorSpec, CoupledNet, DriverSpec, ReceiverSpec
from repro.gates.library import inverter
from repro.units import FF, KOHM, NS, PS

__all__ = ["NetGenerator", "NetGenConfig", "canonical_net"]


@dataclass
class NetGenConfig:
    """Ranges of the generated population (see module docstring)."""

    n_aggressors: tuple[int, int] = (1, 3)
    segments: int = 8
    #: Side branches hanging off the victim trunk (0 = point-to-point).
    victim_branches: int = 0
    branch_load_range: tuple[float, float] = (3 * FF, 12 * FF)
    victim_driver_scales: tuple[float, ...] = (1.0, 2.0, 4.0)
    aggressor_driver_scales: tuple[float, ...] = (2.0, 4.0, 8.0)
    receiver_scales: tuple[float, ...] = (1.0, 2.0, 4.0)
    victim_r_range: tuple[float, float] = (0.4 * KOHM, 2.5 * KOHM)
    victim_c_range: tuple[float, float] = (20 * FF, 90 * FF)
    aggressor_r_range: tuple[float, float] = (0.3 * KOHM, 1.5 * KOHM)
    aggressor_c_range: tuple[float, float] = (15 * FF, 60 * FF)
    coupling_ratio_range: tuple[float, float] = (0.4, 1.3)
    #: Sample the coupling ratio log-uniformly instead of uniformly.
    #: Population flavours use this for the realistic "mostly quiet,
    #: thin loud tail" distribution a screening flow actually faces.
    coupling_ratio_log: bool = False
    victim_slews: tuple[float, ...] = (0.1 * NS, 0.2 * NS, 0.35 * NS)
    aggressor_slews: tuple[float, ...] = (0.08 * NS, 0.15 * NS, 0.3 * NS)
    receiver_load_range: tuple[float, float] = (4 * FF, 60 * FF)
    aggressor_far_load_range: tuple[float, float] = (5 * FF, 30 * FF)
    victim_input_start: float = 0.2 * NS
    aggressor_input_start: float = 0.2 * NS

    @classmethod
    def high_performance(cls) -> "NetGenConfig":
        """A "high-performance microprocessor block" flavour.

        Fast victim edges over short, strongly-coupled wires attacked by
        slow, strong aggressors — the regime of the paper's evaluation
        block, where the noise pulse spans the whole victim transition
        and the victim driver's conductance variation matters most.
        """
        return cls(
            victim_driver_scales=(1.0, 2.0, 4.0),
            aggressor_driver_scales=(4.0, 8.0, 12.0),
            victim_r_range=(0.2 * KOHM, 1.0 * KOHM),
            victim_c_range=(15 * FF, 50 * FF),
            coupling_ratio_range=(0.8, 2.0),
            victim_slews=(0.06 * NS, 0.1 * NS, 0.16 * NS),
            aggressor_slews=(0.2 * NS, 0.35 * NS, 0.5 * NS),
        )

    @classmethod
    def screening(cls) -> "NetGenConfig":
        """A full-block *population* flavour for the tiered screen.

        The noise-analysis presets above deliberately concentrate on
        strongly-coupled nets (every net is worth analyzing).  A real
        block is the opposite: coupling ratios span two orders of
        magnitude and the overwhelming majority of nets sit far below
        any actionable noise threshold — which is exactly the
        distribution that makes tiered screening pay.  Log-uniform
        coupling over (0.01, 1.5) reproduces that shape.
        """
        return cls(
            coupling_ratio_range=(0.01, 1.5),
            coupling_ratio_log=True,
        )


class NetGenerator:
    """Seeded generator of :class:`CoupledNet` instances."""

    def __init__(self, seed: int = 0, config: NetGenConfig | None = None):
        self.rng = np.random.default_rng(seed)
        self.config = config or NetGenConfig()

    def _uniform(self, lo_hi: tuple[float, float]) -> float:
        return float(self.rng.uniform(*lo_hi))

    def _choice(self, options) -> float:
        return float(self.rng.choice(options))

    def _coupling_ratio(self) -> float:
        lo, hi = self.config.coupling_ratio_range
        if self.config.coupling_ratio_log:
            return float(10.0 ** self.rng.uniform(np.log10(lo),
                                                  np.log10(hi)))
        return float(self.rng.uniform(lo, hi))

    def generate(self, index: int = 0) -> CoupledNet:
        """Generate one net (``index`` only names it)."""
        cfg = self.config
        rng = self.rng
        n_agg = int(rng.integers(cfg.n_aggressors[0],
                                 cfg.n_aggressors[1] + 1))

        interconnect = Circuit(f"net{index}_wires")
        victim_r = self._uniform(cfg.victim_r_range)
        victim_c = self._uniform(cfg.victim_c_range)
        victim_nodes = rc_line(
            interconnect, "v_", "v_root", "v_rcv", cfg.segments,
            victim_r, victim_c)

        # Optional side branches: other receivers hanging off the trunk.
        for b in range(cfg.victim_branches):
            tap_index = int(rng.integers(1, len(victim_nodes) - 1))
            prefix = f"vb{b}_"
            rc_line(interconnect, prefix, victim_nodes[tap_index],
                    f"{prefix}leaf", max(cfg.segments // 2, 1),
                    0.5 * victim_r, 0.4 * victim_c)
            interconnect.add_capacitor(
                f"{prefix}cload", f"{prefix}leaf", GROUND,
                self._uniform(cfg.branch_load_range))

        victim_c_total = sum(
            c.capacitance for c in interconnect.capacitors)

        aggressors: list[AggressorSpec] = []
        for a in range(n_agg):
            prefix = f"a{a}_"
            agg_nodes = rc_line(
                interconnect, prefix, f"{prefix}root", f"{prefix}far",
                cfg.segments,
                self._uniform(cfg.aggressor_r_range),
                self._uniform(cfg.aggressor_c_range))
            interconnect.add_capacitor(
                f"{prefix}cfar", f"{prefix}far", GROUND,
                self._uniform(cfg.aggressor_far_load_range))

            # Couple over a random contiguous overlap of the victim span.
            span = cfg.segments + 1
            length = int(rng.integers(span // 2, span + 1))
            start = int(rng.integers(0, span - length + 1))
            cc_total = self._coupling_ratio() * victim_c_total / n_agg
            couple_nodes(interconnect, f"x{a}_",
                         victim_nodes[start:start + length],
                         agg_nodes[start:start + length], cc_total)

            driver = DriverSpec(
                gate=inverter(self._choice(cfg.aggressor_driver_scales)),
                input_slew=self._choice(cfg.aggressor_slews),
                output_rising=False,  # opposing the rising victim
                input_start=cfg.aggressor_input_start,
            )
            aggressors.append(AggressorSpec(
                name=f"agg{a}", driver=driver,
                root=f"{prefix}root", far_end=f"{prefix}far"))

        victim_driver = DriverSpec(
            gate=inverter(self._choice(cfg.victim_driver_scales)),
            input_slew=self._choice(cfg.victim_slews),
            output_rising=True,
            input_start=cfg.victim_input_start,
        )
        receiver = ReceiverSpec(
            gate=inverter(self._choice(cfg.receiver_scales)),
            c_load=self._uniform(cfg.receiver_load_range),
        )
        return CoupledNet(
            name=f"net{index}",
            interconnect=interconnect,
            victim_root="v_root",
            victim_receiver_node="v_rcv",
            victim_driver=victim_driver,
            receiver=receiver,
            aggressors=aggressors,
        )

    def large_tree(self, index: int = 0, *, nodes: int = 1000,
                   n_aggressors: int = 2,
                   trunk_bias: float = 0.85) -> CoupledNet:
        """Generate an extracted-scale RC-tree net (sparse-path sizing).

        A random tree of ``nodes`` interconnect vertices: each new vertex
        attaches to the previous one with probability ``trunk_bias``
        (growing a long trunk — the deep victim route) and to a random
        earlier vertex otherwise (side branches — the taps a real
        extracted net carries).  The receiver sits at the deepest vertex.
        ``n_aggressors`` RC-line aggressors couple onto contiguous spans
        of the trunk.  Electrical totals match the ``generate()``
        population per unit route, so the net is physically plausible —
        just two to three orders of magnitude larger, which is what
        pushes ``build_mna`` past :data:`~repro.circuit.mna.SPARSE_MIN_DIM`
        and onto the sparse backend.
        """
        if nodes < 8:
            raise ValueError("large_tree needs at least 8 nodes")
        cfg = self.config
        rng = self.rng

        # --- victim tree -------------------------------------------------
        tree = nx.Graph()
        tree.add_node(0)
        depth = {0: 0}
        parents = {}
        r_total = self._uniform(cfg.victim_r_range) * 4.0
        c_total = self._uniform(cfg.victim_c_range) * 4.0
        r_edge = r_total / (nodes - 1)
        c_edge = c_total / (nodes - 1)
        for v in range(1, nodes):
            if v == 1 or rng.uniform() < trunk_bias:
                parent = v - 1
            else:
                parent = int(rng.integers(0, v - 1))
            jitter = float(rng.uniform(0.5, 1.5))
            tree.add_edge(parent, v, r=r_edge * jitter, c=c_edge * jitter)
            parents[v] = parent
            depth[v] = depth[parent] + 1
        deepest = max(depth, key=depth.get)

        def node_name(v):
            if v == 0:
                return "v_root"
            if v == deepest:
                return "v_rcv"
            return f"v_{v}"

        interconnect = Circuit(f"tree{index}_wires")
        names = rc_tree_from_graph(interconnect, "v_", tree, 0,
                                   node_name=node_name)

        # Ordered trunk (root -> receiver): the coupling route.
        trunk = [deepest]
        while trunk[-1] != 0:
            trunk.append(parents[trunk[-1]])
        trunk.reverse()
        trunk_nodes = [names[v] for v in trunk]

        # --- aggressors --------------------------------------------------
        victim_c_total = sum(c.capacitance for c in interconnect.capacitors)
        segments = max(len(trunk_nodes) // 2, 4)
        aggressors: list[AggressorSpec] = []
        for a in range(n_aggressors):
            prefix = f"a{a}_"
            agg_nodes = rc_line(
                interconnect, prefix, f"{prefix}root", f"{prefix}far",
                segments,
                self._uniform(cfg.aggressor_r_range) * 2.0,
                self._uniform(cfg.aggressor_c_range) * 2.0)
            interconnect.add_capacitor(
                f"{prefix}cfar", f"{prefix}far", GROUND,
                self._uniform(cfg.aggressor_far_load_range))

            span = len(trunk_nodes)
            length = int(rng.integers(span // 2, span + 1))
            start = int(rng.integers(0, span - length + 1))
            cc_total = (self._coupling_ratio()
                        * victim_c_total / n_aggressors)
            couple_nodes(interconnect, f"x{a}_",
                         trunk_nodes[start:start + length],
                         agg_nodes, cc_total)

            aggressors.append(AggressorSpec(
                name=f"agg{a}",
                driver=DriverSpec(
                    gate=inverter(self._choice(cfg.aggressor_driver_scales)),
                    input_slew=self._choice(cfg.aggressor_slews),
                    output_rising=False,
                    input_start=cfg.aggressor_input_start),
                root=f"{prefix}root", far_end=f"{prefix}far"))

        victim_driver = DriverSpec(
            gate=inverter(max(cfg.victim_driver_scales)),
            input_slew=self._choice(cfg.victim_slews),
            output_rising=True,
            input_start=cfg.victim_input_start,
        )
        receiver = ReceiverSpec(
            gate=inverter(self._choice(cfg.receiver_scales)),
            c_load=self._uniform(cfg.receiver_load_range),
        )
        return CoupledNet(
            name=f"tree{index}",
            interconnect=interconnect,
            victim_root="v_root",
            victim_receiver_node="v_rcv",
            victim_driver=victim_driver,
            receiver=receiver,
            aggressors=aggressors,
        )

    def population(self, count: int) -> list[CoupledNet]:
        """Generate ``count`` nets."""
        return list(self.iter_population(count))

    def iter_population(self, count: int):
        """Lazily generate ``count`` nets, one at a time.

        Identical stream to :meth:`population` for the same seed, but
        without materializing the whole list — at the >=10k-net scale
        the tiered screen targets, eager generation costs hundreds of
        megabytes before the first tier-0 bound is even computed.
        """
        for i in range(count):
            yield self.generate(i)


def canonical_net(*, n_aggressors: int = 1, coupling_ratio: float = 1.0,
                  receiver_load: float = 10 * FF,
                  victim_scale: float = 1.0,
                  aggressor_scale: float = 4.0,
                  receiver_scale: float = 2.0,
                  victim_slew: float = 0.2 * NS,
                  aggressor_slew: float = 0.12 * NS,
                  segments: int = 8,
                  victim_r: float = 1.5 * KOHM,
                  victim_c: float = 50 * FF,
                  victim_rising: bool = True,
                  name: str = "canonical") -> CoupledNet:
    """The deterministic hand-sized circuit used by the figure benches.

    A victim line driven by a weak inverter, coupled to ``n_aggressors``
    strongly-driven parallel aggressor lines over the full span, with an
    inverter receiver.  Defaults give a noise pulse of roughly a third of
    the supply — squarely in the regime the paper's figures illustrate.
    """
    interconnect = Circuit(f"{name}_wires")
    victim_nodes = rc_line(interconnect, "v_", "v_root", "v_rcv",
                           segments, victim_r, victim_c)
    aggressors = []
    for a in range(n_aggressors):
        prefix = f"a{a}_"
        agg_nodes = rc_line(interconnect, prefix, f"{prefix}root",
                            f"{prefix}far", segments, 0.8 * KOHM, 40 * FF)
        interconnect.add_capacitor(f"{prefix}cfar", f"{prefix}far",
                                   GROUND, 10 * FF)
        couple_nodes(interconnect, f"x{a}_", victim_nodes, agg_nodes,
                     coupling_ratio * victim_c / n_aggressors)
        aggressors.append(AggressorSpec(
            name=f"agg{a}",
            driver=DriverSpec(gate=inverter(aggressor_scale),
                              input_slew=aggressor_slew,
                              output_rising=not victim_rising,
                              input_start=0.2 * NS),
            root=f"{prefix}root", far_end=f"{prefix}far"))

    return CoupledNet(
        name=name,
        interconnect=interconnect,
        victim_root="v_root",
        victim_receiver_node="v_rcv",
        victim_driver=DriverSpec(gate=inverter(victim_scale),
                                 input_slew=victim_slew,
                                 output_rising=victim_rising,
                                 input_start=0.2 * NS),
        receiver=ReceiverSpec(gate=inverter(receiver_scale),
                              c_load=receiver_load),
        aggressors=aggressors,
    )
