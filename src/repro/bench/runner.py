"""Error statistics, table formatting and population sweeps for the
benchmark harnesses."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from repro.obs import get_logger

__all__ = ["ErrorStats", "format_table", "run_population",
           "extra_delay_arrays", "record_result"]

log = get_logger("bench.runner")


@dataclass
class ErrorStats:
    """Error of predicted values against a golden reference."""

    predicted: np.ndarray
    golden: np.ndarray

    def __post_init__(self):
        self.predicted = np.asarray(self.predicted, dtype=float)
        self.golden = np.asarray(self.golden, dtype=float)
        if self.predicted.shape != self.golden.shape:
            raise ValueError("predicted/golden shape mismatch")
        if self.predicted.size == 0:
            raise ValueError("empty sample")

    @property
    def errors(self) -> np.ndarray:
        return self.predicted - self.golden

    def mean_abs_error(self) -> float:
        return float(np.abs(self.errors).mean())

    def worst_abs_error(self) -> float:
        return float(np.abs(self.errors).max())

    def mean_abs_pct_error(self, floor: float = 0.0) -> float:
        """Mean |error| / |golden| in percent.

        ``floor`` guards tiny golden values from exploding the ratio (the
        paper's per-net percentages are over nets with measurable noise).
        Returns 0.0 when every golden value is masked out (all zero and
        no floor): there is no measurable reference to be wrong against.
        """
        ratios = self._pct_ratios(floor)
        if ratios.size == 0:
            return 0.0
        return float(100.0 * ratios.mean())

    def worst_abs_pct_error(self, floor: float = 0.0) -> float:
        ratios = self._pct_ratios(floor)
        if ratios.size == 0:
            return 0.0
        return float(100.0 * ratios.max())

    def _pct_ratios(self, floor: float) -> np.ndarray:
        denom = np.maximum(np.abs(self.golden), floor)
        mask = denom > 0
        return np.abs(self.errors)[mask] / denom[mask]

    def underestimation_fraction(self) -> float:
        """Fraction of samples where the prediction is below golden."""
        return float((self.errors < 0).mean())

    def correlation(self) -> float:
        if self.predicted.size < 2 or np.std(self.golden) == 0:
            return float("nan")
        return float(np.corrcoef(self.predicted, self.golden)[0, 1])


def run_population(nets, *, jobs: int = 1, analyzer=None,
                   timeout: float | None = None, **analyze_kwargs):
    """Run the delay-noise analysis over a whole population.

    A thin front over :func:`repro.exec.analyze_nets` for benchmark
    sweeps: workers warm-start from the shared characterization caches,
    per-net failures are recorded instead of aborting the sweep, and
    the returned :class:`~repro.exec.ExecResult` carries throughput
    stats alongside the input-ordered reports.

    Telemetry rides along for free: with a tracer installed
    (:func:`repro.obs.enable_tracing`) the sweep produces per-net spans
    (merged in input order for ``jobs>1``) and the process-global
    metrics registry accumulates the run's counters either way.
    Per-net heartbeats pass through too: forward an ``on_heartbeat``
    callback (e.g. :meth:`repro.obs.ProgressTracker.record`) in
    ``analyze_kwargs`` to watch a long sweep live, and resource
    samples (peak RSS, CPU split) fold into the same registry for the
    run manifest.
    """
    from repro.exec import analyze_nets

    result = analyze_nets(nets, jobs=jobs, analyzer=analyzer,
                          timeout=timeout, **analyze_kwargs)
    stats = result.stats
    log.debug("population sweep: %d nets in %.2f s (%.2f nets/s), "
              "failures by type: %s", stats.nets, stats.wall_time,
              stats.nets_per_second, stats.failures_by_type or "none")
    return result


def extra_delay_arrays(reports) -> tuple[np.ndarray, np.ndarray]:
    """(input, output) extra-delay arrays from a sweep's reports.

    Failed nets (``None`` entries) are skipped, so the arrays line up
    with each other but not necessarily with the input population.
    """
    good = [r for r in reports if r is not None]
    return (np.array([r.extra_delay_input for r in good]),
            np.array([r.extra_delay_output for r in good]))


def record_result(directory, name: str, text: str) -> pathlib.Path:
    """Write an experiment's text output to ``directory/<name>.txt``.

    The file is **replaced** on every call: each benchmark run records
    the latest results only, so stale rows from earlier runs can never
    mix into a figure.  Returns the written path.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def format_table(headers: list[str], rows: list[list],
                 title: str | None = None) -> str:
    """Render a plain-text results table (benchmark console output)."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
