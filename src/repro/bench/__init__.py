"""Benchmark substrate: synthetic coupled-net population and stats.

* :mod:`repro.bench.netgen` — seeded generator of coupled victim/aggressor
  nets standing in for the paper's "300 nets from a high performance
  microprocessor block", plus the canonical hand-sized circuits used by
  the figure benches.
* :mod:`repro.bench.runner` — error statistics and result-table helpers
  shared by the benchmark harnesses.
* :mod:`repro.bench.perf` — Newton-kernel performance benchmark behind
  ``repro bench --perf`` (fast vs. legacy timings + equivalence check).
"""

from repro.bench.netgen import NetGenerator, canonical_net
from repro.bench.perf import format_perf, run_perf
from repro.bench.runner import (
    ErrorStats,
    extra_delay_arrays,
    format_table,
    record_result,
    run_population,
)

__all__ = ["NetGenerator", "canonical_net", "ErrorStats", "format_table",
           "run_population", "extra_delay_arrays", "record_result",
           "run_perf", "format_perf"]
