"""Benchmark substrate: synthetic coupled-net population and stats.

* :mod:`repro.bench.netgen` — seeded generator of coupled victim/aggressor
  nets standing in for the paper's "300 nets from a high performance
  microprocessor block", plus the canonical hand-sized circuits used by
  the figure benches.
* :mod:`repro.bench.runner` — error statistics and result-table helpers
  shared by the benchmark harnesses.
"""

from repro.bench.netgen import NetGenerator, canonical_net
from repro.bench.runner import (
    ErrorStats,
    extra_delay_arrays,
    format_table,
    run_population,
)

__all__ = ["NetGenerator", "canonical_net", "ErrorStats", "format_table",
           "run_population", "extra_delay_arrays"]
