"""Bench history ledger and regression detection.

``BENCH_perf.json`` is a single point; this module gives it a
trajectory.  Every ``repro bench --perf --history FILE`` run appends
one manifest-stamped JSONL record — git revision, host, timestamp, and
the tracked phase figures — and ``--baseline`` compares the fresh run
against the **rolling baseline** (median of the last ``window`` prior
records per phase), exiting non-zero when any tracked phase slowed by
more than ``REGRESSION_THRESHOLD``.

The tracked phases are ratios (fast-vs-legacy, sparse-vs-dense), not
absolute wall times, so records from machines of different speeds
remain comparable: a 2.2× Newton throughput is 2.2× on a laptop and on
a CI runner.

Record schema (``repro.bench.history/v1``)::

    {"schema": ..., "recorded_at": ..., "git": {...}, "host": ...,
     "bench_schema": "repro.bench.perf/v3",
     "config": {"seed": ..., "count": ..., "t_stop": ...},
     "phases": {"newton_throughput": 2.2,
                "alignment_search_batched": 3.9,
                "sparse_speedup": 27.7},
     "wall": {"transient_fast_s": ..., "steps_per_second_fast": ...}}
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from statistics import median

from repro.obs import get_logger, git_revision, host_info

__all__ = ["HISTORY_SCHEMA", "REGRESSION_THRESHOLD", "TRACKED_PHASES",
           "Regression", "history_record", "append_history",
           "load_history", "detect_regressions", "format_regressions"]

log = get_logger("bench.history")

#: Schema identifier stamped into every history record.
HISTORY_SCHEMA = "repro.bench.history/v1"

#: A tracked phase regresses when it drops more than this fraction
#: below the rolling baseline.
REGRESSION_THRESHOLD = 0.10

#: Records folded into the rolling baseline (median of the most recent
#: ``window`` prior records carrying the phase).
DEFAULT_WINDOW = 5

#: Tracked phase -> path into the ``run_perf`` payload.  All are
#: higher-is-better ratios.  ``trust_clean_path`` is the untrusted /
#: trusted transient wall ratio (1.0 = free verification; a drop means
#: the trust layer's clean-path overhead grew).
TRACKED_PHASES = {
    "newton_throughput": ("speedup", "newton_throughput"),
    "alignment_search_batched": ("speedup", "alignment_search_batched"),
    "sparse_speedup": ("sparse", "speedup"),
    "trust_clean_path": ("trust", "clean_path_ratio"),
    "screening_speedup": ("screening", "speedup"),
}


def _dig(payload: dict, path: tuple) -> float | None:
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node)


def history_record(payload: dict, *, recorded_at: float | None = None
                   ) -> dict:
    """One ledger record from a :func:`repro.bench.perf.run_perf`
    payload, stamped with the manifest identity fields (git revision,
    host, timestamp)."""
    config = payload.get("config", {})
    fast = payload.get("kernels", {}).get("fast", {})
    phases = {}
    for name, path in TRACKED_PHASES.items():
        value = _dig(payload, path)
        if value is not None:
            phases[name] = value
    return {
        "schema": HISTORY_SCHEMA,
        "recorded_at": time.time() if recorded_at is None
        else recorded_at,
        "git": git_revision(),
        "host": host_info()["hostname"],
        "bench_schema": payload.get("schema"),
        "config": {key: config.get(key)
                   for key in ("seed", "count", "t_stop", "dt",
                               "sparse_dim")},
        "phases": phases,
        "wall": {
            "transient_fast_s": fast.get("transient_s"),
            "steps_per_second_fast": fast.get("steps_per_second"),
        },
    }


def append_history(path, record: dict) -> int:
    """Append one record to the JSONL ledger; returns the new length.

    A single-line ``O_APPEND`` write: concurrent benches interleave
    whole records, and a killed run can at worst lose its own last
    line — never corrupt earlier history.
    """
    line = json.dumps(record)
    with open(path, "a") as handle:
        handle.write(line + "\n")
    return sum(1 for _ in open(path))


def load_history(path) -> list[dict]:
    """Read the ledger (oldest first); missing file -> empty history."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                log.warning("skipping corrupt history line in %s", path)
    return records


@dataclass(frozen=True)
class Regression:
    """One tracked phase that fell below the rolling baseline."""

    phase: str
    baseline: float   #: rolling-median reference value
    current: float    #: this run's value
    samples: int      #: prior records the baseline was computed over

    @property
    def drop_fraction(self) -> float:
        if self.baseline == 0.0:
            return 0.0
        return (self.baseline - self.current) / self.baseline


def detect_regressions(history: list[dict], current: dict, *,
                       threshold: float = REGRESSION_THRESHOLD,
                       window: int = DEFAULT_WINDOW
                       ) -> list[Regression]:
    """Compare ``current`` (a :func:`history_record`) to the ledger.

    For each tracked phase present in the current record, the baseline
    is the median of that phase over the last ``window`` prior records
    that carry it; a phase with no prior samples cannot regress (the
    first entry *seeds* the trajectory).  Returns the phases whose
    current value fell more than ``threshold`` below their baseline.
    """
    regressions = []
    for phase, value in sorted(current.get("phases", {}).items()):
        samples = [rec["phases"][phase] for rec in history
                   if phase in rec.get("phases", {})][-window:]
        if not samples:
            continue
        baseline = median(samples)
        if value < baseline * (1.0 - threshold):
            regressions.append(Regression(
                phase=phase, baseline=baseline, current=value,
                samples=len(samples)))
    return regressions


def format_regressions(regressions: list[Regression], *,
                       threshold: float = REGRESSION_THRESHOLD) -> str:
    """Render the comparator verdict for the CLI."""
    if not regressions:
        return (f"bench history: no tracked phase regressed "
                f"(threshold {threshold:.0%})")
    lines = [f"bench history: {len(regressions)} phase(s) regressed "
             f"more than {threshold:.0%} vs the rolling baseline:"]
    for reg in regressions:
        lines.append(
            f"  {reg.phase}: {reg.current:.3f} vs baseline "
            f"{reg.baseline:.3f} (median of {reg.samples}) -> "
            f"-{reg.drop_fraction:.1%}")
    return "\n".join(lines)
