"""Kernel performance benchmark (``repro bench --perf``).

Times the solver hot paths on a seeded net population, once per Newton
kernel (``legacy`` = pre-rework dense solver, ``fast`` = factorization
reuse + vectorized stamping), and cross-checks that both kernels produce
the same transient states.  Four phases are timed per kernel:

* **dc_solve** — :func:`repro.sim.dc_operating_point` on every golden
  circuit (repeated for stable timing);
* **transient** — full :func:`repro.sim.simulate_nonlinear` golden runs,
  from which the Newton-step throughput is derived;
* **rtr_extraction** — :func:`repro.core.holding_resistance.compute_rtr`
  per net (driver-model fitting: non-linear driver pair runs);
* **alignment_search** — a small exhaustive worst-case alignment sweep
  on each net's first aggressor pulse, candidate-by-candidate
  (``batch=False``: the serial reference, amortized through the shared
  driven circuit and factor cache);
* **alignment_search_batched** — the same sweep through the batched
  multi-candidate kernel (fast kernel only): all candidates advance as
  one ``(S, dim)`` Newton block over one factorization.

A separate **sparse** phase (schema v3) exercises the extracted-scale
path: a ``NetGenerator.large_tree`` net of ~2000 MNA unknowns is
transient-simulated through both MNA backends (dense LAPACK vs sparse
SuperLU via :func:`repro.circuit.mna.build_mna`'s ``sparse`` flag), the
states cross-checked to the same 1e-9 V tolerance, and the full
delay-noise analysis run once end-to-end on a >=1000-unknown tree to
prove the sparse path carries the whole flow.

A **trust** phase (schema v4) measures the clean-path cost of the
numerical-trust layer (:mod:`repro.trust`): the fast-kernel transient
population is re-run with verification off and on (caches pre-warmed
per mode, best-of-``trust_repeats`` wall time), reporting the overhead
fraction against the documented 5% budget and asserting the two runs
are bit-identical — the residual audits may only *observe* a clean
solve, never perturb it.

A **screening** phase (schema v5) measures the tiered population
screen (:mod:`repro.core.screening`) end-to-end: a ``screening``-preset
population (log-uniform coupling, mostly-quiet) is triaged through the
closed-form bound and the reduced-order estimate, only the escalated
nets run the full tier-2 analysis, and the exhaustive baseline —
tier 2 on *every* net — is estimated from the measured per-net tier-2
cost (the escalated nets plus a seeded sample of the pruned ones, so
the extrapolation sees both sides of the threshold).  The sampled
pruned nets double as the soundness audit: any of them measuring
at/above the threshold is an unsound prune and fails the CLI gate.

The result dictionary (see ``docs/architecture.md`` for the JSON
schema, ``repro.bench.perf/v5``) is what the CLI writes to
``BENCH_perf.json``; ``equivalence`` carries the maximum state delta
between the kernels against the documented 1e-9 V tolerance plus the
batched-vs-serial sweep deltas (worst peak time and extra delay), and
the CLI exits non-zero when either gate is exceeded (including the
sparse-vs-dense state gate and the screening soundness gate).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.netgen import NetGenerator
from repro.circuit.mna import build_mna
from repro.circuit.netlist import GROUND
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.golden import golden_circuit
from repro.core.holding_resistance import compute_rtr
from repro.core.superposition import ModelCache, SuperpositionEngine
from repro.obs import metrics
from repro.sim import (
    dc_operating_point,
    kernel_mode,
    simulate_nonlinear,
)
from repro.sim.linear import simulate_linear
from repro.units import PS
from repro.waveform import ramp

__all__ = ["run_perf", "run_sparse_phase", "run_trust_phase",
           "run_screening_phase", "format_perf",
           "EQUIVALENCE_TOLERANCE", "TRUST_OVERHEAD_BUDGET",
           "SCREEN_THRESHOLD", "SCHEMA"]

#: Maximum per-state voltage difference between the fast and legacy
#: kernels on fault-free runs.  Both kernels drive the damped Newton
#: update to the same 1e-6 V acceptance tolerance; quadratic convergence
#: squashes the remaining error far below this bound (measured ~1e-13 V
#: on the seeded population), so a breach means a real solver change.
EQUIVALENCE_TOLERANCE = 1e-9

#: Schema identifier written into BENCH_perf.json.
SCHEMA = "repro.bench.perf/v5"

#: Clean-path wall-time budget of the trust layer: verification on must
#: cost no more than this fraction over verification off.
TRUST_OVERHEAD_BUDGET = 0.05

#: Below this untrusted wall time the overhead ratio is interpreter /
#: scheduler noise, not signal (a few-ms --quick run can show +50% from
#: a single cache miss), so the budget gate is not applied.
TRUST_MIN_MEASURABLE_S = 0.05

_KERNELS = ("legacy", "fast")

#: Sparse-phase grid: ~500 trapezoidal steps over the switching window.
_SPARSE_T_STOP = 1e-9
_SPARSE_DT = 2 * PS
#: Tree size for the end-to-end analysis run (>= 1000 MNA unknowns).
_SPARSE_ANALYSIS_NODES = 1000

#: Alignment-sweep shape shared by the serial and batched phases.
_ALIGN_STEPS = 9
_ALIGN_REFINE = 4

#: Screening-phase noise threshold: vdd/3 = 0.6 V, the canonical
#: actionable-noise level the tiered screen is calibrated against.
SCREEN_THRESHOLD = 0.6
#: Pruned nets sampled for the baseline extrapolation + soundness
#: audit (each costs one full tier-2 analysis).
_SCREEN_PRUNED_SAMPLE = 6


def _newton_counters(snapshot: dict) -> dict:
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    iterations = histograms.get("newton.iterations", {})
    return {
        "iterations": iterations.get("total", 0.0),
        "solves": iterations.get("count", 0),
        "woodbury": counters.get("newton.woodbury", 0),
        "jacobian_refresh": counters.get("newton.jacobian_refresh", 0),
        "nonconverged": counters.get("newton.nonconverged", 0),
    }


def _tree_drive_circuit(net):
    """The large-tree interconnect with ramp drives at every root.

    Voltage sources at the victim and aggressor roots make ``G``
    non-singular and give the transient something to do; the resulting
    circuit is pure RLC + sources, i.e. the linear solver's territory.
    """
    drive = net.interconnect.copy(f"{net.name}_drive")
    vdd = net.vdd
    drive.add_vsource("vs_victim", net.victim_root, GROUND,
                      ramp(0.1e-9, 0.2e-9, 0.0, vdd))
    for agg in net.aggressors:
        drive.add_vsource(f"vs_{agg.name}", agg.root, GROUND,
                          ramp(0.3e-9, 0.15e-9, vdd, 0.0))
    return drive


def run_sparse_phase(seed: int = 1, *, dim: int = 2000,
                     skip_analysis: bool = False) -> dict:
    """Benchmark the sparse MNA backend on an extracted-scale tree.

    Generates a ``large_tree`` net sized so the driven MNA system lands
    near ``dim`` unknowns, transient-simulates it through the dense and
    sparse backends over the same grid, and reports timings, the maximum
    state delta against :data:`EQUIVALENCE_TOLERANCE`, and (unless
    ``skip_analysis``) the wall time of one full delay-noise analysis of
    a >=1000-unknown tree through the auto-selected sparse path.
    """
    gen = NetGenerator(seed=seed)
    # Empirically dim ~= 1.04 * tree_nodes (aggressor lines plus source
    # branch rows add the rest); aim slightly under and let it land.
    nodes = max(int(dim * 0.96), 64)
    net = gen.large_tree(index=0, nodes=nodes, n_aggressors=2)
    drive = _tree_drive_circuit(net)

    dense = build_mna(drive, sparse=False)
    sparse = build_mna(drive, sparse=True)

    t0 = time.perf_counter()
    run_dense = simulate_linear(dense, _SPARSE_T_STOP, _SPARSE_DT)
    dense_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_sparse = simulate_linear(sparse, _SPARSE_T_STOP, _SPARSE_DT)
    sparse_s = time.perf_counter() - t0

    max_delta = float(np.abs(run_dense.states - run_sparse.states).max())
    phase = {
        "net": net.name,
        "dim": int(sparse.dim),
        "nnz_G": int(sparse.G.nnz),
        "nnz_C": int(sparse.C.nnz),
        "t_stop": _SPARSE_T_STOP,
        "dt": _SPARSE_DT,
        "steps": int(run_sparse.times.size - 1),
        "linear_dense_s": dense_s,
        "linear_sparse_s": sparse_s,
        "speedup": dense_s / sparse_s,
        "max_state_delta": max_delta,
        "tolerance": EQUIVALENCE_TOLERANCE,
        "within_tolerance": max_delta <= EQUIVALENCE_TOLERANCE,
    }
    if not skip_analysis:
        from repro.core.analysis import DelayNoiseAnalyzer
        analysis_net = gen.large_tree(index=1,
                                      nodes=_SPARSE_ANALYSIS_NODES,
                                      n_aggressors=2)
        analysis_dim = build_mna(analysis_net.interconnect).dim
        t0 = time.perf_counter()
        DelayNoiseAnalyzer().analyze(analysis_net)
        phase["analysis_sparse_s"] = time.perf_counter() - t0
        phase["analysis_net"] = analysis_net.name
        phase["analysis_dim"] = int(analysis_dim)
    return phase


def run_trust_phase(circuits, *, t_stop: float, dt: float,
                    repeats: int = 2) -> dict:
    """Measure the trust layer's clean-path overhead on the fast kernel.

    Runs the transient population with verification off and on, each
    mode warmed once (the trust-aware solver caches are keyed per mode,
    so the first pass pays factorization costs the timed passes must
    not) and then timed ``repeats`` times, keeping the best wall time —
    the min is the right estimator for a constant-cost + noise signal.
    Returns the ``trust`` payload block; ``bit_identical`` asserts the
    audits never perturbed an accepted clean solve.
    """
    from repro.trust import trust_mode

    wall = {}
    states = {}
    with kernel_mode("fast"):
        for enabled in (False, True):
            with trust_mode(enabled):
                for c in circuits:  # warm this mode's solver caches
                    simulate_nonlinear(c, t_stop, dt)
                best = float("inf")
                for _ in range(max(repeats, 1)):
                    t0 = time.perf_counter()
                    runs = [simulate_nonlinear(c, t_stop, dt)
                            for c in circuits]
                    best = min(best, time.perf_counter() - t0)
                wall[enabled] = best
                states[enabled] = [r.states for r in runs]
    max_delta = max(
        float(np.abs(on - off).max())
        for on, off in zip(states[True], states[False]))
    overhead = wall[True] / wall[False] - 1.0
    measurable = wall[False] >= TRUST_MIN_MEASURABLE_S
    return {
        "untrusted_s": wall[False],
        "trusted_s": wall[True],
        "overhead_fraction": overhead,
        # Higher-is-better form for the bench-history ledger.
        "clean_path_ratio": wall[False] / wall[True],
        "budget": TRUST_OVERHEAD_BUDGET,
        "measurable": measurable,
        # Vacuously true on runs too short to time meaningfully; the
        # ``measurable`` flag keeps that interpretable in the payload.
        "within_budget": (not measurable
                          or overhead <= TRUST_OVERHEAD_BUDGET),
        "max_state_delta": max_delta,
        "bit_identical": max_delta == 0.0,
    }


def run_screening_phase(seed: int = 1, *, count: int = 60,
                        threshold: float = SCREEN_THRESHOLD) -> dict:
    """Benchmark the tiered population screen against the exhaustive
    baseline.

    Triages a ``screening``-preset population (the realistic
    mostly-quiet shape) through tiers 0/1, runs the full tier-2
    analysis only on the escalated nets, and reports the end-to-end
    tiered wall time against an *estimated* exhaustive baseline:
    tier 2 on every net, extrapolated from the measured per-net tier-2
    cost over the escalated nets plus a seeded sample of the pruned
    ones (running tier 2 on all ``count`` nets is exactly the cost the
    screen exists to avoid).  Characterization tables are pre-warmed
    outside the timed region — both sides of the comparison would pay
    them identically.

    The sampled pruned nets double as the soundness audit: a pruned
    net whose measured ``|pulse_height|`` lands at/above ``threshold``
    counts as an unsound prune (``unsound_prunes``; the CLI gate fails
    on any).
    """
    from repro.bench.netgen import NetGenConfig
    from repro.core.analysis import DelayNoiseAnalyzer
    from repro.core.screening import ScreeningConfig, triage
    from repro.exec.snapshot import warm_analyzer

    gen = NetGenerator(seed=seed, config=NetGenConfig.screening())
    nets = gen.population(count)
    nets_by_name = {net.name: net for net in nets}
    config = ScreeningConfig(noise_threshold=threshold)
    analyzer = DelayNoiseAnalyzer()
    warm_analyzer(analyzer, nets)

    t0 = time.perf_counter()
    decisions, stats = triage(nets, config)
    triage_s = time.perf_counter() - t0

    def tier2(net) -> tuple[float, float]:
        t0 = time.perf_counter()
        report = analyzer.analyze(net, alignment="table")
        return time.perf_counter() - t0, abs(report.pulse_height)

    escalated = [d for d in decisions if not d.pruned]
    pruned = [d for d in decisions if d.pruned]
    tier2_times = []
    t0 = time.perf_counter()
    for decision in escalated:
        seconds, _ = tier2(nets_by_name[decision.net_name])
        tier2_times.append(seconds)
    escalated_s = time.perf_counter() - t0
    stats.seconds_by_tier[2] = escalated_s
    tiered_s = triage_s + escalated_s

    # Seeded pruned-net sample: per-net tier-2 cost for the baseline
    # extrapolation, measured height for the soundness audit.
    rng = np.random.default_rng(seed)
    sample_size = min(_SCREEN_PRUNED_SAMPLE, len(pruned))
    sample = list(rng.choice(len(pruned), size=sample_size,
                             replace=False)) if sample_size else []
    unsound = 0
    for index in sample:
        decision = pruned[int(index)]
        seconds, height = tier2(nets_by_name[decision.net_name])
        tier2_times.append(seconds)
        if height >= threshold:
            unsound += 1

    mean_tier2_s = (sum(tier2_times) / len(tier2_times)
                    if tier2_times else 0.0)
    baseline_s = mean_tier2_s * len(nets)
    return {
        "count": count,
        "threshold": threshold,
        "policy": config.policy,
        "guard_band": config.guard_band,
        "by_tier": {str(t): n for t, n in sorted(stats.by_tier.items())},
        "pruned": stats.pruned,
        "escalated": stats.escalated,
        "pruned_fraction": stats.pruned_fraction,
        "triage_s": triage_s,
        "escalated_tier2_s": escalated_s,
        "tiered_s": tiered_s,
        "mean_tier2_s": mean_tier2_s,
        "tier2_samples": len(tier2_times),
        "baseline_estimated_s": baseline_s,
        "speedup": baseline_s / tiered_s if tiered_s > 0.0 else 1.0,
        "audit_checked": len(sample),
        "unsound_prunes": unsound,
        "sound": unsound == 0,
    }


def _alignment_inputs(engine: SuperpositionEngine):
    net = engine.net
    victim = (engine.victim_transition().at_receiver
              + net.victim_initial_level())
    pulse = engine.aggressor_noise(net.aggressors[0].name).at_receiver
    return net, victim, pulse


def run_perf(seed: int = 1, count: int = 2, *, t_stop: float = 2e-9,
             dt: float = 1e-12, dc_repeats: int = 5,
             skip_analysis: bool = False, sparse_dim: int = 2000,
             screening_count: int = 60,
             screening_threshold: float = SCREEN_THRESHOLD) -> dict:
    """Benchmark both Newton kernels on a seeded population.

    ``skip_analysis`` drops the Rtr / alignment phases (used by quick
    tests; the transient equivalence check always runs) and with them
    the tiered-screening phase, which runs full analyses.
    ``sparse_dim`` sizes the extracted-scale sparse phase (0 disables
    it); ``screening_count`` sizes the tiered-screening population
    (0 disables that phase).  Returns the BENCH_perf.json payload.
    """
    nets = [net for net in NetGenerator(seed=seed).population(count)]
    circuits = [golden_circuit(net) for net in nets]
    # Pre-built MNA systems: the amortized dc_operating_point usage
    # (stamping is not part of the solve being measured).
    mnas = [build_mna(c, allow_devices=True) for c in circuits]

    timings: dict[str, dict] = {}
    states: dict[str, list[np.ndarray]] = {}
    observables: dict[str, dict] = {}
    for kernel in _KERNELS:
        with kernel_mode(kernel):
            phase: dict[str, float] = {}

            t0 = time.perf_counter()
            for _ in range(dc_repeats):
                for circuit, mna in zip(circuits, mnas):
                    dc_operating_point(circuit, mna=mna)
            phase["dc_solve_s"] = (time.perf_counter() - t0) / dc_repeats

            metrics().reset()
            t0 = time.perf_counter()
            runs = [simulate_nonlinear(c, t_stop, dt) for c in circuits]
            phase["transient_s"] = time.perf_counter() - t0
            snapshot = metrics().snapshot()
            states[kernel] = [r.states for r in runs]

            newton = _newton_counters(snapshot)
            steps = sum(r.states.shape[1] - 1 for r in runs)
            phase["transient_steps"] = steps
            phase["steps_per_second"] = steps / phase["transient_s"]
            phase["newton"] = newton

            obs: dict[str, list[float]] = {
                "rtr": [], "peak_time": [], "extra_delay": [],
                "peak_time_batched": [], "extra_delay_batched": []}
            if not skip_analysis:
                cache = ModelCache()
                engines = [SuperpositionEngine(net, cache=cache)
                           for net in nets]
                t0 = time.perf_counter()
                for engine in engines:
                    obs["rtr"].append(compute_rtr(engine).rtr)
                phase["rtr_extraction_s"] = time.perf_counter() - t0

                t0 = time.perf_counter()
                for engine in engines:
                    net, victim, pulse = _alignment_inputs(engine)
                    sweep = exhaustive_worst_alignment(
                        net.receiver, victim, pulse, net.vdd, True,
                        steps=_ALIGN_STEPS, refine=_ALIGN_REFINE,
                        dt=2 * PS, batch=False)
                    obs["peak_time"].append(sweep.best_peak_time)
                    obs["extra_delay"].append(sweep.best_extra_output)
                phase["alignment_search_s"] = time.perf_counter() - t0

                if kernel == "fast":
                    # Batched phase: identical sweep, one (S, dim)
                    # Newton block per pass instead of S serial runs.
                    t0 = time.perf_counter()
                    for engine in engines:
                        net, victim, pulse = _alignment_inputs(engine)
                        sweep = exhaustive_worst_alignment(
                            net.receiver, victim, pulse, net.vdd, True,
                            steps=_ALIGN_STEPS, refine=_ALIGN_REFINE,
                            dt=2 * PS, batch=True)
                        obs["peak_time_batched"].append(
                            sweep.best_peak_time)
                        obs["extra_delay_batched"].append(
                            sweep.best_extra_output)
                    phase["alignment_search_batched_s"] = \
                        time.perf_counter() - t0
            observables[kernel] = obs
            timings[kernel] = phase

    max_delta = max(
        float(np.abs(sf - sl).max())
        for sf, sl in zip(states["fast"], states["legacy"]))
    # Batched-vs-serial sweep agreement, measured on the fast kernel
    # (the serial fast sweep is the reference the batched path must
    # reproduce within the solver equivalence gate).
    fast_obs = observables["fast"]
    batched_peak_deltas = [
        abs(a - b) for a, b in zip(fast_obs["peak_time_batched"],
                                   fast_obs["peak_time"])]
    batched_delay_deltas = [
        abs(a - b) for a, b in zip(fast_obs["extra_delay_batched"],
                                   fast_obs["extra_delay"])]
    batched_ok = all(
        d <= EQUIVALENCE_TOLERANCE
        for d in batched_peak_deltas + batched_delay_deltas)
    equivalence = {
        "max_state_delta": max_delta,
        "tolerance": EQUIVALENCE_TOLERANCE,
        "within_tolerance": max_delta <= EQUIVALENCE_TOLERANCE,
        "rtr_delta": [
            abs(a - b) for a, b in zip(observables["fast"]["rtr"],
                                       observables["legacy"]["rtr"])],
        "peak_time_delta_s": [
            abs(a - b) for a, b in zip(observables["fast"]["peak_time"],
                                       observables["legacy"]["peak_time"])],
        "batched_peak_time_delta_s": batched_peak_deltas,
        "batched_extra_delay_delta_s": batched_delay_deltas,
        "batched_within_tolerance": batched_ok,
    }

    fast, legacy = timings["fast"], timings["legacy"]
    speedup = {
        "dc_solve": legacy["dc_solve_s"] / fast["dc_solve_s"],
        "transient": legacy["transient_s"] / fast["transient_s"],
        "newton_throughput": (fast["steps_per_second"]
                              / legacy["steps_per_second"]),
    }
    for key in ("rtr_extraction_s", "alignment_search_s"):
        if key in fast and fast[key] > 0.0:
            speedup[key[:-2]] = legacy[key] / fast[key]
    if fast.get("alignment_search_batched_s", 0.0) > 0.0:
        # The production comparison: serial legacy sweep vs the batched
        # fast sweep on the same candidate schedule.
        speedup["alignment_search_batched"] = (
            legacy["alignment_search_s"]
            / fast["alignment_search_batched_s"])

    payload = {
        "schema": SCHEMA,
        "config": {
            "seed": seed,
            "count": count,
            "t_stop": t_stop,
            "dt": dt,
            "dc_repeats": dc_repeats,
            "alignment_steps": _ALIGN_STEPS,
            "alignment_refine": _ALIGN_REFINE,
            "sparse_dim": sparse_dim,
            "screening_count": screening_count,
            "screening_threshold": screening_threshold,
            "nets": [net.name for net in nets],
            "devices": [len(c.mosfets) for c in circuits],
            "dims": [int(s.shape[0]) for s in states["fast"]],
        },
        "kernels": timings,
        "speedup": speedup,
        "equivalence": equivalence,
    }
    payload["trust"] = run_trust_phase(circuits, t_stop=t_stop, dt=dt)
    if sparse_dim:
        payload["sparse"] = run_sparse_phase(seed=seed, dim=sparse_dim,
                                             skip_analysis=skip_analysis)
    if screening_count and not skip_analysis:
        payload["screening"] = run_screening_phase(
            seed=seed, count=screening_count,
            threshold=screening_threshold)
    return payload


def format_perf(payload: dict) -> str:
    """Human-readable summary of a :func:`run_perf` payload."""
    lines = []
    config = payload["config"]
    lines.append(f"perf bench: seed={config['seed']} "
                 f"count={config['count']} dims={config['dims']} "
                 f"devices={config['devices']}")
    header = f"{'phase':<18}{'legacy':>12}{'fast':>12}{'speedup':>10}"
    lines.append(header)
    legacy, fast = payload["kernels"]["legacy"], payload["kernels"]["fast"]
    rows = [("dc_solve_s", "dc_solve"), ("transient_s", "transient"),
            ("rtr_extraction_s", "rtr_extraction"),
            ("alignment_search_s", "alignment_search")]
    for key, label in rows:
        if key not in legacy:
            continue
        ratio = payload["speedup"].get(label)
        ratio_text = f"{ratio:8.2f}x" if ratio else " " * 9
        lines.append(f"{label:<18}{legacy[key]:>11.3f}s{fast[key]:>11.3f}s"
                     f"{ratio_text:>10}")
    if "alignment_search_batched_s" in fast:
        # Legacy column repeats the serial legacy sweep: the batched
        # speedup row is (legacy serial) / (fast batched).
        ratio = payload["speedup"]["alignment_search_batched"]
        lines.append(
            f"{'alignment_batched':<18}"
            f"{legacy['alignment_search_s']:>11.3f}s"
            f"{fast['alignment_search_batched_s']:>11.3f}s"
            f"{ratio:8.2f}x")
    lines.append(
        f"{'newton steps/s':<18}{legacy['steps_per_second']:>12.0f}"
        f"{fast['steps_per_second']:>12.0f}"
        f"{payload['speedup']['newton_throughput']:8.2f}x")
    eq = payload["equivalence"]
    verdict = "ok" if eq["within_tolerance"] else "DRIFT"
    lines.append(f"equivalence: max state delta {eq['max_state_delta']:.3e}"
                 f" V (tolerance {eq['tolerance']:.0e}) -> {verdict}")
    if eq.get("batched_peak_time_delta_s"):
        worst_peak = max(eq["batched_peak_time_delta_s"])
        worst_delay = max(eq["batched_extra_delay_delta_s"])
        verdict = "ok" if eq["batched_within_tolerance"] else "DRIFT"
        lines.append(
            f"batched vs serial: peak delta {worst_peak:.3e} s, "
            f"extra-delay delta {worst_delay:.3e} s -> {verdict}")
    tr = payload.get("trust")
    if tr:
        if not tr.get("measurable", True):
            verdict = "too short to gate"
        elif tr["within_budget"]:
            verdict = "ok"
        else:
            verdict = "OVER BUDGET"
        ident = "bit-identical" if tr["bit_identical"] \
            else f"delta {tr['max_state_delta']:.3e} V"
        lines.append(
            f"trust overhead: {tr['untrusted_s']:.3f}s off / "
            f"{tr['trusted_s']:.3f}s on = "
            f"{tr['overhead_fraction']:+.1%} "
            f"(budget {tr['budget']:.0%}) -> {verdict}, {ident}")
    sp = payload.get("sparse")
    if sp:
        verdict = "ok" if sp["within_tolerance"] else "DRIFT"
        lines.append(
            f"sparse phase: dim={sp['dim']} nnz(G)={sp['nnz_G']} "
            f"dense {sp['linear_dense_s']:.3f}s "
            f"sparse {sp['linear_sparse_s']:.3f}s "
            f"{sp['speedup']:.1f}x, delta {sp['max_state_delta']:.3e} V "
            f"-> {verdict}")
        if "analysis_sparse_s" in sp:
            lines.append(
                f"sparse analysis: {sp['analysis_net']} "
                f"(dim={sp['analysis_dim']}) full flow in "
                f"{sp['analysis_sparse_s']:.1f}s")
    sc = payload.get("screening")
    if sc:
        verdict = "ok" if sc["sound"] else "UNSOUND"
        lines.append(
            f"screening phase: {sc['count']} nets @ "
            f"{sc['threshold']:.2f} V, {sc['pruned']} pruned "
            f"({100.0 * sc['pruned_fraction']:.0f}%), tiered "
            f"{sc['tiered_s']:.2f}s vs exhaustive "
            f"~{sc['baseline_estimated_s']:.2f}s = "
            f"{sc['speedup']:.1f}x, {sc['unsound_prunes']} unsound of "
            f"{sc['audit_checked']} audited -> {verdict}")
    return "\n".join(lines)
