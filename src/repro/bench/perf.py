"""Kernel performance benchmark (``repro bench --perf``).

Times the solver hot paths on a seeded net population, once per Newton
kernel (``legacy`` = pre-rework dense solver, ``fast`` = factorization
reuse + vectorized stamping), and cross-checks that both kernels produce
the same transient states.  Four phases are timed per kernel:

* **dc_solve** — :func:`repro.sim.dc_operating_point` on every golden
  circuit (repeated for stable timing);
* **transient** — full :func:`repro.sim.simulate_nonlinear` golden runs,
  from which the Newton-step throughput is derived;
* **rtr_extraction** — :func:`repro.core.holding_resistance.compute_rtr`
  per net (driver-model fitting: non-linear driver pair runs);
* **alignment_search** — a small exhaustive worst-case alignment sweep
  on each net's first aggressor pulse, candidate-by-candidate
  (``batch=False``: the serial reference, amortized through the shared
  driven circuit and factor cache);
* **alignment_search_batched** — the same sweep through the batched
  multi-candidate kernel (fast kernel only): all candidates advance as
  one ``(S, dim)`` Newton block over one factorization.

The result dictionary (see ``docs/architecture.md`` for the JSON
schema, ``repro.bench.perf/v2``) is what the CLI writes to
``BENCH_perf.json``; ``equivalence`` carries the maximum state delta
between the kernels against the documented 1e-9 V tolerance plus the
batched-vs-serial sweep deltas (worst peak time and extra delay), and
the CLI exits non-zero when either gate is exceeded.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.netgen import NetGenerator
from repro.circuit.mna import build_mna
from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.golden import golden_circuit
from repro.core.holding_resistance import compute_rtr
from repro.core.superposition import ModelCache, SuperpositionEngine
from repro.obs import metrics
from repro.sim import (
    dc_operating_point,
    kernel_mode,
    simulate_nonlinear,
)
from repro.units import PS

__all__ = ["run_perf", "format_perf", "EQUIVALENCE_TOLERANCE", "SCHEMA"]

#: Maximum per-state voltage difference between the fast and legacy
#: kernels on fault-free runs.  Both kernels drive the damped Newton
#: update to the same 1e-6 V acceptance tolerance; quadratic convergence
#: squashes the remaining error far below this bound (measured ~1e-13 V
#: on the seeded population), so a breach means a real solver change.
EQUIVALENCE_TOLERANCE = 1e-9

#: Schema identifier written into BENCH_perf.json.
SCHEMA = "repro.bench.perf/v2"

_KERNELS = ("legacy", "fast")

#: Alignment-sweep shape shared by the serial and batched phases.
_ALIGN_STEPS = 9
_ALIGN_REFINE = 4


def _newton_counters(snapshot: dict) -> dict:
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    iterations = histograms.get("newton.iterations", {})
    return {
        "iterations": iterations.get("total", 0.0),
        "solves": iterations.get("count", 0),
        "woodbury": counters.get("newton.woodbury", 0),
        "jacobian_refresh": counters.get("newton.jacobian_refresh", 0),
        "nonconverged": counters.get("newton.nonconverged", 0),
    }


def _alignment_inputs(engine: SuperpositionEngine):
    net = engine.net
    victim = (engine.victim_transition().at_receiver
              + net.victim_initial_level())
    pulse = engine.aggressor_noise(net.aggressors[0].name).at_receiver
    return net, victim, pulse


def run_perf(seed: int = 1, count: int = 2, *, t_stop: float = 2e-9,
             dt: float = 1e-12, dc_repeats: int = 5,
             skip_analysis: bool = False) -> dict:
    """Benchmark both Newton kernels on a seeded population.

    ``skip_analysis`` drops the Rtr / alignment phases (used by quick
    tests; the transient equivalence check always runs).  Returns the
    BENCH_perf.json payload.
    """
    nets = [net for net in NetGenerator(seed=seed).population(count)]
    circuits = [golden_circuit(net) for net in nets]
    # Pre-built MNA systems: the amortized dc_operating_point usage
    # (stamping is not part of the solve being measured).
    mnas = [build_mna(c, allow_devices=True) for c in circuits]

    timings: dict[str, dict] = {}
    states: dict[str, list[np.ndarray]] = {}
    observables: dict[str, dict] = {}
    for kernel in _KERNELS:
        with kernel_mode(kernel):
            phase: dict[str, float] = {}

            t0 = time.perf_counter()
            for _ in range(dc_repeats):
                for circuit, mna in zip(circuits, mnas):
                    dc_operating_point(circuit, mna=mna)
            phase["dc_solve_s"] = (time.perf_counter() - t0) / dc_repeats

            metrics().reset()
            t0 = time.perf_counter()
            runs = [simulate_nonlinear(c, t_stop, dt) for c in circuits]
            phase["transient_s"] = time.perf_counter() - t0
            snapshot = metrics().snapshot()
            states[kernel] = [r.states for r in runs]

            newton = _newton_counters(snapshot)
            steps = sum(r.states.shape[1] - 1 for r in runs)
            phase["transient_steps"] = steps
            phase["steps_per_second"] = steps / phase["transient_s"]
            phase["newton"] = newton

            obs: dict[str, list[float]] = {
                "rtr": [], "peak_time": [], "extra_delay": [],
                "peak_time_batched": [], "extra_delay_batched": []}
            if not skip_analysis:
                cache = ModelCache()
                engines = [SuperpositionEngine(net, cache=cache)
                           for net in nets]
                t0 = time.perf_counter()
                for engine in engines:
                    obs["rtr"].append(compute_rtr(engine).rtr)
                phase["rtr_extraction_s"] = time.perf_counter() - t0

                t0 = time.perf_counter()
                for engine in engines:
                    net, victim, pulse = _alignment_inputs(engine)
                    sweep = exhaustive_worst_alignment(
                        net.receiver, victim, pulse, net.vdd, True,
                        steps=_ALIGN_STEPS, refine=_ALIGN_REFINE,
                        dt=2 * PS, batch=False)
                    obs["peak_time"].append(sweep.best_peak_time)
                    obs["extra_delay"].append(sweep.best_extra_output)
                phase["alignment_search_s"] = time.perf_counter() - t0

                if kernel == "fast":
                    # Batched phase: identical sweep, one (S, dim)
                    # Newton block per pass instead of S serial runs.
                    t0 = time.perf_counter()
                    for engine in engines:
                        net, victim, pulse = _alignment_inputs(engine)
                        sweep = exhaustive_worst_alignment(
                            net.receiver, victim, pulse, net.vdd, True,
                            steps=_ALIGN_STEPS, refine=_ALIGN_REFINE,
                            dt=2 * PS, batch=True)
                        obs["peak_time_batched"].append(
                            sweep.best_peak_time)
                        obs["extra_delay_batched"].append(
                            sweep.best_extra_output)
                    phase["alignment_search_batched_s"] = \
                        time.perf_counter() - t0
            observables[kernel] = obs
            timings[kernel] = phase

    max_delta = max(
        float(np.abs(sf - sl).max())
        for sf, sl in zip(states["fast"], states["legacy"]))
    # Batched-vs-serial sweep agreement, measured on the fast kernel
    # (the serial fast sweep is the reference the batched path must
    # reproduce within the solver equivalence gate).
    fast_obs = observables["fast"]
    batched_peak_deltas = [
        abs(a - b) for a, b in zip(fast_obs["peak_time_batched"],
                                   fast_obs["peak_time"])]
    batched_delay_deltas = [
        abs(a - b) for a, b in zip(fast_obs["extra_delay_batched"],
                                   fast_obs["extra_delay"])]
    batched_ok = all(
        d <= EQUIVALENCE_TOLERANCE
        for d in batched_peak_deltas + batched_delay_deltas)
    equivalence = {
        "max_state_delta": max_delta,
        "tolerance": EQUIVALENCE_TOLERANCE,
        "within_tolerance": max_delta <= EQUIVALENCE_TOLERANCE,
        "rtr_delta": [
            abs(a - b) for a, b in zip(observables["fast"]["rtr"],
                                       observables["legacy"]["rtr"])],
        "peak_time_delta_s": [
            abs(a - b) for a, b in zip(observables["fast"]["peak_time"],
                                       observables["legacy"]["peak_time"])],
        "batched_peak_time_delta_s": batched_peak_deltas,
        "batched_extra_delay_delta_s": batched_delay_deltas,
        "batched_within_tolerance": batched_ok,
    }

    fast, legacy = timings["fast"], timings["legacy"]
    speedup = {
        "dc_solve": legacy["dc_solve_s"] / fast["dc_solve_s"],
        "transient": legacy["transient_s"] / fast["transient_s"],
        "newton_throughput": (fast["steps_per_second"]
                              / legacy["steps_per_second"]),
    }
    for key in ("rtr_extraction_s", "alignment_search_s"):
        if key in fast and fast[key] > 0.0:
            speedup[key[:-2]] = legacy[key] / fast[key]
    if fast.get("alignment_search_batched_s", 0.0) > 0.0:
        # The production comparison: serial legacy sweep vs the batched
        # fast sweep on the same candidate schedule.
        speedup["alignment_search_batched"] = (
            legacy["alignment_search_s"]
            / fast["alignment_search_batched_s"])

    return {
        "schema": SCHEMA,
        "config": {
            "seed": seed,
            "count": count,
            "t_stop": t_stop,
            "dt": dt,
            "dc_repeats": dc_repeats,
            "alignment_steps": _ALIGN_STEPS,
            "alignment_refine": _ALIGN_REFINE,
            "nets": [net.name for net in nets],
            "devices": [len(c.mosfets) for c in circuits],
            "dims": [int(s.shape[0]) for s in states["fast"]],
        },
        "kernels": timings,
        "speedup": speedup,
        "equivalence": equivalence,
    }


def format_perf(payload: dict) -> str:
    """Human-readable summary of a :func:`run_perf` payload."""
    lines = []
    config = payload["config"]
    lines.append(f"perf bench: seed={config['seed']} "
                 f"count={config['count']} dims={config['dims']} "
                 f"devices={config['devices']}")
    header = f"{'phase':<18}{'legacy':>12}{'fast':>12}{'speedup':>10}"
    lines.append(header)
    legacy, fast = payload["kernels"]["legacy"], payload["kernels"]["fast"]
    rows = [("dc_solve_s", "dc_solve"), ("transient_s", "transient"),
            ("rtr_extraction_s", "rtr_extraction"),
            ("alignment_search_s", "alignment_search")]
    for key, label in rows:
        if key not in legacy:
            continue
        ratio = payload["speedup"].get(label)
        ratio_text = f"{ratio:8.2f}x" if ratio else " " * 9
        lines.append(f"{label:<18}{legacy[key]:>11.3f}s{fast[key]:>11.3f}s"
                     f"{ratio_text:>10}")
    if "alignment_search_batched_s" in fast:
        # Legacy column repeats the serial legacy sweep: the batched
        # speedup row is (legacy serial) / (fast batched).
        ratio = payload["speedup"]["alignment_search_batched"]
        lines.append(
            f"{'alignment_batched':<18}"
            f"{legacy['alignment_search_s']:>11.3f}s"
            f"{fast['alignment_search_batched_s']:>11.3f}s"
            f"{ratio:8.2f}x")
    lines.append(
        f"{'newton steps/s':<18}{legacy['steps_per_second']:>12.0f}"
        f"{fast['steps_per_second']:>12.0f}"
        f"{payload['speedup']['newton_throughput']:8.2f}x")
    eq = payload["equivalence"]
    verdict = "ok" if eq["within_tolerance"] else "DRIFT"
    lines.append(f"equivalence: max state delta {eq['max_state_delta']:.3e}"
                 f" V (tolerance {eq['tolerance']:.0e}) -> {verdict}")
    if eq.get("batched_peak_time_delta_s"):
        worst_peak = max(eq["batched_peak_time_delta_s"])
        worst_delay = max(eq["batched_extra_delay_delta_s"])
        verdict = "ok" if eq["batched_within_tolerance"] else "DRIFT"
        lines.append(
            f"batched vs serial: peak delta {worst_peak:.3e} s, "
            f"extra-delay delta {worst_delay:.3e} s -> {verdict}")
    return "\n".join(lines)
