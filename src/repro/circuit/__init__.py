"""Circuit representation: elements, netlist graph, MNA matrices.

* :mod:`repro.circuit.elements` — passive/active element records.
* :mod:`repro.circuit.netlist` — the :class:`Circuit` container (nodes,
  elements, devices) with composition utilities.
* :mod:`repro.circuit.mna` — modified nodal analysis stamping into
  ``C x' + G x = B u`` descriptor form.
* :mod:`repro.circuit.topology` — RC-tree / coupled-net constructors used
  by tests, examples and the synthetic benchmark generator.
* :mod:`repro.circuit.parser` — a SPICE-subset netlist reader.
* :mod:`repro.circuit.writer` — its inverse (netlist emission).
* :mod:`repro.circuit.moments` — Elmore / D2M wire-delay metrics.
"""

from repro.circuit.elements import (
    Resistor,
    Capacitor,
    VoltageSource,
    CurrentSource,
)
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.mna import MnaSystem, build_mna
from repro.circuit.writer import write_netlist

__all__ = [
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Circuit",
    "GROUND",
    "MnaSystem",
    "build_mna",
    "write_netlist",
]
