"""Modified nodal analysis (MNA) stamping.

A circuit's linear portion is stamped into the descriptor system

    C x'(t) + G x(t) = rhs(t)

with unknowns ``x = [node voltages; voltage-source branch currents]``.
Voltage sources contribute algebraic rows (no ``C`` entries); current
sources contribute only to the right-hand side.  The same
:class:`MnaSystem` serves the linear transient solver, the PRIMA reducer
(which consumes ``G``, ``C`` and input/output incidence vectors) and the
non-linear co-simulator (which adds device stamps on top).

Dense vs sparse backend
-----------------------
Stamping accumulates COO triplets and materializes them either as dense
``(dim, dim)`` arrays or as scipy CSC sparse matrices.  ``sparse=None``
(the default) auto-selects: extracted-scale systems of at least
:data:`SPARSE_MIN_DIM` unknowns go sparse, everything below stays dense
(where BLAS wins).  Both backends stamp the *same* triplet stream, so a
sparse system agrees with its dense twin entry-for-entry.  Downstream,
:mod:`repro.sim.factor` factors either form behind one facade; callers
needing a plain array regardless of backend use :meth:`MnaSystem.G_array`
/ :meth:`MnaSystem.C_array` (the moment/MOR paths, whose Krylov algebra
is dense by construction).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.elements import Stimulus, stimulus_value
from repro.circuit.netlist import GROUND, Circuit
from repro.obs import metrics

try:  # pragma: no cover - container ships scipy; gate for safety
    from scipy import sparse as _sp
    HAVE_SPARSE = True
except ImportError:  # pragma: no cover
    _sp = None
    HAVE_SPARSE = False

__all__ = ["MnaSystem", "build_mna", "SPARSE_MIN_DIM", "sparse_threshold"]

# Stamping cache telemetry: hits mean a sweep reused one circuit's
# stamped system instead of rebuilding it per candidate.  Every build —
# versioned or not — counts as a miss, so hit/(hit+miss) is a true rate.
_MNA_HIT = metrics().counter("sim.mna_cache.hit")
_MNA_MISS = metrics().counter("sim.mna_cache.miss")

#: Unknown count at and above which ``build_mna(sparse=None)`` selects
#: the sparse CSC backend.  Below it dense LU (or the explicit inverse)
#: is faster; above it the near-linear SuperLU factorization and
#: O(nnz) triangular solves win — the crossover is far below this on
#: tree-like RC nets, so the threshold is deliberately conservative.
SPARSE_MIN_DIM = 512


@contextmanager
def sparse_threshold(dim: int):
    """Temporarily override :data:`SPARSE_MIN_DIM` (tests force the
    sparse path onto hand-sized circuits this way)."""
    global SPARSE_MIN_DIM
    previous = SPARSE_MIN_DIM
    SPARSE_MIN_DIM = dim
    try:
        yield
    finally:
        SPARSE_MIN_DIM = previous


@dataclass
class MnaSystem:
    """Stamped MNA matrices plus source bookkeeping.

    Attributes
    ----------
    circuit:
        The source circuit (kept for node/element lookups).
    node_index:
        Map from node name to row index in ``[0, n_nodes)``.
    G, C:
        ``(dim, dim)`` conductance and capacitance matrices where
        ``dim = n_nodes + n_vsources`` — dense ``np.ndarray`` or scipy
        CSC, depending on the build mode (see :attr:`is_sparse`).
    vsource_index:
        Map from voltage-source name to its branch-current row
        (``n_nodes + k``).
    """

    circuit: Circuit
    node_index: dict[str, int]
    G: "np.ndarray"
    C: "np.ndarray"
    vsource_index: dict[str, int] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return len(self.node_index)

    @property
    def dim(self) -> int:
        return self.G.shape[0]

    @property
    def is_sparse(self) -> bool:
        """True when ``G``/``C`` are scipy sparse matrices."""
        return HAVE_SPARSE and _sp.issparse(self.G)

    def G_array(self) -> np.ndarray:
        """``G`` as a dense array regardless of the build backend."""
        return self.G.toarray() if self.is_sparse else self.G

    def C_array(self) -> np.ndarray:
        """``C`` as a dense array regardless of the build backend."""
        return self.C.toarray() if self.is_sparse else self.C

    def index_of(self, node: str) -> int:
        """Row index of a node (raises KeyError for ground/unknown)."""
        if node == GROUND:
            raise KeyError("ground has no MNA index")
        return self.node_index[node]

    def row_of(self, node: str) -> int:
        """Row index of a node, with ground mapped to -1.

        The device-stamping paths of the non-linear simulator use -1 as
        the "no row" sentinel for grounded terminals, so they can keep
        node lookups out of the Newton iteration entirely.
        """
        if node == GROUND:
            return -1
        return self.node_index.get(node, -1)

    # ------------------------------------------------------------------
    # Right-hand side
    # ------------------------------------------------------------------
    def rhs_matrix(self, times: np.ndarray,
                   overrides: dict[str, Stimulus] | None = None
                   ) -> np.ndarray:
        """Right-hand side ``rhs(t)`` evaluated on a time grid.

        Returns an array of shape ``(dim, len(times))``.  ``overrides``
        substitutes the stimulus of named sources without touching the
        circuit — this is how the batched multi-candidate kernel builds
        one right-hand side per candidate over a shared topology.
        """
        times = np.asarray(times, dtype=float)
        rhs = np.zeros((self.dim, times.size))
        overrides = overrides or {}
        for k, vs in enumerate(self.circuit.vsources):
            value = overrides.get(vs.name, vs.value)
            rhs[self.n_nodes + k, :] += stimulus_value(value, times)
        for cs in self.circuit.isources:
            current = stimulus_value(overrides.get(cs.name, cs.value),
                                     times)
            if cs.node_pos != GROUND:
                rhs[self.node_index[cs.node_pos], :] += current
            if cs.node_neg != GROUND:
                rhs[self.node_index[cs.node_neg], :] -= current
        return rhs

    def input_incidence(self) -> np.ndarray:
        """Incidence matrix ``B`` such that ``rhs(t) = B u(t)``.

        Column order: voltage sources first (in circuit order), then
        current sources.  Used by the PRIMA reducer.
        """
        n_in = len(self.circuit.vsources) + len(self.circuit.isources)
        B = np.zeros((self.dim, n_in))
        col = 0
        for k, _vs in enumerate(self.circuit.vsources):
            B[self.n_nodes + k, col] = 1.0
            col += 1
        for cs in self.circuit.isources:
            if cs.node_pos != GROUND:
                B[self.node_index[cs.node_pos], col] = 1.0
            if cs.node_neg != GROUND:
                B[self.node_index[cs.node_neg], col] = -1.0
            col += 1
        return B

    def output_incidence(self, nodes: list[str]) -> np.ndarray:
        """Selector matrix ``L`` with one column per requested node."""
        L = np.zeros((self.dim, len(nodes)))
        for col, node in enumerate(nodes):
            L[self.index_of(node), col] = 1.0
        return L


def _resolve_sparse(sparse: bool | None, dim: int) -> bool:
    if sparse is None:
        return HAVE_SPARSE and dim >= SPARSE_MIN_DIM
    if sparse and not HAVE_SPARSE:
        raise RuntimeError(
            "sparse MNA stamping requested but scipy is unavailable")
    return bool(sparse)


def build_mna(circuit: Circuit, *, allow_devices: bool = False,
              sparse: bool | None = None) -> MnaSystem:
    """Stamp the linear portion of ``circuit`` into an :class:`MnaSystem`.

    ``sparse`` selects the matrix backend: ``True`` forces scipy CSC,
    ``False`` forces dense arrays, ``None`` (default) auto-selects by
    system size (sparse at and above :data:`SPARSE_MIN_DIM` unknowns).
    Each backend is cached independently per topology version, so mixed
    callers never see the other backend's system.

    Raises ``ValueError`` if the circuit contains MOSFETs and
    ``allow_devices`` is False — a guard against accidentally running a
    non-linear circuit through the linear solver.
    """
    if circuit.mosfets and not allow_devices:
        raise ValueError(
            f"{circuit.name} contains MOSFETs; use the non-linear simulator "
            "or pass allow_devices=True if you really want the linear part"
        )

    version = getattr(circuit, "_topology_version", None)
    if version is not None:
        cached = circuit.__dict__.get("_mna_cache")
        if cached is not None and cached[0] == version:
            system = cached[2].get(_resolve_sparse(sparse, cached[1]))
            if system is not None:
                _MNA_HIT.inc()
                return system
    _MNA_MISS.inc()

    nodes = circuit.nodes()
    node_index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    m = len(circuit.vsources)
    dim = n + m
    use_sparse = _resolve_sparse(sparse, dim)

    # COO triplet streams, shared by both backends: the dense
    # scatter-add and the CSC duplicate-sum accumulate the same values.
    g_row: list[int] = []
    g_col: list[int] = []
    g_val: list[float] = []
    c_row: list[int] = []
    c_col: list[int] = []
    c_val: list[float] = []

    def stamp_pair(rows: list, cols: list, vals: list, node1: str,
                   node2: str, value: float) -> None:
        i = node_index[node1] if node1 != GROUND else None
        j = node_index[node2] if node2 != GROUND else None
        if i is not None:
            rows.append(i)
            cols.append(i)
            vals.append(value)
        if j is not None:
            rows.append(j)
            cols.append(j)
            vals.append(value)
        if i is not None and j is not None:
            rows.append(i)
            cols.append(j)
            vals.append(-value)
            rows.append(j)
            cols.append(i)
            vals.append(-value)

    for r in circuit.resistors:
        stamp_pair(g_row, g_col, g_val, r.node1, r.node2,
                   1.0 / r.resistance)
    for c in circuit.capacitors:
        stamp_pair(c_row, c_col, c_val, c.node1, c.node2, c.capacitance)

    vsource_index: dict[str, int] = {}
    for k, vs in enumerate(circuit.vsources):
        row = n + k
        vsource_index[vs.name] = row
        if vs.node_pos != GROUND:
            i = node_index[vs.node_pos]
            g_row += [i, row]
            g_col += [row, i]
            g_val += [1.0, 1.0]
        if vs.node_neg != GROUND:
            j = node_index[vs.node_neg]
            g_row += [j, row]
            g_col += [row, j]
            g_val += [-1.0, -1.0]

    def materialize(rows: list, cols: list, vals: list):
        if use_sparse:
            coo = _sp.coo_matrix(
                (np.asarray(vals, dtype=float),
                 (np.asarray(rows, dtype=np.intp),
                  np.asarray(cols, dtype=np.intp))),
                shape=(dim, dim))
            return coo.tocsc()
        matrix = np.zeros((dim, dim))
        if rows:
            np.add.at(matrix, (np.asarray(rows, dtype=np.intp),
                               np.asarray(cols, dtype=np.intp)),
                      np.asarray(vals, dtype=float))
        return matrix

    system = MnaSystem(circuit=circuit, node_index=node_index,
                       G=materialize(g_row, g_col, g_val),
                       C=materialize(c_row, c_col, c_val),
                       vsource_index=vsource_index)
    if version is not None:
        cached = circuit.__dict__.get("_mna_cache")
        if cached is None or cached[0] != version:
            cached = (version, dim, {})
            circuit.__dict__["_mna_cache"] = cached
        cached[2][use_sparse] = system
    return system
