"""Modified nodal analysis (MNA) stamping.

A circuit's linear portion is stamped into the descriptor system

    C x'(t) + G x(t) = rhs(t)

with unknowns ``x = [node voltages; voltage-source branch currents]``.
Voltage sources contribute algebraic rows (no ``C`` entries); current
sources contribute only to the right-hand side.  The same
:class:`MnaSystem` serves the linear transient solver, the PRIMA reducer
(which consumes ``G``, ``C`` and input/output incidence vectors) and the
non-linear co-simulator (which adds device stamps on top).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.elements import Stimulus, stimulus_value
from repro.circuit.netlist import GROUND, Circuit
from repro.obs import metrics

__all__ = ["MnaSystem", "build_mna"]

# Stamping cache telemetry: hits mean a sweep reused one circuit's
# stamped system instead of rebuilding it per candidate.
_MNA_HIT = metrics().counter("sim.mna_cache.hit")
_MNA_MISS = metrics().counter("sim.mna_cache.miss")


@dataclass
class MnaSystem:
    """Stamped MNA matrices plus source bookkeeping.

    Attributes
    ----------
    circuit:
        The source circuit (kept for node/element lookups).
    node_index:
        Map from node name to row index in ``[0, n_nodes)``.
    G, C:
        Dense ``(dim, dim)`` conductance and capacitance matrices where
        ``dim = n_nodes + n_vsources``.
    vsource_index:
        Map from voltage-source name to its branch-current row
        (``n_nodes + k``).
    """

    circuit: Circuit
    node_index: dict[str, int]
    G: np.ndarray
    C: np.ndarray
    vsource_index: dict[str, int] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return len(self.node_index)

    @property
    def dim(self) -> int:
        return self.G.shape[0]

    def index_of(self, node: str) -> int:
        """Row index of a node (raises KeyError for ground/unknown)."""
        if node == GROUND:
            raise KeyError("ground has no MNA index")
        return self.node_index[node]

    def row_of(self, node: str) -> int:
        """Row index of a node, with ground mapped to -1.

        The device-stamping paths of the non-linear simulator use -1 as
        the "no row" sentinel for grounded terminals, so they can keep
        node lookups out of the Newton iteration entirely.
        """
        if node == GROUND:
            return -1
        return self.node_index.get(node, -1)

    # ------------------------------------------------------------------
    # Right-hand side
    # ------------------------------------------------------------------
    def rhs_matrix(self, times: np.ndarray,
                   overrides: dict[str, Stimulus] | None = None
                   ) -> np.ndarray:
        """Right-hand side ``rhs(t)`` evaluated on a time grid.

        Returns an array of shape ``(dim, len(times))``.  ``overrides``
        substitutes the stimulus of named sources without touching the
        circuit — this is how the batched multi-candidate kernel builds
        one right-hand side per candidate over a shared topology.
        """
        times = np.asarray(times, dtype=float)
        rhs = np.zeros((self.dim, times.size))
        overrides = overrides or {}
        for k, vs in enumerate(self.circuit.vsources):
            value = overrides.get(vs.name, vs.value)
            rhs[self.n_nodes + k, :] += stimulus_value(value, times)
        for cs in self.circuit.isources:
            current = stimulus_value(overrides.get(cs.name, cs.value),
                                     times)
            if cs.node_pos != GROUND:
                rhs[self.node_index[cs.node_pos], :] += current
            if cs.node_neg != GROUND:
                rhs[self.node_index[cs.node_neg], :] -= current
        return rhs

    def input_incidence(self) -> np.ndarray:
        """Incidence matrix ``B`` such that ``rhs(t) = B u(t)``.

        Column order: voltage sources first (in circuit order), then
        current sources.  Used by the PRIMA reducer.
        """
        n_in = len(self.circuit.vsources) + len(self.circuit.isources)
        B = np.zeros((self.dim, n_in))
        col = 0
        for k, _vs in enumerate(self.circuit.vsources):
            B[self.n_nodes + k, col] = 1.0
            col += 1
        for cs in self.circuit.isources:
            if cs.node_pos != GROUND:
                B[self.node_index[cs.node_pos], col] = 1.0
            if cs.node_neg != GROUND:
                B[self.node_index[cs.node_neg], col] = -1.0
            col += 1
        return B

    def output_incidence(self, nodes: list[str]) -> np.ndarray:
        """Selector matrix ``L`` with one column per requested node."""
        L = np.zeros((self.dim, len(nodes)))
        for col, node in enumerate(nodes):
            L[self.index_of(node), col] = 1.0
        return L


def build_mna(circuit: Circuit, *, allow_devices: bool = False) -> MnaSystem:
    """Stamp the linear portion of ``circuit`` into an :class:`MnaSystem`.

    Raises ``ValueError`` if the circuit contains MOSFETs and
    ``allow_devices`` is False — a guard against accidentally running a
    non-linear circuit through the linear solver.
    """
    if circuit.mosfets and not allow_devices:
        raise ValueError(
            f"{circuit.name} contains MOSFETs; use the non-linear simulator "
            "or pass allow_devices=True if you really want the linear part"
        )

    version = getattr(circuit, "_topology_version", None)
    if version is not None:
        cached = circuit.__dict__.get("_mna_cache")
        if cached is not None and cached[0] == version:
            _MNA_HIT.inc()
            return cached[1]

    nodes = circuit.nodes()
    node_index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    m = len(circuit.vsources)
    dim = n + m
    G = np.zeros((dim, dim))
    C = np.zeros((dim, dim))

    def stamp_pair(matrix: np.ndarray, node1: str, node2: str,
                   value: float) -> None:
        i = node_index[node1] if node1 != GROUND else None
        j = node_index[node2] if node2 != GROUND else None
        if i is not None:
            matrix[i, i] += value
        if j is not None:
            matrix[j, j] += value
        if i is not None and j is not None:
            matrix[i, j] -= value
            matrix[j, i] -= value

    for r in circuit.resistors:
        stamp_pair(G, r.node1, r.node2, 1.0 / r.resistance)
    for c in circuit.capacitors:
        stamp_pair(C, c.node1, c.node2, c.capacitance)

    vsource_index: dict[str, int] = {}
    for k, vs in enumerate(circuit.vsources):
        row = n + k
        vsource_index[vs.name] = row
        if vs.node_pos != GROUND:
            i = node_index[vs.node_pos]
            G[i, row] += 1.0
            G[row, i] += 1.0
        if vs.node_neg != GROUND:
            j = node_index[vs.node_neg]
            G[j, row] -= 1.0
            G[row, j] -= 1.0

    system = MnaSystem(circuit=circuit, node_index=node_index, G=G, C=C,
                       vsource_index=vsource_index)
    if version is not None:
        circuit.__dict__["_mna_cache"] = (version, system)
        _MNA_MISS.inc()
    return system
