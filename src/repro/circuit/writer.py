"""SPICE-subset netlist writer — the parser's inverse.

Emits decks that :func:`repro.circuit.parser.parse_netlist` reads back
verbatim, which makes reduced circuits (e.g. TICER output) and
generated interconnect exportable artifacts rather than in-memory-only
objects.  Only the element types the parser supports are written;
circuits with MOSFETs are rejected (gates are templates, not netlist
cards, in this library).
"""

from __future__ import annotations

from repro.circuit.elements import Stimulus
from repro.circuit.netlist import Circuit
from repro.waveform import Waveform

__all__ = ["write_netlist", "format_value"]

_SUFFIXES = [
    (1e12, "t"), (1e9, "g"), (1e6, "meg"), (1e3, "k"), (1.0, ""),
    (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
]


def format_value(value: float) -> str:
    """Engineering-notation value the parser accepts (``1.2k``, ``35f``).

    Magnitudes below the femto range (or zero) are written in plain
    scientific notation, which the parser also accepts.
    """
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    for scale, suffix in _SUFFIXES:
        scaled = value / scale
        if 1.0 <= abs(scaled) < 1000.0:
            text = f"{scaled:.6g}"
            return f"{text}{suffix}"
    return f"{value:.6e}"


def _source_value(value: Stimulus) -> str:
    if isinstance(value, Waveform):
        pairs = " ".join(
            f"{format_value(float(t))} {format_value(float(v))}"
            for t, v in zip(value.times, value.values))
        return f"PWL({pairs})"
    return f"DC {format_value(float(value))}"


def _card_name(prefix: str, name: str) -> str:
    """Netlist card names must start with their element letter."""
    if name and name[0].upper() == prefix:
        return name
    return f"{prefix}{name}"


def write_netlist(circuit: Circuit, *, title: str | None = None) -> str:
    """Render ``circuit`` as a netlist deck (returns the text)."""
    if circuit.mosfets:
        raise ValueError(
            f"{circuit.name} contains MOSFETs; only passive elements and "
            "sources can be written as netlist cards")
    lines = [f"* {title or circuit.name}"]
    for r in circuit.resistors:
        lines.append(f"{_card_name('R', r.name)} {r.node1} {r.node2} "
                     f"{format_value(r.resistance)}")
    for c in circuit.capacitors:
        tag = " COUPLING" if c.coupling else ""
        lines.append(f"{_card_name('C', c.name)} {c.node1} {c.node2} "
                     f"{format_value(c.capacitance)}{tag}")
    for v in circuit.vsources:
        lines.append(f"{_card_name('V', v.name)} {v.node_pos} "
                     f"{v.node_neg} {_source_value(v.value)}")
    for i in circuit.isources:
        lines.append(f"{_card_name('I', i.name)} {i.node_pos} "
                     f"{i.node_neg} {_source_value(i.value)}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
