"""The :class:`Circuit` container.

A circuit is a bag of linear elements (:mod:`repro.circuit.elements`) and
MOSFET devices (:mod:`repro.devices.mosfet`) over a shared namespace of
string node names.  The ground node is ``"0"`` (SPICE convention); it is
always index-less in MNA systems.

Circuits compose: :meth:`Circuit.merge` imports another circuit under an
optional node/name prefix, which is how the analysis flow splices gate
models onto extracted interconnect.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    Stimulus,
    VoltageSource,
)
from repro.devices.mosfet import Mosfet, MosfetParams

__all__ = ["Circuit", "GROUND"]

GROUND = "0"


class Circuit:
    """Mutable netlist of elements and devices.

    Parameters
    ----------
    name:
        Optional identifier used in diagnostics.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.vsources: list[VoltageSource] = []
        self.isources: list[CurrentSource] = []
        self.mosfets: list[Mosfet] = []
        self._names: set[str] = set()
        #: Bumped on every element addition; lets MNA stamping cache its
        #: result per circuit and invalidate on topology change.  Source
        #: *value* rebinds (:meth:`set_source_value`) do not bump it —
        #: stimulus values never enter the stamped matrices.
        self._topology_version = 0

    # ------------------------------------------------------------------
    # Element addition
    # ------------------------------------------------------------------
    def _register(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate element name {name!r} in {self.name}")
        self._names.add(name)
        self._topology_version += 1

    def add_resistor(self, name: str, node1: str, node2: str,
                     resistance: float) -> Resistor:
        self._register(name)
        element = Resistor(name, node1, node2, resistance)
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, node1: str, node2: str,
                      capacitance: float, *, coupling: bool = False
                      ) -> Capacitor:
        self._register(name)
        element = Capacitor(name, node1, node2, capacitance,
                            coupling=coupling)
        self.capacitors.append(element)
        return element

    def add_vsource(self, name: str, node_pos: str, node_neg: str,
                    value: Stimulus) -> VoltageSource:
        self._register(name)
        element = VoltageSource(name, node_pos, node_neg, value)
        self.vsources.append(element)
        return element

    def add_isource(self, name: str, node_pos: str, node_neg: str,
                    value: Stimulus) -> CurrentSource:
        self._register(name)
        element = CurrentSource(name, node_pos, node_neg, value)
        self.isources.append(element)
        return element

    def add_mosfet(self, name: str, params: MosfetParams, drain: str,
                   gate: str, source: str) -> Mosfet:
        self._register(name)
        device = Mosfet(name, params, drain, gate, source)
        self.mosfets.append(device)
        return device

    # ------------------------------------------------------------------
    # Source rebinding
    # ------------------------------------------------------------------
    def source_value(self, name: str) -> Stimulus:
        """Current stimulus of a named voltage or current source."""
        for sources in (self.vsources, self.isources):
            for src in sources:
                if src.name == name:
                    return src.value
        raise KeyError(f"no source named {name!r} in {self.name}")

    def set_source_value(self, name: str, value: Stimulus) -> None:
        """Rebind the stimulus of a voltage or current source in place.

        Topology is untouched — cached MNA stamps stay valid, only the
        right-hand-side evaluation changes.  This is what lets sweeps
        (e.g. the exhaustive alignment search) reuse one circuit, one
        stamped system and one matrix factorization across candidate
        input waveforms instead of rebuilding all three per candidate.
        """
        for k, vs in enumerate(self.vsources):
            if vs.name == name:
                self.vsources[k] = VoltageSource(vs.name, vs.node_pos,
                                                 vs.node_neg, value)
                return
        for k, cs in enumerate(self.isources):
            if cs.name == name:
                self.isources[k] = CurrentSource(cs.name, cs.node_pos,
                                                 cs.node_neg, value)
                return
        raise KeyError(f"no source named {name!r} in {self.name}")

    def __getstate__(self):
        # The MNA cache holds solver kernels (closures, factorizations)
        # that are neither picklable nor worth shipping to workers.
        state = self.__dict__.copy()
        state.pop("_mna_cache", None)
        return state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        """All non-ground node names, in first-seen order."""
        seen: dict[str, None] = {}
        for pair in self._node_pairs():
            for node in pair:
                if node != GROUND:
                    seen.setdefault(node)
        return list(seen)

    def _node_pairs(self) -> Iterator[tuple[str, ...]]:
        for r in self.resistors:
            yield (r.node1, r.node2)
        for c in self.capacitors:
            yield (c.node1, c.node2)
        for v in self.vsources:
            yield (v.node_pos, v.node_neg)
        for i in self.isources:
            yield (i.node_pos, i.node_neg)
        for m in self.mosfets:
            yield (m.drain, m.gate, m.source)

    def element_count(self) -> int:
        return (len(self.resistors) + len(self.capacitors)
                + len(self.vsources) + len(self.isources)
                + len(self.mosfets))

    def grounded_cap_at(self, node: str) -> float:
        """Total capacitance from ``node`` to ground."""
        total = 0.0
        for c in self.capacitors:
            pair = {c.node1, c.node2}
            if node in pair and GROUND in pair and node != GROUND:
                total += c.capacitance
        return total

    def total_cap_at(self, node: str) -> float:
        """Total capacitance incident on ``node`` (coupling counted once)."""
        total = 0.0
        for c in self.capacitors:
            if node in (c.node1, c.node2):
                total += c.capacitance
        return total

    def coupling_caps(self) -> list[Capacitor]:
        return [c for c in self.capacitors if c.coupling]

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, {len(self.nodes())} nodes, "
                f"{self.element_count()} elements)")

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def merge(self, other: "Circuit", *, prefix: str = "",
              node_map: dict[str, str] | None = None) -> None:
        """Import all elements of ``other`` into this circuit.

        ``node_map`` renames specific nodes (e.g. connecting a gate's
        ``out`` to an interconnect's root); all other non-ground nodes get
        ``prefix`` prepended, as do element names (preventing collisions
        when the same cell is instantiated twice).
        """
        node_map = node_map or {}

        def rename(node: str) -> str:
            if node == GROUND:
                return GROUND
            if node in node_map:
                return node_map[node]
            return prefix + node

        for r in other.resistors:
            self.add_resistor(prefix + r.name, rename(r.node1),
                              rename(r.node2), r.resistance)
        for c in other.capacitors:
            self.add_capacitor(prefix + c.name, rename(c.node1),
                               rename(c.node2), c.capacitance,
                               coupling=c.coupling)
        for v in other.vsources:
            self.add_vsource(prefix + v.name, rename(v.node_pos),
                             rename(v.node_neg), v.value)
        for i in other.isources:
            self.add_isource(prefix + i.name, rename(i.node_pos),
                             rename(i.node_neg), i.value)
        for m in other.mosfets:
            self.add_mosfet(prefix + m.name, m.params, rename(m.drain),
                            rename(m.gate), rename(m.source))

    def copy(self, name: str | None = None) -> "Circuit":
        """Shallow structural copy (elements are immutable)."""
        duplicate = Circuit(name or self.name)
        duplicate.merge(self)
        return duplicate

    def without(self, names: Iterable[str]) -> "Circuit":
        """Copy of this circuit excluding the named elements."""
        drop = set(names)
        result = Circuit(self.name)
        for r in self.resistors:
            if r.name not in drop:
                result.add_resistor(r.name, r.node1, r.node2, r.resistance)
        for c in self.capacitors:
            if c.name not in drop:
                result.add_capacitor(c.name, c.node1, c.node2,
                                     c.capacitance, coupling=c.coupling)
        for v in self.vsources:
            if v.name not in drop:
                result.add_vsource(v.name, v.node_pos, v.node_neg, v.value)
        for i in self.isources:
            if i.name not in drop:
                result.add_isource(i.name, i.node_pos, i.node_neg, i.value)
        for m in self.mosfets:
            if m.name not in drop:
                result.add_mosfet(m.name, m.params, m.drain, m.gate,
                                  m.source)
        return result
