"""Moment-based wire delay metrics (Elmore, D2M).

The timing-windows substrate needs interconnect delays without running a
transient for every arc.  The classic closed forms come from the first
voltage-transfer moments of the RC network:

* **Elmore delay** ``-m1`` — the mean of the impulse response; an upper
  bound on the 50% step delay of an RC tree (Gupta et al.), typically
  10-50% pessimistic near the driver.
* **D2M** ``m1^2 / sqrt(m2) * ln 2`` (Alpert/Devgan/Kashyap) — a
  far tighter 50% estimate from the first two moments.

Both are computed from the same MNA machinery PRIMA uses, so arbitrary
RC(-coupled) topologies work, not just trees: the network is driven by
an ideal step at the root (grounded-root formulation) and the transfer
moments to the sink are read off.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.mna import build_mna
from repro.circuit.netlist import GROUND, Circuit
from repro.mor.prima import transfer_moments

__all__ = ["transfer_voltage_moments", "elmore_delay", "d2m_delay"]


def transfer_voltage_moments(net: Circuit, root: str, sink: str,
                             count: int = 3) -> np.ndarray:
    """Moments of the voltage transfer ``H(s) = V_sink(s) / V_root(s)``.

    ``H(s) = m0 + m1 s + m2 s^2 + ...`` with ``m0 = 1`` for a DC-connected
    sink.  The root is driven with an ideal source, which is the standard
    setup for wire-only delay metrics (driver resistance, if wanted,
    should be part of ``net``).
    """
    probe = net.copy(f"{net.name}_tm")
    probe.add_vsource("__step", root, GROUND, 1.0)
    mna = build_mna(probe)
    B = np.zeros((mna.dim, 1))
    B[mna.vsource_index["__step"]] = 1.0
    L = mna.output_incidence([sink])
    try:
        moments = transfer_moments(mna.G_array(), mna.C_array(), B, L, count)
        values = np.array([float(m[0, 0]) for m in moments])
    except ValueError as exc:
        raise ValueError(
            f"network is singular at DC: sink {sink!r} (or another "
            f"node) is not DC-connected to {root!r}") from exc
    if not np.isfinite(values).all():
        raise ValueError(
            f"network is singular at DC: sink {sink!r} (or another "
            f"node) is not DC-connected to {root!r}")
    return values


def elmore_delay(net: Circuit, root: str, sink: str) -> float:
    """Elmore delay of ``root -> sink``: the negated first moment."""
    moments = transfer_voltage_moments(net, root, sink, count=2)
    if not math.isclose(moments[0], 1.0, rel_tol=1e-6):
        raise ValueError(
            f"sink {sink!r} is not DC-connected to {root!r} "
            f"(m0 = {moments[0]:.4g})")
    return -moments[1]


def d2m_delay(net: Circuit, root: str, sink: str) -> float:
    """D2M 50% delay estimate: ``ln2 * m1^2 / sqrt(m2)``.

    Falls back to the Elmore value when the second moment is degenerate
    (e.g. a single lumped pole, where both coincide).
    """
    moments = transfer_voltage_moments(net, root, sink, count=3)
    if not math.isclose(moments[0], 1.0, rel_tol=1e-6):
        raise ValueError(
            f"sink {sink!r} is not DC-connected to {root!r} "
            f"(m0 = {moments[0]:.4g})")
    m1, m2 = moments[1], moments[2]
    if m2 <= 0.0:
        return -m1 * math.log(2.0)
    return math.log(2.0) * m1 * m1 / math.sqrt(m2)
