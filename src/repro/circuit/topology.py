"""Interconnect topology constructors.

Builders for the RC structures the paper's flow operates on: uniform RC
lines (π-segment ladders), RC trees, and capacitively-coupled parallel
lines.  All builders *append* to an existing :class:`Circuit`, returning
the node names they created, so nets, gates and sources compose freely.
"""

from __future__ import annotations

import networkx as nx

from repro.circuit.netlist import GROUND, Circuit

__all__ = ["rc_line", "couple_nodes", "rc_tree_from_graph", "pi_model"]


def rc_line(circuit: Circuit, prefix: str, node_in: str, node_out: str,
            n_segments: int, r_total: float, c_total: float) -> list[str]:
    """Append a uniform RC line as a ladder of π segments.

    The total wire resistance ``r_total`` is split across ``n_segments``
    series resistors; the total wire-to-ground capacitance ``c_total`` is
    lumped half at each segment boundary (π model), so end nodes get half
    a segment's share — the standard discretization of a distributed line.

    Returns the full ordered node list from ``node_in`` to ``node_out``
    (including both ends), which callers use to attach coupling caps.
    """
    if n_segments < 1:
        raise ValueError("need at least one segment")
    nodes = [node_in]
    nodes += [f"{prefix}n{i}" for i in range(1, n_segments)]
    nodes.append(node_out)

    r_seg = r_total / n_segments
    c_seg = c_total / n_segments
    for i in range(n_segments):
        circuit.add_resistor(f"{prefix}r{i}", nodes[i], nodes[i + 1], r_seg)
    # π capacitors: half-shares at ends, full shares inside.
    caps = [c_seg / 2.0] + [c_seg] * (n_segments - 1) + [c_seg / 2.0]
    for i, (node, c) in enumerate(zip(nodes, caps)):
        circuit.add_capacitor(f"{prefix}c{i}", node, GROUND, c)
    return nodes


def couple_nodes(circuit: Circuit, prefix: str, nodes_a: list[str],
                 nodes_b: list[str], cc_total: float) -> None:
    """Distribute ``cc_total`` of coupling capacitance between two lines.

    Couples positionally-corresponding nodes of the (resampled) shorter
    node list; this models two wires routed in parallel over their common
    span.  Capacitors are tagged ``coupling=True``.
    """
    count = min(len(nodes_a), len(nodes_b))
    if count < 1:
        raise ValueError("both node lists must be non-empty")

    def pick(nodes: list[str], k: int) -> str:
        # Spread k over the full list when lengths differ.
        idx = round(k * (len(nodes) - 1) / max(count - 1, 1))
        return nodes[idx]

    cc_each = cc_total / count
    for k in range(count):
        circuit.add_capacitor(f"{prefix}cc{k}", pick(nodes_a, k),
                              pick(nodes_b, k), cc_each, coupling=True)


def rc_tree_from_graph(circuit: Circuit, prefix: str, tree: nx.Graph,
                       root, node_name=None) -> dict:
    """Append an RC tree described by a networkx tree.

    Edge attributes ``r`` (series resistance) and ``c`` (capacitance to
    ground, lumped at the child end) define the electrical content.  The
    root's node name defaults to ``f"{prefix}{root}"``; pass ``node_name``
    (a callable) to control naming, e.g. to attach the root to a driver
    output node.

    Returns a map from graph vertices to circuit node names.
    """
    if not nx.is_tree(tree):
        raise ValueError("graph must be a tree")
    if node_name is None:
        def node_name(v):
            return f"{prefix}{v}"

    names = {v: node_name(v) for v in tree.nodes}
    for i, (parent, child) in enumerate(nx.bfs_edges(tree, root)):
        data = tree.edges[parent, child]
        circuit.add_resistor(f"{prefix}r{i}", names[parent], names[child],
                             data["r"])
        circuit.add_capacitor(f"{prefix}c{i}", names[child], GROUND,
                              data["c"])
    return names


def pi_model(circuit: Circuit, prefix: str, node_in: str, node_out: str,
             c_near: float, r: float, c_far: float) -> None:
    """Append a single π model (the classic C-R-C reduced load)."""
    circuit.add_capacitor(f"{prefix}c_near", node_in, GROUND, c_near)
    circuit.add_resistor(f"{prefix}r", node_in, node_out, r)
    circuit.add_capacitor(f"{prefix}c_far", node_out, GROUND, c_far)
