"""Linear circuit element records.

Elements are lightweight, immutable descriptions; all numeric work happens
in :mod:`repro.circuit.mna` (stamping) and :mod:`repro.sim` (simulation).

Sign conventions
----------------
* :class:`VoltageSource` forces ``v(node_pos) - v(node_neg) = value(t)``.
* :class:`CurrentSource` *injects* ``value(t)`` amps into ``node_pos`` and
  draws the same current out of ``node_neg``.  This is the natural
  convention for the noise-injection current of the transient holding
  resistance flow: a positive pulse raises ``node_pos``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.waveform import Waveform

__all__ = ["Resistor", "Capacitor", "VoltageSource", "CurrentSource",
           "Stimulus", "stimulus_value"]

#: A source value: constant volts/amps or a time-dependent waveform.
Stimulus = Union[float, Waveform]


def stimulus_value(stimulus: Stimulus, t) -> float:
    """Evaluate a constant-or-waveform stimulus at time(s) ``t``."""
    if isinstance(stimulus, Waveform):
        return stimulus(t)
    return stimulus


@dataclass(frozen=True)
class Resistor:
    name: str
    node1: str
    node2: str
    resistance: float

    def __post_init__(self):
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name}: non-positive resistance")


@dataclass(frozen=True)
class Capacitor:
    """A capacitor; ``coupling=True`` tags cross-coupling capacitors.

    The tag does not change the electrical behaviour — it lets analysis
    code (e.g. the superposition flow and the benchmark generator) identify
    which capacitors couple a victim to an aggressor.
    """

    name: str
    node1: str
    node2: str
    capacitance: float
    coupling: bool = False

    def __post_init__(self):
        if self.capacitance <= 0:
            raise ValueError(f"capacitor {self.name}: non-positive value")


@dataclass(frozen=True)
class VoltageSource:
    name: str
    node_pos: str
    node_neg: str
    value: Stimulus


@dataclass(frozen=True)
class CurrentSource:
    name: str
    node_pos: str
    node_neg: str
    value: Stimulus
