"""SPICE-subset netlist parser.

Reads flat netlists of the element types the library supports:

* ``R<name> n1 n2 value`` — resistor
* ``C<name> n1 n2 value [COUPLING]`` — capacitor (optional coupling tag)
* ``V<name> n+ n- DC value`` — constant voltage source
* ``V<name> n+ n- PWL(t1 v1 t2 v2 ...)`` — piecewise-linear source
* ``I<name> n+ n- DC value | PWL(...)`` — current source
* ``*`` / ``;`` comments, ``.end``, blank lines, continuation lines (``+``)

Values accept SPICE engineering suffixes (``1.2k``, ``35f``, ``0.4n``...).
Node ``0`` (or ``gnd``) is ground.  This covers extracted-parasitic decks
for coupled nets; transistor cards are out of scope (gates are built
programmatically by :mod:`repro.gates`).
"""

from __future__ import annotations

import re

from repro.circuit.netlist import GROUND, Circuit
from repro.waveform import Waveform

__all__ = ["parse_netlist", "parse_value", "NetlistError"]


class NetlistError(ValueError):
    """Raised on malformed netlist input."""


_VALUE_RE = re.compile(
    r"^([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)(meg|[tgkmunpfx]?)$",
    re.IGNORECASE,
)

_SCALES = {
    "t": 1e12, "g": 1e9, "meg": 1e6, "x": 1e6, "k": 1e3, "": 1.0,
    "m": 1e-3, "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
}


def parse_value(token: str) -> float:
    """Parse a SPICE number like ``1.2k`` or ``35f`` into SI units."""
    match = _VALUE_RE.match(token.strip())
    if not match:
        raise NetlistError(f"cannot parse value {token!r}")
    number, suffix = match.groups()
    return float(number) * _SCALES[suffix.lower()]


def _canonical_node(token: str) -> str:
    return GROUND if token.lower() in ("0", "gnd") else token


def _join_continuations(text: str) -> list[str]:
    lines: list[str] = []
    for raw in text.splitlines():
        stripped = raw.split(";", 1)[0].rstrip()
        if not stripped or stripped.lstrip().startswith("*"):
            continue
        if stripped.lstrip().startswith("+"):
            if not lines:
                raise NetlistError("continuation line with nothing to continue")
            lines[-1] += " " + stripped.lstrip()[1:].strip()
        else:
            lines.append(stripped.strip())
    return lines


def _parse_source_value(tokens: list[str], line: str):
    """Parse ``DC v`` or ``PWL(t v t v ...)`` trailing tokens."""
    joined = " ".join(tokens)
    upper = joined.upper()
    if upper.startswith("DC"):
        return parse_value(joined.split(None, 1)[1])
    if upper.startswith("PWL"):
        inner = joined[joined.index("(") + 1: joined.rindex(")")]
        numbers = [parse_value(tok) for tok in inner.replace(",", " ").split()]
        if len(numbers) < 4 or len(numbers) % 2:
            raise NetlistError(f"PWL needs (t v) pairs: {line!r}")
        return Waveform(numbers[0::2], numbers[1::2])
    # Bare number: treat as DC.
    if len(tokens) == 1:
        return parse_value(tokens[0])
    raise NetlistError(f"unsupported source specification: {line!r}")


def parse_netlist(text: str, name: str = "netlist") -> Circuit:
    """Parse netlist ``text`` into a :class:`Circuit`."""
    circuit = Circuit(name)
    for line in _join_continuations(text):
        if line.lower() in (".end", ".ends"):
            break
        if line.startswith("."):
            continue  # other control cards ignored
        tokens = line.split()
        card, rest = tokens[0], tokens[1:]
        kind = card[0].upper()
        if kind == "R":
            if len(rest) != 3:
                raise NetlistError(f"malformed resistor card: {line!r}")
            circuit.add_resistor(card, _canonical_node(rest[0]),
                                 _canonical_node(rest[1]),
                                 parse_value(rest[2]))
        elif kind == "C":
            if len(rest) not in (3, 4):
                raise NetlistError(f"malformed capacitor card: {line!r}")
            coupling = len(rest) == 4 and rest[3].upper() == "COUPLING"
            if len(rest) == 4 and not coupling:
                raise NetlistError(f"unknown capacitor flag: {line!r}")
            circuit.add_capacitor(card, _canonical_node(rest[0]),
                                  _canonical_node(rest[1]),
                                  parse_value(rest[2]), coupling=coupling)
        elif kind == "V":
            if len(rest) < 3:
                raise NetlistError(f"malformed voltage source: {line!r}")
            circuit.add_vsource(card, _canonical_node(rest[0]),
                                _canonical_node(rest[1]),
                                _parse_source_value(rest[2:], line))
        elif kind == "I":
            if len(rest) < 3:
                raise NetlistError(f"malformed current source: {line!r}")
            circuit.add_isource(card, _canonical_node(rest[0]),
                                _canonical_node(rest[1]),
                                _parse_source_value(rest[2:], line))
        else:
            raise NetlistError(f"unsupported card {card!r}")
    return circuit
