"""Aggressor ranking and small-aggressor filtering.

Industrial noise flows (ClariNet among them, see the paper's reference
[7]) never run the full analysis against every capacitively-coupled
neighbor: nets with thousands of tiny couplings are first *filtered* —
insignificant aggressors are demoted to quiet wires, their coupling
capacitance grounded at the victim side, and only the few significant
aggressors enter the superposition/alignment machinery.

This module provides that stage:

* :func:`partition_nodes` — which interconnect node belongs to which
  net (victim or a specific aggressor), from resistive connectivity;
* :func:`rank_aggressors` — a cheap significance estimate per aggressor
  (coupled-charge ratio, no simulation);
* :func:`filter_aggressors` — a new :class:`CoupledNet` in which every
  demoted aggressor's coupling capacitance is grounded at the victim
  side (the standard conservative treatment of a quiet neighbor) and
  its wire is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.circuit.netlist import GROUND, Circuit
from repro.core.net import CoupledNet
from repro.obs import metrics

__all__ = ["AggressorRank", "partition_nodes", "rank_aggressors",
           "filter_aggressors"]


def partition_nodes(net: CoupledNet) -> dict[str, str]:
    """Map each interconnect node to its electrical net.

    Nets are defined by resistive connectivity (coupling capacitors
    separate nets); keys are ``"victim"`` or the aggressor name.  Nodes
    not resistively reachable from any driver root (should not happen in
    a well-formed net) are omitted.

    The partition is memoized on the interconnect's topology version
    (and the aggressor roots): the analyze path calls this once per
    ranking *and* once per filtering pass over the same unchanged net,
    and the tiered screen adds a third caller — recomputing the
    connected components each time is pure waste.  Adding any element
    to the interconnect bumps its ``_topology_version`` and invalidates
    the cache; traffic shows up as ``filtering.partition.hits`` /
    ``.misses``.
    """
    version = getattr(net.interconnect, "_topology_version", None)
    roots_key = (net.victim_root,
                 tuple((a.name, a.root) for a in net.aggressors))
    cached = getattr(net, "_partition_cache", None)
    if cached is not None and cached[0] == (version, roots_key):
        metrics().counter("filtering.partition.hits").inc()
        return cached[1]
    metrics().counter("filtering.partition.misses").inc()
    assignment = _partition_nodes_uncached(net)
    # CoupledNet is a plain (mutable) dataclass, so the cache rides on
    # the instance itself and dies with it.
    net._partition_cache = ((version, roots_key), assignment)
    return assignment


def _partition_nodes_uncached(net: CoupledNet) -> dict[str, str]:
    graph = nx.Graph()
    graph.add_nodes_from(net.interconnect.nodes())
    for r in net.interconnect.resistors:
        if GROUND not in (r.node1, r.node2):
            graph.add_edge(r.node1, r.node2)

    roots = {"victim": net.victim_root}
    for agg in net.aggressors:
        roots[agg.name] = agg.root

    assignment: dict[str, str] = {}
    for key, root in roots.items():
        for node in nx.node_connected_component(graph, root):
            assignment[node] = key
    return assignment


@dataclass(frozen=True)
class AggressorRank:
    """Cheap significance estimate for one aggressor."""

    name: str
    coupling_cap: float
    #: Coupling capacitance over the victim's total capacitance — a
    #: first-order bound on the noise height as a fraction of Vdd.
    charge_ratio: float

    @property
    def significant(self) -> bool:
        return self.charge_ratio >= 0.05


def rank_aggressors(net: CoupledNet) -> list[AggressorRank]:
    """Rank aggressors by their coupled-charge ratio (descending)."""
    nets = partition_nodes(net)
    victim_cap = 0.0
    coupling: dict[str, float] = {a.name: 0.0 for a in net.aggressors}
    for cap in net.interconnect.capacitors:
        sides = (nets.get(cap.node1), nets.get(cap.node2))
        if "victim" in sides:
            victim_cap += cap.capacitance
            other = sides[0] if sides[1] == "victim" else sides[1]
            if other in coupling:
                coupling[other] += cap.capacitance
    victim_cap += net.receiver.input_capacitance()

    ranks = [
        AggressorRank(name=name, coupling_cap=cc,
                      charge_ratio=cc / victim_cap)
        for name, cc in coupling.items()
    ]
    return sorted(ranks, key=lambda r: r.charge_ratio, reverse=True)


def filter_aggressors(net: CoupledNet, *, threshold: float = 0.05,
                      keep: set[str] | None = None) -> CoupledNet:
    """Demote insignificant aggressors to grounded capacitance.

    Aggressors whose charge ratio falls below ``threshold`` (and are not
    listed in ``keep``) are removed: every coupling capacitor between
    the victim and a demoted aggressor is replaced by an equal grounded
    capacitor at its victim-side node — a quiet neighbor holds its line,
    so the victim sees (approximately) the full capacitance to an AC
    ground — and the demoted aggressor's own wire elements are dropped.

    Returns a new :class:`CoupledNet`; the input is untouched.
    """
    keep = keep or set()
    nets = partition_nodes(net)
    demoted = {
        rank.name for rank in rank_aggressors(net)
        if rank.charge_ratio < threshold and rank.name not in keep
    }
    if not demoted:
        return net

    def owner(node: str) -> str | None:
        return nets.get(node)

    wires = Circuit(f"{net.name}_filtered_wires")
    ground_counter = 0
    for r in net.interconnect.resistors:
        if owner(r.node1) in demoted or owner(r.node2) in demoted:
            continue
        wires.add_resistor(r.name, r.node1, r.node2, r.resistance)
    for c in net.interconnect.capacitors:
        own1, own2 = owner(c.node1), owner(c.node2)
        sides = {own1, own2}
        if not (sides & demoted):
            wires.add_capacitor(c.name, c.node1, c.node2, c.capacitance,
                                coupling=c.coupling)
            continue
        # Keep the victim-side share as grounded capacitance.
        victim_side = None
        if own1 == "victim":
            victim_side = c.node1
        elif own2 == "victim":
            victim_side = c.node2
        if victim_side is not None:
            wires.add_capacitor(f"__demoted{ground_counter}",
                                victim_side, GROUND, c.capacitance)
            ground_counter += 1
        # Couplings internal to demoted nets (or between two demoted
        # aggressors) vanish with their wires.

    survivors = [a for a in net.aggressors if a.name not in demoted]
    return CoupledNet(
        name=f"{net.name}_filtered",
        interconnect=wires,
        victim_root=net.victim_root,
        victim_receiver_node=net.victim_receiver_node,
        victim_driver=net.victim_driver,
        receiver=net.receiver,
        aggressors=survivors,
    )
