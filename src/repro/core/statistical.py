"""Statistical delay noise under uncertain aggressor alignment.

The worst-case alignment of :mod:`repro.core.analysis` answers the
sign-off question; the follow-up literature (e.g. Kahng/Liu/Xu,
"Statistical Crosstalk Aggressor Alignment Aware Interconnect Delay
Calculation") asks the statistical one: if each aggressor switches
*uniformly at random* inside its timing window, what is the
*distribution* of the extra delay?  Worst-casing every net at once is
often vanishingly unlikely; the distribution quantifies the pessimism.

The expensive part — extra delay as a function of the composite-pulse
position — is exactly the :class:`~repro.core.exhaustive.AlignmentSweep`
curve the exhaustive search already computes.  Sampling alignments then
costs interpolation only, so full distributions come at the price of one
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exhaustive import AlignmentSweep, exhaustive_worst_alignment
from repro.core.net import ReceiverSpec
from repro.sta.windows import Window
from repro.units import PS
from repro.waveform import Waveform

__all__ = ["DelayNoiseDistribution", "sample_alignment_delays",
           "alignment_delay_distribution"]


@dataclass
class DelayNoiseDistribution:
    """Sampled distribution of extra delay under random alignment."""

    samples: np.ndarray

    def __post_init__(self):
        self.samples = np.sort(np.asarray(self.samples, dtype=float))
        if self.samples.size == 0:
            raise ValueError("empty sample set")

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std())

    @property
    def worst(self) -> float:
        return float(self.samples[-1])

    def quantile(self, q: float) -> float:
        """Quantile of the extra delay, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        return float(np.quantile(self.samples, q))

    def exceedance(self, threshold: float) -> float:
        """P(extra delay > threshold)."""
        return float((self.samples > threshold).mean())

    def pessimism_of_worst_case(self, worst_case: float) -> float:
        """``worst_case - q99.9`` — delay the deterministic bound spends
        on alignments that essentially never happen."""
        return worst_case - self.quantile(0.999)


def sample_alignment_delays(sweep: AlignmentSweep,
                            peak_window: Window, *,
                            samples: int = 10000,
                            seed: int = 0) -> DelayNoiseDistribution:
    """Monte-Carlo delay-noise distribution from an alignment sweep.

    Parameters
    ----------
    sweep:
        Delay-vs-peak-time curve (receiver-output objective) from
        :func:`~repro.core.exhaustive.exhaustive_worst_alignment`.
    peak_window:
        Window of possible composite-pulse *peak times* — an aggressor
        switching window shifted by the injection latency.  Peak times
        sampled outside the sweep's span evaluate to the curve's edge
        values (zero delay well away from the transition).
    samples, seed:
        Monte-Carlo controls (deterministic for a given seed).
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(seed)
    if peak_window.span == 0.0:
        times = np.full(samples, peak_window.earliest)
    else:
        times = rng.uniform(peak_window.earliest, peak_window.latest,
                            size=samples)
    delays = np.interp(times, sweep.peak_times,
                       sweep.extra_output_delays)
    return DelayNoiseDistribution(delays)


def alignment_delay_distribution(receiver: ReceiverSpec,
                                 noiseless: Waveform, pulse: Waveform,
                                 vdd: float, victim_rising: bool,
                                 peak_window: Window, *,
                                 steps: int = 33, refine: int = 0,
                                 dt: float = 1.0 * PS,
                                 samples: int = 10000, seed: int = 0,
                                 batch: bool = True
                                 ) -> tuple[DelayNoiseDistribution,
                                            AlignmentSweep]:
    """Sweep-and-sample in one call: the delay-noise distribution of a
    receiver under random pulse alignment.

    Runs :func:`~repro.core.exhaustive.exhaustive_worst_alignment`
    (through the batched multi-candidate kernel by default — one
    factorization for the whole curve) and Monte-Carlo samples the
    resulting delay-vs-alignment curve over ``peak_window``.  Returns
    ``(distribution, sweep)`` so callers get both the statistics and
    the underlying worst case.
    """
    sweep = exhaustive_worst_alignment(
        receiver, noiseless, pulse, vdd, victim_rising, dt=dt,
        steps=steps, refine=refine, batch=batch)
    distribution = sample_alignment_delays(
        sweep, peak_window, samples=samples, seed=seed)
    return distribution, sweep
