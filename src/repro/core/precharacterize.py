"""Worst-case alignment pre-characterization (paper Section 3.2).

A naive lookup table over the four parameters that govern the worst-case
alignment — receiver output load, victim edge rate, noise pulse width and
height — would need thousands of points.  The paper's reductions:

* **Load**: the worst alignment at *minimum* receiver load is used for
  all loads.  Small loads have a sharp, sensitive optimum; large loads
  a flat one on the early side (the late-side cliff still moves with
  load — the analyzer's measured probes cover that; see
  :mod:`repro.core.analysis`).
* **Edge rate**: measured relative to the victim's 50% crossing, the
  worst alignment is nearly linear in the victim transition time —
  characterize min and max slew only, interpolate between.
* **Width / height**: the worst alignment *time* is non-linear in these,
  but the **alignment voltage** — the noiseless victim voltage at the
  instant of the noise peak — is nearly linear.  Characterize the four
  (width, height) corners and interpolate the voltage.

Total: 2 x 2 x 2 = **8 pre-characterization points** per receiver cell.
At analysis time: bilinear interpolation of alignment voltage in
(width, height), mapping through the actual victim waveform to times,
then linear interpolation of the time in slew.

Characterization stimuli
------------------------
Real victim transitions at a receiver input are a driver ramp filtered by
the wire (an exponential settling tail), and real coupled-noise pulses
rise fast and decay slowly.  The table is therefore characterized with a
ramp-into-RC victim shape and an asymmetric double-exponential pulse
(:func:`repro.waveform.noise_pulse`) — using an ideal saturated ramp and
a symmetric pulse instead shifts the characterized alignment voltages by
over 0.1 V on cliff-shaped delay curves (measured; see DESIGN.md).

Cliff guard
-----------
Near the worst case the delay-vs-alignment curve of a lightly loaded
receiver ends in a cliff: one picosecond later and the receiver output
no longer re-crosses 50%, so the measured delay collapses (the paper's
Figure 7(a) "very sensitive" regime).  Since interpolation error in the
*late* direction is catastrophic while the *early* direction costs only
the local slope, the predictor backs the alignment voltage off by
``cliff_guard`` x pulse height (default 8%) toward the early side — a
standard pessimism guard band for a sign-off tool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.exhaustive import exhaustive_worst_alignment
from repro.core.net import ReceiverSpec
from repro.gates.gate import Gate
from repro.gates.thevenin import _normalized_response, ramp_rc_crossing
from repro.obs import get_logger, metrics, span
from repro.units import FF, NS, PS
from repro.waveform import Waveform, noise_pulse

log = get_logger("core.precharacterize")

__all__ = ["AlignmentTable", "build_alignment_table",
           "characterization_victim"]

#: Tail time-constant of the characterization victim, as a fraction of
#: its ramp duration (ramp-into-RC shape).
_VICTIM_TAIL = 0.4


def characterization_victim(slew: float, vdd: float, rising: bool, *,
                            tail: float = _VICTIM_TAIL,
                            samples: int = 400) -> Waveform:
    """Canonical victim transition: saturated ramp filtered by an RC.

    ``slew`` is the equivalent 0-100% transition time measured the same
    way the analysis measures it (1.25x the 10-90% interval).  The 50%
    crossing sits at t = 0.
    """
    if slew <= 0:
        raise ValueError("slew must be positive")
    s10 = ramp_rc_crossing(0.1, 1.0, tail)
    s90 = ramp_rc_crossing(0.9, 1.0, tail)
    scale = slew / (1.25 * (s90 - s10))
    s = np.linspace(0.0, 1.0 + 8.0 * tail, samples) * scale
    x = np.array([_normalized_response(t / scale, 1.0, tail) for t in s])
    t50 = float(np.interp(0.5, x, s))
    values = x * vdd if rising else (1.0 - x) * vdd
    wave = Waveform(s - t50, values)
    return wave.extended(t_start=wave.t_start - slew,
                         t_end=wave.t_end + slew)


def _lerp_fraction(value: float, lo: float, hi: float) -> float:
    if hi <= lo:
        return 0.0
    return float(np.clip((value - lo) / (hi - lo), 0.0, 1.0))


@dataclass(frozen=True)
class AlignmentTable:
    """The 8-point alignment-voltage table for one receiver cell.

    ``va[i_slew, i_width, i_height]`` is the characterized alignment
    voltage: the noiseless victim voltage at the worst-case noise-peak
    instant, for the corner (slews[i], widths[j], heights[k]).
    """

    gate_name: str
    vdd: float
    victim_rising: bool
    c_load: float
    slews: tuple[float, float]
    widths: tuple[float, float]
    heights: tuple[float, float]
    va: np.ndarray  # shape (2, 2, 2)
    cliff_guard: float = 0.08

    def __post_init__(self):
        if self.va.shape != (2, 2, 2):
            raise ValueError("va must have shape (2, 2, 2)")

    def alignment_voltage(self, width: float, height: float,
                          slew_index: int) -> float:
        """Bilinear interpolation of Va in (width, height) at one slew."""
        u = _lerp_fraction(width, *self.widths)
        v = _lerp_fraction(abs(height), *self.heights)
        grid = self.va[slew_index]
        return float(
            (1 - u) * (1 - v) * grid[0, 0] + u * (1 - v) * grid[1, 0]
            + (1 - u) * v * grid[0, 1] + u * v * grid[1, 1])

    def predict_peak_time(self, victim_absolute: Waveform, width: float,
                          height: float, victim_slew: float) -> float:
        """Worst-case noise-peak time for an actual victim transition.

        The characterized alignment voltages (one per slew corner) are
        guard-banded toward the early side, mapped to times through the
        *actual* victim waveform, and the time is interpolated in the
        victim slew dimension.
        """
        metrics().counter("alignment.table_lookups").inc()
        half = self.vdd / 2.0
        t50 = victim_absolute.crossing_time(half, rising=self.victim_rising,
                                            which="first")
        lo, hi = victim_absolute.value_range()
        margin = 0.01 * (hi - lo)
        guard = self.cliff_guard * abs(height)

        times = []
        for i in (0, 1):
            level = self.alignment_voltage(width, height, i)
            # Early = lower voltage for a rising victim, higher for a
            # falling one.
            level = level - guard if self.victim_rising else level + guard
            level = float(np.clip(level, lo + margin, hi - margin))
            t = victim_absolute.crossing_time(
                level, rising=self.victim_rising, which="first")
            times.append(t - t50)
        w = _lerp_fraction(victim_slew, *self.slews)
        return t50 + (1 - w) * times[0] + w * times[1]


def build_alignment_table(
    receiver_gate: Gate,
    *,
    victim_rising: bool = True,
    c_load: float | None = None,
    slews: tuple[float, float] = (0.15 * NS, 1.2 * NS),
    widths: tuple[float, float] = (0.08 * NS, 0.5 * NS),
    heights: tuple[float, float] | None = None,
    input_pin: str | None = None,
    pulse_asymmetry: float = 4.0,
    cliff_guard: float = 0.08,
    sweep_steps: int = 17,
    refine_steps: int = 8,
    dt: float = 2.0 * PS,
    batch: bool = True,
) -> AlignmentTable:
    """Characterize the 8 corners of the alignment table.

    For each (slew, width, height) corner, a canonical ramp-RC victim and
    an asymmetric opposing noise pulse are swept through an exhaustive
    worst-case alignment search at one characterization load; the victim
    voltage at the winning peak instant is recorded.  Each corner's
    sweep runs through the batched multi-candidate kernel by default
    (``batch=False`` for the serial reference).

    ``c_load`` defaults to the paper's choice, a (near-)minimum receiver
    load of 2 fF.  On loaded receivers the characterized alignment can
    overshoot the delay cliff (the loaded receiver filters the pulse
    harder, moving the cliff earlier than at min load); the analyzer's
    measured alignment probes (see
    :meth:`repro.core.analysis.DelayNoiseAnalyzer.analyze`) absorb those
    rare transfer misses.

    ``heights`` defaults to (0.15, 0.45) x Vdd — the delay-noise regime
    (taller pulses are functional-noise failures first).
    """
    tech = receiver_gate.tech
    vdd = tech.vdd
    if c_load is None:
        c_load = 2.0 * FF
    if heights is None:
        heights = (0.15 * vdd, 0.45 * vdd)
    receiver = ReceiverSpec(receiver_gate, c_load=c_load,
                            input_pin=input_pin)

    t_begin = time.perf_counter()
    va = np.empty((2, 2, 2))
    with span("characterize.alignment_table",
              cell=receiver_gate.name, rising=victim_rising):
        for i, slew in enumerate(slews):
            victim = characterization_victim(slew, vdd, victim_rising)
            for j, width in enumerate(widths):
                for k, height in enumerate(heights):
                    signed = -height if victim_rising else height
                    pulse = noise_pulse(0.0, signed, width,
                                        asymmetry=pulse_asymmetry)
                    with span("characterize.point", slew=slew,
                              width=width, height=height):
                        sweep = exhaustive_worst_alignment(
                            receiver, victim, pulse, vdd, victim_rising,
                            steps=sweep_steps, refine=refine_steps,
                            dt=dt, batch=batch)
                    va[i, j, k] = victim(sweep.best_peak_time)
    metrics().timer("characterize.alignment.time").observe(
        time.perf_counter() - t_begin)
    log.debug("characterized alignment table for %s (victim %s) in "
              "%.1f s", receiver_gate.name,
              "rising" if victim_rising else "falling",
              time.perf_counter() - t_begin)

    return AlignmentTable(
        gate_name=receiver_gate.name,
        vdd=vdd,
        victim_rising=victim_rising,
        c_load=c_load,
        slews=tuple(slews),
        widths=tuple(widths),
        heights=tuple(heights),
        va=va,
        cliff_guard=cliff_guard,
    )
