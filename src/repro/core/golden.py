"""Full non-linear co-simulation — the "Spice" golden reference.

Simulates the complete coupled circuit with every gate at transistor
level: victim driver, aggressor drivers, the full RC interconnect with
coupling capacitors, and the victim receiver with its output load.  Used
to calibrate the linear superposition flow (paper Figures 2, 5, 13) and
to validate alignment predictions (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import GROUND, Circuit
from repro.core.net import CoupledNet
from repro.gates.gate import VDD_PORT
from repro.sim.nonlinear import simulate_nonlinear
from repro.sim.result import SimulationResult
from repro.units import PS
from repro.waveform import Waveform

__all__ = ["GoldenResult", "golden_simulation", "golden_extra_delays"]


@dataclass
class GoldenResult:
    """Waveforms from one full non-linear run (absolute volts)."""

    at_root: Waveform
    at_receiver_input: Waveform
    at_receiver_output: Waveform
    result: SimulationResult


def _instantiate_driver(circuit: Circuit, prefix: str, driver, node: str,
                        stimulus) -> None:
    gate = driver.gate
    pin = driver.switching_pin or gate.inputs[0]
    in_node = f"{prefix}in"
    circuit.add_vsource(f"{prefix}vin", in_node, GROUND, stimulus)
    connections = {pin: in_node, "out": node, VDD_PORT: VDD_PORT}
    for other in gate.inputs:
        if other != pin:
            connections[other] = VDD_PORT \
                if gate.tie_level_high(other) else GROUND
    gate.instantiate(circuit, prefix, connections)


def golden_circuit(net: CoupledNet, *,
                   aggressor_shifts: dict[str, float] | None = None,
                   aggressors_switching: bool = True) -> Circuit:
    """Build the full transistor-level circuit for a coupled net.

    With ``aggressors_switching=False`` the aggressor inputs are held at
    their quiet level — the gates stay in place (identical loading and DC
    state) but inject no noise, giving the noiseless reference run.
    """
    shifts = aggressor_shifts or {}
    circuit = net.interconnect.copy(f"{net.name}_golden")
    circuit.add_vsource("vdd_src", VDD_PORT, GROUND, net.vdd)

    _instantiate_driver(circuit, "vd_", net.victim_driver, net.victim_root,
                        net.victim_driver.input_waveform())
    for agg in net.aggressors:
        if aggressors_switching:
            stimulus = agg.driver.input_waveform(shifts.get(agg.name, 0.0))
        else:
            stimulus = agg.driver.quiet_input_level()
        _instantiate_driver(circuit, f"ad_{agg.name}_", agg.driver,
                            agg.root, stimulus)

    receiver = net.receiver
    connections = {receiver.pin: net.victim_receiver_node,
                   "out": "rcv_out", VDD_PORT: VDD_PORT}
    for other in receiver.gate.inputs:
        if other != receiver.pin:
            connections[other] = VDD_PORT \
                if receiver.gate.tie_level_high(other) else GROUND
    receiver.gate.instantiate(circuit, "rcv_", connections)
    if receiver.c_load > 0.0:
        circuit.add_capacitor("rcv_cload", "rcv_out", GROUND,
                              receiver.c_load)
    return circuit


def golden_simulation(net: CoupledNet, t_stop: float, *,
                      dt: float = 1.0 * PS,
                      aggressor_shifts: dict[str, float] | None = None,
                      aggressors_switching: bool = True) -> GoldenResult:
    """Run the full non-linear co-simulation."""
    circuit = golden_circuit(net, aggressor_shifts=aggressor_shifts,
                             aggressors_switching=aggressors_switching)
    result = simulate_nonlinear(circuit, t_stop, dt)
    return GoldenResult(
        at_root=result.voltage(net.victim_root),
        at_receiver_input=result.voltage(net.victim_receiver_node),
        at_receiver_output=result.voltage("rcv_out"),
        result=result,
    )


@dataclass
class GoldenDelays:
    """Golden extra delays and the underlying waveform pairs."""

    extra_input: float
    extra_output: float
    clean: GoldenResult
    noisy: GoldenResult


def golden_extra_delays(net: CoupledNet, t_stop: float, *,
                        dt: float = 1.0 * PS,
                        aggressor_shifts: dict[str, float] | None = None,
                        clean: GoldenResult | None = None) -> GoldenDelays:
    """Golden extra delay at the receiver input and output.

    Runs the circuit twice — aggressors quiet, then switching at the
    given shifts — and differences the 50% crossings.  Pass a previous
    ``clean`` result to amortize it across alignment sweeps.
    """
    vdd = net.vdd
    half = vdd / 2.0
    rising = net.victim_rising
    if clean is None:
        clean = golden_simulation(net, t_stop, dt=dt,
                                  aggressors_switching=False)
    noisy = golden_simulation(net, t_stop, dt=dt,
                              aggressor_shifts=aggressor_shifts,
                              aggressors_switching=True)

    t_in_clean = clean.at_receiver_input.crossing_time(
        half, rising=rising, which="first")
    try:
        t_in_noisy = noisy.at_receiver_input.crossing_time(
            half, rising=rising, which="last")
    except ValueError:
        t_in_noisy = noisy.at_receiver_input.t_end

    out_rising = (not rising) if net.receiver.gate.inverting else rising
    t_out_clean = clean.at_receiver_output.crossing_time(
        half, rising=out_rising, which="first")
    try:
        t_out_noisy = noisy.at_receiver_output.crossing_time(
            half, rising=out_rising, which="last")
    except ValueError:
        t_out_noisy = noisy.at_receiver_output.t_end

    return GoldenDelays(
        extra_input=t_in_noisy - t_in_clean,
        extra_output=t_out_noisy - t_out_clean,
        clean=clean,
        noisy=noisy,
    )
