"""Functional (static victim) noise analysis.

The paper's introduction separates the two crosstalk failure modes: if
the victim is *stable* when the aggressors switch, the induced pulse can
flip downstream logic — **functional noise** — while a *switching*
victim suffers **delay noise** (the paper's subject).  A noise tool
needs both; this module provides the functional side on the same
substrates:

* the quiet victim driver is held by its *static* small-signal output
  resistance (:meth:`repro.gates.Gate.holding_resistance` — the device
  sits in triode at the rail, so the plain Thevenin/Rtr machinery does
  not apply),
* aggressor pulses superpose through the same Figure-1(b) flow with
  their peaks aligned (worst case for a static victim is maximum pulse
  height at the receiver input), and
* the verdict is taken at the receiver *output*, because — as the paper
  stresses for alignment — the receiver filters narrow pulses: an input
  pulse can look alarming while the propagated output pulse stays under
  100 mV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alignment import composite_pulse, peak_align_shifts
from repro.core.exhaustive import receiver_output_waveform
from repro.core.net import CoupledNet
from repro.core.superposition import ModelCache, SuperpositionEngine
from repro.units import NS, PS
from repro.waveform import Waveform
from repro.waveform.pulses import pulse_peak, pulse_width

__all__ = ["FunctionalNoiseReport", "functional_noise"]


@dataclass
class FunctionalNoiseReport:
    """Outcome of a functional-noise check on one quiet victim."""

    net_name: str
    victim_high: bool
    holding_resistance: float
    #: Composite pulse at the receiver input (delta volts).
    input_pulse: Waveform
    input_peak: float
    input_width: float
    #: Absolute receiver output waveform.
    output_waveform: Waveform
    #: Peak deviation of the receiver output from its quiet level.
    output_peak: float
    threshold: float

    @property
    def fails(self) -> bool:
        """True when the propagated output pulse exceeds the threshold."""
        return abs(self.output_peak) > self.threshold


def functional_noise(net: CoupledNet, *,
                     victim_high: bool | None = None,
                     threshold: float | None = None,
                     cache: ModelCache | None = None,
                     dt: float = 1.0 * PS,
                     engine: SuperpositionEngine | None = None
                     ) -> FunctionalNoiseReport:
    """Check a coupled net for functional noise on its quiet victim.

    Parameters
    ----------
    net:
        The coupled net (the victim's DriverSpec direction is ignored —
        the victim is held static).
    victim_high:
        Victim's static level.  Default: the level the aggressors
        attack (falling aggressors -> high victim).
    threshold:
        Failure threshold for the receiver-*output* deviation; default
        40% of Vdd (a typical propagated-noise margin).
    engine:
        Reuse a pre-built superposition engine (e.g. from a delay-noise
        run on the same net).
    """
    vdd = net.vdd
    if victim_high is None:
        victim_high = not net.aggressors[0].driver.output_rising
    if threshold is None:
        threshold = 0.4 * vdd

    engine = engine or SuperpositionEngine(net, cache=cache, dt=dt)
    r_hold = net.victim_driver.gate.holding_resistance(victim_high)

    pulses = {
        a.name: engine.aggressor_noise(a.name, victim_r=r_hold).at_receiver
        for a in net.aggressors
    }
    # Static victim: maximum composite height is the worst case; align
    # all pulse peaks at a common instant.
    peaks = [pulse_peak(p)[0] for p in pulses.values()]
    t_ref = max(peaks)
    composite = composite_pulse(pulses, peak_align_shifts(pulses, t_ref))
    t_peak, height = pulse_peak(composite)
    width = pulse_width(composite)

    level = vdd if victim_high else 0.0
    noisy_input = (composite + level).extended(
        t_start=composite.t_start - 0.5 * NS,
        t_end=composite.t_end + 0.5 * NS)
    t_stop = noisy_input.t_end
    output = receiver_output_waveform(net.receiver, noisy_input, t_stop,
                                      dt)
    quiet_output = float(output.values[0])
    deviation = output - quiet_output
    _, output_peak = pulse_peak(deviation)

    return FunctionalNoiseReport(
        net_name=net.name,
        victim_high=victim_high,
        holding_resistance=r_hold,
        input_pulse=composite,
        input_peak=height,
        input_width=width,
        output_waveform=output,
        output_peak=output_peak,
        threshold=threshold,
    )
