"""Tiered population screening: bound → MOR estimate → full kernel.

The full delay-noise flow (Rtr extraction + alignment + non-linear
receiver evaluation) costs seconds per net, but in a real population
the overwhelming majority of nets are nowhere near the noise threshold.
This module prunes them cheaply, in the FRAME style of conservative
filtering before exact analysis:

* **Tier 0** — a closed-form charge-divider peak-noise upper bound from
  the coupled-charge topology quantities (:func:`tier0_bound`): no
  simulation at all, just the memoized node partition and capacitance
  sums of :mod:`repro.core.filtering`.
* **Tier 1** — a reduced-order *linear* over-approximation
  (:func:`tier1_estimate`): the coupled MNA system is PRIMA-projected
  (:class:`repro.mor.ReducedModel`, TICER pre-reduction for
  extracted-scale nets) and each aggressor is driven by an ideal
  full-swing ramp against a pessimistically-held victim; the summed
  per-aggressor peaks carry a calibrated guard band so the estimate
  over-approximates the non-linear composite pulse height.
* **Tier 2** — the existing full :class:`DelayNoiseAnalyzer` analysis,
  run only for nets whose tier-0/1 figures cross the noise threshold.

Every tier over-approximates the one below it in cost and refines it in
tightness, so a prune at any tier is sound: a pruned net re-run through
tier 2 must land below the threshold.  ``repro screen
--prune-audit-rate`` (and the pruning-soundness tests) enforce exactly
that, and the ``screening.estimate`` fault point lets chaos tests
inject a silent under-estimate the audit must catch.

Conservatism of the tiers
-------------------------

Tier 0 assumes the worst linear transfer physically possible: every
aggressor steps instantaneously by the full supply, the victim driver
provides no holding at all, and all injected charge piles onto the
victim's grounded capacitance — ``vdd * Cc / (Cc + Cg)``.  Finite
aggressor slews, resistive victim holding and wire shielding only ever
reduce the real pulse below this.

Tier 1 restores the linear dynamics but keeps every modeling choice on
the pessimistic side: aggressor drivers are ideal (zero-impedance)
voltage ramps at their input slews, quiet aggressors are near-floating
(anchored only for DC solvability), the victim holding resistance is
the crude saturation-current estimate scaled up by
``victim_r_scale`` (bounding the transient holding resistance Rtr from
above — noise grows monotonically with the holding resistance), and the
per-aggressor peak magnitudes are *summed*, which upper-bounds the
composite peak over every possible alignment.  The residual risk —
non-linear driver effects and the output-slew proxy — is covered by the
``guard_band`` multiplier, calibrated against seeded populations (see
``docs/architecture.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.mna import build_mna
from repro.circuit.netlist import GROUND
from repro.core.filtering import partition_nodes
from repro.core.net import CoupledNet
from repro.mor.reduced import ReducedModel
from repro.mor.ticer import ticer_reduce
from repro.obs import get_logger, metrics, span
from repro.resilience.faults import InjectedCorruption
from repro.resilience.faults import fire as _fire_fault
from repro.units import NS

__all__ = [
    "DEFAULT_GUARD_BAND",
    "DEFAULT_VICTIM_R_SCALE",
    "TIER_POLICIES",
    "ScreeningConfig",
    "ScreeningResult",
    "ScreeningStats",
    "TierDecision",
    "audit_prunes",
    "screen_population",
    "tier0_bound",
    "tier1_estimate",
    "triage",
]

log = get_logger("core.screening")

#: Safety multiplier on the tier-1 linear estimate.  Calibrated on the
#: seeded populations (default and hp presets, seeds 1-7): the raw
#: estimate over-approximates the tier-2 composite pulse height by
#: 1.6x-6x already; 1.25 guards the residual non-linear and slew-proxy
#: error with comfortable margin while keeping the estimate useful.
DEFAULT_GUARD_BAND = 1.25

#: Multiplier on the victim driver's crude saturation-current resistance
#: estimate.  The transient holding resistance Rtr exceeds the DC
#: estimate (the paper's Section 2 point); 4x bounds every Rtr/Rth
#: ratio observed on the seeded populations from above.
DEFAULT_VICTIM_R_SCALE = 4.0

#: Accepted ``ScreeningConfig.policy`` values: ``auto`` runs tier 0,
#: then tier 1, then tier 2; ``bound-only`` skips the MOR estimate
#: (tier 0 straight to tier 2); ``full`` escalates everything (the
#: exhaustive baseline the speedup is measured against).
TIER_POLICIES = ("auto", "bound-only", "full")

#: Reduced-model order for the tier-1 PRIMA projection.  Eight Krylov
#: vectors match four block moments of the single-input transfer —
#: ample for the monotone-ish RC responses screened here.
TIER1_ORDER = 8

#: Interconnects with at least this many nodes are TICER-pre-reduced
#: (quick internal nodes eliminated, ports kept) before the PRIMA
#: projection, keeping the dense Krylov algebra at extracted scale off
#: the critical path.
TICER_MIN_NODES = 256

#: DC anchor for quiet aggressor roots in the tier-1 circuit: large
#: enough to be conservative (a near-floating neighbor shields
#: nothing), small enough to keep ``G`` non-singular for PRIMA.
_ANCHOR_RESISTANCE = 1e6

#: Norton source resistance of the tier-1 aggressor drive.  Small
#: against any wire/holding impedance (so the root sees a near-ideal
#: full-swing ramp) while keeping the stamped ``G`` symmetric
#: positive-definite — see the note inside :func:`tier1_estimate`.
_SOURCE_RESISTANCE = 10.0

#: Tier-1 transient grid resolution (steps across the simulated
#: horizon; the reduced system is tiny, so the grid is cheap).
_TIER1_STEPS = 400


@dataclass(frozen=True)
class ScreeningConfig:
    """Knobs of one tiered screen.

    ``noise_threshold`` is the composite pulse height (volts at the
    victim receiver input) above which a net must see the full tier-2
    analysis.  See :data:`TIER_POLICIES` for ``policy``.
    """

    noise_threshold: float
    policy: str = "auto"
    guard_band: float = DEFAULT_GUARD_BAND
    victim_r_scale: float = DEFAULT_VICTIM_R_SCALE
    order: int = TIER1_ORDER
    ticer_min_nodes: int = TICER_MIN_NODES

    def __post_init__(self):
        if self.noise_threshold <= 0.0:
            raise ValueError(
                f"noise_threshold must be positive, got "
                f"{self.noise_threshold}")
        if self.policy not in TIER_POLICIES:
            raise ValueError(
                f"policy must be one of {TIER_POLICIES}, got "
                f"{self.policy!r}")
        if self.guard_band < 1.0:
            raise ValueError(
                f"guard_band must be >= 1.0 (it is a safety margin), "
                f"got {self.guard_band}")
        if self.victim_r_scale < 1.0:
            raise ValueError(
                f"victim_r_scale must be >= 1.0, got "
                f"{self.victim_r_scale}")


@dataclass(frozen=True)
class TierDecision:
    """Where one net's screening settled, and why.

    ``tier`` is the tier that decided the net: 0 or 1 for a prune, 2
    for an escalation into the full analysis.  ``bound`` is always the
    tier-0 closed-form figure; ``estimate`` the tier-1 figure when that
    tier ran (``None`` otherwise).  Both are conservative
    over-approximations of the tier-2 composite pulse height.
    """

    net_name: str
    tier: int
    bound: float
    estimate: float | None
    pruned: bool
    reason: str
    seconds: float

    @property
    def figure(self) -> float:
        """The tightest screening figure available for this net."""
        return self.bound if self.estimate is None else self.estimate

    def to_dict(self) -> dict:
        return {"net_name": self.net_name, "tier": self.tier,
                "bound": self.bound, "estimate": self.estimate,
                "pruned": self.pruned, "reason": self.reason,
                "seconds": self.seconds}


@dataclass
class ScreeningStats:
    """Per-tier accounting of one tiered screen."""

    total: int = 0
    #: Final tier per net: {0: pruned-by-bound, 1: pruned-by-estimate,
    #: 2: escalated}.
    by_tier: dict[int, int] = field(
        default_factory=lambda: {0: 0, 1: 0, 2: 0})
    #: Wall seconds spent inside each tier's evaluation (tier 2 is the
    #: pool's analysis wall time, filled in by the orchestrator).
    seconds_by_tier: dict[int, float] = field(
        default_factory=lambda: {0: 0.0, 1: 0.0, 2: 0.0})
    #: Escalation/prune reason -> count (the manifest's audit trail).
    reasons: dict[str, int] = field(default_factory=dict)

    @property
    def pruned(self) -> int:
        return self.by_tier[0] + self.by_tier[1]

    @property
    def escalated(self) -> int:
        return self.by_tier[2]

    @property
    def pruned_fraction(self) -> float:
        return self.pruned / self.total if self.total else 0.0

    def record(self, decision: TierDecision) -> None:
        self.total += 1
        self.by_tier[decision.tier] += 1
        self.reasons[decision.reason] = \
            self.reasons.get(decision.reason, 0) + 1

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "by_tier": {str(k): v for k, v in self.by_tier.items()},
            "seconds_by_tier": {str(k): v for k, v
                                in self.seconds_by_tier.items()},
            "pruned": self.pruned,
            "escalated": self.escalated,
            "pruned_fraction": self.pruned_fraction,
            "reasons": dict(self.reasons),
        }


# ----------------------------------------------------------------------
# Tier 0: closed-form charge-divider bound
# ----------------------------------------------------------------------
def tier0_bound(net: CoupledNet) -> float:
    """Provably conservative closed-form peak-noise bound (volts).

    Worst-case charge sharing: every aggressor steps instantaneously by
    the full supply and the victim driver holds nothing, so the whole
    coupled charge divides over the victim's capacitance::

        V_peak <= vdd * sum(Cc) / (sum(Cc) + Cg)

    ``Cc`` sums the victim's coupling capacitance to *any* aggressor
    (from the memoized :func:`~repro.core.filtering.partition_nodes`
    topology partition); ``Cg`` counts only the sinks guaranteed to
    participate — the victim wire's grounded capacitance and the
    receiver input capacitance.  Driver diffusion capacitance and
    victim-internal coupling are excluded: leaving charge sinks *out*
    can only raise the bound, never lower it.
    """
    assignment = partition_nodes(net)
    coupling = 0.0
    grounded = 0.0
    for cap in net.interconnect.capacitors:
        own1 = assignment.get(cap.node1)
        own2 = assignment.get(cap.node2)
        victim1 = own1 == "victim"
        victim2 = own2 == "victim"
        if victim1 and victim2:
            continue  # victim-internal: both plates ride together
        if victim1 or victim2:
            other = own2 if victim1 else own1
            if other is None:
                grounded += cap.capacitance
            else:
                coupling += cap.capacitance
    grounded += net.receiver.input_capacitance()
    total = coupling + grounded
    if total <= 0.0:
        return 0.0
    return net.vdd * coupling / total


# ----------------------------------------------------------------------
# Tier 1: reduced-order linear estimate
# ----------------------------------------------------------------------
def _victim_holding_resistance(net: CoupledNet, scale: float) -> float:
    """Upper bound on the victim's holding resistance during the noise.

    The crude saturation-current estimate of the *stronger* direction
    would under-hold; the weaker of pull-up/pull-down, scaled by
    ``scale``, bounds the transient holding resistance Rtr from above.
    More holding resistance means more noise, so this errs high.
    """
    gate = net.victim_driver.gate
    return scale * max(gate.drive_resistance_estimate(True),
                       gate.drive_resistance_estimate(False))


def _tier1_interconnect(net: CoupledNet, ticer_min_nodes: int):
    """The passive tier-1 view, TICER-pre-reduced at extracted scale.

    Ports (driver roots, receiver node) are kept; everything else on an
    extracted-scale net is a quick internal node PRIMA would spend
    dense Krylov algebra on for nothing.
    """
    wires = net.interconnect
    if ticer_min_nodes and len(wires.nodes()) >= ticer_min_nodes:
        keep = {net.victim_root, net.victim_receiver_node}
        keep.update(a.root for a in net.aggressors)
        with span("screening.ticer", nodes=len(wires.nodes())):
            reduced = ticer_reduce(wires, keep)
        metrics().counter("screening.ticer_reduced").inc()
        log.debug("%s: TICER %d -> %d nodes for tier 1", net.name,
                  len(wires.nodes()), len(reduced.nodes()))
        return reduced
    return wires


def tier1_estimate(net: CoupledNet, *,
                   config: ScreeningConfig | None = None) -> float:
    """Reduced-order linear over-estimate of the composite pulse height.

    Builds one passive circuit per aggressor — the (possibly
    TICER-reduced) interconnect, the receiver input capacitance, the
    scaled victim holding resistor, near-floating anchors on the quiet
    aggressor roots, and an ideal full-swing ramp source on the active
    aggressor — PRIMA-reduces it observing the receiver node, and
    simulates the reduced system over the aggressor's switching window.
    Returns ``guard_band`` times the sum of the per-aggressor peak
    magnitudes (the alignment-free upper bound on the composite peak).
    """
    config = config or ScreeningConfig(noise_threshold=net.vdd)
    if not net.aggressors:
        return 0.0
    vdd = net.vdd
    r_hold = _victim_holding_resistance(net, config.victim_r_scale)
    wires = _tier1_interconnect(net, config.ticer_min_nodes)

    base = wires.copy(f"{net.name}_tier1")
    base.add_capacitor("__rcv_cin", net.victim_receiver_node, GROUND,
                       net.receiver.input_capacitance())
    base.add_resistor("__hold_victim", net.victim_root, GROUND, r_hold)

    # Horizon: the victim-side RC time constant under the pessimistic
    # holder bounds how long the pulse can keep growing after the
    # aggressor ramp ends.
    victim_c = sum(c.capacitance for c in base.capacitors)
    tau = r_hold * victim_c

    deflate = False
    try:
        _fire_fault("screening.estimate", net.name)
    except InjectedCorruption:
        # Chaos hook: silently deflate the estimate so the guard-band
        # audit (not this function) must catch the unsound prune.
        deflate = True
        metrics().counter("screening.estimate_corrupted").inc()

    total = 0.0
    for agg in net.aggressors:
        circuit = base.copy(f"{net.name}_tier1_{agg.name}")
        for other in net.aggressors:
            if other.name != agg.name:
                circuit.add_resistor(f"__anchor_{other.name}",
                                     other.root, GROUND,
                                     _ANCHOR_RESISTANCE)
        slew = max(agg.driver.input_slew, 1e-12)
        # Norton drive: a near-ideal ramp through a tiny source
        # resistor.  An ideal voltage source would stamp skew branch
        # rows into G, voiding PRIMA's passivity guarantee (the reduced
        # model can then pick up unstable poles); a current-source
        # input keeps G symmetric positive-definite, so the projection
        # stays provably stable.  The reduced simulation takes the
        # input as sample values — the stimulus bound here is never
        # evaluated, only the stamp matters.
        circuit.add_resistor("__src", agg.root, GROUND,
                             _SOURCE_RESISTANCE)
        circuit.add_isource("__agg", GROUND, agg.root, 0.0)
        mna = build_mna(circuit)
        model = ReducedModel.from_mna(mna, [net.victim_receiver_node],
                                      min(config.order, mna.dim))
        t_stop = slew + 6.0 * max(tau, 0.05 * NS)
        times = np.linspace(0.0, t_stop, _TIER1_STEPS + 1)
        inputs = (np.clip(times / slew, 0.0, 1.0)[None, :] * vdd
                  / _SOURCE_RESISTANCE)
        out = model.simulate(times, inputs)[net.victim_receiver_node]
        total += float(np.max(np.abs(out.values)))

    estimate = config.guard_band * total
    if deflate:
        estimate *= 0.1
    return estimate


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def triage(nets: list[CoupledNet], config: ScreeningConfig,
           ) -> tuple[list[TierDecision], ScreeningStats]:
    """Run tiers 0/1 over a population and decide each net's fate.

    Tier 2 itself is *not* run here — the decisions carry a ``tier``
    label per net and the caller dispatches escalated nets through the
    execution pool (see :func:`screen_population`).
    """
    stats = ScreeningStats()
    decisions: list[TierDecision] = []
    threshold = config.noise_threshold
    tier0_count = metrics().counter("screening.tier0.evaluated")
    tier1_count = metrics().counter("screening.tier1.evaluated")
    for net in nets:
        start = time.perf_counter()
        bound = tier0_bound(net)
        t0 = time.perf_counter() - start
        stats.seconds_by_tier[0] += t0
        tier0_count.inc()

        if config.policy == "full":
            decision = TierDecision(net.name, 2, bound, None, False,
                                    "policy-full", t0)
        elif bound < threshold:
            decision = TierDecision(net.name, 0, bound, None, True,
                                    "bound-below-threshold", t0)
        elif config.policy == "bound-only":
            decision = TierDecision(net.name, 2, bound, None, False,
                                    "bound-above-threshold", t0)
        else:
            t1_start = time.perf_counter()
            with span("screening.tier1", net=net.name):
                estimate = tier1_estimate(net, config=config)
            t1 = time.perf_counter() - t1_start
            stats.seconds_by_tier[1] += t1
            tier1_count.inc()
            if estimate < threshold:
                decision = TierDecision(
                    net.name, 1, bound, estimate, True,
                    "estimate-below-threshold", t0 + t1)
            else:
                decision = TierDecision(
                    net.name, 2, bound, estimate, False,
                    "estimate-above-threshold", t0 + t1)
        stats.record(decision)
        metrics().counter(
            f"screening.settled.tier{decision.tier}").inc()
        decisions.append(decision)
    log.info("triage: %d nets -> %d pruned (tier 0: %d, tier 1: %d), "
             "%d escalated", stats.total, stats.pruned,
             stats.by_tier[0], stats.by_tier[1], stats.escalated)
    return decisions, stats


@dataclass
class ScreeningResult:
    """One tiered screen end to end: decisions, accounting, reports."""

    decisions: list[TierDecision]
    stats: ScreeningStats
    #: :class:`repro.exec.pool.ExecResult` of the tier-2 pass (pruned
    #: nets have ``reports[i] is None`` with no recorded failure).
    exec_result: object

    def decision_for(self, net_name: str) -> TierDecision:
        for decision in self.decisions:
            if decision.net_name == net_name:
                return decision
        raise KeyError(f"no screening decision for {net_name!r}")

    def to_dict(self) -> dict:
        """The run manifest's ``screening`` block."""
        return self.stats.to_dict()


def screen_population(nets: list[CoupledNet], config: ScreeningConfig,
                      *, analyzer=None, jobs: int = 1,
                      analyze_kwargs: dict | None = None,
                      **pool_kwargs) -> ScreeningResult:
    """Triage a population, then run tier 2 on the escalated nets.

    ``pool_kwargs`` pass straight through to
    :func:`repro.exec.pool.analyze_nets` (checkpointing, heartbeats,
    watchdog...), as do ``analyze_kwargs`` (alignment method etc.); the
    tier labels make the pool skip dispatch — and warm non-linear
    state — for every pruned net.
    """
    # Imported lazily: exec/ layers above core/, and only this
    # orchestration entry point needs the pool.
    from repro.exec.pool import analyze_nets

    with span("screening.triage", nets=len(nets)):
        decisions, stats = triage(nets, config)
    labels = {d.net_name: d.tier for d in decisions}
    result = analyze_nets(nets, jobs=jobs, analyzer=analyzer,
                          tier_labels=labels,
                          **pool_kwargs, **dict(analyze_kwargs or {}))
    stats.seconds_by_tier[2] = result.stats.wall_time
    return ScreeningResult(decisions=decisions, stats=stats,
                           exec_result=result)


def audit_prunes(nets: list[CoupledNet],
                 decisions: list[TierDecision], *,
                 config: ScreeningConfig, analyzer=None,
                 rate: float = 0.05, seed: int = 0,
                 analyze_kwargs: dict | None = None) -> dict:
    """Re-run a sample of pruned nets through tier 2 and compare.

    The guard-band audit: each sampled pruned net gets the full
    analysis, and its composite pulse magnitude must land below the
    noise threshold — anything else is an *unsound prune* (counted in
    ``screening.unsound_prunes`` and returned under ``"unsound"``).
    ``rate >= 1.0`` checks every pruned net (the exhaustive soundness
    gate used by the tests); smaller rates take a seeded sample (the
    cheap continuous audit used by ``repro screen`` and the bench).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    from repro.core.analysis import DelayNoiseAnalyzer

    analyzer = analyzer if analyzer is not None else DelayNoiseAnalyzer()
    by_name = {net.name: net for net in nets}
    pruned = [d for d in decisions if d.pruned]
    if rate >= 1.0 or not pruned:
        sample = list(pruned)
    else:
        rng = np.random.default_rng(seed)
        count = max(1, int(round(rate * len(pruned))))
        picks = rng.choice(len(pruned), size=min(count, len(pruned)),
                           replace=False)
        sample = [pruned[i] for i in sorted(picks)]

    kwargs = dict(analyze_kwargs or {})
    unsound: list[dict] = []
    unsound_counter = metrics().counter("screening.unsound_prunes")
    with span("screening.audit", checked=len(sample)):
        for decision in sample:
            report = analyzer.analyze(by_name[decision.net_name],
                                      tier_label=decision.tier,
                                      **kwargs)
            actual = abs(report.pulse_height)
            if actual >= config.noise_threshold:
                unsound_counter.inc()
                unsound.append({
                    "net": decision.net_name,
                    "pruned_at_tier": decision.tier,
                    "screening_figure": decision.figure,
                    "actual_pulse_height": actual,
                })
                log.error(
                    "UNSOUND PRUNE: %s pruned at tier %d with figure "
                    "%.4f V but tier 2 measures %.4f V (threshold "
                    "%.4f V)", decision.net_name, decision.tier,
                    decision.figure, actual, config.noise_threshold)
    return {
        "eligible": len(pruned),
        "checked": len(sample),
        "rate": rate,
        "unsound_prunes": len(unsound),
        "unsound": unsound,
        "ok": not unsound,
    }
