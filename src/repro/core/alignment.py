"""Aggressor alignment utilities (paper Section 3.1 and prior art).

* :func:`peak_align_shifts` — align all aggressor noise pulses so their
  peaks coincide (the Section 3.1 approximation; the paper shows the
  error of this choice is below 5% even when the true worst case has
  non-aligned peaks).
* :func:`composite_pulse` — superpose shifted pulses.
* :func:`input_objective_peak_time` — the prior-art alignment objective
  ([5] Dartu/Pileggi, [6] Gross et al.): place the composite peak where
  the noiseless victim transition crosses ``Vdd/2 + |Vp|`` (rising victim),
  which maximizes the delay at the receiver *input* only.
"""

from __future__ import annotations

from repro.obs import metrics
from repro.waveform import Waveform
from repro.waveform.pulses import pulse_peak

__all__ = ["peak_align_shifts", "composite_pulse",
           "input_objective_peak_time"]


def peak_align_shifts(pulses: dict[str, Waveform],
                      t_target: float) -> dict[str, float]:
    """Shifts that move every pulse's peak to ``t_target``."""
    shifts = {}
    for name, pulse in pulses.items():
        t_peak, _ = pulse_peak(pulse)
        shifts[name] = t_target - t_peak
    return shifts


def composite_pulse(pulses: dict[str, Waveform],
                    shifts: dict[str, float] | None = None) -> Waveform:
    """Superposition of (optionally shifted) noise pulses."""
    if not pulses:
        raise ValueError("no pulses to compose")
    metrics().counter("alignment.composites").inc()
    shifts = shifts or {}
    total: Waveform | None = None
    for name, pulse in pulses.items():
        shifted = pulse.shifted(shifts.get(name, 0.0))
        total = shifted if total is None else total + shifted
    return total


def input_objective_peak_time(victim_absolute: Waveform, peak_height: float,
                              vdd: float, victim_rising: bool) -> float:
    """Worst-case peak placement for the receiver-*input* objective.

    For a rising victim with an opposing (negative) pulse of height
    ``|Vp|``, the interconnect delay is maximized by putting the peak
    where the noiseless transition reaches ``Vdd/2 + |Vp|`` — the pulse
    then drags the waveform exactly back to Vdd/2 as late as possible
    (paper Figure 3, attributed to [6]).  The falling case mirrors.

    The level is clamped into the victim waveform's range so a pulse
    taller than Vdd/2 still yields a valid (end-of-transition) placement.
    """
    magnitude = abs(peak_height)
    if victim_rising:
        level = vdd / 2.0 + magnitude
        level = min(level, 0.995 * vdd)
        return victim_absolute.crossing_time(level, rising=True,
                                             which="first")
    level = vdd / 2.0 - magnitude
    level = max(level, 0.005 * vdd)
    return victim_absolute.crossing_time(level, rising=False, which="first")
