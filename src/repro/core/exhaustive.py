"""Receiver-output delay evaluation and exhaustive alignment search.

The paper's key observation (Section 1, Figure 3): the correct alignment
objective is the combined interconnect **plus receiver** delay, measured
at the receiver *output*.  This module provides

* :func:`receiver_output_waveform` — non-linear simulation of the
  receiver gate driven by an arbitrary (noisy) input waveform, per
  Figure 1(d);
* :func:`combined_extra_delays` — the extra delay a given noisy input
  causes at the receiver input and output; and
* :func:`exhaustive_worst_alignment` — brute-force sweep of the noise
  pulse position maximizing the receiver-output delay.  This is the
  "expensive search using a large number of non-linear simulations" the
  pre-characterization replaces, and serves as the golden reference for
  Figures 9 and 14.

Sweep amortization
------------------
Every candidate in the sweep simulates the *same* receiver circuit on
the *same* grid — only the ideal-source input waveform moves.  The sweep
therefore builds the driven circuit once per receiver configuration
(cached on the :class:`~repro.core.net.ReceiverSpec`) and rebinds the
source stimulus per candidate, so the stamped MNA system and the
factored backward-Euler kernel are reused across all candidates; with
``batch=True`` (the default) all candidates additionally advance
together through :func:`repro.sim.batched.simulate_nonlinear_batch` as
one ``(S, dim)`` Newton block.  Serial and batched sweeps agree within
the solver's 1e-9 V equivalence gate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.net import ReceiverSpec
from repro.obs import metrics
from repro.obs import span as _span
from repro.sim.batched import simulate_nonlinear_batch
from repro.sim.nonlinear import simulate_nonlinear
from repro.units import PS
from repro.waveform import Waveform
from repro.waveform.pulses import pulse_peak

__all__ = ["receiver_output_waveform", "combined_extra_delays",
           "exhaustive_worst_alignment", "AlignmentSweep"]

#: Candidate receiver evaluations requested by alignment sweeps; the
#: ratio to ``newton.batched.solves`` shows the batching amortization.
_CANDIDATES = metrics().counter("alignment.candidates")


def _receiver_circuit(receiver: ReceiverSpec,
                      v_input: Waveform) -> "object":
    """The receiver's driven characterization circuit, built once.

    Rebuilding the circuit per candidate was the root cause of the
    alignment-phase regression: each fresh ``Circuit`` carried a fresh
    MNA system, so the kernel-factory memoization never hit and every
    candidate re-factored ``C/h + G``.  One cached circuit per
    (gate, load, pin) configuration — with the source stimulus rebound
    in place — keeps the topology version stable and every cache warm.
    """
    config = (receiver.c_load, receiver.pin)
    cached = getattr(receiver, "_driven_cache", None)
    if (cached is not None and cached[0] is receiver.gate
            and cached[1] == config):
        circuit = cached[2]
        circuit.set_source_value("vin", v_input)
        return circuit
    circuit = receiver.gate.driven_circuit(
        v_input, c_load_external=receiver.c_load,
        switching_pin=receiver.input_pin, name="rcv_eval")
    receiver._driven_cache = (receiver.gate, config, circuit)
    return circuit


def receiver_output_waveform(receiver: ReceiverSpec, v_input: Waveform,
                             t_stop: float, dt: float = 1.0 * PS, *,
                             t_start: float | None = None
                             ) -> Waveform:
    """Simulate the receiver gate with ``v_input`` at its input.

    The input is driven by an ideal source (the interconnect interaction
    is already baked into the waveform, per the superposition flow), the
    output carries the receiver's external load.  ``t_start`` defaults
    to ``min(v_input.t_start, 0.0)``; sweeps pin it so every candidate
    shares one grid (and therefore one factorization).
    """
    circuit = _receiver_circuit(receiver, v_input)
    if t_start is None:
        t_start = min(v_input.t_start, 0.0)
    result = simulate_nonlinear(circuit, t_stop, dt, t_start=t_start)
    return result.voltage("out")


def _candidate_outputs(receiver: ReceiverSpec, waves: list[Waveform],
                       t_stop: float, dt: float, t_start: float, *,
                       batch: bool) -> list[Waveform]:
    """Receiver output waveforms for a set of candidate inputs.

    All candidates run over the cached driven circuit on one shared
    grid.  ``batch=True`` advances them as a single state block;
    ``batch=False`` is the serial reference (still amortized through
    source rebinding and the factor cache).
    """
    _CANDIDATES.inc(len(waves))
    circuit = _receiver_circuit(receiver, waves[0])
    if batch and len(waves) > 1:
        results = simulate_nonlinear_batch(
            circuit, [{"vin": w} for w in waves], t_stop, dt,
            t_start=t_start)
        return [r.voltage("out") for r in results]
    outputs = []
    for w in waves:
        circuit.set_source_value("vin", w)
        result = simulate_nonlinear(circuit, t_stop, dt, t_start=t_start)
        outputs.append(result.voltage("out"))
    return outputs


def _measure_extra_delays(noiseless: Waveform, noisy: Waveform,
                          clean_output: Waveform, noisy_output: Waveform,
                          vdd: float, victim_rising: bool,
                          inverting: bool, minimize: bool
                          ) -> tuple[float, float]:
    """Crossing-time bookkeeping shared by single and swept evaluation."""
    half = vdd / 2.0
    which_noisy = "first" if minimize else "last"

    t_in_clean = noiseless.crossing_time(half, rising=victim_rising,
                                         which="first")
    try:
        t_in_noisy = noisy.crossing_time(half, rising=victim_rising,
                                         which=which_noisy)
    except ValueError:
        t_in_noisy = noisy.t_end
    extra_input = t_in_noisy - t_in_clean

    out_rising = (not victim_rising) if inverting else victim_rising
    t_out_clean = clean_output.crossing_time(half, rising=out_rising,
                                             which="first")
    try:
        t_out_noisy = noisy_output.crossing_time(half, rising=out_rising,
                                                 which=which_noisy)
    except ValueError:
        t_out_noisy = noisy_output.t_end
    extra_output = t_out_noisy - t_out_clean
    return extra_input, extra_output


def combined_extra_delays(receiver: ReceiverSpec, noiseless: Waveform,
                          noisy: Waveform, vdd: float, victim_rising: bool,
                          t_stop: float, dt: float = 1.0 * PS, *,
                          clean_output: Waveform | None = None,
                          noisy_output: Waveform | None = None,
                          minimize: bool = False
                          ) -> tuple[float, float, Waveform]:
    """Extra delay at the receiver input and output.

    Returns ``(extra_at_input, extra_at_output, noisy_output_waveform)``.
    Pass ``clean_output`` (from a previous call) to avoid re-simulating
    the noiseless case inside sweeps, and ``noisy_output`` when the
    noisy response is already in hand (e.g. from a batched sweep).

    ``minimize=False`` (setup / max-delay analysis): the noisy *last*
    50% crossing is used — a pulse that drags the signal back across
    threshold is penalized.  ``minimize=True`` (hold / min-delay
    analysis, for aiding noise): the noisy *first* crossing is used, the
    pessimistic choice when noise speeds the transition up — the paper's
    "delay can either increase or decrease" other half.  If the noise
    prevents the output from completing its transition inside the
    window, the window end is used — a conservative saturation rather
    than a failure.
    """
    if clean_output is None:
        clean_output = receiver_output_waveform(receiver, noiseless,
                                                t_stop, dt)
    if noisy_output is None:
        noisy_output = receiver_output_waveform(receiver, noisy, t_stop,
                                                dt)
    extra_input, extra_output = _measure_extra_delays(
        noiseless, noisy, clean_output, noisy_output, vdd, victim_rising,
        receiver.gate.inverting, minimize)
    return extra_input, extra_output, noisy_output


@dataclass
class AlignmentSweep:
    """Result of an exhaustive alignment search."""

    peak_times: np.ndarray
    extra_output_delays: np.ndarray
    extra_input_delays: np.ndarray
    best_peak_time: float
    best_extra_output: float

    def delay_at(self, peak_time: float) -> float:
        """Interpolated receiver-output extra delay at a peak position."""
        return float(np.interp(peak_time, self.peak_times,
                               self.extra_output_delays))


def exhaustive_worst_alignment(receiver: ReceiverSpec, noiseless: Waveform,
                               pulse: Waveform, vdd: float,
                               victim_rising: bool, *,
                               t_stop: float | None = None,
                               dt: float = 1.0 * PS,
                               span: tuple[float, float] | None = None,
                               steps: int = 33,
                               refine: int = 0,
                               minimize: bool = False,
                               batch: bool = True) -> AlignmentSweep:
    """Sweep the pulse peak position, maximizing receiver-output delay.

    ``span`` is the absolute range of candidate *peak times* (default: a
    window around the victim's transition sized by the victim slew and
    the pulse width).  ``steps`` non-linear receiver simulations are run
    (plus one for the noiseless reference).  ``refine`` adds a second,
    zoomed sweep of that many points around the coarse optimum.
    ``minimize=True`` searches for the worst *speed-up* instead (aiding
    noise, hold analysis); ``best_extra_output`` is then the most
    negative extra delay.

    With ``batch=True`` (default) each sweep pass runs as one batched
    multi-candidate simulation — one factorization, one ``(S, dim)``
    Newton block — and the noiseless reference rides along as candidate
    0.  ``batch=False`` runs candidates serially over the same shared
    circuit and grid; the two agree within the 1e-9 V solver
    equivalence gate.
    """
    if steps < 2:
        raise ValueError(
            f"alignment sweep needs steps >= 2 to cover the span, "
            f"got {steps}")
    t_peak0, _height = pulse_peak(pulse)
    if span is None:
        t_lo = noiseless.crossing_time(
            0.05 * vdd if victim_rising else 0.95 * vdd,
            rising=victim_rising, which="first")
        t_hi = noiseless.crossing_time(
            0.95 * vdd if victim_rising else 0.05 * vdd,
            rising=victim_rising, which="last")
        width = max(t_hi - t_lo, 1.0 * PS)
        span = (t_lo - 0.5 * width, t_hi + 1.5 * width)
    if t_stop is None:
        t_stop = max(noiseless.t_end, span[1] + 2.0 * (span[1] - span[0]))

    peak_times = np.linspace(span[0], span[1], steps)
    waves = [noiseless + pulse.shifted(t_peak - t_peak0)
             for t_peak in peak_times]
    # One grid for the whole sweep (reference, coarse pass and refine
    # pass): the common start keeps the step size h identical, which is
    # what lets every candidate share one factored kernel.
    t_start = min(0.0, noiseless.t_start,
                  min(w.t_start for w in waves))

    inverting = receiver.gate.inverting
    pick = np.argmin if minimize else np.argmax

    with _span("alignment.sweep", steps=steps, refine=refine,
               batch=bool(batch)) as sweep_span:
        outputs = _candidate_outputs(receiver, [noiseless] + waves,
                                     t_stop, dt, t_start, batch=batch)
        clean_output = outputs[0]
        extra_in = np.empty(steps)
        extra_out = np.empty(steps)
        for i in range(steps):
            extra_in[i], extra_out[i] = _measure_extra_delays(
                noiseless, waves[i], clean_output, outputs[i + 1], vdd,
                victim_rising, inverting, minimize)

        best = int(pick(extra_out))
        total = steps + 1

        if refine > 0:
            lo = peak_times[max(best - 1, 0)]
            hi = peak_times[min(best + 1, steps - 1)]
            fine_times = np.linspace(lo, hi, refine + 2)[1:-1]
            fine_waves = [noiseless + pulse.shifted(t_peak - t_peak0)
                          for t_peak in fine_times]
            fine_outputs = _candidate_outputs(receiver, fine_waves,
                                              t_stop, dt, t_start,
                                              batch=batch)
            fine_in = np.empty(fine_times.size)
            fine_out = np.empty(fine_times.size)
            for i in range(fine_times.size):
                fine_in[i], fine_out[i] = _measure_extra_delays(
                    noiseless, fine_waves[i], clean_output,
                    fine_outputs[i], vdd, victim_rising, inverting,
                    minimize)
            total += fine_times.size
            peak_times = np.concatenate([peak_times, fine_times])
            extra_out = np.concatenate([extra_out, fine_out])
            extra_in = np.concatenate([extra_in, fine_in])
            # np.unique both sorts and de-duplicates: a refine point
            # landing exactly on a coarse point (refine odd, symmetric
            # window) would otherwise hand np.interp repeated abscissae
            # in delay_at.
            peak_times, keep = np.unique(peak_times, return_index=True)
            extra_out = extra_out[keep]
            extra_in = extra_in[keep]
            best = int(pick(extra_out))
        sweep_span.set(candidates=total)

    return AlignmentSweep(
        peak_times=peak_times,
        extra_output_delays=extra_out,
        extra_input_delays=extra_in,
        best_peak_time=float(peak_times[best]),
        best_extra_output=float(extra_out[best]),
    )
