"""Receiver-output delay evaluation and exhaustive alignment search.

The paper's key observation (Section 1, Figure 3): the correct alignment
objective is the combined interconnect **plus receiver** delay, measured
at the receiver *output*.  This module provides

* :func:`receiver_output_waveform` — non-linear simulation of the
  receiver gate driven by an arbitrary (noisy) input waveform, per
  Figure 1(d);
* :func:`combined_extra_delays` — the extra delay a given noisy input
  causes at the receiver input and output; and
* :func:`exhaustive_worst_alignment` — brute-force sweep of the noise
  pulse position maximizing the receiver-output delay.  This is the
  "expensive search using a large number of non-linear simulations" the
  pre-characterization replaces, and serves as the golden reference for
  Figures 9 and 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.net import ReceiverSpec
from repro.sim.nonlinear import simulate_nonlinear
from repro.units import PS
from repro.waveform import Waveform
from repro.waveform.pulses import pulse_peak

__all__ = ["receiver_output_waveform", "combined_extra_delays",
           "exhaustive_worst_alignment", "AlignmentSweep"]


def receiver_output_waveform(receiver: ReceiverSpec, v_input: Waveform,
                             t_stop: float, dt: float = 1.0 * PS
                             ) -> Waveform:
    """Simulate the receiver gate with ``v_input`` at its input.

    The input is driven by an ideal source (the interconnect interaction
    is already baked into the waveform, per the superposition flow), the
    output carries the receiver's external load.
    """
    circuit = receiver.gate.driven_circuit(
        v_input, c_load_external=receiver.c_load,
        switching_pin=receiver.input_pin, name="rcv_eval")
    result = simulate_nonlinear(circuit, t_stop, dt,
                                t_start=min(v_input.t_start, 0.0))
    return result.voltage("out")


def combined_extra_delays(receiver: ReceiverSpec, noiseless: Waveform,
                          noisy: Waveform, vdd: float, victim_rising: bool,
                          t_stop: float, dt: float = 1.0 * PS, *,
                          clean_output: Waveform | None = None,
                          minimize: bool = False
                          ) -> tuple[float, float, Waveform]:
    """Extra delay at the receiver input and output.

    Returns ``(extra_at_input, extra_at_output, noisy_output_waveform)``.
    Pass ``clean_output`` (from a previous call) to avoid re-simulating
    the noiseless case inside sweeps.

    ``minimize=False`` (setup / max-delay analysis): the noisy *last*
    50% crossing is used — a pulse that drags the signal back across
    threshold is penalized.  ``minimize=True`` (hold / min-delay
    analysis, for aiding noise): the noisy *first* crossing is used, the
    pessimistic choice when noise speeds the transition up — the paper's
    "delay can either increase or decrease" other half.  If the noise
    prevents the output from completing its transition inside the
    window, the window end is used — a conservative saturation rather
    than a failure.
    """
    half = vdd / 2.0
    which_noisy = "first" if minimize else "last"
    if clean_output is None:
        clean_output = receiver_output_waveform(receiver, noiseless,
                                                t_stop, dt)
    noisy_output = receiver_output_waveform(receiver, noisy, t_stop, dt)

    t_in_clean = noiseless.crossing_time(half, rising=victim_rising,
                                         which="first")
    try:
        t_in_noisy = noisy.crossing_time(half, rising=victim_rising,
                                         which=which_noisy)
    except ValueError:
        t_in_noisy = noisy.t_end
    extra_input = t_in_noisy - t_in_clean

    out_rising = (not victim_rising) if receiver.gate.inverting \
        else victim_rising
    t_out_clean = clean_output.crossing_time(half, rising=out_rising,
                                             which="first")
    try:
        t_out_noisy = noisy_output.crossing_time(half, rising=out_rising,
                                                 which=which_noisy)
    except ValueError:
        t_out_noisy = noisy_output.t_end
    extra_output = t_out_noisy - t_out_clean
    return extra_input, extra_output, noisy_output


@dataclass
class AlignmentSweep:
    """Result of an exhaustive alignment search."""

    peak_times: np.ndarray
    extra_output_delays: np.ndarray
    extra_input_delays: np.ndarray
    best_peak_time: float
    best_extra_output: float

    def delay_at(self, peak_time: float) -> float:
        """Interpolated receiver-output extra delay at a peak position."""
        return float(np.interp(peak_time, self.peak_times,
                               self.extra_output_delays))


def exhaustive_worst_alignment(receiver: ReceiverSpec, noiseless: Waveform,
                               pulse: Waveform, vdd: float,
                               victim_rising: bool, *,
                               t_stop: float | None = None,
                               dt: float = 1.0 * PS,
                               span: tuple[float, float] | None = None,
                               steps: int = 33,
                               refine: int = 0,
                               minimize: bool = False) -> AlignmentSweep:
    """Sweep the pulse peak position, maximizing receiver-output delay.

    ``span`` is the absolute range of candidate *peak times* (default: a
    window around the victim's transition sized by the victim slew and
    the pulse width).  ``steps`` non-linear receiver simulations are run
    (plus one for the noiseless reference).  ``refine`` adds a second,
    zoomed sweep of that many points around the coarse optimum.
    ``minimize=True`` searches for the worst *speed-up* instead (aiding
    noise, hold analysis); ``best_extra_output`` is then the most
    negative extra delay.
    """
    half = vdd / 2.0
    t_peak0, _height = pulse_peak(pulse)
    if span is None:
        t50 = noiseless.crossing_time(half, rising=victim_rising,
                                      which="first")
        t_lo = noiseless.crossing_time(
            0.05 * vdd if victim_rising else 0.95 * vdd,
            rising=victim_rising, which="first")
        t_hi = noiseless.crossing_time(
            0.95 * vdd if victim_rising else 0.05 * vdd,
            rising=victim_rising, which="last")
        width = max(t_hi - t_lo, 1.0 * PS)
        span = (t_lo - 0.5 * width, t_hi + 1.5 * width)
        del t50
    if t_stop is None:
        t_stop = max(noiseless.t_end, span[1] + 2.0 * (span[1] - span[0]))

    clean_output = receiver_output_waveform(receiver, noiseless, t_stop, dt)

    peak_times = np.linspace(span[0], span[1], steps)
    extra_out = np.empty(steps)
    extra_in = np.empty(steps)
    for i, t_peak in enumerate(peak_times):
        noisy = noiseless + pulse.shifted(t_peak - t_peak0)
        extra_in[i], extra_out[i], _ = combined_extra_delays(
            receiver, noiseless, noisy, vdd, victim_rising, t_stop, dt,
            clean_output=clean_output, minimize=minimize)

    pick = np.argmin if minimize else np.argmax
    best = int(pick(extra_out))

    if refine > 0:
        lo = peak_times[max(best - 1, 0)]
        hi = peak_times[min(best + 1, steps - 1)]
        fine_times = np.linspace(lo, hi, refine + 2)[1:-1]
        fine_out = np.empty(fine_times.size)
        fine_in = np.empty(fine_times.size)
        for i, t_peak in enumerate(fine_times):
            noisy = noiseless + pulse.shifted(t_peak - t_peak0)
            fine_in[i], fine_out[i], _ = combined_extra_delays(
                receiver, noiseless, noisy, vdd, victim_rising, t_stop, dt,
                clean_output=clean_output, minimize=minimize)
        peak_times = np.concatenate([peak_times, fine_times])
        extra_out = np.concatenate([extra_out, fine_out])
        extra_in = np.concatenate([extra_in, fine_in])
        order = np.argsort(peak_times)
        peak_times = peak_times[order]
        extra_out = extra_out[order]
        extra_in = extra_in[order]
        best = int(pick(extra_out))

    return AlignmentSweep(
        peak_times=peak_times,
        extra_output_delays=extra_out,
        extra_input_delays=extra_in,
        best_peak_time=float(peak_times[best]),
        best_extra_output=float(extra_out[best]),
    )
