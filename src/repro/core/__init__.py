"""Core delay-noise analysis — the paper's contribution.

* :mod:`repro.core.net` — the :class:`CoupledNet` data model (victim
  driver + interconnect + aggressors + receiver).
* :mod:`repro.core.superposition` — the linear simulation + superposition
  flow of Figure 1, with per-driver Ceff/Thevenin models.
* :mod:`repro.core.holding_resistance` — the transient holding resistance
  Rtr (Section 2).
* :mod:`repro.core.alignment` — aggressor mutual alignment, composite
  pulse construction, and the receiver-input alignment objective of the
  prior art ([5], [6]).
* :mod:`repro.core.exhaustive` — receiver-output delay evaluation and the
  exhaustive (golden) worst-case alignment search.
* :mod:`repro.core.precharacterize` — the 8-point alignment-voltage
  pre-characterization and its interpolating predictor (Section 3.2).
* :mod:`repro.core.golden` — full non-linear co-simulation of the entire
  coupled circuit (the "Spice" reference).
* :mod:`repro.core.analysis` — :class:`DelayNoiseAnalyzer`, the ClariNet
  top-level flow iterating driver models and alignment to convergence.
"""

from repro.core.net import AggressorSpec, CoupledNet, DriverSpec, ReceiverSpec
from repro.core.superposition import ModelCache, SuperpositionEngine
from repro.core.holding_resistance import (
    RtrResult,
    compute_holder_rtr,
    compute_rtr,
)
from repro.core.alignment import (
    composite_pulse,
    input_objective_peak_time,
    peak_align_shifts,
)
from repro.core.exhaustive import (
    exhaustive_worst_alignment,
    receiver_output_waveform,
)
from repro.core.precharacterize import AlignmentTable, build_alignment_table
from repro.core.golden import golden_extra_delays, golden_simulation
from repro.core.functional import FunctionalNoiseReport, functional_noise
from repro.core.filtering import (
    AggressorRank,
    filter_aggressors,
    partition_nodes,
    rank_aggressors,
)
from repro.core.analysis import DelayNoiseAnalyzer, NoiseReport
from repro.core.block import BlockAnalyzer, BlockNet, BlockReport
from repro.core.hold import HoldReport, hold_speedup
from repro.core.statistical import (
    DelayNoiseDistribution,
    alignment_delay_distribution,
    sample_alignment_delays,
)

__all__ = [
    "AggressorSpec",
    "CoupledNet",
    "DriverSpec",
    "ReceiverSpec",
    "ModelCache",
    "SuperpositionEngine",
    "RtrResult",
    "compute_rtr",
    "compute_holder_rtr",
    "composite_pulse",
    "input_objective_peak_time",
    "peak_align_shifts",
    "exhaustive_worst_alignment",
    "receiver_output_waveform",
    "AlignmentTable",
    "build_alignment_table",
    "golden_extra_delays",
    "FunctionalNoiseReport",
    "functional_noise",
    "AggressorRank",
    "filter_aggressors",
    "partition_nodes",
    "rank_aggressors",
    "golden_simulation",
    "DelayNoiseAnalyzer",
    "BlockAnalyzer",
    "BlockNet",
    "BlockReport",
    "HoldReport",
    "hold_speedup",
    "DelayNoiseDistribution",
    "alignment_delay_distribution",
    "sample_alignment_delays",
    "NoiseReport",
]
