"""Top-level delay-noise analysis — the ClariNet flow.

:class:`DelayNoiseAnalyzer` ties the pieces together for one coupled net:

1. Build the superposition engine (per-driver Ceff + Thevenin models).
2. Simulate the noiseless victim transition (Figure 1(c)).
3. Compute per-aggressor noise pulses; align their peaks (Section 3.1).
4. Compute the transient holding resistance Rtr (Section 2) and refresh
   the pulses with it.
5. Align the composite pulse against the victim transition — by the
   pre-characterized table (Section 3.2), the receiver-input objective of
   the prior art, or an exhaustive search.
6. Because the linear driver model depends on the alignment and vice
   versa, iterate steps 3-5; the paper (and this implementation) finds
   one or two passes suffice.
7. Evaluate the extra delay at the receiver input and output with a
   non-linear receiver simulation, alongside a plain-Thevenin-holding
   reference at identical alignment for model-accuracy comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.alignment import (
    composite_pulse,
    input_objective_peak_time,
    peak_align_shifts,
)
from repro.core.exhaustive import (
    combined_extra_delays,
    exhaustive_worst_alignment,
    receiver_output_waveform,
)
from repro.core.holding_resistance import RtrResult, compute_rtr
from repro.core.net import CoupledNet
from repro.core.precharacterize import AlignmentTable, build_alignment_table
from repro.core.superposition import VICTIM, ModelCache, SuperpositionEngine
from repro import trust as _trust
from repro.obs import get_logger, metrics, span
from repro.resilience.degradation import (
    QUALITY_DEGRADED,
    QUALITY_EXACT,
    Degradation,
)
from repro.resilience.faults import fire as _fire_fault
from repro.units import NS, PS
from repro.waveform import Waveform, transition_slew
from repro.waveform.pulses import pulse_peak, pulse_width

__all__ = ["DelayNoiseAnalyzer", "Degradation", "NoiseReport"]

log = get_logger("core.analysis")

#: Alignment-method names accepted by :meth:`DelayNoiseAnalyzer.analyze`.
ALIGNMENT_METHODS = ("table", "input-objective", "exhaustive")


def _append_trust_degradations(net_name: str,
                               degradations: list[Degradation]) -> None:
    """Fold pending trust-layer events into the report's provenance.

    Escalated solves produced a *verified-correct* result, but through
    a non-primary backend — that is provenance worth surfacing, so the
    report is marked degraded with one ``stage="trust"`` entry per
    escalation hop (aggregated with a count; a long transient can
    escalate hundreds of steps and per-step entries would drown the
    report).  Unrecovered violations normally raise
    :class:`~repro.sim.nonlinear.TrustViolation` into a stage ladder,
    but any that were swallowed by a coarser recovery still leave an
    entry here.
    """
    events = _trust.drain_events()
    if not events:
        return
    by_hop: dict[str, int] = {}
    unrecovered = 0
    for event in events:
        if event["kind"] == "escalated":
            hop = event.get("hop") or "unknown"
            by_hop[hop] = by_hop.get(hop, 0) + 1
        elif event["kind"] == "unrecovered":
            unrecovered += 1
    for hop, count in sorted(by_hop.items()):
        degradations.append(Degradation(
            stage="trust",
            error=(f"{count} solve(s) failed residual verification "
                   f"during {net_name}"),
            fallback=hop))
        metrics().counter("analysis.degraded.trust").inc()
        log.warning(
            "%s: %d solve(s) failed residual verification and were "
            "re-solved via %s", net_name, count, hop)
    if unrecovered:
        degradations.append(Degradation(
            stage="trust",
            error=(f"{unrecovered} solve(s) unrecovered after full "
                   f"escalation during {net_name}"),
            fallback="none"))
        metrics().counter("analysis.degraded.trust").inc()


@dataclass
class NoiseReport:
    """Everything the analysis concluded about one coupled net."""

    net_name: str
    vdd: float
    victim_rising: bool
    alignment_method: str

    # Driver models.
    ceff_victim: float
    rth_victim: float
    rtr: float
    rtr_result: RtrResult | None

    # Victim transition (absolute volts, at the receiver input).
    noiseless_input: Waveform
    victim_slew: float

    # Final composite noise (delta domain) and its features.
    composite: Waveform
    pulse_height: float
    pulse_width: float
    peak_time: float
    aggressor_shifts: dict[str, float]
    iterations: int

    # Delay-noise results (Rtr model).
    noisy_input: Waveform
    noiseless_output: Waveform
    noisy_output: Waveform
    extra_delay_input: float
    extra_delay_output: float

    # Reference results with the traditional Thevenin holding resistance
    # at the same alignment (model-accuracy comparison, Figure 13).
    extra_delay_input_thevenin: float
    extra_delay_output_thevenin: float
    composite_thevenin: Waveform

    # Result provenance: "exact" when every refinement stage ran, or
    # "degraded" when a stage failed and its conservative baseline
    # (plain Thevenin holding, nominal alignment) substituted — the
    # per-stage records say what fell back and why.
    quality: str = QUALITY_EXACT
    degradations: list[Degradation] = field(default_factory=list)


class DelayNoiseAnalyzer:
    """Reusable analyzer holding model and alignment-table caches.

    Parameters
    ----------
    dt:
        Transient step for all simulations.
    cache:
        Shared Thevenin :class:`ModelCache` (created if omitted).
    table_kwargs:
        Extra arguments forwarded to :func:`build_alignment_table` when a
        receiver cell is pre-characterized on demand.
    """

    def __init__(self, *, dt: float = 1.0 * PS,
                 cache: ModelCache | None = None,
                 table_kwargs: dict | None = None):
        self.dt = dt
        self.cache = cache if cache is not None else ModelCache()
        self.table_kwargs = dict(table_kwargs or {})
        self._tables: dict[tuple[str, bool], AlignmentTable] = {}
        #: Alignment-table cache traffic (mirrors ModelCache.hits/misses;
        #: the parallel engine's stats aggregate both).
        self.table_hits = 0
        self.table_misses = 0

    # ------------------------------------------------------------------
    # Pre-characterization cache
    # ------------------------------------------------------------------
    def alignment_table_for(self, receiver_gate,
                            victim_rising: bool) -> AlignmentTable:
        """Fetch (building on first use) the 8-point table for a cell."""
        key = (receiver_gate.name, victim_rising)
        if key not in self._tables:
            self.table_misses += 1
            metrics().counter("cache.alignment.misses").inc()
            log.debug("alignment table miss: %s rising=%s", *key)
            self._tables[key] = build_alignment_table(
                receiver_gate, victim_rising=victim_rising,
                **self.table_kwargs)
        else:
            self.table_hits += 1
            metrics().counter("cache.alignment.hits").inc()
        return self._tables[key]

    def register_table(self, table: AlignmentTable) -> None:
        """Install a pre-built table (e.g. characterized offline)."""
        self._tables[(table.gate_name, table.victim_rising)] = table

    def alignment_tables(self) -> list[AlignmentTable]:
        """All cached alignment tables (for persistence/snapshots)."""
        return list(self._tables.values())

    # ------------------------------------------------------------------
    # Main flow
    # ------------------------------------------------------------------
    def analyze(self, net: CoupledNet, *, use_rtr: bool = True,
                alignment: str = "table",
                outer_iterations: int = 2,
                exhaustive_steps: int = 25,
                rtr_driver_load: str = "pi",
                rtr_driver_engine: str = "transistor",
                alignment_probes: int = 3,
                tier_label: int = 2) -> NoiseReport:
        """Analyze one coupled net for worst-case delay noise.

        ``tier_label`` records which screening tier escalated this net
        into the full analysis (2 means a direct/exhaustive call); it
        only annotates the trace span and the ``analysis.tier.N``
        counter — the flow itself is identical for every label.

        ``alignment_probes`` (table mode only): after the table predicts
        the worst-case peak position, that many nearby candidates are
        *measured* with receiver simulations and the best one wins.  The
        final receiver simulation runs anyway (Figure 1(d)), so this
        costs only a few extra small non-linear runs, and it converts a
        rare catastrophic table-transfer miss — the predicted alignment
        landing past the delay cliff, where the measured delay collapses
        to zero — into a near-optimal pick.  Set to 0 for the paper's
        pure table lookup.
        """
        if alignment not in ALIGNMENT_METHODS:
            raise ValueError(
                f"alignment must be one of {ALIGNMENT_METHODS}")
        if outer_iterations < 1:
            raise ValueError(
                f"outer_iterations must be >= 1 (the flow needs at least "
                f"one model/alignment pass), got {outer_iterations}")
        # Validate the Rtr knobs eagerly: once inside the flow, an Rtr
        # failure degrades to the Thevenin baseline instead of raising,
        # and a typo'd parameter must stay a loud error.
        if rtr_driver_load not in ("pi", "ceff"):
            raise ValueError("rtr_driver_load must be 'pi' or 'ceff'")
        if rtr_driver_engine not in ("transistor", "csm"):
            raise ValueError(
                "rtr_driver_engine must be 'transistor' or 'csm'")
        if not net.aggressors:
            raise ValueError(f"{net.name} has no aggressors to analyze")
        _fire_fault("analysis.net", net.name)
        # Discard trust events left over from work outside any net
        # (bench warm-ups, table pre-characterization for another
        # receiver) so the report only carries its own provenance.
        _trust.drain_events()

        with span("net.analyze", net=net.name,
                  aggressors=len(net.aggressors),
                  alignment=alignment, tier=tier_label) as net_span:
            report = self._analyze_traced(
                net, net_span, use_rtr=use_rtr, alignment=alignment,
                outer_iterations=outer_iterations,
                exhaustive_steps=exhaustive_steps,
                rtr_driver_load=rtr_driver_load,
                rtr_driver_engine=rtr_driver_engine,
                alignment_probes=alignment_probes)
        metrics().counter("analysis.nets").inc()
        metrics().counter(f"analysis.tier.{tier_label}").inc()
        metrics().histogram("analysis.outer_iterations").observe(
            report.iterations)
        log.debug("%s: extra delay %.1f ps out / %.1f ps in after %d "
                  "iteration(s)", net.name,
                  report.extra_delay_output / PS,
                  report.extra_delay_input / PS, report.iterations)
        return report

    def _analyze_traced(self, net: CoupledNet, net_span, *, use_rtr: bool,
                        alignment: str, outer_iterations: int,
                        exhaustive_steps: int, rtr_driver_load: str,
                        rtr_driver_engine: str,
                        alignment_probes: int) -> NoiseReport:
        """The :meth:`analyze` flow, one child span per pipeline stage."""
        vdd = net.vdd
        rising = net.victim_rising
        with span("net.superposition"):
            engine = SuperpositionEngine(net, cache=self.cache, dt=self.dt)

            noiseless_input = (engine.victim_transition().at_receiver
                               + net.victim_initial_level())
        victim_slew = transition_slew(noiseless_input, vdd, rising)
        t50 = noiseless_input.crossing_time(vdd / 2.0, rising=rising,
                                            which="first")

        rth = engine.models[VICTIM].rth
        target = t50
        shifts: dict[str, float] = {a.name: 0.0 for a in net.aggressors}
        rtr_result: RtrResult | None = None
        r_hold = rth
        iterations = 0
        degradations: list[Degradation] = []
        failed_stages: set[str] = set()

        for iterations in range(1, outer_iterations + 1):
            if use_rtr and "rtr" not in failed_stages:
                with span("net.holding_resistance",
                          iteration=iterations):
                    try:
                        _fire_fault("analysis.rtr", net.name)
                        rtr_result = compute_rtr(
                            engine, shifts, driver_load=rtr_driver_load,
                            driver_engine=rtr_driver_engine)
                        r_hold = rtr_result.rtr
                    except Exception as exc:
                        # The transient holding resistance is a
                        # refinement; its conservative baseline is the
                        # plain Thevenin holding resistance the
                        # superposition engine already carries.
                        failed_stages.add("rtr")
                        degradations.append(Degradation(
                            stage="rtr",
                            error=f"{type(exc).__name__}: {exc}",
                            fallback="thevenin-rth"))
                        rtr_result = None
                        r_hold = rth
                        metrics().counter("analysis.degraded.rtr").inc()
                        log.warning(
                            "%s: Rtr characterization failed (%s: %s); "
                            "holding with the Thevenin resistance",
                            net.name, type(exc).__name__, exc)

            with span("net.noise_pulses", iteration=iterations):
                pulses = {
                    a.name: engine.aggressor_noise(
                        a.name, victim_r=r_hold).at_receiver
                    for a in net.aggressors
                }
            aligned = peak_align_shifts(pulses, target)
            shape = composite_pulse(pulses, aligned)
            _t_peak, height = pulse_peak(shape)
            width = pulse_width(shape)

            with span("net.alignment", iteration=iterations,
                      method=alignment):
                new_target = self._aligned_target_or_fallback(
                    alignment, net, noiseless_input, shape, height,
                    width, victim_slew, engine, exhaustive_steps,
                    target, degradations, failed_stages)

            new_shifts = {
                a.name: a.clamp_shift(aligned[a.name]
                                      + (new_target - target))
                for a in net.aggressors
            }
            moved = abs(new_target - target)
            target = new_target
            shifts = new_shifts
            if moved < 0.5 * PS:
                break

        composite = composite_pulse(pulses, shifts)
        peak_time, height = pulse_peak(composite)
        width = pulse_width(composite)

        noisy_input = noiseless_input + composite
        t_stop = max(engine.t_stop,
                     peak_time + 3.0 * max(width, 10 * PS) + 0.3 * NS)
        with span("net.receiver_eval", probes=0) as eval_span:
            clean_output = receiver_output_waveform(
                net.receiver, noiseless_input, t_stop, self.dt)
            extra_in, extra_out, noisy_output = combined_extra_delays(
                net.receiver, noiseless_input, noisy_input, vdd, rising,
                t_stop, self.dt, clean_output=clean_output)

            if alignment == "table" and alignment_probes > 0:
                # Measure a few earlier candidates; the guard-banded
                # table prediction only ever errs early or (rarely) off
                # the cliff, so probing earlier is the useful direction.
                probe_counter = metrics().counter("alignment.probes")
                probe_wins = metrics().counter(
                    "alignment.probe_improvements")
                eval_span.set(probes=alignment_probes)
                step = 0.15 * max(width, 20 * PS)
                for k in range(1, alignment_probes + 1):
                    delta = -k * step
                    probe_shifts = {
                        a.name: a.clamp_shift(shifts[a.name] + delta)
                        for a in net.aggressors
                    }
                    probe_comp = composite_pulse(pulses, probe_shifts)
                    probe_in, probe_out, probe_wave = \
                        combined_extra_delays(
                            net.receiver, noiseless_input,
                            noiseless_input + probe_comp, vdd, rising,
                            t_stop, self.dt, clean_output=clean_output)
                    probe_counter.inc()
                    if probe_out > extra_out:
                        probe_wins.inc()
                        log.debug(
                            "%s: probe %d beats table prediction "
                            "(%.1f ps > %.1f ps)", net.name, k,
                            probe_out / PS, extra_out / PS)
                        extra_in, extra_out = probe_in, probe_out
                        noisy_output = probe_wave
                        shifts = probe_shifts
                        composite = probe_comp
                        noisy_input = noiseless_input + composite
                peak_time, height = pulse_peak(composite)
                width = pulse_width(composite)
                target = peak_time

        # Thevenin-holding reference at the same alignment target.
        with span("net.thevenin_reference"):
            pulses_th = {
                a.name: engine.aggressor_noise(
                    a.name, victim_r=rth).at_receiver
                for a in net.aggressors
            }
            aligned_th = peak_align_shifts(pulses_th, target)
            shifts_th = {a.name: a.clamp_shift(aligned_th[a.name])
                         for a in net.aggressors}
            composite_th = composite_pulse(pulses_th, shifts_th)
            extra_in_th, extra_out_th, _ = combined_extra_delays(
                net.receiver, noiseless_input,
                noiseless_input + composite_th,
                vdd, rising, t_stop, self.dt, clean_output=clean_output)

        _append_trust_degradations(net.name, degradations)
        net_span.set(iterations=iterations,
                     extra_delay_output_ps=extra_out / PS)
        return NoiseReport(
            net_name=net.name,
            vdd=vdd,
            victim_rising=rising,
            alignment_method=alignment,
            ceff_victim=engine.ceffs[VICTIM],
            rth_victim=rth,
            rtr=r_hold,
            rtr_result=rtr_result,
            noiseless_input=noiseless_input,
            victim_slew=victim_slew,
            composite=composite,
            pulse_height=height,
            pulse_width=width,
            peak_time=peak_time,
            aggressor_shifts=shifts,
            iterations=iterations,
            noisy_input=noisy_input,
            noiseless_output=clean_output,
            noisy_output=noisy_output,
            extra_delay_input=extra_in,
            extra_delay_output=extra_out,
            extra_delay_input_thevenin=extra_in_th,
            extra_delay_output_thevenin=extra_out_th,
            composite_thevenin=composite_th,
            quality=QUALITY_DEGRADED if degradations else QUALITY_EXACT,
            degradations=degradations,
        )

    def _aligned_target_or_fallback(self, method: str, net: CoupledNet,
                                    noiseless_input: Waveform,
                                    shape: Waveform, height: float,
                                    width: float, victim_slew: float,
                                    engine: SuperpositionEngine,
                                    exhaustive_steps: int, target: float,
                                    degradations: list[Degradation],
                                    failed_stages: set[str]) -> float:
        """Alignment target with graceful degradation.

        When the pre-characterized table (or the exhaustive sweep)
        fails, fall back to the receiver-input objective — the prior
        art's alignment, needing only the noiseless waveform — and as
        a last resort keep the current peak-aligned target.  The
        fallback is sticky across outer iterations and recorded once.
        """
        vdd = net.vdd
        rising = net.victim_rising
        if "alignment" not in failed_stages:
            try:
                _fire_fault("analysis.alignment", net.name)
                return self._alignment_target(
                    method, net, noiseless_input, shape, height, width,
                    victim_slew, engine, exhaustive_steps)
            except Exception as exc:
                failed_stages.add("alignment")
                error = f"{type(exc).__name__}: {exc}"
                metrics().counter("analysis.degraded.alignment").inc()
        else:
            error = "(previous iteration)"
        try:
            fallback_target = input_objective_peak_time(
                noiseless_input, height, vdd, rising)
            fallback = "input-objective"
        except Exception:
            fallback_target = target
            fallback = "peak-alignment"
        if error != "(previous iteration)":
            degradations.append(Degradation(
                stage="alignment", error=error, fallback=fallback))
            log.warning(
                "%s: %s alignment failed (%s); falling back to %s",
                net.name, method, error, fallback)
        return fallback_target

    # ------------------------------------------------------------------
    def _alignment_target(self, method: str, net: CoupledNet,
                          noiseless_input: Waveform, shape: Waveform,
                          height: float, width: float, victim_slew: float,
                          engine: SuperpositionEngine,
                          exhaustive_steps: int) -> float:
        """Worst-case composite-peak time under the chosen objective."""
        vdd = net.vdd
        rising = net.victim_rising
        if method == "input-objective":
            return input_objective_peak_time(noiseless_input, height, vdd,
                                             rising)
        if method == "exhaustive":
            sweep = exhaustive_worst_alignment(
                net.receiver, noiseless_input, shape, vdd, rising,
                steps=exhaustive_steps, refine=8, dt=self.dt)
            return sweep.best_peak_time
        table = self.alignment_table_for(net.receiver.gate, rising)
        return table.predict_peak_time(noiseless_input, width, height,
                                       victim_slew)
