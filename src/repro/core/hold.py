"""Minimum-delay (hold) analysis: aiding noise speeds the victim up.

The paper's introduction: "If the victim net itself is also switching
when the aggressors switch, its delay can either increase or decrease
depending on the aggressor and victim switching directions."  The delay
*increase* (opposing noise) is the setup-side analysis the rest of
:mod:`repro.core` performs; this module covers the *decrease* — an
aggressor switching the *same* direction as the victim injects an aiding
pulse that pulls the transition earlier, eroding hold margins downstream.

The machinery is the same superposition flow with the worst case flipped:
the aiding composite pulse is aligned (by exhaustive sweep with
``minimize=True``) where it *minimizes* the combined delay, and the
pessimistic crossing convention flips from last to first.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.alignment import composite_pulse, peak_align_shifts
from repro.core.exhaustive import (
    combined_extra_delays,
    exhaustive_worst_alignment,
)
from repro.core.net import CoupledNet
from repro.core.superposition import ModelCache, SuperpositionEngine
from repro.units import NS, PS
from repro.waveform import Waveform
from repro.waveform.pulses import pulse_peak, pulse_width

__all__ = ["HoldReport", "hold_speedup"]


@dataclass
class HoldReport:
    """Worst-case delay *decrease* of one coupled net."""

    net_name: str
    #: Aiding composite pulse (delta volts, same polarity as victim).
    composite: Waveform
    pulse_height: float
    pulse_width: float
    peak_time: float
    #: Most negative extra delay at receiver input / output.
    speedup_input: float
    speedup_output: float
    noiseless_input: Waveform
    noisy_input: Waveform


def _aiding_net(net: CoupledNet) -> CoupledNet:
    """Copy of the net with every aggressor switching the victim's way."""
    aggressors = [
        dataclasses.replace(
            agg, driver=dataclasses.replace(
                agg.driver, output_rising=net.victim_rising))
        for agg in net.aggressors
    ]
    return dataclasses.replace(net, aggressors=aggressors)


def hold_speedup(net: CoupledNet, *, cache: ModelCache | None = None,
                 dt: float = 1.0 * PS, steps: int = 25,
                 refine: int = 6) -> HoldReport:
    """Worst-case speed-up of a net's transition under aiding noise.

    Aggressor directions in ``net`` are overridden to match the victim
    (the aiding configuration); the composite pulse is peak-aligned and
    swept for the alignment that *minimizes* the combined delay.  The
    returned speed-ups are <= 0; their magnitudes are what a hold check
    must subtract from the stage's minimum delay.
    """
    if not net.aggressors:
        raise ValueError(f"{net.name} has no aggressors")
    aiding = _aiding_net(net)
    engine = SuperpositionEngine(aiding, cache=cache, dt=dt)
    vdd = aiding.vdd
    rising = aiding.victim_rising

    noiseless = (engine.victim_transition().at_receiver
                 + aiding.victim_initial_level())
    t50 = noiseless.crossing_time(vdd / 2.0, rising=rising, which="first")

    pulses = {a.name: engine.aggressor_noise(a.name).at_receiver
              for a in aiding.aggressors}
    shape = composite_pulse(pulses, peak_align_shifts(pulses, t50))
    _t, height = pulse_peak(shape)
    width = pulse_width(shape)

    sweep = exhaustive_worst_alignment(
        aiding.receiver, noiseless, shape, vdd, rising,
        steps=steps, refine=refine, dt=dt, minimize=True)

    t_peak0, _ = pulse_peak(shape)
    composite = shape.shifted(sweep.best_peak_time - t_peak0)
    noisy = noiseless + composite
    t_stop = max(engine.t_stop, composite.t_end + 0.3 * NS)
    speed_in, speed_out, _wave = combined_extra_delays(
        aiding.receiver, noiseless, noisy, vdd, rising, t_stop, dt,
        minimize=True)

    return HoldReport(
        net_name=net.name,
        composite=composite,
        pulse_height=height,
        pulse_width=width,
        peak_time=sweep.best_peak_time,
        speedup_input=min(speed_in, 0.0),
        speedup_output=min(speed_out, 0.0),
        noiseless_input=noiseless,
        noisy_input=noisy,
    )
