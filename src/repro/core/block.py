"""Block-level analysis: nets + timing windows to a fixed point.

The paper's introduction describes the full tool loop: switching windows
from timing analysis constrain the aggressor alignment, the resulting
delta delays change the windows, and "iteratively calculating the timing
windows and the added noise delay will converge on the correct solution
... In practice, very few iterations are needed."  This module runs that
loop over a *block*: a timing graph plus the coupled nets embedded in it.

Each iteration:

1. propagate switching windows through the timing graph;
2. re-analyze every coupled net with its victim launched at the latest
   arrival of its launch node and its aggressors constrained to their
   current windows (per-aggressor :attr:`AggressorSpec.window`);
3. write each net's noiseless stage delay plus its delay noise back onto
   the corresponding victim timing arc.

The loop stops when no victim arc's delta moves by more than a
picosecond-scale tolerance.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.analysis import DelayNoiseAnalyzer, NoiseReport
from repro.core.net import AggressorSpec, CoupledNet
from repro.obs import get_logger, metrics, span

if TYPE_CHECKING:
    from repro.exec.pool import ExecStats
from repro.sta.graph import TimingGraph
from repro.sta.windows import Window
from repro.units import PS

__all__ = ["BlockNet", "BlockReport", "BlockAnalyzer"]

log = get_logger("core.block")


@dataclass
class BlockNet:
    """One coupled net embedded in the block's timing graph.

    ``launch_node`` is the graph node whose (latest) arrival launches the
    victim driver's input; the ``victim_edge`` from it to
    ``receiver_node`` carries the net's stage delay (driver + wire +
    receiver).  ``aggressor_nodes`` maps each aggressor name to the graph
    node whose window constrains that aggressor's switching.
    """

    net: CoupledNet
    launch_node: str
    receiver_node: str
    aggressor_nodes: dict[str, str] = field(default_factory=dict)

    @property
    def victim_edge(self) -> tuple[str, str]:
        return (self.launch_node, self.receiver_node)


@dataclass
class BlockReport:
    """Converged block state.

    ``exec_stats`` holds one :class:`~repro.exec.ExecStats` per
    fixed-point iteration (throughput of the per-net re-analysis).
    """

    iterations: int
    converged: bool
    windows: dict[str, Window]
    reports: dict[str, NoiseReport]
    deltas: dict[str, float]
    stage_delays: dict[str, float]
    exec_stats: list[ExecStats] = field(default_factory=list)
    #: Net name -> last error string, for nets held at their previous
    #: delta under ``on_failure="hold"`` (empty when everything ran).
    failures: dict[str, str] = field(default_factory=dict)


class BlockAnalyzer:
    """Fixed-point iteration of the full noise/timing loop."""

    def __init__(self, graph: TimingGraph, nets: list[BlockNet],
                 analyzer: DelayNoiseAnalyzer | None = None):
        names = [b.net.name for b in nets]
        if len(set(names)) != len(names):
            raise ValueError("block nets must have unique names")
        for block_net in nets:
            self._validate_net(graph, block_net)
        self.graph = graph
        self.nets = nets
        self.analyzer = analyzer or DelayNoiseAnalyzer()

    @staticmethod
    def _validate_net(graph: TimingGraph, block_net: BlockNet) -> None:
        """Check a block net's graph references up front.

        A dangling node name used to surface deep inside the run as a
        bare ``KeyError``; fail at construction with the net and node
        spelled out instead.
        """
        name = block_net.net.name
        if not graph.has_node(block_net.launch_node):
            raise ValueError(
                f"block net {name!r}: launch node "
                f"{block_net.launch_node!r} is not in the timing graph")
        if not graph.has_node(block_net.receiver_node):
            raise ValueError(
                f"block net {name!r}: receiver node "
                f"{block_net.receiver_node!r} is not in the timing graph")
        if not graph.has_edge(block_net.launch_node,
                              block_net.receiver_node):
            raise ValueError(
                f"block net {name!r}: no timing arc "
                f"{block_net.launch_node!r} -> "
                f"{block_net.receiver_node!r} to carry the stage delay")
        for agg_name, node in block_net.aggressor_nodes.items():
            if not graph.has_node(node):
                raise ValueError(
                    f"block net {name!r}: aggressor {agg_name!r} window "
                    f"node {node!r} is not in the timing graph")

    def _prepared_net(self, block_net: BlockNet,
                      windows: dict[str, Window]) -> CoupledNet:
        """Copy of the coupled net with launch time + windows applied."""
        net = block_net.net
        if block_net.launch_node not in windows:
            raise ValueError(
                f"block net {net.name!r}: launch node "
                f"{block_net.launch_node!r} has no propagated window — "
                f"it is unreachable from any primary input")
        launch = windows[block_net.launch_node].latest
        victim_driver = dataclasses.replace(net.victim_driver,
                                            input_start=launch)
        aggressors = []
        for agg in net.aggressors:
            window = None
            node = block_net.aggressor_nodes.get(agg.name)
            if node is not None and node in windows:
                w = windows[node]
                window = (w.earliest, w.latest)
            aggressors.append(AggressorSpec(
                name=agg.name,
                driver=dataclasses.replace(agg.driver,
                                           input_start=agg.driver
                                           .input_start),
                root=agg.root, far_end=agg.far_end, window=window))
        return CoupledNet(
            name=net.name,
            interconnect=net.interconnect,
            victim_root=net.victim_root,
            victim_receiver_node=net.victim_receiver_node,
            victim_driver=victim_driver,
            receiver=net.receiver,
            aggressors=aggressors,
        )

    def run(self, *, max_iterations: int = 3,
            tolerance: float = 1.0 * PS,
            alignment: str = "table",
            jobs: int = 1,
            timeout: float | None = None,
            on_failure: str = "raise") -> BlockReport:
        """Iterate windows and delay noise to convergence.

        ``jobs`` parallelizes the per-net re-analysis inside each
        fixed-point iteration across worker processes (the window
        propagation between iterations stays in the parent).  Results
        are bit-identical to ``jobs=1``.  ``timeout`` bounds each net's
        analysis wall-clock time in seconds.

        ``on_failure`` picks what a per-net failure (exception or
        timeout) does to the fixed point.  ``"raise"`` (default) aborts
        the run with a ``RuntimeError`` naming the nets — the exact
        behavior a signoff flow wants.  ``"hold"`` keeps the failing
        net's previous delta and stage delay on its timing arc (its
        edge and delta simply don't move this iteration), records the
        error in :attr:`BlockReport.failures`, and lets the rest of the
        block converge — an exploration-friendly degradation.
        """
        # Imported here, not at module top: repro.exec.pool itself
        # imports repro.core, and an exec-first import order would hit
        # the half-initialized module (a real, observed failure mode).
        from repro.exec.pool import analyze_nets

        if on_failure not in ("raise", "hold"):
            raise ValueError(
                f"on_failure must be 'raise' or 'hold', "
                f"got {on_failure!r}")
        deltas: dict[str, float] = {b.net.name: 0.0 for b in self.nets}
        reports: dict[str, NoiseReport] = {}
        stage_delays: dict[str, float] = {}
        exec_stats: list[ExecStats] = []
        failures: dict[str, str] = {}
        windows = self.graph.propagate_windows()
        converged = False
        iterations = 0

        for iterations in range(1, max_iterations + 1):
            with span("block.iteration", iteration=iterations) as it_span:
                moved = 0.0
                prepared_nets = [self._prepared_net(b, windows)
                                 for b in self.nets]
                result = analyze_nets(prepared_nets, jobs=jobs,
                                      analyzer=self.analyzer,
                                      timeout=timeout,
                                      alignment=alignment)
                exec_stats.append(result.stats)
                if on_failure == "raise":
                    result.raise_on_failure()
                elif result.failures:
                    for f in result.failures:
                        failures[f.net_name] = f.error
                        metrics().counter("block.net_held").inc()
                        log.warning(
                            "net %s failed (%s); holding its previous "
                            "delta", f.net_name, f.error)
                for block_net, prepared, report in zip(
                        self.nets, prepared_nets, result.reports):
                    if report is None:
                        # on_failure="hold": the edge keeps whatever
                        # delay the last successful iteration wrote.
                        continue
                    reports[prepared.name] = report
                    failures.pop(prepared.name, None)

                    vdd = prepared.vdd
                    out_rising = (not prepared.victim_rising) \
                        if prepared.receiver.gate.inverting \
                        else prepared.victim_rising
                    t_out = report.noiseless_output.crossing_time(
                        vdd / 2.0, rising=out_rising, which="first")
                    stage = t_out - prepared.victim_driver.input_start
                    delta = max(report.extra_delay_output, 0.0)
                    stage_delays[prepared.name] = stage

                    src, dst = block_net.victim_edge
                    self.graph.set_edge_delay(src, dst, 0.8 * stage,
                                              stage + delta)
                    moved = max(moved,
                                abs(delta - deltas[prepared.name]))
                    deltas[prepared.name] = delta

                windows = self.graph.propagate_windows()
                it_span.set(moved_ps=moved / PS)
            log.debug("block iteration %d: worst delta movement "
                      "%.2f ps (tolerance %.2f ps)", iterations,
                      moved / PS, tolerance / PS)
            if moved <= tolerance:
                converged = True
                break

        metrics().histogram("block.iterations").observe(iterations)
        metrics().counter("block.converged" if converged
                          else "block.nonconverged").inc()
        if not converged:
            log.warning("block did not converge after %d iterations "
                        "(last movement %.2f ps)", iterations,
                        moved / PS)

        return BlockReport(
            iterations=iterations,
            converged=converged,
            windows=windows,
            reports=reports,
            deltas=deltas,
            stage_delays=stage_delays,
            exec_stats=exec_stats,
            failures=failures,
        )
