"""The coupled-net data model.

A :class:`CoupledNet` bundles everything the delay-noise flow needs about
one victim net: the passive extracted interconnect (including coupling
capacitors to the aggressor wires, which are part of the same circuit),
the victim driver and receiver gates, and one :class:`AggressorSpec` per
capacitively-coupled neighbor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit
from repro.gates.gate import Gate
from repro.waveform import Waveform, ramp

__all__ = ["DriverSpec", "AggressorSpec", "ReceiverSpec", "CoupledNet"]


@dataclass
class DriverSpec:
    """A gate driving a net with one specified transition.

    Attributes
    ----------
    gate:
        The driving cell.
    input_slew:
        0-100% ramp duration of the gate-input transition.
    output_rising:
        Direction of the *output* (net) transition.
    input_start:
        Absolute time the input ramp begins.
    switching_pin:
        Input pin carrying the transition (default: first input).
    """

    gate: Gate
    input_slew: float
    output_rising: bool
    input_start: float = 0.0
    switching_pin: str | None = None

    def _input_rising(self) -> bool:
        """Direction of the gate-input transition for this output move."""
        return self.output_rising != self.gate.inverting

    def input_waveform(self, extra_shift: float = 0.0) -> Waveform:
        """Absolute gate-input ramp (direction per the cell's polarity)."""
        vdd = self.gate.tech.vdd
        rising_in = self._input_rising()
        v_from = 0.0 if rising_in else vdd
        v_to = vdd if rising_in else 0.0
        return ramp(self.input_start + extra_shift, self.input_slew,
                    v_from, v_to)

    def quiet_input_level(self) -> float:
        """Input level that keeps the output at its pre-transition value."""
        vdd = self.gate.tech.vdd
        return vdd if not self._input_rising() else 0.0


@dataclass
class AggressorSpec:
    """One aggressor net coupled to the victim.

    ``root`` is the aggressor driver's output node and ``far_end`` the
    far end of the aggressor wire (its receiver loading is a grounded
    capacitor inside the interconnect circuit).  ``window``, if given,
    constrains the absolute time at which the aggressor's input
    transition may start — the switching window from timing analysis.
    """

    name: str
    driver: DriverSpec
    root: str
    far_end: str
    window: tuple[float, float] | None = None

    def clamp_shift(self, shift: float) -> float:
        """Clamp an extra launch delay so the start stays in the window."""
        if self.window is None:
            return shift
        lo = self.window[0] - self.driver.input_start
        hi = self.window[1] - self.driver.input_start
        return min(max(shift, lo), hi)


@dataclass
class ReceiverSpec:
    """The victim's receiver gate and its output loading."""

    gate: Gate
    c_load: float
    input_pin: str | None = None

    @property
    def pin(self) -> str:
        return self.input_pin or self.gate.inputs[0]

    def input_capacitance(self) -> float:
        return self.gate.input_capacitance(self.pin)


@dataclass
class CoupledNet:
    """A victim net with its aggressors — the unit of analysis.

    Attributes
    ----------
    interconnect:
        Passive circuit: wire resistances, grounded capacitances and
        coupling capacitances of the victim *and* all aggressor wires.
        Must not contain sources or devices.
    victim_root:
        Node where the victim driver output attaches.
    victim_receiver_node:
        Node where the victim receiver input attaches.
    """

    name: str
    interconnect: Circuit
    victim_root: str
    victim_receiver_node: str
    victim_driver: DriverSpec
    receiver: ReceiverSpec
    aggressors: list[AggressorSpec] = field(default_factory=list)

    def __post_init__(self):
        if self.interconnect.mosfets or self.interconnect.vsources \
                or self.interconnect.isources:
            raise ValueError(
                f"{self.name}: interconnect must be passive (R/C only)")
        nodes = set(self.interconnect.nodes())
        for node in [self.victim_root, self.victim_receiver_node] + \
                [a.root for a in self.aggressors] + \
                [a.far_end for a in self.aggressors]:
            if node not in nodes:
                raise ValueError(
                    f"{self.name}: node {node!r} not in interconnect")
        names = [a.name for a in self.aggressors]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate aggressor names")

    @property
    def vdd(self) -> float:
        return self.victim_driver.gate.tech.vdd

    @property
    def victim_rising(self) -> bool:
        return self.victim_driver.output_rising

    def victim_initial_level(self) -> float:
        """Steady-state victim voltage before the transition."""
        return 0.0 if self.victim_rising else self.vdd

    def aggressor(self, name: str) -> AggressorSpec:
        for a in self.aggressors:
            if a.name == name:
                return a
        raise KeyError(f"{self.name} has no aggressor {name!r}")
