"""Transient holding resistance (paper Section 2).

When an aggressor injects noise onto a *switching* victim, the victim
driver's small-signal conductance at the moment of injection differs
wildly from the transition-average conductance that Rth encodes.  The
transient holding resistance Rtr fixes this with one non-linear driver
simulation pair:

1. Simulate the aggressors with the victim held by Rth; record the total
   noise voltage ``Vn`` at the victim driver output.
2. Convert it to the injected noise current
   ``In = Vn / R + C * dVn/dt`` — the current that develops ``Vn`` across
   the holding model (R in parallel with the net capacitance).
3. Simulate the non-linear victim driver switching into its reduced
   output load twice — without and with ``In`` injected at the output —
   and subtract: ``V'n = V2 - V1`` is the true noise response.
4. Choose Rtr so the *area* of the linear model's noise response matches:
   integrating ``C dV/dt + V/Rtr = In`` over the pulse (V returns to its
   baseline) gives ``∫V''n dt = Rtr ∫In dt``, hence
   ``Rtr = ∫V'n dt / ∫In dt``.
5. Replace Rth by Rtr in the superposition flow.  Because the noise
   current then changes, iterate — one or two passes suffice in practice
   (and in the paper).

Driver load modes
-----------------
The paper loads the non-linear driver with "a single effective output
load" (C-effective) and uses the same Ceff in the Step-2 current
extraction (``driver_load="ceff"``).  On our synthetic technology that
lumped load lets the driver-pair output race ahead of the real net root,
overestimating the driver's conductance at injection time and
under-correcting Rtr.  The default mode ``driver_load="pi"`` instead
loads the driver with the O'Brien/Savarino π reduction of the actual net
and extracts ``In`` with the net's total capacitance — the same
superposition flow, one reduced load instead of one lumped load.  This
reproduces the paper's accuracy band (see DESIGN.md, substitutions).

Rtr depends on the noise's alignment relative to the victim transition,
so the top-level analysis recomputes it when the alignment moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import GROUND, Circuit
from repro.core.superposition import VICTIM, SuperpositionEngine
from repro.gates.ceff import PiModel, admittance_moments, driving_point_pi
from repro.sim.nonlinear import simulate_nonlinear
from repro.waveform import Waveform

__all__ = ["RtrResult", "compute_rtr", "compute_holder_rtr"]

#: Sanity bounds on a fitted holding resistance [ohms].
_RTR_MIN, _RTR_MAX = 1.0, 1e7


@dataclass
class RtrResult:
    """Outcome of the transient-holding-resistance computation."""

    rtr: float
    rth: float
    iterations: int
    converged: bool
    driver_load: str
    noise_current: Waveform
    #: Vn: linear noise at the victim root with the final holding R.
    noise_linear: Waveform
    #: V'n: noise response of the non-linear switching driver.
    noise_nonlinear: Waveform

    @property
    def ratio(self) -> float:
        """Rtr / Rth — above 1 when the switching driver holds *worse*
        than the transition-average model predicts."""
        return self.rtr / self.rth


#: Time step for the Rtr driver-pair simulations.  The Rtr extraction is
#: an area match, so it tolerates a coarser grid than delay measurement.
_PAIR_DT = 2e-12


def _reduced_load(engine: SuperpositionEngine, key: str, root: str,
                  driver_load: str) -> tuple:
    """Reduced driver load and current-extraction capacitance for a
    driver, cached on the engine (re-alignments re-enter here)."""
    cache = getattr(engine, "_rtr_load_cache", None)
    if cache is None:
        cache = {}
        engine._rtr_load_cache = cache
    cache_key = (key, driver_load)
    if cache_key not in cache:
        if driver_load == "pi":
            view = engine.driver_view(key)
            cache[cache_key] = (
                driving_point_pi(view, root),
                float(admittance_moments(view, root, 2)[1]),
            )
        else:
            cache[cache_key] = (engine.ceffs[key], engine.ceffs[key])
    return cache[cache_key]


def _csm_for(engine: SuperpositionEngine, gate) -> "object":
    """Per-gate current-source model, cached on the engine."""
    from repro.gates.csm import characterize_csm
    cache = getattr(engine, "_csm_cache", None)
    if cache is None:
        cache = {}
        engine._csm_cache = cache
    if gate.name not in cache:
        cache[gate.name] = characterize_csm(gate)
    return cache[gate.name]


def _csm_pair_response(engine: SuperpositionEngine,
                       noise_current: Waveform,
                       load: PiModel | float, driver) -> Waveform:
    """CSM fast path for the Steps 3-4 driver pair.

    The current-source model's table already folds the driver's own
    diffusion capacitance behaviour into ``c_out``, so the external load
    passes through unchanged minus that share.
    """
    from repro.gates.csm import simulate_csm_driver
    gate = driver.gate
    csm = _csm_for(engine, gate)
    c_diff = gate.output_capacitance()
    if isinstance(load, PiModel):
        external: PiModel | float = PiModel(
            c_near=max(load.c_near - c_diff, 0.0), r=load.r,
            c_far=load.c_far)
    else:
        external = max(load - c_diff, 0.0)
    t_stop = max(engine.t_stop, noise_current.t_end + 0.1e-9)
    cache = getattr(engine, "_rtr_clean_cache", None)
    if cache is None:
        cache = {}
        engine._rtr_clean_cache = cache
    cache_key = ("_csm_v1", id(driver), gate.name, round(t_stop, 15))
    if cache_key not in cache:
        cache[cache_key] = simulate_csm_driver(
            csm, driver.input_waveform(), external, t_stop, _PAIR_DT)
    v1 = cache[cache_key]
    v2 = simulate_csm_driver(csm, driver.input_waveform(), external,
                             t_stop, _PAIR_DT, i_inject=noise_current)
    return v2 - v1


def _driver_pair_response(engine: SuperpositionEngine,
                          noise_current: Waveform,
                          load: PiModel | float,
                          driver=None,
                          driver_engine: str = "transistor") -> Waveform:
    """Steps 3-4: V'n = V2 - V1 from the non-linear driver pair.

    ``load`` is either a :class:`PiModel` or a lumped capacitance; the
    driver's own diffusion capacitance (added by instantiation) is
    subtracted from the near-end share.  The noiseless response ``V1``
    is independent of the injected current, so it is cached on the
    engine across Rtr iterations and re-alignments.

    ``driver_engine="csm"`` replays both runs through the gate's
    current-source model instead of the transistor co-simulation — a
    several-fold speedup at table-interpolation accuracy.
    """
    driver = driver or engine.net.victim_driver
    if driver_engine == "csm":
        return _csm_pair_response(engine, noise_current, load, driver)
    gate = driver.gate
    c_diff = gate.output_capacitance()

    def build(with_noise: bool) -> Circuit:
        circuit = gate.driven_circuit(
            driver.input_waveform(), c_load_external=0.0,
            switching_pin=driver.switching_pin,
            name="rtr_noisy" if with_noise else "rtr_clean")
        if isinstance(load, PiModel):
            near = max(load.c_near - c_diff, 0.0)
            if near > 0.0:
                circuit.add_capacitor("__c_near", "out", GROUND, near)
            if load.r > 0.0 and load.c_far > 0.0:
                circuit.add_resistor("__r_pi", "out", "__far", load.r)
                circuit.add_capacitor("__c_far", "__far", GROUND,
                                      load.c_far)
        else:
            external = max(load - c_diff, 0.0)
            if external > 0.0:
                circuit.add_capacitor("__c_load", "out", GROUND, external)
        if with_noise:
            circuit.add_isource("__inoise", "out", GROUND, noise_current)
        return circuit

    t_stop = max(engine.t_stop, noise_current.t_end + 0.1e-9)
    cache_key = ("_rtr_v1", id(driver), id(load), round(t_stop, 15))
    cache = getattr(engine, "_rtr_clean_cache", None)
    if cache is None:
        cache = {}
        engine._rtr_clean_cache = cache
    if cache_key not in cache:
        cache[cache_key] = simulate_nonlinear(
            build(False), t_stop, _PAIR_DT).voltage("out")
    v1 = cache[cache_key]
    v2 = simulate_nonlinear(build(True), t_stop, _PAIR_DT).voltage("out")
    return v2 - v1


def compute_rtr(engine: SuperpositionEngine,
                shifts: dict[str, float] | None = None, *,
                max_iterations: int = 3,
                tolerance: float = 0.05,
                driver_load: str = "pi",
                driver_engine: str = "transistor") -> RtrResult:
    """Compute the transient holding resistance for the engine's victim.

    Parameters
    ----------
    engine:
        A constructed superposition engine (models and Ceff ready).
    shifts:
        Current aggressor launch shifts (alignment); Rtr is a function of
        where the noise falls relative to the victim transition.
    max_iterations:
        Rth -> Rtr refinement passes; the paper reports "a single or at
        most two iterations are necessary".
    tolerance:
        Relative change in Rtr below which iteration stops.
    driver_load:
        ``"pi"`` (default, reduced π load) or ``"ceff"`` (the paper's
        strict lumped effective load) — see the module docstring.
    driver_engine:
        ``"transistor"`` (default) runs the Step-3 pair at transistor
        level; ``"csm"`` replays it through the gate's current-source
        model (see :mod:`repro.gates.csm`) — faster, near-identical Rtr.

    Returns
    -------
    :class:`RtrResult`.  Degenerate noise (vanishing injected charge)
    falls back to ``rtr == rth``.
    """
    if driver_load not in ("pi", "ceff"):
        raise ValueError("driver_load must be 'pi' or 'ceff'")
    if driver_engine not in ("transistor", "csm"):
        raise ValueError("driver_engine must be 'transistor' or 'csm'")
    shifts = shifts or {}
    rth = engine.models[VICTIM].rth

    load, c_extract = _reduced_load(engine, VICTIM,
                                    engine.net.victim_root, driver_load)

    def extract_current(r_hold: float) -> tuple[Waveform, Waveform]:
        vn = engine.total_noise(shifts, victim_r=r_hold).at_root
        return vn, vn * (1.0 / r_hold) + vn.derivative() * c_extract

    r_current = rth
    iterations = 0
    converged = False
    vn, noise_current = extract_current(r_current)
    vn_prime = vn  # placeholder; overwritten in the loop

    for iterations in range(1, max_iterations + 1):
        vn_prime = _driver_pair_response(engine, noise_current, load,
                                         driver_engine=driver_engine)

        denominator = noise_current.integral()
        numerator = vn_prime.integral()
        if abs(denominator) < 1e-18 or numerator * denominator <= 0.0:
            # No meaningful injected charge, or inconsistent polarity
            # (noise swamped by simulation artifacts): keep Rth.
            return RtrResult(rtr=rth, rth=rth, iterations=iterations,
                             converged=False, driver_load=driver_load,
                             noise_current=noise_current,
                             noise_linear=vn, noise_nonlinear=vn_prime)
        rtr = numerator / denominator
        rtr = min(max(rtr, _RTR_MIN), _RTR_MAX)

        if abs(rtr - r_current) <= tolerance * rtr:
            r_current = rtr
            converged = True
            break
        r_current = rtr
        # Step 6: redo the linear noise with the new holding resistance,
        # which changes the injected current for the next pass.
        vn, noise_current = extract_current(r_current)

    vn_final = engine.total_noise(shifts, victim_r=r_current).at_root
    return RtrResult(rtr=r_current, rth=rth, iterations=iterations,
                     converged=converged, driver_load=driver_load,
                     noise_current=noise_current,
                     noise_linear=vn_final, noise_nonlinear=vn_prime)


def compute_holder_rtr(engine: SuperpositionEngine, held: str, *,
                       switching: str = VICTIM,
                       switching_shift: float = 0.0,
                       max_iterations: int = 3,
                       tolerance: float = 0.05,
                       driver_load: str = "pi") -> RtrResult:
    """Transient holding resistance of an arbitrary held driver.

    The paper notes (end of Section 1 / Section 2) that "the proposed
    approach can also be extended to the shorted aggressor driver models
    to calculate their transient holding resistances if needed": when the
    victim switches (Figure 1(c)), the aggressor drivers are held by
    their Thevenin resistances, which underestimates the noise the victim
    injects on *them* — an indirect, second-order effect on the victim
    waveform.  This function runs the same Steps 1-6 with ``held`` as the
    holder and ``switching`` as the injector.

    ``compute_holder_rtr(engine, VICTIM)`` is *not* the same as
    :func:`compute_rtr`: this variant uses exactly one switching driver,
    while the standard victim computation superposes all aggressors.
    """
    if driver_load not in ("pi", "ceff"):
        raise ValueError("driver_load must be 'pi' or 'ceff'")
    if held == switching:
        raise ValueError("held and switching must differ")

    rth = engine.models[held].rth
    root = engine._roots[held]
    driver = engine._drivers[held]
    load, c_extract = _reduced_load(engine, held, root, driver_load)

    def extract_current(r_hold: float) -> tuple[Waveform, Waveform]:
        vn = engine.noise_on_holder(held, switching,
                                    shift=switching_shift, held_r=r_hold)
        return vn, vn * (1.0 / r_hold) + vn.derivative() * c_extract

    r_current = rth
    iterations = 0
    converged = False
    vn, noise_current = extract_current(r_current)
    vn_prime = vn

    for iterations in range(1, max_iterations + 1):
        vn_prime = _driver_pair_response(engine, noise_current, load,
                                         driver=driver)
        denominator = noise_current.integral()
        numerator = vn_prime.integral()
        if abs(denominator) < 1e-18 or numerator * denominator <= 0.0:
            return RtrResult(rtr=rth, rth=rth, iterations=iterations,
                             converged=False, driver_load=driver_load,
                             noise_current=noise_current,
                             noise_linear=vn, noise_nonlinear=vn_prime)
        rtr = numerator / denominator
        rtr = min(max(rtr, _RTR_MIN), _RTR_MAX)
        if abs(rtr - r_current) <= tolerance * rtr:
            r_current = rtr
            converged = True
            break
        r_current = rtr
        vn, noise_current = extract_current(r_current)

    vn_final = engine.noise_on_holder(held, switching,
                                      shift=switching_shift,
                                      held_r=r_current)
    return RtrResult(rtr=r_current, rth=rth, iterations=iterations,
                     converged=converged, driver_load=driver_load,
                     noise_current=noise_current,
                     noise_linear=vn_final, noise_nonlinear=vn_prime)
