"""Linear simulation + superposition flow (paper Figure 1).

The flow models every driver gate with a Thevenin model at its effective
load, then simulates one driver at a time against the passive coupled
interconnect while all other drivers are replaced by grounded *holding*
resistances.  Waveforms are superposed at the victim receiver input.

All linear simulations run in the **delta domain**: every waveform is the
deviation from the pre-transition DC state.  This makes superposition and
time-shifting exact (the network is LTI) and sidesteps bias bookkeeping —
the absolute victim waveform is ``initial level + delta``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.mna import build_mna
from repro.circuit.netlist import GROUND, Circuit
from repro.core.net import CoupledNet, DriverSpec
from repro.gates.ceff import effective_capacitance
from repro.gates.thevenin import TheveninModel, TheveninTable
from repro.obs import get_logger, metrics
from repro.sim.linear import simulate_linear
from repro.units import PS
from repro.waveform import Waveform

log = get_logger("core.superposition")

__all__ = ["ModelCache", "SuperpositionEngine", "DriverSimOutput"]

#: Key of the victim driver in the engine's model dictionaries.
VICTIM = "victim"


class ModelCache:
    """Memoizes Thevenin tables across nets.

    Table construction costs several non-linear gate simulations; within a
    design the same (cell, slew, direction) combination recurs constantly,
    so a shared cache makes population-level analysis tractable — mirroring
    the pre-characterized gate tables of a production tool.
    """

    def __init__(self):
        self._tables: dict[tuple, TheveninTable] = {}
        #: Cache traffic counters: a hit means a table was reused, a miss
        #: that non-linear characterization simulations had to run.  The
        #: parallel engine (:mod:`repro.exec`) reports these so a cold
        #: worker cache is visible instead of silently slow.
        self.hits = 0
        self.misses = 0

    def table_for(self, driver: DriverSpec) -> TheveninTable:
        key = (driver.gate.name, round(driver.input_slew, 15),
               driver.output_rising)
        if key not in self._tables:
            self.misses += 1
            metrics().counter("cache.thevenin.misses").inc()
            log.debug("thevenin cache miss: %s slew=%.3g rising=%s",
                      *key)
            self._tables[key] = TheveninTable.build(
                driver.gate, driver.input_slew, driver.output_rising,
                switching_pin=driver.switching_pin)
        else:
            self.hits += 1
            metrics().counter("cache.thevenin.hits").inc()
        return self._tables[key]

    def __len__(self) -> int:
        return len(self._tables)

    def entries(self):
        """Iterate ``(key, table)`` pairs (for persistence)."""
        return self._tables.items()

    def install(self, key: tuple, table: TheveninTable) -> None:
        """Insert a pre-built table under an explicit key (persistence)."""
        self._tables[key] = table


@dataclass
class DriverSimOutput:
    """Delta-domain waveforms observed in one superposition simulation."""

    at_receiver: Waveform
    at_root: Waveform


class SuperpositionEngine:
    """Per-net orchestration of the Figure-1 superposition flow.

    On construction the engine builds, for each driver (victim and
    aggressors): the passive net seen by that driver, its effective
    capacitance, and its Thevenin model.  Afterwards,
    :meth:`victim_transition` and :meth:`aggressor_noise` run individual
    linear simulations; launches can be shifted per-aggressor, which is
    what the alignment search manipulates.
    """

    def __init__(self, net: CoupledNet, *, cache: ModelCache | None = None,
                 dt: float = 1.0 * PS, t_stop: float | None = None):
        self.net = net
        self.dt = dt
        # `cache or ...` would discard an *empty* shared cache
        # (ModelCache defines __len__, so empty means falsy).
        self.cache = cache if cache is not None else ModelCache()

        self._drivers: dict[str, DriverSpec] = {VICTIM: net.victim_driver}
        self._roots: dict[str, str] = {VICTIM: net.victim_root}
        for agg in net.aggressors:
            self._drivers[agg.name] = agg.driver
            self._roots[agg.name] = agg.root

        self.base = self._passive_base()
        self.ceffs: dict[str, float] = {}
        self.models: dict[str, TheveninModel] = {}
        self._characterize_all()

        self.t_stop = t_stop if t_stop is not None else self._horizon()
        # One MNA per switching driver (holding resistors differ), built
        # lazily and reused across shifted launches of the same driver.
        self._mna_cache: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _passive_base(self) -> Circuit:
        """Interconnect + receiver input cap + driver diffusion caps."""
        base = self.net.interconnect.copy(f"{self.net.name}_base")
        base.add_capacitor("__rcv_cin", self.net.victim_receiver_node,
                           GROUND, self.net.receiver.input_capacitance())
        for key, driver in self._drivers.items():
            base.add_capacitor(f"__cdiff_{key}", self._roots[key], GROUND,
                               driver.gate.output_capacitance())
        return base

    def _characterize_all(self) -> None:
        vdd = self.net.vdd
        # First pass: holding resistors from crude drive estimates.
        holding = {
            key: drv.gate.drive_resistance_estimate(not drv.output_rising)
            for key, drv in self._drivers.items()
        }
        # Two passes: the second re-derives Ceff with fitted Rth holders.
        for _ in range(2):
            for key, driver in self._drivers.items():
                seen = self.base.copy(f"{self.net.name}_{key}_view")
                for other, r_hold in holding.items():
                    if other != key:
                        seen.add_resistor(f"__hold_{other}",
                                          self._roots[other], GROUND, r_hold)
                table = self.cache.table_for(driver)
                ceff, model = effective_capacitance(
                    table.lookup, seen, self._roots[key], vdd)
                self.ceffs[key] = ceff
                self.models[key] = model
            holding = {key: m.rth for key, m in self.models.items()}

    def _horizon(self) -> float:
        """Simulation window covering every transition plus settling."""
        latest = 0.0
        for key, driver in self._drivers.items():
            model = self.models[key]
            tau = model.rth * self.ceffs[key]
            latest = max(latest,
                         driver.input_start + model.t0 + model.dt
                         + 25.0 * tau)
        return latest + 0.3e-9

    def driver_view(self, key: str) -> Circuit:
        """The passive net a driver sees: base + other drivers' holders."""
        if key not in self._drivers:
            raise KeyError(f"unknown driver {key!r}")
        view = self.base.copy(f"{self.net.name}_{key}_view")
        for other, model in self.models.items():
            if other != key:
                view.add_resistor(f"__hold_{other}", self._roots[other],
                                  GROUND, model.rth)
        return view

    # ------------------------------------------------------------------
    # Simulations
    # ------------------------------------------------------------------
    def _simulate(self, switching: str, shift: float,
                  holding_overrides: dict[str, float] | None,
                  observe_root: str | None = None) -> DriverSimOutput:
        """Simulate one switching driver, everyone else holding.

        ``holding_overrides`` substitutes holding resistances (e.g. Rtr)
        for specific held drivers.  ``observe_root`` selects which
        driver's root to report (default: the victim's).

        The circuit topology for a given (switching, overrides) pair is
        fixed; only the source waveform moves with ``shift``.  By linear
        time invariance a shifted launch produces an identically shifted
        response, so the simulation always runs at shift 0 and the output
        is shifted afterwards — one LU factorization per topology.
        """
        holding_overrides = holding_overrides or {}
        key = (switching, tuple(sorted(holding_overrides.items())))
        if key not in self._mna_cache:
            circuit = self.base.copy(f"{self.net.name}_{switching}_sim")
            driver = self._drivers[switching]
            model = self.models[switching].shifted(driver.input_start)
            model.install_switching(circuit, "__sw_", self._roots[switching])
            for other, other_model in self.models.items():
                if other == switching:
                    continue
                resistance = holding_overrides.get(other, other_model.rth)
                other_model.install_holding(circuit, f"__h_{other}_",
                                            self._roots[other], resistance)
            self._mna_cache[key] = build_mna(circuit)
        mna = self._mna_cache[key]

        result = simulate_linear(mna, self.t_stop, self.dt)
        at_receiver = result.voltage(self.net.victim_receiver_node)
        root_node = observe_root if observe_root is not None \
            else self.net.victim_root
        at_root = result.voltage(root_node)
        if shift:
            at_receiver = at_receiver.shifted(shift)
            at_root = at_root.shifted(shift)
        return DriverSimOutput(at_receiver=at_receiver, at_root=at_root)

    def victim_transition(self, *, aggressor_r: dict[str, float] | None
                          = None) -> DriverSimOutput:
        """Figure 1(c): the victim switches, aggressors hold.

        Returns delta-domain waveforms at the receiver input and at the
        victim driver output (root).  ``aggressor_r`` overrides specific
        aggressors' holding resistances (their transient holding
        resistances, when the paper's Section-2 extension is used).
        """
        return self._simulate(VICTIM, 0.0, aggressor_r)

    def victim_transition_absolute(self) -> DriverSimOutput:
        """Victim transition in absolute volts."""
        delta = self.victim_transition()
        level = self.net.victim_initial_level()
        return DriverSimOutput(at_receiver=delta.at_receiver + level,
                               at_root=delta.at_root + level)

    def noise_on_holder(self, held: str, switching: str, *,
                        shift: float = 0.0,
                        held_r: float | None = None) -> Waveform:
        """Delta-domain noise at a *held* driver's root.

        Generalization of the Figure-1 observations: any driver may be
        the holder and any other the switcher.  With ``held`` set to an
        aggressor and ``switching`` to the victim, this is the injection
        the paper's Section-2 extension ("the proposed approach can also
        be extended to the shorted aggressor driver models") corrects.
        """
        if held not in self._drivers:
            raise KeyError(f"unknown driver {held!r}")
        if switching not in self._drivers or switching == held:
            raise KeyError(f"invalid switching driver {switching!r}")
        overrides = {held: held_r} if held_r is not None else None
        out = self._simulate(switching, shift, overrides,
                             observe_root=self._roots[held])
        return out.at_root

    def aggressor_noise(self, name: str, *, shift: float = 0.0,
                        victim_r: float | None = None) -> DriverSimOutput:
        """Figure 1(b): aggressor ``name`` switches, everyone else holds.

        ``victim_r`` overrides the victim's holding resistance — pass the
        transient holding resistance Rtr here.  ``shift`` delays the
        aggressor launch (alignment control).
        """
        if name not in self._drivers or name == VICTIM:
            raise KeyError(f"unknown aggressor {name!r}")
        overrides = {VICTIM: victim_r} if victim_r is not None else None
        return self._simulate(name, shift, overrides)

    def total_noise(self, shifts: dict[str, float], *,
                    victim_r: float | None = None) -> DriverSimOutput:
        """Superposed noise of all aggressors at the given shifts."""
        outputs = [
            self.aggressor_noise(agg.name, shift=shifts.get(agg.name, 0.0),
                                 victim_r=victim_r)
            for agg in self.net.aggressors
        ]
        if not outputs:
            raise ValueError(f"{self.net.name} has no aggressors")
        at_receiver = outputs[0].at_receiver
        at_root = outputs[0].at_root
        for out in outputs[1:]:
            at_receiver = at_receiver + out.at_receiver
            at_root = at_root + out.at_root
        return DriverSimOutput(at_receiver=at_receiver, at_root=at_root)
