"""Linear transient simulation (trapezoidal rule, fixed step).

Solves the MNA descriptor system ``C x' + G x = rhs(t)`` with the
trapezoidal rule:

    (C/h + G/2) x_{k+1} = (C/h - G/2) x_k + (rhs_k + rhs_{k+1}) / 2

The left-hand matrix is constant on a uniform grid, so it is LU-factored
once and reused for every step — the property that makes the linear
superposition flow of the paper (Figure 1) practical for large nets.

The initial condition is the DC solution at ``t_start`` (capacitors open);
when ``G`` is singular because some nodes float at DC (e.g. nodes reached
only through coupling capacitors), a least-squares solution is used, which
picks the minimum-norm consistent initial state.
"""

from __future__ import annotations

import numpy as np
from repro.circuit.mna import MnaSystem, build_mna
from repro.circuit.netlist import Circuit
from repro.sim.factor import factorize, is_sparse_matrix
from repro.sim.result import SimulationResult, time_grid

__all__ = ["simulate_linear"]


def _dc_solve(G: np.ndarray, rhs0: np.ndarray) -> np.ndarray:
    if is_sparse_matrix(G):
        try:
            return factorize(G).solve(rhs0)
        except np.linalg.LinAlgError:
            # Singular at DC (floating coupling-only nodes): fall back
            # to the dense minimum-norm solution — a one-off cost, off
            # the per-step path.
            G = G.toarray()
            x0, *_ = np.linalg.lstsq(G, rhs0, rcond=None)
            return x0
    try:
        return np.linalg.solve(G, rhs0)
    except np.linalg.LinAlgError:
        x0, *_ = np.linalg.lstsq(G, rhs0, rcond=None)
        return x0


def simulate_linear(circuit_or_mna: Circuit | MnaSystem, t_stop: float,
                    dt: float, *, t_start: float = 0.0,
                    x0: np.ndarray | None = None) -> SimulationResult:
    """Transient-simulate a linear circuit.

    Parameters
    ----------
    circuit_or_mna:
        Either a :class:`~repro.circuit.Circuit` (stamped on the fly) or a
        pre-built :class:`~repro.circuit.MnaSystem` (reuse when simulating
        the same topology with different stimuli).
    t_stop, dt, t_start:
        Uniform time grid specification.
    x0:
        Optional explicit initial state (defaults to the DC solution).
    """
    if isinstance(circuit_or_mna, MnaSystem):
        mna = circuit_or_mna
    else:
        mna = build_mna(circuit_or_mna)

    times = time_grid(t_stop, dt, t_start)
    h = times[1] - times[0]
    rhs = mna.rhs_matrix(times)

    if x0 is None:
        x0 = _dc_solve(mna.G, rhs[:, 0])
    else:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (mna.dim,):
            raise ValueError(f"x0 must have shape ({mna.dim},)")

    A = mna.C / h + mna.G / 2.0
    Bmat = mna.C / h - mna.G / 2.0
    # The left-hand matrix is constant on the uniform grid: factor it
    # once (repro.sim.factor, shared with the non-linear kernel).
    fact = factorize(A)
    states = np.empty((mna.dim, times.size))
    states[:, 0] = x0
    x = x0
    if mna.is_sparse:
        # Sparse path: a dense step matrix A⁻¹B would cost O(dim²) per
        # step and O(dim) triangular solves to form — exactly the fill
        # sparsity avoids.  Keep the loop as one sparse mat-vec plus one
        # pair of SuperLU triangular solves per step; the averaged
        # source columns still amortize through one multi-RHS solve.
        rhs_avg = fact.solve(
            np.ascontiguousarray(0.5 * (rhs[:, :-1] + rhs[:, 1:])))
        for k in range(times.size - 1):
            x = fact.solve(Bmat @ x) + rhs_avg[:, k]
            states[:, k + 1] = x
        return SimulationResult(mna, times, states)
    # Dense path: pre-apply the factors to the step matrix and every
    # averaged source column, turning the time loop into one mat-vec
    # plus an add per step.
    step_matrix = fact.solve(Bmat)
    rhs_avg = fact.solve(0.5 * (rhs[:, :-1] + rhs[:, 1:]))
    for k in range(times.size - 1):
        x = step_matrix @ x + rhs_avg[:, k]
        states[:, k + 1] = x

    return SimulationResult(mna, times, states)
