"""Linear transient simulation (trapezoidal rule, fixed step).

Solves the MNA descriptor system ``C x' + G x = rhs(t)`` with the
trapezoidal rule:

    (C/h + G/2) x_{k+1} = (C/h - G/2) x_k + (rhs_k + rhs_{k+1}) / 2

The left-hand matrix is constant on a uniform grid, so it is LU-factored
once and reused for every step — the property that makes the linear
superposition flow of the paper (Figure 1) practical for large nets.

The initial condition is the DC solution at ``t_start`` (capacitors open);
when ``G`` is singular because some nodes float at DC (e.g. nodes reached
only through coupling capacitors), a least-squares solution is used, which
picks the minimum-norm consistent initial state.

When the trust layer (:mod:`repro.trust`) is enabled, sampled steps —
every ``4 * check_interval``-th plus the final one — are post-verified
with the relative residual of the raw trapezoidal system; a violating
step is re-solved fresh against a dense rebuild of the left-hand
matrix and the hop recorded as a trust event.  Direct solves are
backward stable, so the audit tolerance sits many orders above a
legitimate step and any violation means the factorization itself went
bad.
"""

from __future__ import annotations

import numpy as np
from repro import trust as _trust
from repro.circuit.mna import MnaSystem, build_mna
from repro.circuit.netlist import Circuit
from repro.resilience.faults import InjectedCorruption
from repro.resilience.faults import fire as _fire_fault
from repro.sim.factor import factorize, is_sparse_matrix
from repro.sim.result import SimulationResult, time_grid

__all__ = ["simulate_linear"]

#: Linear-step audits sample 4x sparser than the Newton wrapper: the
#: check costs up to two extra mat-vecs against a one-mat-vec step, so
#: the denser cadence would be a measurable clean-path tax here.
_LINEAR_CHECK_STRIDE = 4


class _StepAudit:
    """Sampled residual audit for the trapezoidal time loop."""

    __slots__ = ("A", "anorm", "tol", "dense_A")

    def __init__(self, A):
        self.A = A
        self.anorm = _trust.matrix_norm1(A)
        self.tol = _trust.residual_tolerance(
            A.shape[0], _trust.config().linear_rtol)
        self.dense_A = None

    def verify(self, x: np.ndarray, b: np.ndarray,
               context: str) -> np.ndarray:
        try:
            _fire_fault("trust.verify", context)
        except InjectedCorruption as fault:
            from repro.sim.nonlinear import _corrupt_state
            x = _corrupt_state(x, fault.kind)
        _trust.count_check()
        rel = _trust.relative_residual(self.A @ x - b, self.anorm, x, b)
        if rel <= self.tol:
            return x
        detail = f"relative residual {rel:.3e} > {self.tol:.3e}"
        _trust.record_event("violation", context=context, detail=detail)
        # Escalation: one fresh dense solve of the raw step system,
        # independent of the suspect factorization.
        hop = ("dense-rebuild" if is_sparse_matrix(self.A)
               else "fresh-solve")
        if self.dense_A is None:
            self.dense_A = (self.A.toarray()
                            if is_sparse_matrix(self.A) else self.A)
        try:
            fresh = np.linalg.solve(self.dense_A, b)
        except np.linalg.LinAlgError:
            fresh = None
        if fresh is not None:
            _trust.count_check()
            rel2 = _trust.relative_residual(self.A @ fresh - b,
                                            self.anorm, fresh, b)
            if rel2 <= self.tol:
                _trust.record_event("escalated", context=context,
                                    hop=hop, detail=detail)
                return fresh
        _trust.record_event("unrecovered", context=context,
                            detail=detail)
        from repro.sim.nonlinear import TrustViolation
        raise TrustViolation(
            f"linear step failed verification during {context} "
            f"({detail}) and the dense re-solve did not repair it")


def _dc_solve(G: np.ndarray, rhs0: np.ndarray) -> np.ndarray:
    if is_sparse_matrix(G):
        try:
            return factorize(G).solve(rhs0)
        except np.linalg.LinAlgError:
            # Singular at DC (floating coupling-only nodes): fall back
            # to the dense minimum-norm solution — a one-off cost, off
            # the per-step path.
            G = G.toarray()
            x0, *_ = np.linalg.lstsq(G, rhs0, rcond=None)
            return x0
    try:
        return np.linalg.solve(G, rhs0)
    except np.linalg.LinAlgError:
        x0, *_ = np.linalg.lstsq(G, rhs0, rcond=None)
        return x0


def simulate_linear(circuit_or_mna: Circuit | MnaSystem, t_stop: float,
                    dt: float, *, t_start: float = 0.0,
                    x0: np.ndarray | None = None) -> SimulationResult:
    """Transient-simulate a linear circuit.

    Parameters
    ----------
    circuit_or_mna:
        Either a :class:`~repro.circuit.Circuit` (stamped on the fly) or a
        pre-built :class:`~repro.circuit.MnaSystem` (reuse when simulating
        the same topology with different stimuli).
    t_stop, dt, t_start:
        Uniform time grid specification.
    x0:
        Optional explicit initial state (defaults to the DC solution).
    """
    if isinstance(circuit_or_mna, MnaSystem):
        mna = circuit_or_mna
    else:
        mna = build_mna(circuit_or_mna)

    times = time_grid(t_stop, dt, t_start)
    h = times[1] - times[0]
    rhs = mna.rhs_matrix(times)

    if x0 is None:
        x0 = _dc_solve(mna.G, rhs[:, 0])
    else:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (mna.dim,):
            raise ValueError(f"x0 must have shape ({mna.dim},)")

    A = mna.C / h + mna.G / 2.0
    Bmat = mna.C / h - mna.G / 2.0
    # The left-hand matrix is constant on the uniform grid: factor it
    # once (repro.sim.factor, shared with the non-linear kernel).
    fact = factorize(A)
    raw_avg = 0.5 * (rhs[:, :-1] + rhs[:, 1:])
    audit = _StepAudit(A) if _trust.trust_enabled() else None
    stride = (_LINEAR_CHECK_STRIDE
              * max(1, _trust.config().check_interval))
    last = times.size - 2

    def checked(k: int) -> bool:
        return audit is not None and (k % stride == 0 or k == last)

    states = np.empty((mna.dim, times.size))
    states[:, 0] = x0
    x = x0
    if mna.is_sparse:
        # Sparse path: a dense step matrix A⁻¹B would cost O(dim²) per
        # step and O(dim) triangular solves to form — exactly the fill
        # sparsity avoids.  Keep the loop as one sparse mat-vec plus one
        # pair of SuperLU triangular solves per step; the averaged
        # source columns still amortize through one multi-RHS solve.
        rhs_avg = fact.solve(np.ascontiguousarray(raw_avg))
        for k in range(times.size - 1):
            bx = Bmat @ x
            x = fact.solve(bx) + rhs_avg[:, k]
            if checked(k):
                x = audit.verify(x, bx + raw_avg[:, k],
                                 f"t={times[k + 1]:.3e}s linear step")
            states[:, k + 1] = x
        return SimulationResult(mna, times, states)
    # Dense path: pre-apply the factors to the step matrix and every
    # averaged source column, turning the time loop into one mat-vec
    # plus an add per step.
    step_matrix = fact.solve(Bmat)
    rhs_avg = fact.solve(raw_avg)
    for k in range(times.size - 1):
        x_prev = x
        x = step_matrix @ x + rhs_avg[:, k]
        if checked(k):
            x = audit.verify(x, Bmat @ x_prev + raw_avg[:, k],
                             f"t={times[k + 1]:.3e}s linear step")
        states[:, k + 1] = x

    return SimulationResult(mna, times, states)
