"""Transient circuit simulation.

* :mod:`repro.sim.linear` — fixed-step trapezoidal integration of linear
  MNA descriptor systems with single LU factorization.  This is the fast
  path used thousands of times inside the superposition flow.
* :mod:`repro.sim.nonlinear` — backward-Euler + damped-Newton transient
  co-simulation of MOSFET devices with arbitrary linear networks.  Plays
  the role of "Spice" in the paper: the golden reference and the engine
  behind Thevenin / Rtr / alignment characterization.
* :mod:`repro.sim.batched` — multi-candidate variant of the non-linear
  solver: S source-stimulus variants of one circuit advance as a single
  ``(S, dim)`` state block over one factored system (the alignment-sweep
  hot path).
* :mod:`repro.sim.result` — shared result container mapping node names to
  :class:`~repro.waveform.Waveform` objects.
"""

from repro.sim.result import SimulationResult, time_grid
from repro.sim.factor import Factorization, factorize
from repro.sim.linear import simulate_linear
from repro.sim.nonlinear import (
    ConvergenceError,
    dc_operating_point,
    kernel_mode,
    set_kernel_mode,
    simulate_nonlinear,
)
from repro.sim.batched import simulate_nonlinear_batch

__all__ = [
    "SimulationResult",
    "time_grid",
    "Factorization",
    "factorize",
    "simulate_linear",
    "simulate_nonlinear",
    "simulate_nonlinear_batch",
    "dc_operating_point",
    "ConvergenceError",
    "kernel_mode",
    "set_kernel_mode",
]
