"""Non-linear transient co-simulation (backward Euler + damped Newton).

This is the library's "Spice": it simulates circuits that mix MOSFET
devices with arbitrary linear RC networks and waveform-driven sources.
It is used for

* golden full-circuit delay-noise reference runs (paper Figures 2, 5, 13),
* gate characterization (Thevenin fitting, C-effective),
* the two non-linear driver runs of the transient-holding-resistance
  algorithm (paper Section 2, Step 3), and
* receiver-output delay evaluation during alignment search and
  pre-characterization (paper Section 3).

Method: backward Euler in time (L-stable, no trapezoidal ringing on the
stiff gate nodes) with a damped Newton solve per step.  Voltage updates
are clamped to ±0.5 V per iteration — the standard SPICE-style limiting
that keeps the square-law device from overshooting across regions.

Recovery ladder
---------------
Newton non-convergence does not immediately kill a simulation:

* a failed *transient* step is re-integrated by bisecting the step —
  recursively halving ``dt`` down to ``dt / 2**_MAX_SUBSTEP_DEPTH`` —
  before giving up (a shorter backward-Euler step both shrinks the
  initial-guess error and stiffens the Jacobian diagonal);
* a failed *DC operating point* first retries with gmin stepping
  (a shrinking shunt conductance on every node, each solve
  warm-starting the next) and then with source-ramp homotopy (solving
  at increasing source amplitude fractions).

Each successful recovery bumps a ``newton.recovered.*`` counter so the
telemetry shows how often the ladder fires; the happy path is
untouched (and allocation-free) — the ladder lives entirely in the
exception branch.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mna import MnaSystem, build_mna
from repro.circuit.netlist import GROUND, Circuit
from repro.obs import metrics
from repro.resilience.faults import fire as _fire_fault
from repro.sim.result import SimulationResult, time_grid

__all__ = ["simulate_nonlinear", "ConvergenceError"]

#: Maximum Newton voltage update per iteration [V].
_DAMP_LIMIT = 0.5
_MAX_ITERATIONS = 100
_VTOL = 1e-6

#: Transient recovery: maximum halvings of dt for one failed step.
_MAX_SUBSTEP_DEPTH = 4
#: DC recovery: gmin ladder [S]; ends at 0.0 = the original system.
_GMIN_LADDER = (1e-3, 1e-5, 1e-7, 0.0)
#: DC recovery: source-ramp homotopy amplitude fractions.
_RAMP_LEVELS = (0.25, 0.5, 0.75, 1.0)

# Cached instrument handles (registry.reset() zeroes them in place, so
# module-level caching is safe and keeps the per-solve cost to one
# bisect + two adds).
_ITERATIONS = metrics().histogram("newton.iterations")
_NONCONVERGED = metrics().counter("newton.nonconverged")
_SINGULAR = metrics().counter("newton.singular")
_RECOVERED_SUBSTEP = metrics().counter("newton.recovered.substep")
_RECOVERED_GMIN = metrics().counter("newton.recovered.gmin")
_RECOVERED_RAMP = metrics().counter("newton.recovered.source_ramp")


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge."""


class _DeviceStamps:
    """Pre-resolved node indices for fast per-iteration device stamping."""

    __slots__ = ("device", "ig", "id_", "is_")

    def __init__(self, device, node_index):
        self.device = device
        self.ig = node_index.get(device.gate, -1) \
            if device.gate != GROUND else -1
        self.id_ = node_index.get(device.drain, -1) \
            if device.drain != GROUND else -1
        self.is_ = node_index.get(device.source, -1) \
            if device.source != GROUND else -1


def _voltage_at(x: np.ndarray, index: int) -> float:
    return x[index] if index >= 0 else 0.0


def _residual_at(base_residual_of, devices: list[_DeviceStamps],
                 x: np.ndarray) -> np.ndarray:
    """Full residual ``F(x)`` (linear part + device currents).

    Used only by the non-convergence diagnostic: the iteration loop
    assembles F and J together inline for speed.
    """
    F = base_residual_of(x)
    for ds in devices:
        i, _, _, _ = ds.device.evaluate(_voltage_at(x, ds.ig),
                                        _voltage_at(x, ds.id_),
                                        _voltage_at(x, ds.is_))
        if ds.id_ >= 0:
            F[ds.id_] += i
        if ds.is_ >= 0:
            F[ds.is_] -= i
    return F


def _newton_solve(base_jacobian: np.ndarray, base_residual_of,
                  devices: list[_DeviceStamps], x: np.ndarray,
                  context: str) -> np.ndarray:
    """Damped Newton on ``F(x) = base_residual(x) + device_currents(x)``.

    ``base_jacobian`` is the (constant) linear part of dF/dx;
    ``base_residual_of(x)`` returns the linear part of F(x).
    """
    _fire_fault("newton.step", context)
    x = x.copy()
    for iteration in range(1, _MAX_ITERATIONS + 1):
        F = base_residual_of(x)
        J = base_jacobian.copy()
        for ds in devices:
            vg = _voltage_at(x, ds.ig)
            vd = _voltage_at(x, ds.id_)
            vs = _voltage_at(x, ds.is_)
            i, dg, dd, dsrc = ds.device.evaluate(vg, vd, vs)
            if ds.id_ >= 0:
                F[ds.id_] += i
                if ds.ig >= 0:
                    J[ds.id_, ds.ig] += dg
                J[ds.id_, ds.id_] += dd
                if ds.is_ >= 0:
                    J[ds.id_, ds.is_] += dsrc
            if ds.is_ >= 0:
                F[ds.is_] -= i
                if ds.ig >= 0:
                    J[ds.is_, ds.ig] -= dg
                if ds.id_ >= 0:
                    J[ds.is_, ds.id_] -= dd
                J[ds.is_, ds.is_] -= dsrc
        try:
            delta = np.linalg.solve(J, -F)
        except np.linalg.LinAlgError as exc:
            _SINGULAR.inc()
            raise ConvergenceError(
                f"singular Jacobian during {context}") from exc
        step = np.abs(delta).max(initial=0.0)
        if step > _DAMP_LIMIT:
            delta *= _DAMP_LIMIT / step
        x += delta
        if step < _VTOL:
            _ITERATIONS.observe(iteration)
            return x
    _NONCONVERGED.inc()
    # Diagnose the iterate we actually stopped at: the loop's F was
    # assembled *before* the final `x += delta`, so re-evaluate.
    residuals = np.abs(_residual_at(base_residual_of, devices, x))
    worst = int(residuals.argmax()) if residuals.size else 0
    raise ConvergenceError(
        f"Newton did not converge within {_MAX_ITERATIONS} iterations "
        f"during {context} (last step {step:.3e} V, worst residual "
        f"{residuals.max(initial=0.0):.3e} at node index {worst})")


def _recover_dc(mna: MnaSystem, G: np.ndarray,
                devices: list[_DeviceStamps], rhs0: np.ndarray,
                name: str) -> np.ndarray:
    """DC operating-point recovery: gmin stepping, then source ramping.

    Gmin stepping shunts every node with a conductance ``g`` that walks
    down the ladder to zero, each solve warm-starting the next — the
    shunt keeps the Jacobian diagonally dominant while the estimate
    approaches the true operating point.  If that still fails, the
    source-ramp homotopy solves at increasing source amplitudes from a
    quarter strength up to full, again warm-starting each stage.
    """
    n = mna.n_nodes
    diag = np.arange(n)
    x = np.zeros(mna.dim)
    try:
        for g in _GMIN_LADDER:
            Gg = G.copy()
            Gg[diag, diag] += g
            x = _newton_solve(
                Gg, lambda y, A=Gg: A @ y - rhs0, devices, x,
                f"gmin={g:g} DC recovery of {name}")
        _RECOVERED_GMIN.inc()
        return x
    except ConvergenceError:
        pass
    x = np.zeros(mna.dim)
    for alpha in _RAMP_LEVELS:
        b = rhs0 * alpha
        x = _newton_solve(
            G, lambda y, b=b: G @ y - b, devices, x,
            f"source-ramp {alpha:g} DC recovery of {name}")
    _RECOVERED_RAMP.inc()
    return x


def _integrate_bisect(mna: MnaSystem, G: np.ndarray, C: np.ndarray,
                      devices: list[_DeviceStamps], x: np.ndarray,
                      t0: float, t1: float, name: str,
                      depth: int) -> np.ndarray:
    """One backward-Euler step ``t0 -> t1``, bisecting on failure.

    Each level halves the step; ``depth`` bounds the recursion, so the
    finest sub-step is ``(t1 - t0) / 2**depth`` of the original grid.
    """
    h = t1 - t0
    Ch = C / h
    A = Ch + G
    b = Ch @ x + mna.rhs_matrix(np.array([t1]))[:, 0]
    try:
        return _newton_solve(
            A, lambda y, b=b: A @ y - b, devices, x,
            f"t={t1:.3e}s (sub-step dt={h:.3e}s) of {name}")
    except ConvergenceError:
        if depth <= 0:
            raise
        t_mid = 0.5 * (t0 + t1)
        x_mid = _integrate_bisect(mna, G, C, devices, x, t0, t_mid,
                                  name, depth - 1)
        return _integrate_bisect(mna, G, C, devices, x_mid, t_mid, t1,
                                 name, depth - 1)


def simulate_nonlinear(circuit: Circuit, t_stop: float, dt: float, *,
                       t_start: float = 0.0,
                       x0: np.ndarray | None = None) -> SimulationResult:
    """Transient-simulate a circuit containing MOSFETs.

    The initial state defaults to the DC operating point with all sources
    evaluated at ``t_start``.  Pass ``x0`` to chain simulations.
    """
    mna = build_mna(circuit, allow_devices=True)
    times = time_grid(t_stop, dt, t_start)
    h = times[1] - times[0]
    rhs = mna.rhs_matrix(times)

    devices = [_DeviceStamps(m, mna.node_index) for m in circuit.mosfets]
    G, C = mna.G, mna.C

    # DC operating point: F(x) = G x + i_dev(x) - rhs0.
    if x0 is None:
        rhs0 = rhs[:, 0]
        try:
            x0 = _newton_solve(
                G, lambda x: G @ x - rhs0, devices,
                np.zeros(mna.dim), f"DC operating point of {circuit.name}")
        except ConvergenceError:
            x0 = _recover_dc(mna, G, devices, rhs0, circuit.name)
    else:
        x0 = np.asarray(x0, dtype=float).copy()
        if x0.shape != (mna.dim,):
            raise ValueError(f"x0 must have shape ({mna.dim},)")

    # Backward Euler: F(x) = (C/h)(x - x_prev) + G x + i_dev(x) - rhs_k.
    Ch = C / h
    A = Ch + G
    states = np.empty((mna.dim, times.size))
    states[:, 0] = x0
    x = x0
    for k in range(1, times.size):
        b_k = Ch @ x + rhs[:, k]
        try:
            x = _newton_solve(
                A,
                lambda y, b=b_k: A @ y - b,
                devices, x, f"t={times[k]:.3e}s of {circuit.name}")
        except ConvergenceError:
            # Recovery ladder: re-integrate the step with bisected dt
            # (bounded depth) before giving up on the simulation.
            t_mid = 0.5 * (times[k - 1] + times[k])
            x_mid = _integrate_bisect(
                mna, G, C, devices, x, times[k - 1], t_mid,
                circuit.name, _MAX_SUBSTEP_DEPTH - 1)
            x = _integrate_bisect(
                mna, G, C, devices, x_mid, t_mid, times[k],
                circuit.name, _MAX_SUBSTEP_DEPTH - 1)
            _RECOVERED_SUBSTEP.inc()
        states[:, k] = x

    return SimulationResult(mna, times, states)
