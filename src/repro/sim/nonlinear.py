"""Non-linear transient co-simulation (backward Euler + damped Newton).

This is the library's "Spice": it simulates circuits that mix MOSFET
devices with arbitrary linear RC networks and waveform-driven sources.
It is used for

* golden full-circuit delay-noise reference runs (paper Figures 2, 5, 13),
* gate characterization (Thevenin fitting, C-effective),
* the two non-linear driver runs of the transient-holding-resistance
  algorithm (paper Section 2, Step 3), and
* receiver-output delay evaluation during alignment search and
  pre-characterization (paper Section 3).

Method: backward Euler in time (L-stable, no trapezoidal ringing on the
stiff gate nodes) with a damped Newton solve per step.  Voltage updates
are clamped to ±0.5 V per iteration — the standard SPICE-style limiting
that keeps the square-law device from overshooting across regions.

Fast kernel
-----------
On a uniform grid the backward-Euler matrix ``A = C/h + G`` is constant
for the *whole* simulation; only the device contribution to the Jacobian
``J = A + ΔJ(x)`` moves between Newton iterations, and ``ΔJ`` touches
only the rows of device drain/source nodes.  The default kernel exploits
both facts:

* ``A`` is factored once per grid (:mod:`repro.sim.factor`, shared with
  the linear solver) and every Newton iteration is solved through the
  Sherman–Morrison–Woodbury identity: with ``ΔJ = E_R M`` (``E_R``
  selecting the ``k`` device-touched rows),

      J⁻¹ = A⁻¹ − A⁻¹ E_R (I_k + M A⁻¹ E_R)⁻¹ M A⁻¹,

  where ``W = A⁻¹ E_R`` is also precomputed once per grid — so an
  iteration costs two triangular solves plus a ``k×k`` solve instead of
  a dense ``O(n³)`` factorization (``newton.woodbury`` counts these);
* when ``k`` is large relative to the system (or ``A`` itself is
  singular, e.g. nodes held only by devices at DC), a modified-Newton
  scheme factors the *full* Jacobian, reuses the stale factors while the
  step norm keeps contracting, and re-factors on stalls and for the
  final accepted step (``newton.jacobian_refresh`` counts the
  factorizations);
* device currents and derivatives are evaluated for the whole
  population at once through :func:`repro.devices.evaluate_batch`, with
  precomputed index arrays and ``np.add.at`` scatter instead of a
  per-device Python stamping loop.

The pre-rework dense kernel (re-stamp + ``np.linalg.solve`` per
iteration) is retained behind :func:`kernel_mode` — it is the reference
the equivalence tests and the perf benchmark compare against.

Recovery ladder
---------------
Newton non-convergence does not immediately kill a simulation:

* a failed *transient* step is re-integrated by bisecting the step —
  recursively halving ``dt`` down to ``dt / 2**_MAX_SUBSTEP_DEPTH`` —
  before giving up (a shorter backward-Euler step both shrinks the
  initial-guess error and stiffens the Jacobian diagonal);
* a failed *DC operating point* first retries with gmin stepping
  (a shrinking shunt conductance on every node, each solve
  warm-starting the next) and then with source-ramp homotopy (solving
  at increasing source amplitude fractions).

Each successful recovery bumps a ``newton.recovered.*`` counter so the
telemetry shows how often the ladder fires; the happy path is
untouched — the ladder lives entirely in the exception branch.

Trust layer
-----------
Nonconvergence is the *loud* failure mode; the quiet one is a wrong
converged state (ill-conditioned base factorization, corrupted Woodbury
update).  When :mod:`repro.trust` is enabled (the default), every fast
kernel built here is wrapped in :class:`_VerifiedSolve`: accepted
states get a finiteness guard on every solve and a sampled relative
residual audit, and a violation walks the escalation ladder —
fresh-factor exact Newton, then the legacy dense kernel (densified
from sparse when needed) — re-verifying after each hop and recording
it through :func:`repro.trust.record_event`.  A violation the whole
ladder cannot repair raises :class:`TrustViolation`, a
:class:`ConvergenceError` subclass, so the dt-bisection and DC
recovery ladders above still get their shot before the net is failed.
On a clean run the wrapper returns the kernel's states untouched —
results are bit-identical with the layer on or off.
"""

from __future__ import annotations

import math
from contextlib import contextmanager

import numpy as np

from repro import trust as _trust
from repro.circuit.mna import MnaSystem, build_mna
from repro.circuit.netlist import GROUND, Circuit
from repro.devices.mosfet import batch_params, evaluate_batch, evaluate_one
from repro.obs import metrics
from repro.resilience.faults import InjectedCorruption
from repro.resilience.faults import active_plan as _active_plan
from repro.resilience.faults import fire as _fire_fault
from repro.sim.factor import factorize, is_sparse_matrix
from repro.sim.result import SimulationResult, time_grid

try:  # pragma: no cover - container ships scipy; gate for safety
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None

__all__ = ["simulate_nonlinear", "dc_operating_point", "ConvergenceError",
           "TrustViolation", "kernel_mode", "set_kernel_mode"]

#: Maximum Newton voltage update per iteration [V].
_DAMP_LIMIT = 0.5
_MAX_ITERATIONS = 100
_VTOL = 1e-6

#: Modified Newton: refresh the stale Jacobian factors when an iteration
#: fails to contract the step norm below this fraction of the previous.
_STALL_RATIO = 0.5

#: Modified Newton: system size below which every iteration refreshes
#: (plain Newton with vectorized stamping).  Reusing stale factors
#: trades extra (linearly converging) iterations for cheaper solves —
#: a win only when applying cached factors is much cheaper than a dense
#: solve, which needs the O(n^3)/O(n^2) gap of a big system.  At small
#: dims rebuild+solve costs the same as a stale solve, so stale reuse
#: would only add iterations.
_MODIFIED_STALE_MIN = 96

#: Population size below which device evaluation goes through the scalar
#: reference path instead of :func:`evaluate_batch`.  numpy dispatch
#: costs a couple of microseconds per array op regardless of length, so
#: for a handful of devices ~45 vector ops lose to a plain Python loop
#: over the (cheap, math-library) scalar model; the crossover sits
#: around a dozen devices.  Scatter/stamping is vectorized either way.
_BATCH_EVAL_MIN = 16

#: Transient recovery: maximum halvings of dt for one failed step.
_MAX_SUBSTEP_DEPTH = 4
#: DC recovery: gmin ladder [S]; ends at 0.0 = the original system.
_GMIN_LADDER = (1e-3, 1e-5, 1e-7, 0.0)
#: DC recovery: source-ramp homotopy amplitude fractions.
_RAMP_LEVELS = (0.25, 0.5, 0.75, 1.0)

# Cached instrument handles (registry.reset() zeroes them in place, so
# module-level caching is safe and keeps the per-solve cost to one
# bisect + two adds).
_ITERATIONS = metrics().histogram("newton.iterations")
_NONCONVERGED = metrics().counter("newton.nonconverged")
_SINGULAR = metrics().counter("newton.singular")
_RECOVERED_SUBSTEP = metrics().counter("newton.recovered.substep")
_RECOVERED_GMIN = metrics().counter("newton.recovered.gmin")
_RECOVERED_RAMP = metrics().counter("newton.recovered.source_ramp")
#: Newton iterations solved through the factored base + Woodbury update.
_WOODBURY = metrics().counter("newton.woodbury")
#: Full-Jacobian factorizations performed by the modified-Newton path.
_REFRESH = metrics().counter("newton.jacobian_refresh")
#: Per-(mode, step-size) solver kernel reuse across simulate calls: a
#: hit means the backward-Euler matrix was *not* re-factored.
_FACTOR_HIT = metrics().counter("sim.factor_cache.hit")
_FACTOR_MISS = metrics().counter("sim.factor_cache.miss")


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge."""


class TrustViolation(ConvergenceError):
    """An accepted solve failed post-verification and every escalation
    hop (see :mod:`repro.trust`).

    Subclasses :class:`ConvergenceError` so the existing recovery
    ladders (dt bisection, gmin/source-ramp DC homotopy) treat an
    untrustworthy state like a nonconverged one rather than returning
    it.
    """


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
_KERNEL_MODES = ("fast", "legacy")
_KERNEL_MODE = "fast"


def set_kernel_mode(mode: str) -> str:
    """Select the Newton kernel (``"fast"`` or ``"legacy"``).

    Returns the previous mode.  The legacy kernel is the pre-rework
    dense solver (full re-stamp and ``np.linalg.solve`` per iteration);
    it exists for equivalence testing and benchmarking, not production
    use.
    """
    global _KERNEL_MODE
    if mode not in _KERNEL_MODES:
        raise ValueError(f"kernel mode must be one of {_KERNEL_MODES}, "
                         f"got {mode!r}")
    previous = _KERNEL_MODE
    _KERNEL_MODE = mode
    return previous


@contextmanager
def kernel_mode(mode: str):
    """Context manager pinning the Newton kernel for a code block."""
    previous = set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)


# ----------------------------------------------------------------------
# Device access: legacy per-device stamps and vectorized batch
# ----------------------------------------------------------------------
class _DeviceStamps:
    """Pre-resolved node indices for fast per-iteration device stamping."""

    __slots__ = ("device", "ig", "id_", "is_")

    def __init__(self, device, node_index):
        self.device = device
        self.ig = node_index.get(device.gate, -1) \
            if device.gate != GROUND else -1
        self.id_ = node_index.get(device.drain, -1) \
            if device.drain != GROUND else -1
        self.is_ = node_index.get(device.source, -1) \
            if device.source != GROUND else -1


class _DeviceBatch:
    """Vectorized device population with precomputed scatter maps.

    Built once per circuit: terminal row indices (``-1`` = ground),
    packed device parameters, and flattened scatter indices for both the
    residual currents and the six Jacobian stamps of every device — so
    one Newton iteration is one device-population evaluation plus two
    ``np.add.at`` scatters, with no Python-level per-device stamping.
    """

    __slots__ = ("n", "dim", "params", "ig", "id_", "is_", "rows", "k",
                 "f_idx", "f_dev", "f_sign", "f_sign_neg", "m_flat",
                 "m_src", "m_dev", "m_sign", "gather", "scalar_devs",
                 "_mbuf")

    def __init__(self, mosfets, mna: MnaSystem):
        self.n = len(mosfets)
        self.dim = mna.dim
        self.params = batch_params(mosfets)
        self.ig = np.array([mna.row_of(m.gate) for m in mosfets],
                           dtype=np.intp)
        self.id_ = np.array([mna.row_of(m.drain) for m in mosfets],
                            dtype=np.intp)
        self.is_ = np.array([mna.row_of(m.source) for m in mosfets],
                            dtype=np.intp)

        # Gather maps with ground redirected to a zero slot appended at
        # index `dim` of an extended state vector: one fancy index pulls
        # all terminal voltages with no masking.  The scalar crossover
        # path keeps everything pre-unpacked as Python floats/ints.
        terminals = np.stack((self.ig, self.id_, self.is_))
        self.gather = np.where(terminals >= 0, terminals, self.dim)
        p = self.params
        self.scalar_devs = [
            (float(p.sign[j]), float(p.beta[j]), float(p.vt[j]),
             float(p.lam[j]), float(p.gmin[j]), int(self.gather[0, j]),
             int(self.gather[1, j]), int(self.gather[2, j]))
            for j in range(self.n)
        ]

        mask_d = self.id_ >= 0
        mask_s = self.is_ >= 0
        touched = np.concatenate([self.id_[mask_d], self.is_[mask_s]])
        self.rows = np.unique(touched)  # sorted device-touched rows
        self.k = int(self.rows.size)

        # Residual scatter: +i into drain rows, -i into source rows
        # (f_sign_neg is the precomputed flip for negated-residual form).
        self.f_idx = np.concatenate([self.id_[mask_d], self.is_[mask_s]])
        self.f_dev = np.concatenate([np.nonzero(mask_d)[0],
                                     np.nonzero(mask_s)[0]])
        self.f_sign = np.concatenate([np.ones(int(mask_d.sum())),
                                      -np.ones(int(mask_s.sum()))])
        self.f_sign_neg = -self.f_sign

        # Jacobian scatter into the k x dim correction block M: flat
        # index, derivative source (0=dg, 1=dd, 2=ds), device index and
        # sign for each of the up-to-six stamps per device.
        flat, src, dev, sgn = [], [], [], []
        for r_arr, r_mask, row_sign in ((self.id_, mask_d, 1.0),
                                        (self.is_, mask_s, -1.0)):
            for source, c_arr in enumerate((self.ig, self.id_, self.is_)):
                mask = r_mask & (c_arr >= 0)
                devices = np.nonzero(mask)[0]
                if not devices.size:
                    continue
                pos = np.searchsorted(self.rows, r_arr[mask])
                flat.append(pos * self.dim + c_arr[mask])
                src.append(np.full(devices.size, source, dtype=np.intp))
                dev.append(devices)
                sgn.append(np.full(devices.size, row_sign))
        empty_i = np.empty(0, dtype=np.intp)
        self.m_flat = np.concatenate(flat) if flat else empty_i
        self.m_src = np.concatenate(src) if src else empty_i
        self.m_dev = np.concatenate(dev) if dev else empty_i
        self.m_sign = np.concatenate(sgn) if sgn else np.empty(0)
        self._mbuf = np.empty((self.k, self.dim))

    def evaluate(self, x: np.ndarray):
        """Currents ``i`` and derivative block ``D = [dg; dd; ds]``.

        ``i`` has one entry per device; ``D`` is ``(3, n)``.
        """
        if self.n < _BATCH_EVAL_MIN:
            # Tiny population: the scalar reference model through a
            # Python loop beats numpy dispatch overhead (see
            # _BATCH_EVAL_MIN).  Same math, same outputs.
            xl = x.tolist()
            xl.append(0.0)  # ground slot
            out = np.array([evaluate_one(sg, be, vt, lm, gm,
                                         xl[g], xl[d], xl[s])
                            for sg, be, vt, lm, gm, g, d, s
                            in self.scalar_devs])
            return out[:, 0], out.T[1:]
        x_ext = np.empty(x.size + 1)
        x_ext[:-1] = x
        x_ext[-1] = 0.0
        vg, vd, vs = x_ext[self.gather]
        i, dg, dd, ds = evaluate_batch(self.params, vg, vd, vs)
        return i, np.stack((dg, dd, ds))

    def sub_currents(self, R: np.ndarray, i: np.ndarray) -> None:
        """Scatter-subtract device currents from the negated residual."""
        if self.f_idx.size:
            np.add.at(R, self.f_idx, self.f_sign_neg * i[self.f_dev])

    def correction(self, D: np.ndarray) -> np.ndarray:
        """Device Jacobian contribution as a ``k x dim`` row block.

        The returned array is a per-batch scratch buffer, overwritten by
        the next call — consume it before evaluating again.
        """
        M = self._mbuf
        M.fill(0.0)
        if self.m_flat.size:
            np.add.at(M.ravel(), self.m_flat,
                      self.m_sign * D[self.m_src, self.m_dev])
        return M

    # -- batched multi-candidate variants ------------------------------
    # Same math as evaluate/sub_currents/correction with a leading
    # candidate axis ``a`` (the *active* subset of an (S, dim) block).
    # They always go through evaluate_batch: with a >= 2 candidates the
    # population is a*n and the scalar-crossover argument above no
    # longer applies.
    def evaluate_many(self, X: np.ndarray):
        """Currents ``(a, n)`` and derivatives ``(a, 3, n)`` at each row
        of the ``(a, dim)`` state block ``X``."""
        x_ext = np.concatenate(
            [X, np.zeros((X.shape[0], 1))], axis=1)  # ground slot
        v = x_ext[:, self.gather]  # (a, 3, n)
        i, dg, dd, ds = evaluate_batch(self.params, v[:, 0], v[:, 1],
                                       v[:, 2])
        return i, np.stack((dg, dd, ds), axis=1)

    def sub_currents_many(self, R: np.ndarray, i: np.ndarray) -> None:
        """Scatter-subtract ``(a, n)`` device currents from the ``(a,
        dim)`` negated-residual block, per candidate row."""
        if self.f_idx.size:
            a = R.shape[0]
            np.add.at(R, (np.arange(a)[:, None], self.f_idx[None, :]),
                      self.f_sign_neg * i[:, self.f_dev])

    def correction_many(self, D: np.ndarray) -> np.ndarray:
        """Per-candidate Jacobian correction blocks ``(a, k, dim)``.

        Unlike :meth:`correction` this allocates (the active-set size
        changes between iterations, so a fixed scratch buffer would
        churn anyway).
        """
        a = D.shape[0]
        M = np.zeros((a, self.k * self.dim))
        if self.m_flat.size:
            np.add.at(M, (np.arange(a)[:, None], self.m_flat[None, :]),
                      self.m_sign * D[:, self.m_src, self.m_dev])
        return M.reshape(a, self.k, self.dim)


def _voltage_at(x: np.ndarray, index: int) -> float:
    return x[index] if index >= 0 else 0.0


try:  # Low-overhead LAPACK entry for the tiny k x k Woodbury system:
    # the np.linalg.solve wrapper costs several times the actual solve
    # at these sizes.
    from scipy.linalg.lapack import dgesv as _dgesv
except ImportError:  # pragma: no cover - scipy-less fallback
    _dgesv = None


def _solve_small(S: np.ndarray, rhs: np.ndarray):
    """Solve a small dense system; returns ``(solution, singular)``.

    Both inputs may be overwritten — callers pass freshly computed
    scratch arrays.
    """
    if _dgesv is not None:
        _, _, sol, info = _dgesv(S, rhs, 1, 1)
        return sol, info != 0
    try:
        return np.linalg.solve(S, rhs), False
    except np.linalg.LinAlgError:
        return rhs, True


def _applied_step(step: float) -> float:
    """Magnitude of the update actually applied after damping."""
    return min(step, _DAMP_LIMIT)


def _raise_nonconverged(residuals: np.ndarray, applied: float,
                        context: str):
    _NONCONVERGED.inc()
    worst = int(residuals.argmax()) if residuals.size else 0
    raise ConvergenceError(
        f"Newton did not converge within {_MAX_ITERATIONS} iterations "
        f"during {context} (last applied step {applied:.3e} V, worst "
        f"residual {residuals.max(initial=0.0):.3e} at node index {worst})")


# ----------------------------------------------------------------------
# Legacy dense kernel (pre-rework reference)
# ----------------------------------------------------------------------
def _residual_at(base_residual_of, devices: list[_DeviceStamps],
                 x: np.ndarray) -> np.ndarray:
    """Full residual ``F(x)`` (linear part + device currents).

    Used only by the non-convergence diagnostic: the iteration loop
    assembles F and J together inline for speed.
    """
    F = base_residual_of(x)
    for ds in devices:
        i, _, _, _ = ds.device.evaluate(_voltage_at(x, ds.ig),
                                        _voltage_at(x, ds.id_),
                                        _voltage_at(x, ds.is_))
        if ds.id_ >= 0:
            F[ds.id_] += i
        if ds.is_ >= 0:
            F[ds.is_] -= i
    return F


def _newton_solve(base_jacobian: np.ndarray, base_residual_of,
                  devices: list[_DeviceStamps], x: np.ndarray,
                  context: str) -> np.ndarray:
    """Damped Newton on ``F(x) = base_residual(x) + device_currents(x)``.

    ``base_jacobian`` is the (constant) linear part of dF/dx;
    ``base_residual_of(x)`` returns the linear part of F(x).  This is
    the pre-rework dense kernel: devices are stamped one at a time and
    the full Jacobian is factored from scratch every iteration.
    """
    _fire_fault("newton.step", context)
    x = x.copy()
    for iteration in range(1, _MAX_ITERATIONS + 1):
        F = base_residual_of(x)
        J = base_jacobian.copy()
        for ds in devices:
            vg = _voltage_at(x, ds.ig)
            vd = _voltage_at(x, ds.id_)
            vs = _voltage_at(x, ds.is_)
            i, dg, dd, dsrc = ds.device.evaluate(vg, vd, vs)
            if ds.id_ >= 0:
                F[ds.id_] += i
                if ds.ig >= 0:
                    J[ds.id_, ds.ig] += dg
                J[ds.id_, ds.id_] += dd
                if ds.is_ >= 0:
                    J[ds.id_, ds.is_] += dsrc
            if ds.is_ >= 0:
                F[ds.is_] -= i
                if ds.ig >= 0:
                    J[ds.is_, ds.ig] -= dg
                if ds.id_ >= 0:
                    J[ds.is_, ds.id_] -= dd
                J[ds.is_, ds.is_] -= dsrc
        try:
            delta = np.linalg.solve(J, -F)
        except np.linalg.LinAlgError as exc:
            _SINGULAR.inc()
            raise ConvergenceError(
                f"singular Jacobian during {context}") from exc
        step = np.abs(delta).max(initial=0.0)
        if step > _DAMP_LIMIT:
            delta *= _DAMP_LIMIT / step
        x += delta
        if step < _VTOL:
            _ITERATIONS.observe(iteration)
            return x
    # Diagnose the iterate we actually stopped at: the loop's F was
    # assembled *before* the final `x += delta`, so re-evaluate.
    residuals = np.abs(_residual_at(base_residual_of, devices, x))
    _raise_nonconverged(residuals, _applied_step(step), context)


# ----------------------------------------------------------------------
# Fast kernel: factorization reuse + vectorized stamping
# ----------------------------------------------------------------------
class _NewtonKernel:
    """Newton solver for ``F(x) = A x + i_dev(x) - b`` with ``A`` fixed.

    Construction factors ``A`` once and precomputes ``W = A⁻¹ E_R``;
    every subsequent :meth:`solve` (one per time step, in the transient
    loop) reuses both.  Falls back to modified Newton when ``A`` is
    singular or the device-touched row count ``k`` approaches the
    system size.
    """

    __slots__ = ("A", "batch", "base_fact", "W", "_py", "_mn_J",
                 "_mn_fact", "_mn_x", "_mn_uses")

    def __init__(self, A: np.ndarray, batch: _DeviceBatch):
        self.A = A
        self.batch = batch
        self.base_fact = None
        self.W = None
        self._py = None
        self._mn_J = None     # modified Newton: last built Jacobian,
        self._mn_fact = None  # its (lazily built) factorization,
        self._mn_x = None     # the iterate it was built at,
        self._mn_uses = 0     # and how many solves reused it
        if 2 * batch.k <= A.shape[0]:
            try:
                fact = factorize(A)
            except np.linalg.LinAlgError:
                fact = None  # e.g. nodes held only by devices at DC
            if fact is not None:
                self.base_fact = fact
                if batch.k:
                    selector = np.zeros((A.shape[0], batch.k))
                    selector[batch.rows, np.arange(batch.k)] = 1.0
                    self.W = fact.solve(selector)
                if (batch.n and batch.n < _BATCH_EVAL_MIN
                        and batch.k in (1, 2) and batch.dim <= 24):
                    self._py = self._build_py_fast()

    def _build_py_fast(self):
        """Precompute the pure-Python Woodbury iteration's tables.

        At the dims this library builds (a handful of nodes, one or two
        devices) every numpy call on the iteration path is dominated by
        dispatch overhead, the same economics as ``_BATCH_EVAL_MIN``.
        Folding the scatter maps through ``A⁻¹`` once turns an iteration
        into ~150 float operations with *zero* array temporaries:

        * ``gdev[d]`` replays device ``d``'s residual-current scatter
          through the base solve — ``A⁻¹(b - A x - scatter(i))`` becomes
          ``u - x + Σ_d i_d · gdev[d]`` with ``u = A⁻¹ b`` hoisted out
          of the loop;
        * each Jacobian stamp ``e`` carries its gather coordinates and
          its precontracted row of ``M W`` (``tw``), so the ``k×k``
          Woodbury system accumulates in scalar registers and is solved
          in closed form (``k <= 2``).
        """
        batch, fact = self.batch, self.base_fact
        n, dim, k = batch.n, batch.dim, batch.k
        F = np.zeros((n, dim))
        if batch.f_idx.size:
            np.add.at(F, (batch.f_dev, batch.f_idx), batch.f_sign_neg)
        gdev = [tuple(row) for row in fact.solve_rows(F).tolist()]
        W_rows = [tuple(row) for row in self.W.tolist()]
        stamp_rows: list[list[tuple]] = [[] for _ in range(k)]
        for e in range(batch.m_flat.size):
            pos, col = divmod(int(batch.m_flat[e]), dim)
            sign = float(batch.m_sign[e])
            tw = tuple(sign * w for w in W_rows[col])
            stamp_rows[pos].append(
                (int(batch.m_src[e]), int(batch.m_dev[e]), col, sign)
                + tw)
        return gdev, W_rows, stamp_rows, batch.scalar_devs, dim, k

    def solve(self, b: np.ndarray, x0: np.ndarray,
              context: str) -> np.ndarray:
        _fire_fault("newton.step", context)
        if self.base_fact is not None:
            return self._solve_woodbury(b, x0, context)
        return self._solve_modified(b, x0, context)

    # -- residual assembly --------------------------------------------
    def _residual_neg(self, x: np.ndarray, b: np.ndarray):
        """Negated residual ``-F(x) = b - A x - i_dev(x)`` plus the
        device derivative block at ``x`` (``None`` with no devices).

        Working with ``-F`` lets both Newton paths feed it straight into
        their solves (``delta = J⁻¹ (-F)``) without an extra negation.
        """
        R = b - self.A @ x
        batch = self.batch
        if batch.n:
            i, D = batch.evaluate(x)
            batch.sub_currents(R, i)
            return R, D
        return R, None

    # -- Woodbury path -------------------------------------------------
    def _solve_woodbury_py(self, b: np.ndarray, x0: np.ndarray,
                           context: str) -> np.ndarray:
        """Dispatch-free Woodbury Newton (see :meth:`_build_py_fast`).

        Same root, damping and acceptance semantics as
        :meth:`_solve_woodbury`; the iterates differ only by the
        rounding of the algebraically identical residual form, orders
        of magnitude inside the acceptance tolerance.
        """
        gdev, W_rows, stamp_rows, devs, dim, k = self._py
        u = self.base_fact.solve(b).tolist()
        x = x0.tolist()
        x.append(0.0)  # ground slot for the device gather indices
        rng = range(dim)
        step = 0.0
        for iteration in range(1, _MAX_ITERATIONS + 1):
            y = [ul - xl for ul, xl in zip(u, x)]
            D = []
            append_d = D.append
            for (sg, be, vt, lm, gm, g, d, s), grow in zip(devs, gdev):
                cur, dgg, ddd, dss = evaluate_one(sg, be, vt, lm, gm,
                                                  x[g], x[d], x[s])
                append_d((dgg, ddd, dss))
                for j in rng:
                    y[j] += cur * grow[j]
            if k == 2:
                s00 = s11 = 1.0
                s01 = s10 = r0 = r1 = 0.0
                for src, dev, col, sign, tw0, tw1 in stamp_rows[0]:
                    de = D[dev][src]
                    r0 += de * sign * y[col]
                    s00 += de * tw0
                    s01 += de * tw1
                for src, dev, col, sign, tw0, tw1 in stamp_rows[1]:
                    de = D[dev][src]
                    r1 += de * sign * y[col]
                    s10 += de * tw0
                    s11 += de * tw1
                det = s00 * s11 - s01 * s10
                if det == 0.0:
                    _SINGULAR.inc()
                    raise ConvergenceError(
                        f"singular Jacobian during {context}")
                z0 = (s11 * r0 - s01 * r1) / det
                z1 = (s00 * r1 - s10 * r0) / det
                deltas = [yj - w[0] * z0 - w[1] * z1
                          for yj, w in zip(y, W_rows)]
            else:  # k == 1
                s00 = 1.0
                r0 = 0.0
                for src, dev, col, sign, tw0 in stamp_rows[0]:
                    de = D[dev][src]
                    r0 += de * sign * y[col]
                    s00 += de * tw0
                if s00 == 0.0:
                    _SINGULAR.inc()
                    raise ConvergenceError(
                        f"singular Jacobian during {context}")
                z0 = r0 / s00
                deltas = [yj - w[0] * z0 for yj, w in zip(y, W_rows)]
            _WOODBURY.inc()
            step = 0.0
            for dlt in deltas:
                ad = -dlt if dlt < 0.0 else dlt
                if ad > step:
                    step = ad
            if step > _DAMP_LIMIT:
                scale = _DAMP_LIMIT / step
                for j in rng:
                    x[j] += deltas[j] * scale
            else:
                for j in rng:
                    x[j] += deltas[j]
            if step < _VTOL:
                _ITERATIONS.observe(iteration)
                return np.array(x[:dim])
        xa = np.array(x[:dim])
        residuals = np.abs(self._residual_neg(xa, b)[0])
        _raise_nonconverged(residuals, _applied_step(step), context)

    def _solve_woodbury(self, b: np.ndarray, x0: np.ndarray,
                        context: str) -> np.ndarray:
        if self._py is not None:
            return self._solve_woodbury_py(b, x0, context)
        batch, W = self.batch, self.W
        solve_base = self.base_fact.solve
        k = batch.k
        x = x0.copy()
        step = 0.0
        for iteration in range(1, _MAX_ITERATIONS + 1):
            R, D = self._residual_neg(x, b)
            y = solve_base(R)
            if k:
                M = batch.correction(D)
                S = M @ W
                S.ravel()[::k + 1] += 1.0
                z, singular = _solve_small(S, M @ y)
                if singular:
                    # det J = det A * det S: S singular means the full
                    # Jacobian is singular, same failure as the dense
                    # kernel's np.linalg.solve.
                    _SINGULAR.inc()
                    raise ConvergenceError(
                        f"singular Jacobian during {context}")
                delta = y - W @ z
            else:
                delta = y
            _WOODBURY.inc()
            step = np.abs(delta).max(initial=0.0)
            if step > _DAMP_LIMIT:
                delta *= _DAMP_LIMIT / step
            x += delta
            if step < _VTOL:
                _ITERATIONS.observe(iteration)
                return x
        residuals = np.abs(self._residual_neg(x, b)[0])
        _raise_nonconverged(residuals, _applied_step(step), context)

    # -- modified-Newton path -----------------------------------------
    def _fresh_delta(self, D, R: np.ndarray, context: str):
        """Rebuild the full Jacobian at the current iterate and solve.

        Returns ``(J, fact, delta)``.  On the dense backend a fresh
        direction is one dense solve and ``fact`` is ``None`` — the
        factorization is only built (lazily, in the caller) if a later
        stale iteration actually reuses ``J``.  On the sparse backend
        the SuperLU factorization *is* the solve, so it is returned
        eagerly and stale iterations reuse it for free.
        """
        _REFRESH.inc()
        if is_sparse_matrix(self.A):
            J = self.A
            if self.batch.k:
                # A + E_R M as a sparse sum: the k-row dense correction
                # block expands through a (dim, k) selector.
                expand = _sp.csr_matrix(
                    (np.ones(self.batch.k),
                     (self.batch.rows, np.arange(self.batch.k))),
                    shape=(self.A.shape[0], self.batch.k))
                J = (self.A
                     + expand @ _sp.csr_matrix(
                         self.batch.correction(D))).tocsc()
            try:
                fact = factorize(J)
            except np.linalg.LinAlgError as exc:
                _SINGULAR.inc()
                raise ConvergenceError(
                    f"singular Jacobian during {context}") from exc
            return J, fact, fact.solve(R)
        J = self.A.copy()
        if self.batch.k:
            J[self.batch.rows] += self.batch.correction(D)
        try:
            return J, None, np.linalg.solve(J, R)
        except np.linalg.LinAlgError as exc:
            _SINGULAR.inc()
            raise ConvergenceError(
                f"singular Jacobian during {context}") from exc

    def _solve_modified(self, b: np.ndarray, x0: np.ndarray,
                        context: str) -> np.ndarray:
        """Modified Newton: reuse a stale factored Jacobian.

        The matrix persists on the kernel between :meth:`solve` calls,
        so consecutive transient steps share factors — on systems of at
        least ``_MODIFIED_STALE_MIN`` unknowns; below that every
        iteration is plain Newton with vectorized stamping.  A fresh
        Jacobian is rebuilt (``newton.jacobian_refresh`` counts these):

        * *before* solving, whenever the previous update was clamped by
          the damping limit — in that walk-in regime step norms do not
          contract, so the stall test below would refresh every
          iteration anyway, after wasting a stale solve each time;
        * when a stale step fails to contract below ``_STALL_RATIO``
          times the previous step norm;
        * before accepting convergence — the final applied update always
          comes from a Jacobian evaluated at the current iterate, so the
          accepted state matches exact Newton's.
        """
        x = x0.copy()
        J, fact, uses = self._mn_J, self._mn_fact, self._mn_uses
        x_built = self._mn_x
        reuse = self.A.shape[0] >= _MODIFIED_STALE_MIN
        # Stale factors are only trusted on big systems (see
        # _MODIFIED_STALE_MIN) and near their linearization point: a
        # cold restart (e.g. repeated DC solves from zeros) refreshes
        # immediately instead of wandering on far-field directions.
        stale = (reuse and J is not None
                 and np.abs(x - x_built).max(initial=0.0) <= _DAMP_LIMIT)
        prev_step = None
        step = 0.0
        for iteration in range(1, _MAX_ITERATIONS + 1):
            R, D = self._residual_neg(x, b)
            if not stale or (prev_step is not None
                             and prev_step > _DAMP_LIMIT):
                J, fact, delta = self._fresh_delta(D, R, context)
                uses, x_built = 1, x.copy()
                stale = False
            else:
                try:
                    if fact is None and uses >= 2:
                        # Third solve against the same matrix: from here
                        # on the factored form amortizes.
                        fact = factorize(J)
                    delta = (fact.solve(R) if fact is not None
                             else np.linalg.solve(J, R))
                except np.linalg.LinAlgError as exc:
                    _SINGULAR.inc()
                    raise ConvergenceError(
                        f"singular Jacobian during {context}") from exc
                uses += 1
            step = np.abs(delta).max(initial=0.0)
            if stale and (step < _VTOL
                          or (prev_step is not None
                              and step >= _STALL_RATIO * prev_step)):
                # Stalled — or about to accept a stale direction: redo
                # the step against a Jacobian built at this iterate.
                J, fact, delta = self._fresh_delta(D, R, context)
                uses, x_built = 1, x.copy()
                stale = False
                step = np.abs(delta).max(initial=0.0)
            if step > _DAMP_LIMIT:
                delta *= _DAMP_LIMIT / step
            x += delta
            if step < _VTOL:
                _ITERATIONS.observe(iteration)
                self._mn_J, self._mn_fact = J, fact
                self._mn_x, self._mn_uses = x_built, uses
                return x
            prev_step = step
            stale = reuse
        residuals = np.abs(self._residual_neg(x, b)[0])
        _raise_nonconverged(residuals, _applied_step(step), context)


def _corrupt_state(x: np.ndarray, kind: str) -> np.ndarray:
    """Apply one injected corruption flavor to an accepted state.

    Only reachable through a ``trust.verify`` fault
    (:class:`~repro.resilience.faults.InjectedCorruption`): ``"nan"``
    poisons entries, ``"perturb"`` applies a gross multiplicative +
    offset error — both far outside the residual tolerance, emulating
    a silently wrong solve the audit must catch.
    """
    x = np.array(x, dtype=float)
    if kind == "nan":
        x[:: max(1, x.size // 3)] = np.nan
    else:
        x *= 1.25
        x += 0.1
    return x


class _VerifiedSolve:
    """Trust wrapper around a fast :class:`_NewtonKernel`.

    Post-verifies accepted states: every
    ``TrustConfig.check_interval``-th call runs a finiteness tripwire
    plus a full relative-residual audit (the residual costs one extra
    device evaluation and mat-vec, so it is sampled — and the clean
    path between samples is pure bookkeeping — to keep the overhead
    inside the perf-smoke budget).  When a fault plan is installed the
    sampling stride is bypassed so injected corruption is always
    exercised.  On a violation the escalation ladder runs:

    1. ``fresh-newton`` — exact Newton through the modified-Newton
       path with all cached factors discarded (covers a corrupted base
       factorization / Woodbury update);
    2. ``legacy-dense`` / ``dense-rebuild`` — the pre-rework dense
       kernel over a densified copy of ``A`` (covers a bad fast-path
       anywhere; the hop is named ``dense-rebuild`` when ``A`` was
       sparse).

    Each hop's result is re-verified before being trusted; each hop is
    recorded through :func:`repro.trust.record_event` so the analyzer
    labels the report.  If the whole ladder fails,
    :class:`TrustViolation` propagates into the ordinary recovery
    ladders.  On the clean path the kernel's state is returned
    *unchanged* — bit-identical to running without the wrapper.
    """

    __slots__ = ("kernel", "stamps", "anorm", "tol", "interval",
                 "count", "_legacy_A")

    def __init__(self, kernel: _NewtonKernel,
                 stamps: list[_DeviceStamps]):
        cfg = _trust.config()
        self.kernel = kernel
        self.stamps = stamps
        self.anorm = (kernel.base_fact.anorm
                      if kernel.base_fact is not None
                      else _trust.matrix_norm1(kernel.A))
        self.tol = _trust.residual_tolerance(kernel.A.shape[0],
                                             cfg.newton_rtol)
        self.interval = max(1, cfg.check_interval)
        self.count = 0
        self._legacy_A = None

    def _residual_of(self, x: np.ndarray, b: np.ndarray) -> float:
        R, _ = self.kernel._residual_neg(x, b)
        return _trust.relative_residual(R, self.anorm, x, b)

    def __call__(self, b: np.ndarray, x0: np.ndarray,
                 context: str) -> np.ndarray:
        x = self.kernel.solve(b, x0, context)
        self.count += 1
        if self.count % self.interval and _active_plan() is None:
            # Hot path: pure bookkeeping, no numpy work — this branch
            # is what keeps the clean-path overhead inside the 5%
            # perf-smoke budget.  A NaN state cannot ride through it
            # silently: the Newton acceptance comparison rejects
            # non-finite step norms, and anything that slips past is
            # caught by the sampled audit below within one interval.
            return x
        forced = False
        try:
            _fire_fault("trust.verify", context)
        except InjectedCorruption as fault:
            # The fault models the solve itself having gone silently
            # wrong, so the corrupted state must face the full audit.
            x = _corrupt_state(x, fault.kind)
            forced = True
        # Sum-based finiteness tripwire: NaN and inf both propagate
        # through the reduction (inf - inf is NaN), so this catches
        # exactly what isfinite().all() would at a fraction of the
        # cost.
        if not math.isfinite(float(x.sum())):
            return self._escalate(b, x0, context,
                                  detail="non-finite accepted state")
        if not forced and self.count % self.interval:
            return x
        _trust.count_check()
        rel = self._residual_of(x, b)
        if rel <= self.tol:
            return x
        return self._escalate(
            b, x0, context,
            detail=f"relative residual {rel:.3e} > {self.tol:.3e}")

    def _verified(self, x: np.ndarray, b: np.ndarray) -> bool:
        if not math.isfinite(float(x.sum())):
            return False
        _trust.count_check()
        return self._residual_of(x, b) <= self.tol

    def _escalate(self, b: np.ndarray, x0: np.ndarray, context: str,
                  *, detail: str) -> np.ndarray:
        _trust.record_event("violation", context=context, detail=detail)
        kernel = self.kernel
        # Hop 1: fresh-factor exact Newton — drop every cached factor
        # the suspect state may have come through.
        kernel._mn_J = kernel._mn_fact = kernel._mn_x = None
        kernel._mn_uses = 0
        try:
            x1 = kernel._solve_modified(b, x0, context)
        except ConvergenceError:
            x1 = None
        if x1 is not None and self._verified(x1, b):
            _trust.record_event("escalated", context=context,
                                hop="fresh-newton", detail=detail)
            return x1
        # Hop 2: the legacy dense kernel, rebuilt dense from sparse
        # when needed — maximum independence from the fast path.
        hop = ("dense-rebuild" if is_sparse_matrix(kernel.A)
               else "legacy-dense")
        if self._legacy_A is None:
            self._legacy_A = (kernel.A.toarray()
                              if is_sparse_matrix(kernel.A)
                              else kernel.A)
        A = self._legacy_A
        try:
            x2 = _newton_solve(A, lambda y: A @ y - b, self.stamps,
                               x0, context)
        except ConvergenceError:
            x2 = None
        if x2 is not None and self._verified(x2, b):
            _trust.record_event("escalated", context=context, hop=hop,
                                detail=detail)
            return x2
        _trust.record_event("unrecovered", context=context,
                            detail=detail)
        raise TrustViolation(
            f"accepted solve failed verification during {context} "
            f"({detail}) and no escalation hop produced a verified "
            "state")


def _solver_factory(mode: str, stamps: list[_DeviceStamps],
                    batch: _DeviceBatch | None):
    """``make(A) -> solve(b, x0, context)`` for the selected kernel.

    Both kernels solve ``F(x) = A x + i_dev(x) - b = 0``; the factory
    hides which machinery does it so the DC / transient / recovery flows
    below are kernel-agnostic.  Fast-kernel solvers are wrapped in
    :class:`_VerifiedSolve` while the trust layer is enabled; the
    legacy kernel is the reference oracle the ladder escalates *to* and
    stays unwrapped.
    """
    if mode == "legacy":
        def make(A: np.ndarray):
            if is_sparse_matrix(A):
                # The legacy reference re-stamps and solves dense per
                # iteration; densify up front so it stays usable as an
                # equivalence oracle on sparse-stamped systems.
                A = A.toarray()
            def solve(b, x0, context):
                return _newton_solve(A, lambda y, A=A, b=b: A @ y - b,
                                     stamps, x0, context)
            return solve
        return make

    def make(A: np.ndarray):
        kernel = _NewtonKernel(A, batch)
        if not _trust.trust_enabled():
            return kernel.solve
        return _VerifiedSolve(kernel, stamps)
    return make


# ----------------------------------------------------------------------
# Recovery ladder
# ----------------------------------------------------------------------
def _recover_dc(mna: MnaSystem, G: np.ndarray, make, rhs0: np.ndarray,
                name: str) -> np.ndarray:
    """DC operating-point recovery: gmin stepping, then source ramping.

    Gmin stepping shunts every node with a conductance ``g`` that walks
    down the ladder to zero, each solve warm-starting the next — the
    shunt keeps the Jacobian diagonally dominant while the estimate
    approaches the true operating point.  If that still fails, the
    source-ramp homotopy solves at increasing source amplitudes from a
    quarter strength up to full, again warm-starting each stage.
    """
    n = mna.n_nodes
    diag = np.arange(n)
    x = np.zeros(mna.dim)
    try:
        for g in _GMIN_LADDER:
            if is_sparse_matrix(G):
                shunt = _sp.coo_matrix(
                    (np.full(n, g), (diag, diag)), shape=G.shape)
                Gg = (G + shunt).tocsc()
            else:
                Gg = G.copy()
                Gg[diag, diag] += g
            x = make(Gg)(rhs0, x, f"gmin={g:g} DC recovery of {name}")
        _RECOVERED_GMIN.inc()
        return x
    except ConvergenceError:
        pass
    x = np.zeros(mna.dim)
    solve = make(G)
    for alpha in _RAMP_LEVELS:
        x = solve(rhs0 * alpha, x,
                  f"source-ramp {alpha:g} DC recovery of {name}")
    _RECOVERED_RAMP.inc()
    return x


def _integrate_bisect(mna: MnaSystem, G: np.ndarray, C: np.ndarray,
                      make, solvers: dict, x: np.ndarray,
                      t0: float, t1: float, name: str,
                      depth: int, rhs_of=None) -> np.ndarray:
    """One backward-Euler step ``t0 -> t1``, bisecting on failure.

    Each level halves the step; ``depth`` bounds the recursion, so the
    finest sub-step is ``(t1 - t0) / 2**depth`` of the original grid.
    ``solvers`` caches one kernel per sub-step size: both halves of a
    bisection level (and every recursion into it) share the factors.
    ``rhs_of(t)`` overrides the source evaluation — the batched kernel
    passes a per-candidate closure carrying its waveform overrides.
    """
    h = t1 - t0
    cached = solvers.get(h)
    if cached is None:
        Ch = C / h
        cached = (make(Ch + G), Ch)
        solvers[h] = cached
    solve, Ch = cached
    if rhs_of is None:
        rhs1 = mna.rhs_matrix(np.array([t1]))[:, 0]
    else:
        rhs1 = rhs_of(t1)
    b = Ch @ x + rhs1
    try:
        return solve(b, x, f"t={t1:.3e}s (sub-step dt={h:.3e}s) of {name}")
    except ConvergenceError:
        if depth <= 0:
            raise
        t_mid = 0.5 * (t0 + t1)
        x_mid = _integrate_bisect(mna, G, C, make, solvers, x, t0, t_mid,
                                  name, depth - 1, rhs_of)
        return _integrate_bisect(mna, G, C, make, solvers, x_mid, t_mid,
                                 t1, name, depth - 1, rhs_of)


# ----------------------------------------------------------------------
# Top-level transient flow
# ----------------------------------------------------------------------
def _device_batch(circuit: Circuit, mna: MnaSystem) -> _DeviceBatch:
    """The circuit's :class:`_DeviceBatch`, memoized on the ``mna``.

    Shared between the fast scalar kernel and the batched
    multi-candidate kernel (:mod:`repro.sim.batched`) — the scatter maps
    depend only on topology, which the stamped system pins.
    """
    batch = mna.__dict__.get("_device_batch")
    if batch is None:
        batch = _DeviceBatch(circuit.mosfets, mna)
        mna.__dict__["_device_batch"] = batch
    return batch


def _kernel_factory(circuit: Circuit, mna: MnaSystem):
    """Solver factory for ``circuit`` under the current kernel mode.

    Factories are memoized per-mode on the ``mna`` object: the scatter
    maps of :class:`_DeviceBatch` depend only on the circuit the system
    was stamped from, so callers that hold on to an ``mna`` (e.g.
    repeated :func:`dc_operating_point` calls) skip rebuilding them.
    """
    mode = _KERNEL_MODE
    cache = mna.__dict__.setdefault("_kernel_factories", {})
    make = cache.get(mode)
    if make is None:
        stamps = [_DeviceStamps(m, mna.node_index)
                  for m in circuit.mosfets]
        batch = _device_batch(circuit, mna) if mode == "fast" else None
        make = _solver_factory(mode, stamps, batch)
        cache[mode] = make
    return make


def _cached_solver(mna: MnaSystem, key, build):
    """Per-``mna`` solver memoization, keyed by (kernel mode, grid).

    This is what makes sweeps cheap: with :func:`build_mna` returning
    the same cached system for an unchanged circuit, every candidate
    after the first reuses the already-factored backward-Euler kernel
    instead of re-running ``make(C/h + G)``.  ``sim.factor_cache.*``
    counters expose the hit rate.
    """
    cache = mna.__dict__.setdefault("_solver_cache", {})
    entry = cache.get(key)
    if entry is None:
        entry = build()
        cache[key] = entry
        _FACTOR_MISS.inc()
    else:
        _FACTOR_HIT.inc()
    return entry


def _dc_solve(mna: MnaSystem, make, rhs0: np.ndarray,
              name: str) -> np.ndarray:
    """DC operating point ``G x + i_dev(x) = rhs0`` with recovery."""
    solve = _cached_solver(mna, (_KERNEL_MODE, _trust.trust_enabled(),
                                 "dc"),
                           lambda: make(mna.G))
    try:
        return solve(rhs0, np.zeros(mna.dim),
                     f"DC operating point of {name}")
    except ConvergenceError:
        return _recover_dc(mna, mna.G, make, rhs0, name)


def dc_operating_point(circuit: Circuit, *, at_time: float = 0.0,
                       mna: MnaSystem | None = None) -> np.ndarray:
    """DC operating point of a circuit containing MOSFETs.

    Sources are evaluated at ``at_time``.  Uses the currently selected
    Newton kernel, including the gmin / source-ramp recovery ladder.
    Pass a pre-built ``mna`` to skip re-stamping.
    """
    if mna is None:
        mna = build_mna(circuit, allow_devices=True)
    make = _kernel_factory(circuit, mna)
    rhs0 = mna.rhs_matrix(np.array([at_time]))[:, 0]
    return _dc_solve(mna, make, rhs0, circuit.name)


def simulate_nonlinear(circuit: Circuit, t_stop: float, dt: float, *,
                       t_start: float = 0.0,
                       x0: np.ndarray | None = None) -> SimulationResult:
    """Transient-simulate a circuit containing MOSFETs.

    The initial state defaults to the DC operating point with all sources
    evaluated at ``t_start``.  Pass ``x0`` to chain simulations.
    Raises ``ValueError`` eagerly for a degenerate time grid
    (``t_stop <= t_start``) or a non-positive ``dt``.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt:g}")
    if t_stop <= t_start:
        raise ValueError(
            f"degenerate time grid for {circuit.name}: t_stop "
            f"({t_stop:g} s) must exceed t_start ({t_start:g} s)")

    mna = build_mna(circuit, allow_devices=True)
    times = time_grid(t_stop, dt, t_start)
    h = times[1] - times[0]
    rhs = mna.rhs_matrix(times)
    G, C = mna.G, mna.C
    make = _kernel_factory(circuit, mna)

    # DC operating point: F(x) = G x + i_dev(x) - rhs0.
    if x0 is None:
        x0 = _dc_solve(mna, make, rhs[:, 0], circuit.name)
    else:
        x0 = np.asarray(x0, dtype=float).copy()
        if x0.shape != (mna.dim,):
            raise ValueError(f"x0 must have shape ({mna.dim},)")

    # Backward Euler: F(x) = (C/h)(x - x_prev) + G x + i_dev(x) - rhs_k.
    # A = C/h + G is constant for the whole grid: the fast kernel
    # factors it exactly once here — and the _cached_solver memo keeps
    # that factorization alive across *calls* on the same circuit, so a
    # sweep rebinding only source waveforms never re-factors.
    def _transient_solver():
        Ch = C / h
        return make(Ch + G), Ch
    solve, Ch = _cached_solver(
        mna, (_KERNEL_MODE, _trust.trust_enabled(), h),
        _transient_solver)
    bisect_solvers: dict = {}
    states = np.empty((mna.dim, times.size))
    states[:, 0] = x0
    x = x0
    fast = _KERNEL_MODE == "fast"
    for k in range(1, times.size):
        b_k = Ch @ x + rhs[:, k]
        # Fast kernel: warm-start Newton from the extrapolation of the
        # last states — quadratic once three are available, linear
        # before that.  On smooth stretches this saves an iteration per
        # step; the converged solution is the same root either way
        # (within the acceptance tolerance).
        if fast and k >= 3:
            guess = 3.0 * (x - states[:, k - 2]) + states[:, k - 3]
        elif fast and k >= 2:
            guess = x + (x - states[:, k - 2])
        else:
            guess = x
        try:
            x = solve(b_k, guess, f"t={times[k]:.3e}s of {circuit.name}")
        except ConvergenceError:
            # Recovery ladder: re-integrate the step with bisected dt
            # (bounded depth) before giving up on the simulation.
            t_mid = 0.5 * (times[k - 1] + times[k])
            x_mid = _integrate_bisect(
                mna, G, C, make, bisect_solvers, x, times[k - 1], t_mid,
                circuit.name, _MAX_SUBSTEP_DEPTH - 1)
            x = _integrate_bisect(
                mna, G, C, make, bisect_solvers, x_mid, t_mid, times[k],
                circuit.name, _MAX_SUBSTEP_DEPTH - 1)
            _RECOVERED_SUBSTEP.inc()
        states[:, k] = x

    return SimulationResult(mna, times, states)
