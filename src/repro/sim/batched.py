"""Batched multi-candidate transient kernel.

The worst-case alignment search (:mod:`repro.core.exhaustive`) runs tens
of full non-linear receiver simulations that differ *only* in the input
source waveform: same topology, same grid, same backward-Euler matrix
``A = C/h + G``.  Running them one at a time re-pays the whole per-step
machinery S times for work that is identical across candidates.

:func:`simulate_nonlinear_batch` instead carries all S candidates as one
``(S, dim)`` state block:

* ``A`` is factored **once** per (circuit, dt) — the factors live on the
  cached :class:`~repro.circuit.mna.MnaSystem`, shared across calls;
* each backward-Euler step is a multi-RHS solve
  (:meth:`~repro.sim.factor.Factorization.solve_rows`) plus one
  vectorized device evaluation over candidates × devices
  (:func:`repro.devices.evaluate_batch` with a leading candidate axis);
* Newton runs with a per-candidate convergence mask: converged
  candidates drop out of the active set (``newton.batched.active``
  counts candidate-iterations, so the shrinkage is visible in
  ``repro trace summarize``), and the per-candidate Woodbury system uses
  the same ``W = A⁻¹ E_R`` block as the scalar fast kernel;
* a candidate the block solve cannot converge falls back to the
  *existing scalar recovery ladder* — full-dt scalar solve first, then
  dt-bisection (``_integrate_bisect``) — so the resilience guarantees of
  :mod:`repro.sim.nonlinear` are preserved per candidate, not per batch.

Semantics: every candidate converges to the same Newton root as a
serial :func:`~repro.sim.nonlinear.simulate_nonlinear` run with its
waveform bound, within the 1e-9 V equivalence gate (the only difference
is BLAS gemm-vs-gemv rounding).  A single-candidate batch delegates to
the scalar path outright and is bit-identical to it.

The block solve fires the ``newton.batched`` fault point once per time
step; an injected convergence fault there demotes the whole step to the
scalar per-candidate path, which the equivalence tests use to prove the
fallback reproduces serial results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import trust as _trust
from repro.circuit.elements import Stimulus
from repro.circuit.mna import MnaSystem, build_mna
from repro.devices.mosfet import evaluate_batch_channel, evaluate_one
from repro.circuit.netlist import Circuit
from repro.obs import metrics
from repro.sim import nonlinear as _nl
from repro.resilience.faults import InjectedCorruption
from repro.resilience.faults import fire as _fire_fault
from repro.sim.factor import factorize, is_sparse_matrix

try:  # pragma: no cover - container ships scipy; gate for safety
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None
from repro.sim.nonlinear import (
    ConvergenceError,
    _BATCH_EVAL_MIN,
    _DAMP_LIMIT,
    _FACTOR_HIT,
    _FACTOR_MISS,
    _ITERATIONS,
    _MAX_ITERATIONS,
    _MAX_SUBSTEP_DEPTH,
    _RECOVERED_SUBSTEP,
    _VTOL,
    _cached_solver,
    _dc_solve,
    _device_batch,
    _integrate_bisect,
    _kernel_factory,
    _solve_small,
    simulate_nonlinear,
)
from repro.sim.nonlinear import _DeviceBatch  # noqa: F401  (re-export for tests)
from repro.sim.result import SimulationResult, time_grid

__all__ = ["simulate_nonlinear_batch"]

#: Candidate-iterations executed by block solves: the ratio of this to
#: (steps x S) shows how fast the active set drains.
_ACTIVE = metrics().counter("newton.batched.active")
#: Block solves performed (one per time step per batch).
_SOLVES = metrics().counter("newton.batched.solves")
#: Candidates demoted from a block solve to the scalar ladder.
_FALLBACK = metrics().counter("newton.batched.fallback")

#: Largest cross-candidate state spread [V] at which a stimulus-settled
#: batch collapses onto one representative trajectory.  Three orders of
#: magnitude inside the 1e-9 V solver equivalence gate: the circuits are
#: dissipative, so once candidates agree this closely under identical
#: drive they never diverge again.
_COLLAPSE_TOL = 1e-12

#: Active-candidates x devices count at or below which a block
#: iteration switches to the dispatch-free per-candidate loop: once the
#: active set has drained to a couple of stragglers, numpy's fixed
#: per-call cost on length-2 arrays exceeds the whole scalar iteration.
_PY_TAIL_MAX = 8

#: Accepted batched candidate rows demoted to the scalar trust ladder
#: by the block residual audit.
_BLOCK_VIOLATIONS = metrics().counter("trust.batched.violations")


class _BlockAudit:
    """Sampled residual audit over accepted ``(S, dim)`` state blocks.

    The batched twin of :class:`repro.sim.nonlinear._VerifiedSolve`:
    non-finite rows are caught every step, and every
    ``check_interval``-th step the full backward-Euler residual is
    recomputed per candidate against the *raw* (un-folded) ``A`` plus
    full device currents.  A violating candidate is not repaired in
    place — it is demoted to the existing scalar fallback list, where
    the trust-wrapped scalar kernel re-solves (and, if needed,
    escalates) it, so both paths share one ladder.
    """

    __slots__ = ("kernel", "anorm", "tol", "floor", "interval", "count")

    def __init__(self, kernel: _BatchedKernel):
        cfg = _trust.config()
        self.kernel = kernel
        self.anorm = _trust.matrix_norm1(kernel.A)
        self.tol = _trust.residual_tolerance(kernel.A.shape[0],
                                             cfg.newton_rtol)
        self.floor = cfg.voltage_floor
        self.interval = max(1, cfg.check_interval)
        self.count = 0

    def suspects(self, X: np.ndarray, X_prev: np.ndarray,
                 rhs_k: np.ndarray, failed: list[int],
                 context: str) -> list[int]:
        """Candidate indices whose accepted rows fail verification."""
        forced = False
        try:
            _fire_fault("trust.verify", context)
        except InjectedCorruption as fault:
            X[0] = _nl._corrupt_state(X[0], fault.kind)
            forced = True
        self.count += 1
        ok = np.ones(X.shape[0], dtype=bool)
        if failed:
            ok[failed] = False
        if not (forced or self.count % self.interval == 0):
            # Unsampled step: the finiteness guard alone, like the
            # scalar wrapper.  A non-finite row still forces the full
            # residual pass below so it is flagged with a reason.
            if np.isfinite(X[ok]).all():
                return []
        kernel = self.kernel
        _trust.count_check()
        B = (kernel.Ch @ X_prev.T).T + rhs_k
        R = B - (kernel.A @ X.T).T
        batch = kernel.batch
        if batch.n:
            i, _ = batch.evaluate_many(X)
            batch.sub_currents_many(R, i)
        den = (self.anorm * (np.abs(X).max(axis=1) + self.floor)
               + np.abs(B).max(axis=1))
        with np.errstate(invalid="ignore"):
            rel = np.abs(R).max(axis=1) / den
        bad = ok & ~(np.isfinite(rel) & (rel <= self.tol))
        if not bad.any():
            return []
        suspects = [int(c) for c in np.nonzero(bad)[0]]
        _BLOCK_VIOLATIONS.inc(len(suspects))
        worst = float(np.nanmax(rel[bad])) if np.isfinite(
            rel[bad]).any() else float("inf")
        _trust.record_event(
            "violation", context=context,
            detail=(f"batched residual audit flagged candidate(s) "
                    f"{suspects} (worst relative residual {worst:.3e} "
                    f"vs {self.tol:.3e})"))
        return suspects


class _BatchedKernel:
    """Active-set Newton over an ``(S, dim)`` state block.

    Shares the scalar fast kernel's structure — factored base ``A``,
    precomputed ``W = A⁻¹ E_R``, per-iteration ``k×k`` Woodbury solves —
    but batched over candidates.  ``available`` is False when the scalar
    kernel would also have refused Woodbury (singular ``A`` or
    ``2k > dim``); callers then run every candidate through the scalar
    path.
    """

    __slots__ = ("A", "Ch", "batch", "fact", "W", "available", "sparse",
                 "AinvT", "HchT", "Gdev", "P", "TWf", "sel",
                 "_pyt", "_xbuf", "_dbuf")

    def __init__(self, A: np.ndarray, Ch: np.ndarray,
                 batch: "_DeviceBatch"):
        self.A = A
        self.Ch = Ch
        self.batch = batch
        self.fact = None
        self.W = None
        self.available = False
        self.sparse = is_sparse_matrix(A)
        self.AinvT = None
        self.HchT = None
        self.Gdev = None
        self.P = None
        self.TWf = None
        self.sel = None
        self._pyt = None
        self._xbuf = None
        self._dbuf = None
        if 2 * batch.k > A.shape[0]:
            return
        # The constant gmin drain-source shunt of every device is linear:
        # folding it into the base matrix (instead of re-stamping it into
        # every residual and Jacobian) leaves the Newton root unchanged
        # and lets the device evaluation run channel-only.
        if self.sparse:
            A_eff = A
            if batch.n:
                gm = batch.params.gmin
                d_idx, s_idx = batch.id_, batch.is_
                mask_d, mask_s = d_idx >= 0, s_idx >= 0
                both = mask_d & mask_s
                rows = np.concatenate([d_idx[mask_d], s_idx[mask_s],
                                       d_idx[both], s_idx[both]])
                cols = np.concatenate([d_idx[mask_d], s_idx[mask_s],
                                       s_idx[both], d_idx[both]])
                vals = np.concatenate([gm[mask_d], gm[mask_s],
                                       -gm[both], -gm[both]])
                A_eff = (A + _sp.coo_matrix((vals, (rows, cols)),
                                            shape=A.shape)).tocsc()
        else:
            A_eff = A.copy()
            if batch.n:
                gm = batch.params.gmin
                d_idx, s_idx = batch.id_, batch.is_
                mask_d, mask_s = d_idx >= 0, s_idx >= 0
                both = mask_d & mask_s
                np.add.at(A_eff, (d_idx[mask_d], d_idx[mask_d]),
                          gm[mask_d])
                np.add.at(A_eff, (s_idx[mask_s], s_idx[mask_s]),
                          gm[mask_s])
                np.add.at(A_eff, (d_idx[both], s_idx[both]), -gm[both])
                np.add.at(A_eff, (s_idx[both], d_idx[both]), -gm[both])
        try:
            fact = factorize(A_eff)
        except np.linalg.LinAlgError:
            return
        self.fact = fact
        self.available = True
        if batch.k:
            selector = np.zeros((A.shape[0], batch.k))
            selector[batch.rows, np.arange(batch.k)] = 1.0
            self.W = fact.solve(selector)
        self._precompute()

    def _precompute(self) -> None:
        """Fold the scatter maps through ``A⁻¹`` once, so an iteration
        is a handful of small GEMMs with no ``np.add.at`` and no linear
        solve:

        * ``AinvT``/``HchT`` hoist the per-step base solve out of the
          Newton loop entirely — ``U = A⁻¹B`` is one GEMM (or, in the
          transient loop, ``X_prev @ HchT`` plus a precomputed RHS term);
        * ``Gdev = A⁻¹ F`` turns the residual current scatter *and* its
          solve into one ``(a, n) @ (n, dim)`` product —
          ``A⁻¹(B - A·X - scatter(i)) == U - X + i @ Gdev``;
        * ``P`` replays the (sign-folded) Jacobian scatter as a gemm, so
          the correction block is ``(Dsel @ P).reshape(a, k, dim)``;
        * ``TWf`` pre-contracts ``P`` with ``W``: the Woodbury matrix
          ``M @ W`` becomes ``(Dsel @ TWf).reshape(a, k, k)``.
        """
        batch, fact = self.batch, self.fact
        n, dim, k = batch.n, batch.dim, batch.k
        if not self.sparse:
            # Sparse systems skip the dense A⁻¹ hoist entirely — the
            # explicit inverse is dense fill, the very cost the sparse
            # backend exists to avoid.  Their per-step base solves go
            # through the SuperLU factors (see base_rows) instead.
            self.AinvT = fact.solve(np.eye(dim)).T
            self.HchT = self.Ch.T @ self.AinvT
        if n:
            F = np.zeros((n, dim))
            np.add.at(F, (batch.f_dev, batch.f_idx), batch.f_sign_neg)
            self.Gdev = fact.solve_rows(F)
        if k and n and batch.m_flat.size:
            m = batch.m_flat.size
            P = np.zeros((m, k * dim))
            np.add.at(P, (np.arange(m), batch.m_flat), batch.m_sign)
            self.P = P
            self.TWf = (P.reshape(m, k, dim) @ self.W).reshape(m, k * k)
            # Flat gather from the (a, 3n) derivative block: entry e
            # reads derivative source m_src[e] of device m_dev[e].
            self.sel = batch.m_src * n + batch.m_dev
        if n and n < _BATCH_EVAL_MIN and k in (1, 2) and dim <= 24:
            # Dispatch-free tail tables (the batched twin of the scalar
            # kernel's _build_py_fast): everything is expressed against
            # the gmin-folded A, so the device model runs channel-only —
            # gmin = 0.0 in the unpacked parameter tuples.
            gdev = [tuple(row) for row in self.Gdev.tolist()]
            W_rows = [tuple(row) for row in self.W.tolist()]
            stamp_rows: list[list[tuple]] = [[] for _ in range(k)]
            for e in range(batch.m_flat.size):
                pos, col = divmod(int(batch.m_flat[e]), dim)
                sign = float(batch.m_sign[e])
                tw = tuple(sign * w for w in W_rows[col])
                stamp_rows[pos].append(
                    (int(batch.m_src[e]), int(batch.m_dev[e]), col, sign)
                    + tw)
            devs = [(sg, be, vt, lm, 0.0, g, d, s)
                    for sg, be, vt, lm, _gm, g, d, s in batch.scalar_devs]
            self._pyt = (gdev, W_rows, stamp_rows, devs, dim, k)

    def base_rows(self, B: np.ndarray) -> np.ndarray:
        """``A⁻¹`` applied to every row of ``B`` — one GEMM against the
        hoisted dense inverse, or a multi-RHS SuperLU solve."""
        if self.AinvT is not None:
            return B @ self.AinvT
        return self.fact.solve_rows(B)

    def solve_block(self, B: np.ndarray, X0: np.ndarray,
                    context: str) -> tuple[np.ndarray, list[int]]:
        """Newton-solve all rows of ``B`` from the ``X0`` block.

        Returns ``(X, failed)`` where ``failed`` lists candidate indices
        that did not converge (singular per-candidate Jacobian or
        iteration cap) — their rows of ``X`` are undefined and must be
        recomputed by the caller through the scalar ladder.  Iteration
        ordering per candidate mirrors the scalar kernel exactly:
        compute delta, clamp to the damping limit, apply, accept on the
        *unclamped* step norm.
        """
        return self.solve_from_u(self.base_rows(B), X0, context)

    def solve_from_u(self, U: np.ndarray, X0: np.ndarray,
                     context: str) -> tuple[np.ndarray, list[int]]:
        """:meth:`solve_block` with the base solve already applied.

        ``U = A⁻¹B`` — the transient loop assembles it directly from
        ``X_prev @ HchT`` plus the precomputed RHS term, so no per-step
        linear solve remains anywhere on the hot path.
        """
        _fire_fault("newton.batched", context)
        _SOLVES.inc()
        batch, W = self.batch, self.W
        n, dim, k = batch.n, batch.dim, batch.k
        S = U.shape[0]
        X = X0.copy()
        active = np.arange(S)
        failed: list[int] = []
        if n:
            if self._xbuf is None or self._xbuf.shape[0] < S:
                # Extended-state scratch: one extra zero column is the
                # ground slot the gather map redirects to.
                self._xbuf = np.zeros((S, dim + 1))
                self._dbuf = np.empty((S, 3 * n))
            gather = batch.gather
        kk = k + 1
        for iteration in range(1, _MAX_ITERATIONS + 1):
            a = active.size
            if self._pyt is not None and a * n <= _PY_TAIL_MAX:
                return self._finish_py(U, X, active, failed, iteration)
            _ACTIVE.inc(a)
            full = a == S
            Xa = X if full else X[active]
            Ua = U if full else U[active]
            if n:
                xb = self._xbuf[:a]
                xb[:, :dim] = Xa
                v = xb[:, gather]  # (a, 3, n)
                i, d2 = evaluate_batch_channel(batch.params, v,
                                               self._dbuf[:a])
                Y = Ua - Xa + i @ self.Gdev
            else:
                Y = Ua - Xa
            singular = None
            if self.sel is not None:
                Dsel = d2[:, self.sel]            # (a, m)
                Smat = Dsel @ self.TWf            # (a, k*k), row-major
                Smat[:, ::kk] += 1.0              # + identity diagonal
                M = (Dsel @ self.P).reshape(a, k, dim)
                r_small = np.matmul(M, Y[:, :, None])[:, :, 0]
                if k == 1:
                    s00 = Smat[:, 0]
                    bad = s00 == 0.0
                    if bad.any():
                        singular = bad
                        s00 = np.where(bad, 1.0, s00)
                    Z = r_small / s00[:, None]
                elif k == 2:
                    # Closed-form 2x2 solve: the np.linalg.solve stack
                    # wrapper costs ~10x the arithmetic at this size.
                    s00, s01 = Smat[:, 0], Smat[:, 1]
                    s10, s11 = Smat[:, 2], Smat[:, 3]
                    det = s00 * s11 - s01 * s10
                    bad = det == 0.0
                    if bad.any():
                        singular = bad
                        det = np.where(bad, 1.0, det)
                    r0, r1 = r_small[:, 0], r_small[:, 1]
                    Z = np.empty_like(r_small)
                    Z[:, 0] = (s11 * r0 - s01 * r1) / det
                    Z[:, 1] = (s00 * r1 - s10 * r0) / det
                else:
                    Smat = Smat.reshape(a, k, k)
                    try:
                        Z = np.linalg.solve(Smat, r_small[:, :, None]
                                            )[:, :, 0]
                    except np.linalg.LinAlgError:
                        # np.linalg.solve rejects the whole stack if
                        # *any* candidate's system is singular: peel
                        # them apart and keep the healthy ones
                        # converging.
                        singular = np.zeros(a, dtype=bool)
                        Z = np.zeros_like(r_small)
                        for j in range(a):
                            z, bad_j = _solve_small(Smat[j].copy(),
                                                    r_small[j].copy())
                            if bad_j:
                                singular[j] = True
                            else:
                                Z[j] = z
                delta = Y - Z @ W.T
            else:
                delta = Y
            if singular is not None and singular.any():
                # det J = det A * det S — same failure the scalar
                # kernel raises ConvergenceError for; the caller's
                # ladder takes over for just these candidates.
                failed.extend(int(c) for c in active[singular])
                keep = ~singular
                active, delta = active[keep], delta[keep]
                if not active.size:
                    return X, failed
                full = False
            steps = np.abs(delta).max(axis=1)
            if steps.max() > _DAMP_LIMIT:
                clamp = steps > _DAMP_LIMIT
                delta[clamp] *= (_DAMP_LIMIT / steps[clamp])[:, None]
            if full:
                X += delta
            else:
                X[active] += delta
            converged = steps < _VTOL
            n_conv = int(converged.sum())
            if n_conv:
                _ITERATIONS.observe(iteration, n_conv)
                active = active[~converged]
                if not active.size:
                    return X, failed
        failed.extend(int(c) for c in active)
        return X, failed

    def _finish_py(self, U: np.ndarray, X: np.ndarray,
                   active: np.ndarray, failed: list[int],
                   start_iteration: int) -> tuple[np.ndarray, list[int]]:
        """Run the remaining active candidates to convergence, one at a
        time, through the dispatch-free scalar loop (``_pyt`` tables).

        Identical iteration semantics to the block path — per-candidate
        damping, acceptance on the unclamped step norm, iteration
        numbering continued from ``start_iteration``, singular systems
        demoted to ``failed`` — just without numpy's per-call overhead,
        which dominates once only a straggler or two remain active.
        """
        gdev, W_rows, stamp_rows, devs, dim, k = self._pyt
        iters = 0
        for c in active.tolist():
            u = U[c].tolist()
            x = X[c].tolist()
            x.append(0.0)  # ground slot for the gather indices
            rng = range(dim)
            converged = False
            for iteration in range(start_iteration,
                                   _MAX_ITERATIONS + 1):
                iters += 1
                y = [ul - xl for ul, xl in zip(u, x)]
                D = []
                append_d = D.append
                for (sg, be, vt, lm, gm, g, d, s), grow in zip(devs,
                                                               gdev):
                    cur, dgg, ddd, dss = evaluate_one(
                        sg, be, vt, lm, gm, x[g], x[d], x[s])
                    append_d((dgg, ddd, dss))
                    for j in rng:
                        y[j] += cur * grow[j]
                if k == 2:
                    s00 = s11 = 1.0
                    s01 = s10 = r0 = r1 = 0.0
                    for src, dev, col, sign, tw0, tw1 in stamp_rows[0]:
                        de = D[dev][src]
                        r0 += de * sign * y[col]
                        s00 += de * tw0
                        s01 += de * tw1
                    for src, dev, col, sign, tw0, tw1 in stamp_rows[1]:
                        de = D[dev][src]
                        r1 += de * sign * y[col]
                        s10 += de * tw0
                        s11 += de * tw1
                    det = s00 * s11 - s01 * s10
                    if det == 0.0:
                        break  # singular: this candidate fails
                    z0 = (s11 * r0 - s01 * r1) / det
                    z1 = (s00 * r1 - s10 * r0) / det
                    deltas = [yj - w[0] * z0 - w[1] * z1
                              for yj, w in zip(y, W_rows)]
                else:  # k == 1
                    s00 = 1.0
                    r0 = 0.0
                    for src, dev, col, sign, tw0 in stamp_rows[0]:
                        de = D[dev][src]
                        r0 += de * sign * y[col]
                        s00 += de * tw0
                    if s00 == 0.0:
                        break
                    z0 = r0 / s00
                    deltas = [yj - w[0] * z0
                              for yj, w in zip(y, W_rows)]
                step = 0.0
                for dlt in deltas:
                    ad = -dlt if dlt < 0.0 else dlt
                    if ad > step:
                        step = ad
                if step > _DAMP_LIMIT:
                    scale = _DAMP_LIMIT / step
                    for j in rng:
                        x[j] += deltas[j] * scale
                else:
                    for j in rng:
                        x[j] += deltas[j]
                if step < _VTOL:
                    _ITERATIONS.observe(iteration)
                    converged = True
                    break
            X[c] = x[:dim]
            if not converged:
                failed.append(int(c))
        _ACTIVE.inc(iters)
        return X, failed


def _batched_kernel(circuit: Circuit, mna: MnaSystem,
                    h: float) -> _BatchedKernel:
    """Per-(mna, h) kernel cache mirroring the scalar ``_cached_solver``."""
    cache = mna.__dict__.setdefault("_batched_kernels", {})
    kernel = cache.get(h)
    if kernel is None:
        Ch = mna.C / h
        kernel = _BatchedKernel(Ch + mna.G, Ch,
                                _device_batch(circuit, mna))
        cache[h] = kernel
        _FACTOR_MISS.inc()
    else:
        _FACTOR_HIT.inc()
    return kernel


def _bisect_step(mna: MnaSystem, G: np.ndarray, C: np.ndarray, make,
                 bisect_solvers: dict, x_prev: np.ndarray,
                 times: np.ndarray, k: int,
                 overrides: dict[str, Stimulus], name: str) -> np.ndarray:
    """Per-candidate recovery ladder for one failed transient step.

    Same shape as the scalar transient flow: bisect the step with a
    candidate-specific RHS closure, counting the save.
    """
    def rhs_of(t, _ov=overrides):
        return mna.rhs_matrix(np.array([t]), overrides=_ov)[:, 0]

    t_mid = 0.5 * (times[k - 1] + times[k])
    x_mid = _integrate_bisect(
        mna, G, C, make, bisect_solvers, x_prev, times[k - 1], t_mid,
        name, _MAX_SUBSTEP_DEPTH - 1, rhs_of)
    x = _integrate_bisect(
        mna, G, C, make, bisect_solvers, x_mid, t_mid, times[k], name,
        _MAX_SUBSTEP_DEPTH - 1, rhs_of)
    _RECOVERED_SUBSTEP.inc()
    return x


def _simulate_with_overrides(circuit: Circuit,
                             overrides: dict[str, Stimulus],
                             t_stop: float, dt: float, *,
                             t_start: float,
                             x0: np.ndarray | None = None
                             ) -> SimulationResult:
    """Scalar simulation with source stimuli temporarily rebound.

    Rebinding (instead of rebuilding the circuit) keeps the topology
    version unchanged, so the cached MNA system and factored kernels
    are reused — and the result is bit-identical to a serial sweep that
    rebinds the same way.
    """
    saved = {name: circuit.source_value(name) for name in overrides}
    try:
        for name, stim in overrides.items():
            circuit.set_source_value(name, stim)
        return simulate_nonlinear(circuit, t_stop, dt, t_start=t_start,
                                  x0=x0)
    finally:
        for name, stim in saved.items():
            circuit.set_source_value(name, stim)


def simulate_nonlinear_batch(circuit: Circuit,
                             stimuli: Sequence[dict[str, Stimulus]],
                             t_stop: float, dt: float, *,
                             t_start: float = 0.0,
                             x0: np.ndarray | None = None
                             ) -> list[SimulationResult]:
    """Transient-simulate S source-stimulus variants of one circuit.

    ``stimuli`` holds one override mapping (source name -> stimulus) per
    candidate; topology, grid and device population are shared, so all
    candidates advance through one factored backward-Euler system as an
    ``(S, dim)`` block.  Returns one :class:`SimulationResult` per
    candidate, in input order.

    ``x0`` may be a single ``(dim,)`` state (broadcast to every
    candidate) or an ``(S, dim)`` block.  A single-candidate batch — and
    every batch under the legacy kernel — delegates to the scalar
    :func:`simulate_nonlinear`, bit-identically.
    """
    if not stimuli:
        raise ValueError(
            f"empty stimuli batch for {circuit.name}: need at least one "
            "candidate override mapping (use {} for the base circuit)")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt:g}")
    if t_stop <= t_start:
        raise ValueError(
            f"degenerate time grid for {circuit.name}: t_stop "
            f"({t_stop:g} s) must exceed t_start ({t_start:g} s)")
    for overrides in stimuli:
        for name in overrides:
            try:
                circuit.source_value(name)
            except KeyError as exc:
                raise ValueError(
                    f"stimulus override targets unknown source {name!r} "
                    f"of {circuit.name}") from exc

    S = len(stimuli)
    mna = build_mna(circuit, allow_devices=True)
    dim = mna.dim

    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape == (dim,):
            x0 = np.broadcast_to(x0, (S, dim))
        elif x0.shape != (S, dim):
            raise ValueError(
                f"x0 must have shape ({dim},) or ({S}, {dim}), "
                f"got {x0.shape}")

    if S == 1 or _nl._KERNEL_MODE != "fast":
        # One candidate gains nothing from batching (and the scalar
        # path is the bit-exactness reference); the legacy kernel has
        # no batched form at all.
        return [
            _simulate_with_overrides(
                circuit, overrides, t_stop, dt, t_start=t_start,
                x0=None if x0 is None else x0[c])
            for c, overrides in enumerate(stimuli)
        ]

    times = time_grid(t_stop, dt, t_start)
    h = times[1] - times[0]
    # (T, S, dim): the hot loop reads one contiguous (S, dim) slab per
    # step instead of a strided (S, dim, T) slice.
    rhs = np.ascontiguousarray(np.stack(
        [mna.rhs_matrix(times, overrides=s) for s in stimuli]
    ).transpose(2, 0, 1))
    G, C = mna.G, mna.C
    make = _kernel_factory(circuit, mna)
    kernel = _batched_kernel(circuit, mna, h)

    # DC operating points.  G is frequently singular here (nodes held
    # only by devices), which rules out the block kernel at DC — but
    # candidate waveforms almost always agree at t_start (the pulse
    # window hasn't opened yet), so de-duplicating the t_start RHS
    # usually collapses S DC solves into one.
    if x0 is None:
        X = np.empty((S, dim))
        unique_rhs, inverse = np.unique(rhs[0], axis=0, return_index=False,
                                        return_inverse=True)
        inverse = inverse.reshape(-1)
        for u in range(unique_rhs.shape[0]):
            x_u = _dc_solve(mna, make, unique_rhs[u], circuit.name)
            X[inverse == u] = x_u
    else:
        X = x0.copy()

    states = np.empty((times.size, S, dim))
    states[0] = X

    Urhs = None
    if kernel.available and kernel.AinvT is not None:
        # A⁻¹·rhs for the whole grid in one multi-RHS GEMM: with HchT
        # this removes every per-step linear solve from the loop.  The
        # sparse kernel keeps the per-step SuperLU solve instead (a
        # dense A⁻¹ hoist would be O(dim²) fill).
        Urhs = rhs.reshape(-1, dim) @ kernel.AinvT
        Urhs = Urhs.reshape(times.size, S, dim)
    # Tail collapse: every sweep candidate differs only in its stimulus,
    # and stimuli end.  Once the RHS rows are identical from here to
    # t_stop *and* the states have relaxed onto one trajectory (within
    # _COLLAPSE_TOL — far inside the 1e-9 V equivalence gate), a single
    # representative carries the remaining steps and is broadcast back.
    tail_same = np.logical_and.accumulate(
        np.all(rhs == rhs[:, :1, :], axis=(1, 2))[::-1])[::-1]
    collapsed_at = None
    scalar_solve = None  # built lazily; most batches never fall back
    bisect_solvers: dict = {}
    audit = (_BlockAudit(kernel)
             if _trust.trust_enabled() and kernel.available else None)
    for k in range(1, times.size):
        if collapsed_at is not None:
            _SOLVES.inc()
            _ACTIVE.inc(1)
            x_prev = states[k - 1, 0]
            b = kernel.Ch @ x_prev
            b += rhs[k, 0]
            g = (3.0 * (x_prev - states[k - 2, 0]) + states[k - 3, 0]
                 if k >= 3 else x_prev + (x_prev - states[k - 2, 0]))
            context = f"t={times[k]:.3e}s batch of {circuit.name}"
            try:
                _fire_fault("newton.batched", context)
                states[k, 0] = scalar_solve(b, g, context)
            except ConvergenceError:
                _FALLBACK.inc()
                states[k, 0] = _bisect_step(
                    mna, G, C, make, bisect_solvers, x_prev.copy(),
                    times, k, stimuli[0],
                    f"candidate 0 of {circuit.name}")
            continue
        X_prev = states[k - 1]
        # Quadratic-extrapolation warm start (same as the scalar fast
        # path): one step-size order better than linear on the smooth
        # stretches, where almost all steps live — the converged root is
        # unchanged either way, only the iteration count drops.
        if k >= 3:
            guess = 3.0 * (X_prev - states[k - 2]) + states[k - 3]
        elif k == 2:
            guess = X_prev + (X_prev - states[k - 2])
        else:
            guess = X_prev.copy()
        block_context = f"t={times[k]:.3e}s batch of {circuit.name}"
        if kernel.available:
            if Urhs is not None:
                U = X_prev @ kernel.HchT
                U += Urhs[k]
            else:
                U = kernel.base_rows((kernel.Ch @ X_prev.T).T + rhs[k])
            try:
                X, failed = kernel.solve_from_u(U, guess, block_context)
            except ConvergenceError:
                X, failed = X_prev.copy(), list(range(S))
        else:
            X, failed = X_prev.copy(), list(range(S))
        suspects: list[int] = []
        if audit is not None:
            suspects = audit.suspects(X, X_prev, rhs[k], failed,
                                      block_context)
            failed = failed + suspects
        for c in failed:
            _FALLBACK.inc()
            if scalar_solve is None:
                scalar_solve = _cached_solver(
                    mna, (_nl._KERNEL_MODE, _trust.trust_enabled(), h),
                    lambda: (make(kernel.Ch + G), kernel.Ch))[0]
            overrides = stimuli[c]
            x_prev = X_prev[c].copy()
            b_c = kernel.Ch @ x_prev + rhs[k, c]
            context = f"t={times[k]:.3e}s candidate {c} of {circuit.name}"
            try:
                X[c] = scalar_solve(b_c, guess[c].copy(), context)
                if c in suspects:
                    _trust.record_event(
                        "escalated", context=context,
                        hop="scalar-resolve",
                        detail=(f"candidate {c} re-solved through the "
                                "scalar trust ladder"))
            except ConvergenceError:
                X[c] = _bisect_step(
                    mna, G, C, make, bisect_solvers, x_prev, times, k,
                    overrides, f"candidate {c} of {circuit.name}")
        states[k] = X
        if (tail_same[k] and S > 1
                and np.abs(X - X[0]).max() < _COLLAPSE_TOL):
            collapsed_at = k
            if scalar_solve is None:
                scalar_solve = _cached_solver(
                    mna, (_nl._KERNEL_MODE, _trust.trust_enabled(), h),
                    lambda: (make(kernel.Ch + G), kernel.Ch))[0]

    if collapsed_at is not None:
        states[collapsed_at + 1:, 1:, :] = states[collapsed_at + 1:,
                                                  :1, :]
    return [SimulationResult(mna, times,
                             np.ascontiguousarray(states[:, c, :].T))
            for c in range(S)]
