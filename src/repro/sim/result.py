"""Shared transient-simulation result container."""

from __future__ import annotations

import numpy as np

from repro.circuit.mna import MnaSystem
from repro.waveform import Waveform

__all__ = ["SimulationResult", "time_grid"]


def time_grid(t_stop: float, dt: float, t_start: float = 0.0) -> np.ndarray:
    """Uniform time grid ``[t_start, t_stop]`` with step ``dt``.

    The grid always contains ``t_stop`` (the last step may be shortened by
    construction of ``linspace``), and has at least two points.
    """
    if t_stop <= t_start:
        raise ValueError("t_stop must exceed t_start")
    if dt <= 0:
        raise ValueError("dt must be positive")
    steps = max(int(round((t_stop - t_start) / dt)), 1)
    return np.linspace(t_start, t_stop, steps + 1)


class SimulationResult:
    """Node voltages (and branch currents) over a transient run.

    Thin wrapper over the raw state matrix that hands out
    :class:`~repro.waveform.Waveform` views per node, which is what the
    analysis layers consume.
    """

    def __init__(self, mna: MnaSystem, times: np.ndarray, states: np.ndarray):
        if states.shape != (mna.dim, times.size):
            raise ValueError(
                f"state matrix {states.shape} inconsistent with "
                f"dim={mna.dim}, T={times.size}"
            )
        self.mna = mna
        self.times = times
        self.states = states

    def voltage(self, node: str) -> Waveform:
        """Voltage waveform at a named node."""
        return Waveform(self.times, self.states[self.mna.index_of(node)])

    def branch_current(self, vsource_name: str) -> Waveform:
        """Current through a named voltage source (into its + terminal)."""
        row = self.mna.vsource_index[vsource_name]
        return Waveform(self.times, self.states[row])

    def final_voltages(self) -> dict[str, float]:
        """Map of node name to final-time voltage."""
        last = self.states[:, -1]
        return {node: float(last[idx])
                for node, idx in self.mna.node_index.items()}
