"""Shared matrix factorization for the transient solvers.

Both simulators repeatedly solve against a *constant* left-hand matrix —
the trapezoidal ``C/h + G/2`` in :mod:`repro.sim.linear` and the
backward-Euler ``C/h + G`` (plus device corrections) in
:mod:`repro.sim.nonlinear`.  Factoring that matrix once and reusing the
factors per step is what turns the per-step cost from ``O(n^3)`` into
``O(n^2)`` (dense) or ``O(nnz)`` (sparse).

:class:`Factorization` hides the backend choice behind one ``solve()``:

* small dense systems (``n <= _INVERSE_MAX``) store the explicit
  inverse — ``solve`` is then a single BLAS mat-vec, which beats the
  per-call overhead of an LU triangular solve by a wide margin at these
  sizes and needs no scipy;
* larger dense systems use scipy's ``lu_factor``/``lu_solve`` when
  available (numerically safer than inverting at scale) and fall back
  to the inverse otherwise;
* scipy sparse matrices are factored through SuperLU
  (``scipy.sparse.linalg.splu``) regardless of size — the extracted-net
  regime where a dense factorization would not fit the flop budget at
  all.

All three backends honour the same shape contract: ``solve`` maps a
1-D right-hand side to a 1-D solution and an ``(n, k)`` column block to
``(n, k)``; ``solve_rows`` maps an ``(s, n)`` row block to ``(s, n)``
and rejects 1-D input outright (a vector is ambiguous between the two
layouts — callers must say which they mean).

A singular matrix raises :class:`numpy.linalg.LinAlgError` from the
constructor — the same exception ``np.linalg.solve`` would raise — so
callers keep one error path regardless of backend.  SuperLU signals
exact singularity with a ``RuntimeError`` instead; the constructor
translates it.
"""

from __future__ import annotations

import warnings

import numpy as np

try:  # pragma: no cover - exercised implicitly by the chosen backend
    from scipy.linalg import lu_factor as _lu_factor
    from scipy.linalg import lu_solve as _lu_solve
    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _lu_factor = _lu_solve = None
    HAVE_SCIPY = False

try:  # pragma: no cover - same scipy gate as above
    from scipy.sparse import issparse as _issparse
    from scipy.sparse.linalg import splu as _splu
    HAVE_SPARSE = True
except ImportError:  # pragma: no cover
    _issparse = _splu = None
    HAVE_SPARSE = False

__all__ = ["Factorization", "factorize", "is_sparse_matrix",
           "HAVE_SCIPY", "HAVE_SPARSE"]

#: Largest dense system solved through a cached explicit inverse.  The
#: hand-built MNA systems here are tens to a few hundred unknowns and
#: well-conditioned (the same regime where sim/linear.py historically
#: used an inverse).
_INVERSE_MAX = 192


def is_sparse_matrix(matrix) -> bool:
    """True when ``matrix`` is a scipy sparse matrix/array."""
    return HAVE_SPARSE and _issparse(matrix)


class Factorization:
    """One-time factorization of a square matrix (dense or sparse).

    ``solve(b)`` accepts a vector or a matrix of stacked right-hand
    sides.  The input matrix is not modified and not referenced after
    construction.
    """

    __slots__ = ("_lu", "_inv", "_splu", "shape", "anorm", "_rcond")

    def __init__(self, matrix):
        self._lu = None
        self._inv = None
        self._splu = None
        self._rcond = ...
        if is_sparse_matrix(matrix):
            if matrix.shape[0] != matrix.shape[1]:
                raise ValueError(
                    f"matrix must be square, got {matrix.shape}")
            self.shape = matrix.shape
            self.anorm = float(abs(matrix).sum(axis=0).max())
            # splu reports an exactly singular pivot as RuntimeError;
            # translate to the LinAlgError contract of the dense
            # backends.  Near-singular matrices only warn — suppressed,
            # matching lu_factor below.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    self._splu = _splu(matrix.tocsc())
                except RuntimeError as exc:
                    raise np.linalg.LinAlgError(
                        str(exc) or "singular matrix") from exc
            diag = self._splu.U.diagonal()
            if (diag == 0.0).any() or not np.isfinite(diag).all():
                raise np.linalg.LinAlgError("singular matrix")
            return
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got {matrix.shape}")
        self.shape = matrix.shape
        self.anorm = (float(np.abs(matrix).sum(axis=0).max())
                      if matrix.size else 0.0)
        if HAVE_SCIPY and matrix.shape[0] > _INVERSE_MAX:
            # lu_factor does not raise on an exactly singular pivot (it
            # only warns); detect it here so callers see the same
            # LinAlgError contract as np.linalg.solve / np.linalg.inv.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                lu, piv = _lu_factor(matrix, check_finite=False)
            diag = np.diagonal(lu)
            if (diag == 0.0).any() or not np.isfinite(diag).all():
                raise np.linalg.LinAlgError("singular matrix")
            self._lu = (lu, piv)
        else:
            self._inv = np.linalg.inv(matrix)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` against the stored factors.

        ``b`` may be 1-D (one right-hand side) or ``(n, k)`` (stacked
        columns); the solution has the same shape on every backend.
        """
        if self._splu is not None:
            return self._splu.solve(np.asarray(b, dtype=float))
        if self._inv is not None:
            return self._inv @ b
        return _lu_solve(self._lu, b, check_finite=False)

    def solve_rows(self, B: np.ndarray) -> np.ndarray:
        """Solve ``A x_s = B[s]`` for every *row* of the 2-D block ``B``.

        The batched multi-candidate kernel keeps its state block as
        ``(S, dim)`` with candidates on the leading axis, so its
        right-hand sides arrive row-stacked rather than column-stacked.
        Solving ``X A^T = B`` directly avoids two transpose copies per
        Newton iteration on the hot path.  A 1-D input is rejected: a
        vector cannot say whether it is one row or one column.
        """
        if np.ndim(B) != 2:
            raise ValueError(
                f"solve_rows expects a 2-D (rows, {self.shape[0]}) "
                f"block, got shape {np.shape(B)}; use solve() for a "
                "single right-hand side")
        if self._splu is not None:
            return self._splu.solve(
                np.ascontiguousarray(B.T, dtype=float)).T
        if self._inv is not None:
            return B @ self._inv.T
        return _lu_solve(self._lu, B.T, check_finite=False).T

    def rcond_estimate(self) -> float | None:
        """Cheap reciprocal 1-norm condition estimate, cached.

        ``1 / (||A||_1 * ||A^-1||_1)`` with the inverse norm taken from
        the explicit inverse (small dense), LAPACK ``gecon`` on the
        stored LU factors (large dense), or a Hager/Higham
        ``onenormest`` over the SuperLU solve operator (sparse).
        Returns ``None`` when the backend cannot produce an estimate
        (missing scipy helper) — callers treat that as "unmonitored",
        not as ill-conditioned.
        """
        if self._rcond is not ...:
            return self._rcond
        self._rcond = self._estimate_rcond()
        return self._rcond

    def _estimate_rcond(self) -> float | None:
        if self.anorm == 0.0:
            return 0.0
        try:
            if self._inv is not None:
                inv_norm = float(np.abs(self._inv).sum(axis=0).max())
                return 1.0 / (self.anorm * inv_norm) if inv_norm else 0.0
            if self._lu is not None:
                from scipy.linalg import get_lapack_funcs
                gecon, = get_lapack_funcs(("gecon",), (self._lu[0],))
                rcond, info = gecon(self._lu[0], self.anorm, norm="1")
                return float(rcond) if info == 0 else None
            from scipy.sparse.linalg import LinearOperator, onenormest
            op = LinearOperator(
                self.shape, matvec=self._splu.solve,
                rmatvec=lambda b: self._splu.solve(b, trans="T"),
                dtype=float)
            inv_norm = float(onenormest(op))
            return 1.0 / (self.anorm * inv_norm) if inv_norm else 0.0
        except Exception:  # pragma: no cover - scipy helper missing
            return None


def factorize(matrix) -> Factorization:
    """Factor ``matrix`` once for repeated :meth:`Factorization.solve`.

    Each new factorization is condition-monitored through
    :func:`repro.trust.observe_factorization` (a no-op when the trust
    layer is disabled).
    """
    from repro import trust

    fact = Factorization(matrix)
    trust.observe_factorization(fact)
    return fact
