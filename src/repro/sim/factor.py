"""Shared dense-matrix factorization for the transient solvers.

Both simulators repeatedly solve against a *constant* left-hand matrix —
the trapezoidal ``C/h + G/2`` in :mod:`repro.sim.linear` and the
backward-Euler ``C/h + G`` (plus device corrections) in
:mod:`repro.sim.nonlinear`.  Factoring that matrix once and reusing the
factors per step is what turns the per-step cost from ``O(n^3)`` into
``O(n^2)``.

:class:`Factorization` hides the backend choice behind one ``solve()``:

* small systems (``n <= _INVERSE_MAX``, which covers every circuit this
  library builds) store the explicit inverse — ``solve`` is then a
  single BLAS mat-vec, which beats the per-call overhead of an LU
  triangular solve by a wide margin at these sizes and needs no scipy;
* larger systems use scipy's ``lu_factor``/``lu_solve`` when available
  (numerically safer than inverting at scale) and fall back to the
  inverse otherwise.

A singular matrix raises :class:`numpy.linalg.LinAlgError` from the
constructor — the same exception ``np.linalg.solve`` would raise — so
callers keep one error path regardless of backend.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised implicitly by the chosen backend
    from scipy.linalg import lu_factor as _lu_factor
    from scipy.linalg import lu_solve as _lu_solve
    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _lu_factor = _lu_solve = None
    HAVE_SCIPY = False

__all__ = ["Factorization", "factorize", "HAVE_SCIPY"]

#: Largest system solved through a cached explicit inverse.  The MNA
#: systems here are tens to a few hundred unknowns and well-conditioned
#: (the same regime where sim/linear.py historically used an inverse).
_INVERSE_MAX = 192


class Factorization:
    """One-time factorization of a dense square matrix.

    ``solve(b)`` accepts a vector or a matrix of stacked right-hand
    sides.  The input matrix is not modified and not referenced after
    construction.
    """

    __slots__ = ("_lu", "_inv", "shape")

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got {matrix.shape}")
        self.shape = matrix.shape
        self._lu = None
        self._inv = None
        if HAVE_SCIPY and matrix.shape[0] > _INVERSE_MAX:
            # lu_factor does not raise on an exactly singular pivot (it
            # only warns); detect it here so callers see the same
            # LinAlgError contract as np.linalg.solve / np.linalg.inv.
            import warnings
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                lu, piv = _lu_factor(matrix, check_finite=False)
            diag = np.diagonal(lu)
            if (diag == 0.0).any() or not np.isfinite(diag).all():
                raise np.linalg.LinAlgError("singular matrix")
            self._lu = (lu, piv)
        else:
            self._inv = np.linalg.inv(matrix)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` against the stored factors."""
        if self._inv is not None:
            return self._inv @ b
        return _lu_solve(self._lu, b, check_finite=False)

    def solve_rows(self, B: np.ndarray) -> np.ndarray:
        """Solve ``A x_s = B[s]`` for every *row* of ``B``.

        The batched multi-candidate kernel keeps its state block as
        ``(S, dim)`` with candidates on the leading axis, so its
        right-hand sides arrive row-stacked rather than column-stacked.
        Solving ``X A^T = B`` directly avoids two transpose copies per
        Newton iteration on the hot path.
        """
        if self._inv is not None:
            return B @ self._inv.T
        return _lu_solve(self._lu, B.T, check_finite=False).T


def factorize(matrix: np.ndarray) -> Factorization:
    """Factor ``matrix`` once for repeated :meth:`Factorization.solve`."""
    return Factorization(matrix)
