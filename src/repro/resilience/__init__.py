"""Resilience: every run degrades instead of dying.

The paper's flow ran full-chip over many-thousand-net designs, where
individual nets failing characterization or simulation is routine and
must never kill the run.  This package holds the cross-cutting pieces
of that posture:

* :mod:`repro.resilience.faults` — deterministic fault injection:
  registerable fault points (``newton.step``, ``analysis.rtr``,
  ``exec.worker``, ...) that tests and the CI chaos job use to force
  convergence failures, timeouts and worker crashes at chosen nets.
* :mod:`repro.resilience.degradation` — the :class:`Degradation`
  provenance record and the ``quality`` vocabulary carried by
  :class:`~repro.core.analysis.NoiseReport`.
* :mod:`repro.resilience.checkpoint` — atomic JSONL checkpoints so a
  killed run resumes with bit-identical results.

The recovery paths themselves live where the failures happen: the
solver recovery ladder in :mod:`repro.sim.nonlinear`, the graceful
degradation fallbacks in :class:`~repro.core.analysis
.DelayNoiseAnalyzer`, and the crash-safe retrying pool in
:mod:`repro.exec.pool`.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    StaleCheckpoint,
    load_checkpoint,
    load_checkpoint_header,
)
from repro.resilience.degradation import (
    QUALITY_DEGRADED,
    QUALITY_EXACT,
    Degradation,
)
from repro.resilience.faults import (
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
    InjectedCorruption,
    InjectedFault,
    WorkerCrash,
    active_plan,
    clear_faults,
    fire,
    install_faults,
    mark_worker_process,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointWriter",
    "Degradation",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCorruption",
    "InjectedFault",
    "QUALITY_DEGRADED",
    "QUALITY_EXACT",
    "StaleCheckpoint",
    "WorkerCrash",
    "active_plan",
    "clear_faults",
    "fire",
    "install_faults",
    "load_checkpoint",
    "load_checkpoint_header",
    "mark_worker_process",
]
