"""Deterministic fault injection.

An industrial noise run must survive solver blow-ups, runaway nets and
worker-process crashes — but those failures are rare and timing-
dependent, so the recovery paths rot unless they can be *provoked on
demand*.  This module provides registerable fault points: named hooks
the production code calls on its way through (``newton.step``,
``analysis.rtr``, ``exec.worker``, ...) that do nothing until a
:class:`FaultPlan` is installed, and then fire a chosen failure at a
chosen place — deterministically, without flaky sleeps or real
segfault triggers.

Fault points
------------

===================  =====================================  ==========
point                fired from                             key
===================  =====================================  ==========
``newton.step``      ``_newton_solve`` entry                solve context
``newton.batched``   batched block-solve entry              solve context
``trust.verify``     trust-layer post-solve verification    solve context
``analysis.net``     ``DelayNoiseAnalyzer.analyze`` entry   net name
``analysis.rtr``     the Rtr characterization stage         net name
``analysis.alignment``  the table-alignment stage           net name
``exec.worker``      per-net execution in the pool          net name
``exec.worker_init``  pool-worker warm-start initializer    "init"
``screening.estimate``  the tier-1 reduced-order estimate   net name
===================  =====================================  ==========

Actions: ``"convergence"`` raises
:class:`~repro.sim.nonlinear.ConvergenceError` (exercises the solver
recovery ladder and per-net failure capture), ``"error"`` raises
:class:`InjectedFault`, ``"crash"`` kills the worker process with
``os._exit`` (in the serial path it raises :class:`WorkerCrash`
instead, so ``jobs=1`` classifies the net identically), and
``"sleep"`` stalls for ``seconds`` (exercises timeouts).  The
corruption actions ``"nan"`` and ``"perturb"`` raise
:class:`InjectedCorruption`, which only the trust layer's verification
wrappers catch — they poison the *accepted* solver state (NaNs, or a
gross perturbation) so the residual audit must detect it and escalate;
``screening.estimate`` catches them as well, silently deflating the
tier-1 noise estimate so the pruning audit — not the estimator — must
flag the resulting unsound prune; at any other fault point they
propagate like an ``"error"``.

The hot-path cost when no plan is installed is a single module-global
``None`` check inside :func:`fire` — no allocation, no lookup.

Fire counters are **per process**: a worker inherits a fresh copy of
the plan through the pool initializer, so a ``times``-limited crash
fault fires again in the rebuilt worker after a retry.  A crashing net
therefore stays crashing until the pool's retry budget converts it
into a ``WorkerCrash`` failure — exactly the behaviour the chaos tests
need to prove.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs import get_logger, metrics

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCorruption",
    "InjectedFault",
    "WorkerCrash",
    "active_plan",
    "clear_faults",
    "fire",
    "install_faults",
    "mark_worker_process",
]

log = get_logger("resilience.faults")

#: The registered fault-point names (see the module docstring table).
FAULT_POINTS = ("newton.step", "newton.batched", "trust.verify",
                "analysis.net", "analysis.rtr", "analysis.alignment",
                "exec.worker", "exec.worker_init",
                "screening.estimate")

_ACTIONS = ("convergence", "error", "crash", "sleep", "nan", "perturb")


class InjectedFault(RuntimeError):
    """A generic failure raised by an ``"error"`` fault."""


class InjectedCorruption(RuntimeError):
    """A silent-wrong-answer fault (``"nan"`` / ``"perturb"``).

    Raised by :func:`fire`; the trust layer's verification wrappers
    catch it and corrupt the accepted state accordingly, so the
    residual audit is exercised against a realistically *wrong* (not
    merely failed) solve.  ``kind`` is the corruption flavor.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


class WorkerCrash(RuntimeError):
    """A worker process died (or, serially, a simulated death)."""


@dataclass
class FaultSpec:
    """One registered fault: where it fires, at what, and how often.

    ``match`` is a substring test against the fault key (the net name
    or solver context); ``"*"`` matches everything.  ``times`` bounds
    how often the spec fires in this process (``-1`` = unlimited).
    """

    point: str
    match: str = "*"
    action: str = "error"
    times: int = -1
    seconds: float = 0.0
    fired: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"expected one of {FAULT_POINTS}")
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {_ACTIONS}")

    def matches(self, point: str, key: str) -> bool:
        if point != self.point:
            return False
        if self.times >= 0 and self.fired >= self.times:
            return False
        return self.match == "*" or self.match in key

    def to_dict(self) -> dict[str, Any]:
        return {"point": self.point, "match": self.match,
                "action": self.action, "times": self.times,
                "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        return cls(point=data["point"],
                   match=data.get("match", "*"),
                   action=data.get("action", "error"),
                   times=int(data.get("times", -1)),
                   seconds=float(data.get("seconds", 0.0)))


@dataclass
class FaultPlan:
    """An ordered set of :class:`FaultSpec`\\ s, picklable for workers."""

    specs: list[FaultSpec] = field(default_factory=list)

    def add(self, point: str, *, match: str = "*", action: str = "error",
            times: int = -1, seconds: float = 0.0) -> "FaultPlan":
        self.specs.append(FaultSpec(point=point, match=match,
                                    action=action, times=times,
                                    seconds=seconds))
        return self

    def to_json(self) -> str:
        return json.dumps([s.to_dict() for s in self.specs], indent=1)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError("a fault plan is a JSON list of specs")
        return cls(specs=[FaultSpec.from_dict(d) for d in data])

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())


# The installed plan; None (the default) keeps fire() to one comparison.
_PLAN: FaultPlan | None = None
#: True inside a pool worker — makes "crash" faults exit the process.
_IN_WORKER = False


def install_faults(plan: FaultPlan | Iterable[FaultSpec]) -> FaultPlan:
    """Install ``plan`` process-globally; returns the installed plan."""
    global _PLAN
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan(specs=list(plan))
    _PLAN = plan
    log.debug("installed fault plan with %d spec(s)", len(plan.specs))
    return plan


def clear_faults() -> None:
    """Remove any installed fault plan."""
    global _PLAN
    _PLAN = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or None."""
    return _PLAN


def mark_worker_process(in_worker: bool = True) -> None:
    """Tell the registry it runs inside a pool worker (crash = exit)."""
    global _IN_WORKER
    _IN_WORKER = in_worker


def fire(point: str, key: str) -> None:
    """Fire any installed fault registered at ``(point, key)``.

    No-op (one ``None`` check) unless a plan is installed.  Called by
    the production code at each fault point; never call it with
    side-effectful arguments.
    """
    if _PLAN is None:
        return
    for spec in _PLAN.specs:
        if not spec.matches(point, key):
            continue
        spec.fired += 1
        metrics().counter(f"faults.fired.{spec.action}").inc()
        log.debug("fault %s fires at %s (%s), action=%s",
                  spec.match, point, key, spec.action)
        if spec.action == "sleep":
            time.sleep(spec.seconds)
            continue
        if spec.action == "convergence":
            from repro.sim.nonlinear import ConvergenceError
            raise ConvergenceError(
                f"injected convergence failure at {point} ({key})")
        if spec.action == "crash":
            if _IN_WORKER:
                import os
                os._exit(3)
            raise WorkerCrash(
                f"injected worker crash at {point} ({key})")
        if spec.action in ("nan", "perturb"):
            raise InjectedCorruption(
                spec.action,
                f"injected {spec.action} corruption at {point} ({key})")
        raise InjectedFault(f"injected fault at {point} ({key})")
