"""Crash-safe JSONL checkpoints for long per-net runs.

A full-chip screen over thousands of nets must survive its own death:
every completed net is streamed to a checkpoint file so a killed run
resumes where it stopped instead of starting over.  The format is one
self-contained JSON record per line::

    {"format_version": 1, "net": "net3", "kind": "report", "data": {...}}
    {"format_version": 1, "net": "net7", "kind": "failure", "data": {...}}

Every append rewrites the file atomically (temp file in the target
directory, then ``os.replace`` — the same discipline as
``repro.storage.save_characterization``), so the checkpoint on disk is
always a complete, parseable prefix of the run: a crash mid-append
leaves the previous state intact, never a truncated line.

The record payloads are produced by the :mod:`repro.storage` dict
codecs, which round-trip floats exactly — a resumed run's final report
set is bit-identical to an uninterrupted one.

The first line may be a ``kind: "header"`` record carrying a
``run_hash`` — a digest of the run's identity (net population, driver
specs, analyzer configuration).  ``--resume`` compares it against the
current run and refuses a checkpoint written under a different
configuration (:class:`StaleCheckpoint`): resuming across a config
change would silently mix reports computed under two different
settings into one "bit-identical" result set.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro.obs import get_logger

__all__ = ["CHECKPOINT_VERSION", "CheckpointWriter", "StaleCheckpoint",
           "load_checkpoint", "load_checkpoint_header"]

log = get_logger("resilience.checkpoint")

#: Schema version stamped into every record.
CHECKPOINT_VERSION = 1


class StaleCheckpoint(RuntimeError):
    """A resume checkpoint was written under a different configuration.

    The stored ``run_hash`` does not match the current run's identity;
    the caller may override with ``force_resume`` after deciding the
    difference is benign.
    """


def load_checkpoint(path) -> dict[str, dict[str, Any]]:
    """Read a checkpoint into ``{net_name: record}`` (file order kept).

    A missing file is an empty checkpoint.  Records with an unknown
    ``format_version`` raise; later records for the same net override
    earlier ones (a retried net keeps its final outcome).
    """
    entries: dict[str, dict[str, Any]] = {}
    if not os.path.exists(path):
        return entries
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            version = record.get("format_version")
            if version != CHECKPOINT_VERSION:
                raise ValueError(
                    f"{path}:{line_no}: unsupported checkpoint format "
                    f"{version!r} (expected {CHECKPOINT_VERSION})")
            if record.get("kind") == "header":
                continue
            entries[record["net"]] = record
    log.debug("loaded %d checkpointed net(s) from %s", len(entries), path)
    return entries


def load_checkpoint_header(path) -> dict[str, Any] | None:
    """The checkpoint's header record, or None (no file / no header).

    Only the first non-empty line is considered: the header, when
    present, is always written first, and a headerless checkpoint (from
    an older run) yields None — resume then proceeds unguarded, as it
    did before headers existed.
    """
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "header":
                return record
            return None
    return None


class CheckpointWriter:
    """Append-only checkpoint with atomic whole-file rewrites.

    ``resume=True`` preserves the records already on disk (a resumed
    run keeps streaming into the same file); otherwise an existing file
    is replaced by the first append.

    ``header`` (a dict, typically ``{"run_hash": ...}``) is written as
    the checkpoint's first line — eagerly on a fresh run, so even a run
    killed before its first net leaves a verifiable checkpoint.  On
    resume an existing on-disk header is preserved; the new one is only
    installed when the old file had none.
    """

    def __init__(self, path, *, resume: bool = False,
                 header: dict[str, Any] | None = None):
        self.path = os.fspath(path)
        self._lines: list[str] = []
        self.names: set[str] = set()
        if resume:
            stored = load_checkpoint_header(self.path)
            if stored is not None:
                header = {k: v for k, v in stored.items()
                          if k not in ("format_version", "kind")}
            for name, record in load_checkpoint(self.path).items():
                self._lines.append(json.dumps(record))
                self.names.add(name)
        elif os.path.exists(self.path):
            # A fresh run must not leave a stale previous checkpoint
            # around for a later --resume to trust.
            os.unlink(self.path)
        if header is not None:
            self._lines.insert(0, json.dumps(
                {"format_version": CHECKPOINT_VERSION, "kind": "header",
                 **header}))
            self._flush()

    def __len__(self) -> int:
        return len(self._lines)

    def append(self, net_name: str, kind: str, data: dict[str, Any]) -> None:
        """Record one completed net and persist the file atomically."""
        if kind not in ("report", "failure"):
            raise ValueError(f"kind must be 'report' or 'failure', "
                             f"got {kind!r}")
        record = {"format_version": CHECKPOINT_VERSION, "net": net_name,
                  "kind": kind, "data": data}
        self._lines.append(json.dumps(record))
        self.names.add(net_name)
        self._flush()

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".",
            suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write("\n".join(self._lines) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
