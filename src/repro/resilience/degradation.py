"""Degradation provenance: how a result fell back, stage by stage.

The paper's flow has a conservative baseline under every refinement:
the transient holding resistance falls back to the plain Thevenin
holding resistance, the pre-characterized alignment table falls back
to the receiver-input objective (the prior art) or to plain peak
alignment.  When a refinement stage fails, the analyzer substitutes
the baseline and records *what* failed and *what* replaced it, so a
degraded-but-complete report is distinguishable from an exact one all
the way to the screen output.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Degradation", "QUALITY_DEGRADED", "QUALITY_EXACT"]

#: ``NoiseReport.quality`` values.
QUALITY_EXACT = "exact"
QUALITY_DEGRADED = "degraded"


@dataclass(frozen=True)
class Degradation:
    """One stage that failed and the fallback that replaced it.

    ``stage`` names the pipeline stage (``"rtr"``, ``"alignment"``),
    ``error`` is the ``"ExceptionType: message"`` that triggered the
    fallback, and ``fallback`` names the substitute
    (``"thevenin-rth"``, ``"input-objective"``, ``"peak-alignment"``).
    """

    stage: str
    error: str
    fallback: str
