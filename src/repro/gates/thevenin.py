"""Thevenin driver model: fitting and pre-characterized tables.

The traditional linear driver model (paper Section 1): a saturated-ramp
voltage source (parameters ``t0`` start time and ``dt`` ramp duration)
behind a resistance ``Rth``, chosen so that the linear model driving the
effective load reproduces the non-linear gate's output at the 10%, 50%
and 90% transition times.

The model is fitted against a non-linear simulation of the gate driving a
lumped ``c_load`` (total capacitance at the output, *including* the
gate's own diffusion capacitance).  ``Rth`` follows from the fitted time
constant: ``Rth = tau / c_load``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq, least_squares

from repro.circuit.netlist import GROUND, Circuit
from repro.gates.gate import Gate
from repro.obs import metrics, span
from repro.sim.nonlinear import simulate_nonlinear
from repro.waveform import Waveform, ramp

__all__ = ["TheveninModel", "TheveninTable", "characterize_thevenin",
           "ramp_rc_crossing"]


@dataclass(frozen=True)
class TheveninModel:
    """Fitted Thevenin driver: ramp source (t0, dt) behind Rth.

    ``v_start`` / ``v_end`` are the output rails of the modeled
    transition.  The model's superposition-flow form (delta domain) is a
    ramp from 0 to ``v_end - v_start``.
    """

    t0: float
    dt: float
    rth: float
    v_start: float
    v_end: float

    @property
    def rising(self) -> bool:
        return self.v_end > self.v_start

    @property
    def delta_v(self) -> float:
        return self.v_end - self.v_start

    def source_delta(self) -> Waveform:
        """Ramp source waveform in the delta (deviation) domain."""
        return ramp(self.t0, self.dt, 0.0, self.delta_v)

    def source_absolute(self) -> Waveform:
        """Ramp source waveform in absolute volts."""
        return ramp(self.t0, self.dt, self.v_start, self.v_end)

    def shifted(self, delta_t: float) -> "TheveninModel":
        """Same model launched ``delta_t`` later."""
        return TheveninModel(self.t0 + delta_t, self.dt, self.rth,
                             self.v_start, self.v_end)

    def install_switching(self, circuit: Circuit, prefix: str,
                          node: str) -> None:
        """Add the delta-domain ramp source + Rth driving ``node``."""
        src_node = f"{prefix}src"
        circuit.add_vsource(f"{prefix}v", src_node, GROUND,
                            self.source_delta())
        circuit.add_resistor(f"{prefix}r", src_node, node, self.rth)

    def install_holding(self, circuit: Circuit, prefix: str, node: str,
                        resistance: float | None = None) -> None:
        """Add the grounded holding resistance at ``node``.

        In the delta domain a quiet driver is its resistance to ground
        (paper Figure 1(b)).  Pass ``resistance`` to substitute the
        transient holding resistance Rtr for Rth.
        """
        circuit.add_resistor(f"{prefix}rhold", node, GROUND,
                             resistance if resistance is not None
                             else self.rth)


def _normalized_response(s: float, dt: float, tau: float) -> float:
    """Normalized ramp-into-RC response x(s), s = t - t0, x in [0, 1)."""
    if s <= 0.0:
        return 0.0
    if s <= dt:
        return (s - tau * (1.0 - math.exp(-s / tau))) / dt
    x_end = (dt - tau * (1.0 - math.exp(-dt / tau))) / dt
    return 1.0 - (1.0 - x_end) * math.exp(-(s - dt) / tau)


def ramp_rc_crossing(fraction: float, dt: float, tau: float) -> float:
    """Time (after t0) at which a ramp-driven RC reaches ``fraction``.

    The response is strictly monotone, so a bracketed root find is exact.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must lie in (0, 1)")
    hi = dt + tau * max(-math.log(1.0 - fraction), 1.0) + 40.0 * tau
    return brentq(lambda s: _normalized_response(s, dt, tau) - fraction,
                  0.0, hi, xtol=1e-18, rtol=1e-12)


_FRACTIONS = (0.1, 0.5, 0.9)


def _measure_crossings(wave: Waveform, v_start: float, v_end: float
                       ) -> tuple[float, float, float]:
    rising = v_end > v_start
    out = []
    for f in _FRACTIONS:
        level = v_start + f * (v_end - v_start)
        out.append(wave.crossing_time(level, rising=rising, which="first"))
    return tuple(out)


def characterize_thevenin(gate: Gate, input_slew: float,
                          output_rising: bool, c_load: float, *,
                          switching_pin: str | None = None,
                          t_input_start: float = 0.0,
                          dt_sim: float | None = None) -> TheveninModel:
    """Fit a Thevenin model for ``gate`` at one (slew, load) condition.

    Parameters
    ----------
    gate:
        The driver cell.
    input_slew:
        0-100% input ramp duration.
    output_rising:
        Direction of the *output* transition (the input ramp direction
        follows the cell's polarity — opposite for inverting cells).
    c_load:
        Total capacitance the model must reproduce at the output,
        including the gate's own diffusion capacitance.
    """
    vdd = gate.tech.vdd
    c_diff = gate.output_capacitance()
    c_ext = max(c_load - c_diff, 0.0)

    input_rising = output_rising != gate.inverting
    v_in = ramp(t_input_start, input_slew,
                0.0 if input_rising else vdd,
                vdd if input_rising else 0.0)
    circuit = gate.driven_circuit(v_in, c_load_external=c_ext,
                                  switching_pin=switching_pin)

    r_est = gate.drive_resistance_estimate(output_rising)
    horizon = input_slew + 12.0 * r_est * c_load + 0.2e-9
    dt_sim = dt_sim or max(horizon / 3000.0, 0.25e-12)

    v_start = 0.0 if output_rising else vdd
    v_end = vdd if output_rising else 0.0
    for _ in range(6):
        result = simulate_nonlinear(circuit, t_input_start + horizon, dt_sim)
        out = result.voltage("out")
        if abs(float(out.values[-1]) - v_end) < 0.02 * vdd:
            break
        horizon *= 2.0
        dt_sim *= 2.0
    else:
        raise RuntimeError(
            f"{gate.name} output did not settle while fitting Thevenin "
            f"model (c_load={c_load:.3e} F, slew={input_slew:.3e} s)")

    t10, t50, t90 = _measure_crossings(out, v_start, v_end)

    # Initial guess: pure ramp would have t90-t10 = 0.8*dt.
    dt0 = max((t90 - t10) / 0.8, 1e-13)
    tau0 = 0.2 * dt0
    t0_guess = t10 - ramp_rc_crossing(0.1, dt0, tau0)

    def residuals(params):
        t0, log_dt, log_tau = params
        dt_val, tau_val = math.exp(log_dt), math.exp(log_tau)
        return [
            (t0 + ramp_rc_crossing(f, dt_val, tau_val)) - measured
            for f, measured in zip(_FRACTIONS, (t10, t50, t90))
        ]

    fit = least_squares(
        residuals, [t0_guess, math.log(dt0), math.log(tau0)],
        method="lm", xtol=1e-15, ftol=1e-15)
    t0, dt_fit, tau_fit = fit.x[0], math.exp(fit.x[1]), math.exp(fit.x[2])

    return TheveninModel(t0=t0, dt=dt_fit, rth=tau_fit / c_load,
                         v_start=v_start, v_end=v_end)


class TheveninTable:
    """Pre-characterized Thevenin models over a load grid.

    The paper notes the Thevenin parameters "are a function of the
    effective load" and are stored in tables per gate; this class
    characterizes a log-spaced load grid once and interpolates
    (t0, dt, tau) in log-load afterwards — which makes the C-effective
    iteration essentially free.
    """

    def __init__(self, gate: Gate, input_slew: float, output_rising: bool,
                 loads: np.ndarray, models: list[TheveninModel]):
        self.gate = gate
        self.input_slew = input_slew
        self.output_rising = output_rising
        self.loads = np.asarray(loads, dtype=float)
        self.models = models

    @classmethod
    def build(cls, gate: Gate, input_slew: float, output_rising: bool, *,
              c_min: float | None = None, c_max: float | None = None,
              points: int = 7,
              switching_pin: str | None = None) -> "TheveninTable":
        """Characterize ``points`` log-spaced loads in ``[c_min, c_max]``.

        Default range: 1.2x the gate's own diffusion cap up to 300x the
        unit gate-input cap — generously covering realistic nets.
        """
        c_diff = gate.output_capacitance()
        c_min = c_min if c_min is not None else 1.2 * c_diff
        c_max = c_max if c_max is not None else max(
            300.0 * gate.input_capacitance(), 10.0 * c_min)
        loads = np.geomspace(c_min, c_max, points)
        t0 = time.perf_counter()
        with span("characterize.thevenin", cell=gate.name,
                  slew=input_slew, rising=output_rising, points=points):
            models = [
                characterize_thevenin(gate, input_slew, output_rising, c,
                                      switching_pin=switching_pin)
                for c in loads
            ]
        metrics().timer("characterize.thevenin.time").observe(
            time.perf_counter() - t0)
        return cls(gate, input_slew, output_rising, loads, models)

    def lookup(self, c_load: float) -> TheveninModel:
        """Interpolated model at ``c_load`` (clamped to the grid range)."""
        logc = math.log(min(max(c_load, self.loads[0]), self.loads[-1]))
        logs = np.log(self.loads)
        t0 = float(np.interp(logc, logs, [m.t0 for m in self.models]))
        dt = float(np.interp(logc, logs, [m.dt for m in self.models]))
        tau = float(np.interp(
            logc, logs, [m.rth * c for m, c in zip(self.models, self.loads)]))
        ref = self.models[0]
        return TheveninModel(t0=t0, dt=dt, rth=tau / c_load,
                             v_start=ref.v_start, v_end=ref.v_end)
