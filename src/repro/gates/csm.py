"""Current-source driver models (CSM).

The follow-up literature to the paper (e.g. Gandikota/Ding/Blaauw/
Tehrani, "Worst-Case Aggressor-Victim Alignment with Current-Source
Driver Models") replaces the Thevenin ramp with a *current-source*
model: the gate's output current characterized as a 2-D table
``I(v_in, v_out)`` from DC sweeps.  A CSM captures the non-linear
conductance exactly at every bias point — the very thing the transient
holding resistance approximates with one number — at the cost of a
table per cell and a (small) non-linear evaluation per time step.

This module characterizes CSMs from the transistor-level gates and
integrates them against lumped or π loads with optional noise-current
injection, so a CSM can stand in for the non-linear driver anywhere the
flow needs one (golden-ish victim responses, Rtr-style noise replays)
at a fraction of the transistor co-simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import GROUND
from repro.gates.ceff import PiModel
from repro.gates.gate import Gate, VDD_PORT
from repro.sim.nonlinear import simulate_nonlinear
from repro.sim.result import time_grid
from repro.waveform import Waveform

__all__ = ["CurrentSourceModel", "characterize_csm",
           "simulate_csm_driver"]

#: Finite-difference step for table-gradient evaluation [V].
_DV = 1e-3


@dataclass
class CurrentSourceModel:
    """2-D output-current table of one cell.

    ``current[i, j]`` is the current the gate pushes *into* its output
    node at ``v_in = vin_grid[i]``, ``v_out = vout_grid[j]``.  Queries
    outside the grid clamp to the edge (the rails).
    """

    gate_name: str
    vdd: float
    vin_grid: np.ndarray
    vout_grid: np.ndarray
    current: np.ndarray
    c_out: float
    c_in: float
    inverting: bool

    def __post_init__(self):
        expected = (self.vin_grid.size, self.vout_grid.size)
        if self.current.shape != expected:
            raise ValueError(
                f"current table {self.current.shape} != grid {expected}")

    def output_current(self, v_in: float, v_out: float) -> float:
        """Bilinear table lookup, clamped to the characterized cube."""
        v_in = min(max(v_in, self.vin_grid[0]), self.vin_grid[-1])
        v_out = min(max(v_out, self.vout_grid[0]), self.vout_grid[-1])
        i = int(np.searchsorted(self.vin_grid, v_in) - 1)
        j = int(np.searchsorted(self.vout_grid, v_out) - 1)
        i = min(max(i, 0), self.vin_grid.size - 2)
        j = min(max(j, 0), self.vout_grid.size - 2)
        u = (v_in - self.vin_grid[i]) / (self.vin_grid[i + 1]
                                         - self.vin_grid[i])
        w = (v_out - self.vout_grid[j]) / (self.vout_grid[j + 1]
                                           - self.vout_grid[j])
        c = self.current
        return float(
            (1 - u) * (1 - w) * c[i, j] + u * (1 - w) * c[i + 1, j]
            + (1 - u) * w * c[i, j + 1] + u * w * c[i + 1, j + 1])

    def output_conductance(self, v_in: float, v_out: float) -> float:
        """``-dI/dv_out`` — the small-signal holding conductance.

        Served from a gradient table precomputed on first use (one
        bilinear lookup instead of two extra current evaluations).
        """
        gradient = getattr(self, "_gradient", None)
        if gradient is None:
            gradient = np.gradient(self.current, self.vout_grid, axis=1)
            object.__setattr__(self, "_gradient", gradient)
        v_in = min(max(v_in, self.vin_grid[0]), self.vin_grid[-1])
        v_out = min(max(v_out, self.vout_grid[0]), self.vout_grid[-1])
        i = int(np.searchsorted(self.vin_grid, v_in) - 1)
        j = int(np.searchsorted(self.vout_grid, v_out) - 1)
        i = min(max(i, 0), self.vin_grid.size - 2)
        j = min(max(j, 0), self.vout_grid.size - 2)
        u = (v_in - self.vin_grid[i]) / (self.vin_grid[i + 1]
                                         - self.vin_grid[i])
        w = (v_out - self.vout_grid[j]) / (self.vout_grid[j + 1]
                                           - self.vout_grid[j])
        g = gradient
        value = ((1 - u) * (1 - w) * g[i, j] + u * (1 - w) * g[i + 1, j]
                 + (1 - u) * w * g[i, j + 1] + u * w * g[i + 1, j + 1])
        return float(-value)


def characterize_csm(gate: Gate, *, grid_points: int = 13,
                     switching_pin: str | None = None
                     ) -> CurrentSourceModel:
    """Build the CSM table from DC solves of the transistor gate.

    Both terminals are forced by voltage sources over a
    ``grid_points x grid_points`` bias grid; the current the gate pushes
    into its output is read off the forcing source.
    """
    if grid_points < 3:
        raise ValueError("grid_points must be >= 3")
    vdd = gate.tech.vdd
    vin_grid = np.linspace(0.0, vdd, grid_points)
    vout_grid = np.linspace(0.0, vdd, grid_points)
    current = np.empty((grid_points, grid_points))

    pin = switching_pin or gate.inputs[0]
    dc_window = 1e-12
    for i, v_in in enumerate(vin_grid):
        for j, v_out in enumerate(vout_grid):
            circuit = gate.driven_circuit(float(v_in),
                                          switching_pin=pin,
                                          name="csm_dc")
            circuit.add_vsource("__vforce", "out", GROUND, float(v_out))
            result = simulate_nonlinear(circuit, dc_window, dc_window)
            # Branch current flows into the forcing source's + terminal:
            # exactly what the gate pushes into the output node.
            current[i, j] = float(
                result.branch_current("__vforce")(0.0))

    return CurrentSourceModel(
        gate_name=gate.name,
        vdd=vdd,
        vin_grid=vin_grid,
        vout_grid=vout_grid,
        current=current,
        c_out=gate.output_capacitance(),
        c_in=gate.input_capacitance(pin),
        inverting=gate.inverting,
    )


def simulate_csm_driver(model: CurrentSourceModel, v_input: Waveform,
                        load: PiModel | float, t_stop: float,
                        dt: float = 1e-12, *,
                        i_inject: Waveform | None = None,
                        v_out0: float | None = None) -> Waveform:
    """Integrate the CSM driving a lumped or π load.

    Backward Euler with a per-step scalar (or 2x2) Newton; the load's
    near capacitance absorbs the model's own ``c_out``.  ``i_inject``
    adds an external current into the output node — the hook for
    replaying aggressor noise onto a CSM victim.
    """
    times = time_grid(t_stop, dt)
    # time_grid rounds the span to a whole number of steps, so the grid
    # step can differ from the requested dt; the backward-Euler formulas
    # below must use the step actually taken or every derivative term
    # is scaled by dt/h.
    h = times[1] - times[0]
    u = v_input(times)
    inj = i_inject(times) if i_inject is not None else np.zeros_like(times)

    if isinstance(load, PiModel):
        c_near = model.c_out + load.c_near
        r_pi, c_far = load.r, load.c_far
        has_far = r_pi > 0.0 and c_far > 0.0
    else:
        c_near = model.c_out + float(load)
        r_pi, c_far, has_far = 0.0, 0.0, False

    if v_out0 is None:
        # DC start: solve I(u0, v) = 0 by bisection over the rails.
        lo, hi = 0.0, model.vdd
        i_lo = model.output_current(u[0], lo)
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            i_mid = model.output_current(u[0], mid)
            if (i_mid > 0) == (i_lo > 0):
                lo, i_lo = mid, i_mid
            else:
                hi = mid
        v_out0 = 0.5 * (lo + hi)

    out = np.empty(times.size)
    out[0] = v_out0
    v, vf = v_out0, v_out0
    for k in range(1, times.size):
        v_prev, vf_prev = v, vf
        for _ in range(40):
            i_drv = model.output_current(u[k], v)
            g_drv = model.output_conductance(u[k], v)
            if has_far:
                # Far node is linear in v: eliminate it exactly.
                #   c_far (vf - vf_prev)/h = (v - vf)/r_pi
                denom = c_far / h + 1.0 / r_pi
                vf = (c_far * vf_prev / h + v / r_pi) / denom
                i_branch = (v - vf) / r_pi
                di_branch = (1.0 - (1.0 / r_pi) / denom) / r_pi
            else:
                i_branch, di_branch = 0.0, 0.0
            residual = (c_near * (v - v_prev) / h - i_drv + i_branch
                        - inj[k])
            jacobian = c_near / h + g_drv + di_branch
            step = -residual / jacobian
            if abs(step) > 0.5:
                step = 0.5 if step > 0 else -0.5
            v += step
            if abs(step) < 1e-7:
                break
        out[k] = v
    return Waveform(times, out)
