"""Gate templates.

A :class:`Gate` is a reusable template of MOSFET devices over a local port
namespace (``out``, input pins, the rails) plus the parasitic capacitances
implied by device geometry (gate-oxide cap on each input, diffusion cap on
each drain).  Instantiating a gate merges concrete devices and parasitics
into a target :class:`~repro.circuit.Circuit` — the same template serves
the non-linear golden simulations, Thevenin/Rtr characterization, and
receiver pre-characterization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import GROUND, Circuit
from repro.devices.mosfet import MosfetParams
from repro.devices.technology import Technology

__all__ = ["Gate", "DeviceTemplate", "VDD_PORT"]

#: Template name of the supply port.
VDD_PORT = "vdd"


@dataclass(frozen=True)
class DeviceTemplate:
    """One device of a gate template, with node names in port namespace."""

    name: str
    params: MosfetParams
    drain: str
    gate: str
    source: str


class Gate:
    """A CMOS gate template.

    Parameters
    ----------
    name:
        Cell name, e.g. ``"INV_X2"``.  Used as the pre-characterization
        table key.
    tech:
        Technology (for parasitic capacitance values).
    devices:
        Device templates.  Node namespace: ``out`` is the output, the
        rails are ``vdd`` and ground (``"0"``), input pins are any other
        non-internal names.
    inputs:
        Ordered input pin names.
    internal:
        Internal node names (e.g. the stack node of a NAND), which get
        instance-prefixed on instantiation.
    """

    def __init__(self, name: str, tech: Technology,
                 devices: list[DeviceTemplate], inputs: list[str],
                 internal: tuple[str, ...] = (),
                 side_input_high: bool = True,
                 inverting: bool = True,
                 side_input_ties: dict[str, bool] | None = None):
        self.name = name
        self.tech = tech
        self.devices = list(devices)
        self.inputs = list(inputs)
        self.internal = tuple(internal)
        #: Non-controlling level for non-switching inputs (True = tie to
        #: vdd, as for NAND; False = tie to ground, as for NOR).
        self.side_input_high = side_input_high
        #: Per-pin overrides for complex gates where the sensitizing tie
        #: levels are mixed (e.g. AOI21 needs b high but c low).
        self.side_input_ties = dict(side_input_ties or {})
        #: False for buffers: the output follows the switching input.
        self.inverting = inverting
        ports = set(self.inputs) | {"out", VDD_PORT, GROUND} | set(internal)
        for d in self.devices:
            for node in (d.drain, d.gate, d.source):
                if node not in ports:
                    raise ValueError(
                        f"device {d.name} of {name} references unknown "
                        f"node {node!r}")

    def __repr__(self) -> str:
        return f"Gate({self.name!r}, inputs={self.inputs})"

    # ------------------------------------------------------------------
    # Parasitics
    # ------------------------------------------------------------------
    def input_capacitance(self, pin: str | None = None) -> float:
        """Gate-oxide capacitance presented at an input pin.

        This is the value the linear superposition flow uses as the
        receiver's loading on the net (paper: "receiver gate loading is
        modeled with a grounded capacitor").
        """
        if pin is None:
            pin = self.inputs[0]
        if pin not in self.inputs:
            raise ValueError(f"{self.name} has no input pin {pin!r}")
        return sum(self.tech.gate_cap(d.params.w)
                   for d in self.devices if d.gate == pin)

    def output_capacitance(self) -> float:
        """Diffusion capacitance at the output node."""
        return sum(self.tech.diff_cap(d.params.w)
                   for d in self.devices if d.drain == "out")

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def instantiate(self, circuit: Circuit, prefix: str,
                    connections: dict[str, str]) -> None:
        """Merge this gate into ``circuit``.

        ``connections`` maps port names (inputs, ``out``, ``vdd``) to
        circuit nodes; ground is implicit; internal nodes are prefixed.
        Parasitic capacitances are added: gate cap at each connected input
        and diffusion cap at each drain (skipping rails).
        """
        required = set(self.inputs) | {"out", VDD_PORT}
        missing = required - set(connections)
        if missing:
            raise ValueError(
                f"{self.name} instantiation missing ports: {sorted(missing)}")

        def resolve(node: str) -> str:
            if node == GROUND:
                return GROUND
            if node in connections:
                return connections[node]
            return prefix + node  # internal

        for d in self.devices:
            circuit.add_mosfet(prefix + d.name, d.params, resolve(d.drain),
                               resolve(d.gate), resolve(d.source))
        # Parasitics: one lumped gate cap per input pin, one lumped
        # diffusion cap per drain node (rails excluded — a cap from a
        # rail to ground is electrically irrelevant).
        rails = {connections[VDD_PORT], GROUND}
        for pin in self.inputs:
            if resolve(pin) in rails:
                continue  # pin tied off to a rail: its cap is irrelevant
            circuit.add_capacitor(f"{prefix}cg_{pin}", resolve(pin), GROUND,
                                  self.input_capacitance(pin))
        drain_nodes: dict[str, float] = {}
        for d in self.devices:
            node = resolve(d.drain)
            if node not in rails:
                drain_nodes[node] = drain_nodes.get(node, 0.0) + \
                    self.tech.diff_cap(d.params.w)
        for i, (node, cap) in enumerate(sorted(drain_nodes.items())):
            circuit.add_capacitor(f"{prefix}cd{i}", node, GROUND, cap)

    # ------------------------------------------------------------------
    # Characterization helpers
    # ------------------------------------------------------------------
    def driven_circuit(self, input_stimulus, *, c_load_external: float = 0.0,
                       switching_pin: str | None = None,
                       name: str | None = None) -> Circuit:
        """Build the canonical characterization circuit.

        The gate is driven at ``switching_pin`` (default: first input) by
        an ideal source carrying ``input_stimulus``; non-switching inputs
        are tied to their non-controlling rail; the output carries an
        optional external load capacitor.  Node names: input ``in``,
        output ``out``, supply ``vdd``.
        """
        pin = switching_pin or self.inputs[0]
        circuit = Circuit(name or f"{self.name}_drv")
        circuit.add_vsource("vdd_src", VDD_PORT, GROUND, self.tech.vdd)
        circuit.add_vsource("vin", "in", GROUND, input_stimulus)
        connections = {pin: "in", "out": "out", VDD_PORT: VDD_PORT}
        for other in self.inputs:
            if other != pin:
                connections[other] = VDD_PORT \
                    if self.tie_level_high(other) else GROUND
        self.instantiate(circuit, "g_", connections)
        if c_load_external > 0.0:
            circuit.add_capacitor("c_load", "out", GROUND, c_load_external)
        return circuit

    def holding_resistance(self, output_high: bool, *,
                           switching_pin: str | None = None,
                           probe_current: float = 1e-6) -> float:
        """Small-signal output resistance of the *quiet* gate.

        The gate statically holds its output at a rail; the returned
        resistance is ``dV/dI`` at that operating point, measured by two
        DC solves with a small probe current.  This is the holding model
        for *functional* noise analysis (stable victim), where the
        holding device sits in its triode region — unlike the delay-noise
        case, where the transient holding resistance of
        :mod:`repro.core.holding_resistance` applies.
        """
        if self.inverting:
            level = 0.0 if output_high else self.tech.vdd
        else:
            level = self.tech.vdd if output_high else 0.0
        dc_window = 1e-12  # two-point "transient" = a DC solve

        def out_voltage(extra_current: float) -> float:
            # Local import: repro.sim imports would be circular at module
            # load time (sim -> circuit -> devices <- gates).
            from repro.sim.nonlinear import simulate_nonlinear
            circuit = self.driven_circuit(
                level, switching_pin=switching_pin, name="hold_probe")
            if extra_current:
                circuit.add_isource("__iprobe", "out", GROUND,
                                    extra_current)
            result = simulate_nonlinear(circuit, dc_window, dc_window)
            return float(result.voltage("out")(0.0))

        v0 = out_voltage(0.0)
        v1 = out_voltage(probe_current)
        return (v1 - v0) / probe_current

    def tie_level_high(self, pin: str) -> bool:
        """Non-controlling (path-sensitizing) tie level for a side input."""
        return self.side_input_ties.get(pin, self.side_input_high)

    def drive_resistance_estimate(self, output_rising: bool) -> float:
        """Crude output resistance estimate (for time-horizon sizing only).

        ``vdd / i_sat`` of the relevant pull network, treating devices
        with the output as drain as a parallel combination.
        """
        total = 0.0
        for d in self.devices:
            pulls_up = d.params.polarity == "p"
            if d.drain == "out" and pulls_up == output_rising:
                p = d.params
                i_sat = 0.5 * p.beta * (self.tech.vdd - p.vt) ** 2
                total += i_sat
        if total <= 0.0:
            raise ValueError(
                f"{self.name} has no pull network for "
                f"output_rising={output_rising}")
        return self.tech.vdd / total
