"""Parametric standard-cell library.

Cells are inverting static CMOS gates built on the synthetic technology.
Drive strength scales linearly with the ``X`` size; P/N widths follow the
technology's ``beta_ratio`` so rise and fall strengths are roughly
symmetric.  NAND/NOR stacks use the textbook 2x series-device upsizing.
"""

from __future__ import annotations

import re

from repro.devices.mosfet import nmos_params, pmos_params
from repro.devices.technology import Technology, default_technology
from repro.gates.gate import DeviceTemplate, Gate, VDD_PORT

__all__ = ["inverter", "nand2", "nor2", "standard_cell", "CELL_FAMILIES"]

#: Unit (X1) NMOS width as a multiple of the technology minimum width.
_UNIT_SCALE = 2.0


def _widths(tech: Technology, scale: float) -> tuple[float, float]:
    wn = _UNIT_SCALE * scale * tech.w_min
    wp = tech.beta_ratio * wn
    return wn, wp


def inverter(scale: float = 1.0, tech: Technology | None = None) -> Gate:
    """INV_X<scale>: input ``a``, output ``out``."""
    tech = tech or default_technology()
    wn, wp = _widths(tech, scale)
    devices = [
        DeviceTemplate("mn", nmos_params(tech, wn), "out", "a", "0"),
        DeviceTemplate("mp", pmos_params(tech, wp), "out", "a", VDD_PORT),
    ]
    return Gate(_cell_name("INV", scale), tech, devices, inputs=["a"])


def nand2(scale: float = 1.0, tech: Technology | None = None) -> Gate:
    """NAND2_X<scale>: inputs ``a`` (bottom of stack), ``b``."""
    tech = tech or default_technology()
    wn, wp = _widths(tech, scale)
    devices = [
        # Series pull-down stack, 2x width to match INV pull-down strength.
        DeviceTemplate("mna", nmos_params(tech, 2 * wn), "x", "a", "0"),
        DeviceTemplate("mnb", nmos_params(tech, 2 * wn), "out", "b", "x"),
        # Parallel pull-up.
        DeviceTemplate("mpa", pmos_params(tech, wp), "out", "a", VDD_PORT),
        DeviceTemplate("mpb", pmos_params(tech, wp), "out", "b", VDD_PORT),
    ]
    return Gate(_cell_name("NAND2", scale), tech, devices,
                inputs=["a", "b"], internal=("x",))


def nor2(scale: float = 1.0, tech: Technology | None = None) -> Gate:
    """NOR2_X<scale>: inputs ``a``, ``b`` (top of stack)."""
    tech = tech or default_technology()
    wn, wp = _widths(tech, scale)
    devices = [
        # Parallel pull-down.
        DeviceTemplate("mna", nmos_params(tech, wn), "out", "a", "0"),
        DeviceTemplate("mnb", nmos_params(tech, wn), "out", "b", "0"),
        # Series pull-up stack, 2x width.
        DeviceTemplate("mpa", pmos_params(tech, 2 * wp), "x", "a", VDD_PORT),
        DeviceTemplate("mpb", pmos_params(tech, 2 * wp), "out", "b", "x"),
    ]
    return Gate(_cell_name("NOR2", scale), tech, devices,
                inputs=["a", "b"], internal=("x",), side_input_high=False)


def aoi21(scale: float = 1.0, tech: Technology | None = None) -> Gate:
    """AOI21_X<scale>: out = NOT(a*b + c).

    Pull-down: (a series b) parallel c.  Pull-up: (a parallel b) series
    c.  Inputs ``a``/``b`` are the AND pair, ``c`` the OR leg.  The
    non-controlling tie for side inputs keeps pin ``c`` low and the AND
    pair transparent, so driving pin ``a`` behaves like a NAND path.
    """
    tech = tech or default_technology()
    wn, wp = _widths(tech, scale)
    devices = [
        # Pull-down: a-b stack (2x width) in parallel with c.
        DeviceTemplate("mna", nmos_params(tech, 2 * wn), "x", "a", "0"),
        DeviceTemplate("mnb", nmos_params(tech, 2 * wn), "out", "b", "x"),
        DeviceTemplate("mnc", nmos_params(tech, wn), "out", "c", "0"),
        # Pull-up: (a || b) in series with c (series devices 2x width).
        DeviceTemplate("mpa", pmos_params(tech, 2 * wp), "y", "a",
                       VDD_PORT),
        DeviceTemplate("mpb", pmos_params(tech, 2 * wp), "y", "b",
                       VDD_PORT),
        DeviceTemplate("mpc", pmos_params(tech, 2 * wp), "out", "c", "y"),
    ]
    return Gate(_cell_name("AOI21", scale), tech, devices,
                inputs=["a", "b", "c"], internal=("x", "y"),
                side_input_ties={"b": True, "c": False})


def oai21(scale: float = 1.0, tech: Technology | None = None) -> Gate:
    """OAI21_X<scale>: out = NOT((a+b) * c).

    Dual of AOI21.  Side inputs tie high (non-controlling for the OR
    pair feeding the AND), so driving pin ``a`` behaves like a NOR path
    with ``c`` enabled.
    """
    tech = tech or default_technology()
    wn, wp = _widths(tech, scale)
    devices = [
        # Pull-down: (a || b) in series with c (series devices 2x width).
        DeviceTemplate("mna", nmos_params(tech, 2 * wn), "x", "a", "0"),
        DeviceTemplate("mnb", nmos_params(tech, 2 * wn), "x", "b", "0"),
        DeviceTemplate("mnc", nmos_params(tech, 2 * wn), "out", "c", "x"),
        # Pull-up: a-b stack (2x width) in parallel with c.
        DeviceTemplate("mpa", pmos_params(tech, 2 * wp), "y", "a",
                       VDD_PORT),
        DeviceTemplate("mpb", pmos_params(tech, 2 * wp), "out", "b", "y"),
        DeviceTemplate("mpc", pmos_params(tech, wp), "out", "c",
                       VDD_PORT),
    ]
    return Gate(_cell_name("OAI21", scale), tech, devices,
                inputs=["a", "b", "c"], internal=("x", "y"),
                side_input_ties={"b": False, "c": True})


def buffer(scale: float = 1.0, tech: Technology | None = None) -> Gate:
    """BUF_X<scale>: two inverters in series (non-inverting).

    The first stage is quarter-size (a typical tapered buffer), the
    second carries the nominal drive strength.
    """
    tech = tech or default_technology()
    wn, wp = _widths(tech, scale)
    wn1, wp1 = max(wn / 4.0, tech.w_min), max(wp / 4.0, tech.w_min)
    devices = [
        DeviceTemplate("mn1", nmos_params(tech, wn1), "x", "a", "0"),
        DeviceTemplate("mp1", pmos_params(tech, wp1), "x", "a", VDD_PORT),
        DeviceTemplate("mn2", nmos_params(tech, wn), "out", "x", "0"),
        DeviceTemplate("mp2", pmos_params(tech, wp), "out", "x", VDD_PORT),
    ]
    return Gate(_cell_name("BUF", scale), tech, devices, inputs=["a"],
                internal=("x",), inverting=False)


CELL_FAMILIES = {"INV": inverter, "NAND2": nand2, "NOR2": nor2,
                 "BUF": buffer, "AOI21": aoi21, "OAI21": oai21}

_NAME_RE = re.compile(
    r"^(INV|NAND2|NOR2|BUF|AOI21|OAI21)_X(\d+(?:\.\d+)?)$")


def _cell_name(family: str, scale: float) -> str:
    text = f"{scale:g}"
    return f"{family}_X{text}"


def standard_cell(name: str, tech: Technology | None = None) -> Gate:
    """Build a cell from its name, e.g. ``standard_cell("INV_X4")``."""
    match = _NAME_RE.match(name)
    if not match:
        raise ValueError(
            f"unknown cell {name!r}; expected <FAMILY>_X<scale> with "
            f"family in {sorted(CELL_FAMILIES)}")
    family, scale = match.groups()
    return CELL_FAMILIES[family](float(scale), tech)
