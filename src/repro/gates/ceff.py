"""Effective capacitance and driving-point reduction.

The Thevenin parameters are characterized against lumped loads, but a
real net presents a distributed RC whose far capacitance is *shielded* by
wire resistance.  The effective capacitance iteration (paper references
[3] Dartu/Menezes/Pileggi and [4] Qian/Pullela/Pillage) finds the lumped
``Ceff`` that matches the charge the driver actually delivers to the net
by the time its output reaches 50% — then re-derives the Thevenin model
at that load, and repeats to a fixed point.

:func:`driving_point_pi` additionally reduces the net's driving-point
admittance to the classic O'Brien/Savarino π model from its first three
admittance moments; the π total capacitance also provides the iteration's
starting point and upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuit.mna import build_mna
from repro.circuit.netlist import GROUND, Circuit
from repro.gates.thevenin import TheveninModel
from repro.mor.prima import transfer_moments
from repro.sim.linear import simulate_linear

__all__ = ["PiModel", "driving_point_pi", "admittance_moments",
           "effective_capacitance"]


@dataclass(frozen=True)
class PiModel:
    """O'Brien/Savarino π load: ``c_near`` at the port, ``r`` to ``c_far``.

    A degenerate (purely lumped) load is represented with ``r == 0`` and
    ``c_far == 0``.
    """

    c_near: float
    r: float
    c_far: float

    @property
    def total_cap(self) -> float:
        return self.c_near + self.c_far

    def install(self, circuit: Circuit, prefix: str, node: str) -> None:
        """Append this π load at ``node``."""
        if self.c_near > 0.0:
            circuit.add_capacitor(f"{prefix}c_near", node, GROUND,
                                  self.c_near)
        if self.r > 0.0 and self.c_far > 0.0:
            far = f"{prefix}far"
            circuit.add_resistor(f"{prefix}r", node, far, self.r)
            circuit.add_capacitor(f"{prefix}c_far", far, GROUND, self.c_far)


def admittance_moments(net: Circuit, port: str,
                       count: int = 4) -> np.ndarray:
    """Driving-point admittance moments ``Y(s) = y0 + y1 s + y2 s^2 + ...``

    Measured by installing a probe voltage source at ``port`` and taking
    moments of its branch current.  The MNA branch variable is the current
    *into* the source's positive terminal, i.e. minus the current
    delivered into the net, so the sign is flipped to yield the admittance
    the net presents.
    """
    probe = net.copy(f"{net.name}_probe")
    probe.add_vsource("_probe_v", port, GROUND, 0.0)
    mna = build_mna(probe)
    row = mna.vsource_index["_probe_v"]
    B = np.zeros((mna.dim, 1))
    B[row] = 1.0
    L = np.zeros((mna.dim, 1))
    L[row] = 1.0
    moments = transfer_moments(mna.G_array(), mna.C_array(), B, L, count)
    return -np.array([float(m[0, 0]) for m in moments])


def driving_point_pi(net: Circuit, port: str) -> PiModel:
    """Reduce the net seen from ``port`` to a π model.

    Uses the first three non-DC admittance moments:
    ``y1 = C1 + C2``, ``y2 = -R C2^2``, ``y3 = R^2 C2^3`` — solved as
    ``C2 = y2^2 / y3``, ``R = -y2 / C2^2``, ``C1 = y1 - C2``.  Falls back
    to a lumped total-capacitance load when the moments are degenerate
    (e.g. a purely capacitive net with no wire resistance).
    """
    y = admittance_moments(net, port, count=4)
    y1, y2, y3 = y[1], y[2], y[3]
    if y1 <= 0.0:
        raise ValueError(
            f"net presents non-positive total capacitance at {port!r}")
    if y3 <= 0.0 or y2 >= 0.0:
        return PiModel(c_near=y1, r=0.0, c_far=0.0)
    c_far = y2 * y2 / y3
    if not 0.0 < c_far < y1:
        return PiModel(c_near=y1, r=0.0, c_far=0.0)
    r = -y2 / (c_far * c_far)
    return PiModel(c_near=y1 - c_far, r=r, c_far=c_far)


def effective_capacitance(
    thevenin_for: Callable[[float], TheveninModel],
    net: Circuit,
    port: str,
    vdd: float,
    *,
    tolerance: float = 1e-3,
    max_iterations: int = 25,
) -> tuple[float, TheveninModel]:
    """C-effective fixed-point iteration against the full net.

    Parameters
    ----------
    thevenin_for:
        Callable mapping a lumped load to the driver's Thevenin model
        (e.g. ``TheveninTable.lookup`` or a direct characterization).
    net:
        The passive net as seen by this driver: interconnect, receiver
        input caps, the driver's own diffusion cap at ``port``, and
        holding resistances for every *other* driver.
    port:
        Node where the driver output attaches.
    vdd:
        Supply voltage (the 50% reference is ``vdd / 2``).

    Returns
    -------
    ``(ceff, model)`` — the converged effective capacitance and the
    Thevenin model characterized at it.

    Notes
    -----
    Each iteration simulates the current Thevenin model against the full
    net and matches delivered charge at the port's 50% crossing:
    ``Ceff = Q(t50) / (vdd / 2)`` — a lumped Ceff absorbs exactly that
    charge when driven to vdd/2.  Convergence is damped (average of old
    and new) and monotone in practice; 3-6 iterations are typical.
    """
    total_cap = float(admittance_moments(net, port, count=2)[1])
    if total_cap <= 0.0:
        raise ValueError(f"no capacitance visible at {port!r}")

    floor = 1e-3 * total_cap
    ceff = total_cap
    model = thevenin_for(ceff)
    previous_delta = 0.0
    for _ in range(max_iterations):
        model = thevenin_for(ceff)
        tau = model.rth * total_cap
        t_stop = model.t0 + model.dt + 20.0 * tau + 1e-11
        dt = max(t_stop / 1200.0, 1e-14)

        trial = net.copy(f"{net.name}_ceff")
        model.install_switching(trial, "drv_", port)
        result = simulate_linear(trial, t_stop, dt)
        v_port = result.voltage(port)
        v_src = result.voltage("drv_src")

        half = 0.5 * model.delta_v
        try:
            t50 = v_port.crossing_time(half, rising=model.delta_v > 0,
                                       which="first")
        except ValueError:
            # Port never reached 50% in the window: heavy shielding —
            # treat the full window as charge-accumulation time.
            t50 = t_stop
        current = (v_src - v_port) * (1.0 / model.rth)
        charge = current.clipped(result.times[0], t50).integral()
        ceff_new = min(max(abs(charge) / (vdd / 2.0), floor), total_cap)

        delta = ceff_new - ceff
        if abs(delta) <= tolerance * total_cap:
            ceff = ceff_new
            break
        # Direct substitution converges fast (the map is a mild
        # contraction); fall back to damping only if the iterate starts
        # oscillating.
        if previous_delta * delta < 0.0:
            ceff = 0.5 * (ceff + ceff_new)
        else:
            ceff = ceff_new
        previous_delta = delta

    return ceff, thevenin_for(ceff)
