"""CMOS gate library and linear-model characterization.

* :mod:`repro.gates.gate` — the :class:`Gate` template (devices + parasitic
  capacitances) instantiable into any circuit.
* :mod:`repro.gates.library` — parametric standard cells (INV/NAND2/NOR2
  in X1..X16 sizes) for the synthetic technology.
* :mod:`repro.gates.thevenin` — Thevenin driver model (t0, dt, Rth) fitted
  to the 10%/50%/90% crossings of a non-linear gate simulation, per the
  paper's Section 1; plus a pre-characterized lookup table.
* :mod:`repro.gates.ceff` — effective capacitance iteration (references
  [3][4] of the paper) and O'Brien/Savarino π-model reduction of the
  driving-point admittance.
"""

from repro.gates.gate import Gate
from repro.gates.library import inverter, nand2, nor2, standard_cell
from repro.gates.thevenin import (
    TheveninModel,
    TheveninTable,
    characterize_thevenin,
)
from repro.gates.ceff import PiModel, driving_point_pi, effective_capacitance
from repro.gates.csm import (
    CurrentSourceModel,
    characterize_csm,
    simulate_csm_driver,
)

__all__ = [
    "Gate",
    "inverter",
    "nand2",
    "nor2",
    "standard_cell",
    "TheveninModel",
    "TheveninTable",
    "characterize_thevenin",
    "PiModel",
    "driving_point_pi",
    "effective_capacitance",
    "CurrentSourceModel",
    "characterize_csm",
    "simulate_csm_driver",
]
