"""Piecewise-linear waveform algebra.

Waveforms are the lingua franca of the analysis flow: driver output
transitions, injected noise pulses, composite (noisy) receiver inputs and
simulated gate responses are all :class:`~repro.waveform.waveform.Waveform`
objects.  The submodules provide:

* :mod:`repro.waveform.waveform` — the core immutable PWL waveform class
  (evaluation, crossings, shifting, arithmetic under superposition).
* :mod:`repro.waveform.pulses` — constructors for canonical stimuli (ramps,
  triangular and raised-cosine noise pulses) and pulse metrics (peak, width).
* :mod:`repro.waveform.metrics` — delay and slew measurement between
  waveforms, per the paper's 50% / 10–90% conventions.
"""

from repro.waveform.waveform import Waveform
from repro.waveform.pulses import (
    ramp,
    step,
    triangular_pulse,
    raised_cosine_pulse,
    noise_pulse,
    pulse_peak,
    pulse_width,
)
from repro.waveform.render import render_waveform, render_waveforms
from repro.waveform.metrics import (
    crossing_delay,
    transition_slew,
    extra_delay,
)

__all__ = [
    "Waveform",
    "ramp",
    "step",
    "triangular_pulse",
    "raised_cosine_pulse",
    "noise_pulse",
    "pulse_peak",
    "pulse_width",
    "crossing_delay",
    "transition_slew",
    "extra_delay",
    "render_waveform",
    "render_waveforms",
]
