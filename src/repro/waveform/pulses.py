"""Canonical stimuli and noise-pulse metrics.

The alignment pre-characterization (paper Section 3.2) parameterizes noise
pulses by *height* (peak magnitude) and *width* (duration at 50% of the
peak).  The constructors here build canonical pulses with exactly those
parameters; :func:`pulse_peak` / :func:`pulse_width` recover them from
arbitrary simulated noise waveforms so that real composite pulses can be
mapped into the pre-characterized table space.
"""

from __future__ import annotations

import numpy as np

from repro.waveform.waveform import Waveform

__all__ = [
    "ramp",
    "step",
    "triangular_pulse",
    "raised_cosine_pulse",
    "pulse_peak",
    "pulse_width",
]


def ramp(t_start: float, transition_time: float, v_initial: float,
         v_final: float, *, pad: float = 0.0) -> Waveform:
    """Saturated linear ramp from ``v_initial`` to ``v_final``.

    ``transition_time`` is the full 0–100% ramp duration (the Thevenin
    model's ``dt`` parameter).  ``pad`` optionally extends the flat regions
    on both sides, which keeps downstream union grids well-conditioned.
    """
    if transition_time <= 0:
        raise ValueError("transition_time must be positive")
    t0, t1 = t_start, t_start + transition_time
    times = [t0, t1]
    values = [v_initial, v_final]
    if pad > 0:
        times = [t0 - pad] + times + [t1 + pad]
        values = [v_initial] + values + [v_final]
    return Waveform(times, values)


def step(t_step: float, v_initial: float, v_final: float,
         rise: float = 1e-15) -> Waveform:
    """Near-ideal step realized as a ``rise``-wide ramp (PWL-friendly)."""
    return ramp(t_step, rise, v_initial, v_final)


def triangular_pulse(t_peak: float, height: float, width: float,
                     *, baseline: float = 0.0) -> Waveform:
    """Triangular noise pulse with given 50%-height ``width``.

    A triangle of base ``2 * width`` has exactly ``width`` duration at half
    its height, so the constructor takes the half-height width directly —
    the same convention the pre-characterization table uses.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    base = 2.0 * width
    return Waveform(
        [t_peak - base / 2.0, t_peak, t_peak + base / 2.0],
        [baseline, baseline + height, baseline],
    )


def raised_cosine_pulse(t_peak: float, height: float, width: float,
                        *, baseline: float = 0.0,
                        samples: int = 65) -> Waveform:
    """Smooth raised-cosine pulse with given 50%-height ``width``.

    ``v(t) = h/2 * (1 + cos(pi * (t - t_peak) / width))`` over a support of
    ``2 * width``; the half-height points fall exactly ``width`` apart.
    Closer to real coupled-noise shapes than a triangle; used as the
    characterization stimulus.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    t = np.linspace(t_peak - width, t_peak + width, samples)
    v = baseline + (height / 2.0) * (1.0 + np.cos(np.pi * (t - t_peak) / width))
    return Waveform(t, v)


def noise_pulse(t_peak: float, height: float, width: float, *,
                asymmetry: float = 4.0, baseline: float = 0.0,
                samples: int = 257) -> Waveform:
    """Asymmetric double-exponential noise pulse.

    Real coupled-noise pulses rise quickly (driven by the aggressor edge)
    and decay slowly (discharged through the victim net's RC):
    ``v(t) ∝ exp(-t/tau_fall) - exp(-t/tau_rise)`` with
    ``tau_fall = asymmetry * tau_rise``.  The shape is normalized so the
    extremum equals ``height`` at ``t_peak`` and the duration at half
    height equals ``width`` — the same (height, width) convention as the
    other pulse constructors, with a realistic tail.  This is the
    characterization stimulus of the alignment table.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if asymmetry <= 1.0:
        raise ValueError("asymmetry must exceed 1 (fall slower than rise)")
    tau_rise, tau_fall = 1.0, float(asymmetry)
    t = np.linspace(0.0, 12.0 * tau_fall, samples)
    shape = np.exp(-t / tau_fall) - np.exp(-t / tau_rise)
    peak = shape.max()
    peak_idx = int(shape.argmax())
    t_pk = t[peak_idx]
    # Interpolated half-height crossings (the sampled extrema alone would
    # bias the width by up to one grid step).
    t_left, t_right = _half_crossings(t, shape, peak_idx, 0.5 * peak)
    unit_width = t_right - t_left
    scale = width / unit_width
    times = (t - t_pk) * scale + t_peak
    values = baseline + (shape / peak) * height
    return Waveform(times, values)


def _half_crossings(t: np.ndarray, shape: np.ndarray, peak_idx: int,
                    level: float) -> tuple[float, float]:
    """Interpolated ``level`` crossings bracketing ``shape``'s peak.

    Walks outward from the peak to the first sample below ``level`` on
    each side and interpolates within that single bracketing segment.
    Feeding whole flanks to ``np.interp`` would assume a monotone ``xp``
    — an assumption rippled pulse shapes break *silently* (``np.interp``
    does not validate monotonicity; it just returns garbage), which is
    why the crossings are located by walking instead.  Falls back to the
    first/last sample when a side never drops below ``level``.
    """
    lo = peak_idx
    while lo > 0 and shape[lo - 1] >= level:
        lo -= 1
    t_left = float(t[0])
    if lo > 0:  # shape[lo - 1] < level <= shape[lo]
        a, b = shape[lo - 1], shape[lo]
        t_left = float(t[lo - 1] + (t[lo] - t[lo - 1]) * (level - a)
                       / (b - a))
    hi = peak_idx
    last = t.size - 1
    while hi < last and shape[hi + 1] >= level:
        hi += 1
    t_right = float(t[last])
    if hi < last:  # shape[hi] >= level > shape[hi + 1]
        a, b = shape[hi], shape[hi + 1]
        t_right = float(t[hi] + (t[hi + 1] - t[hi]) * (a - level)
                        / (a - b))
    return t_left, t_right


def pulse_peak(noise: Waveform) -> tuple[float, float]:
    """``(time, signed height)`` of a noise pulse's extremum.

    The extremum is measured relative to the pulse's settled baseline (its
    final value), so a pulse riding on a non-zero steady level is handled.
    """
    baseline = float(noise.values[-1])
    rel = noise.values - baseline
    idx = int(np.argmax(np.abs(rel)))
    return float(noise.times[idx]), float(rel[idx])


def pulse_width(noise: Waveform, fraction: float = 0.5) -> float:
    """Pulse duration at ``fraction`` of the peak height.

    Width is measured between the outermost crossings of the
    ``fraction * height`` level around the peak, which is robust to ringing
    near the baseline.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must lie in (0, 1)")
    t_peak, height = pulse_peak(noise)
    if height == 0.0:
        return 0.0
    baseline = float(noise.values[-1])
    level = baseline + fraction * height
    rel = (noise.values - level) * np.sign(height)
    t = noise.times
    above = rel >= 0.0
    if not above.any():
        return 0.0
    # Find the contiguous above-level region containing the peak and locate
    # its interpolated edges.
    peak_idx = int(np.argmin(np.abs(t - t_peak)))
    lo = peak_idx
    while lo > 0 and above[lo - 1]:
        lo -= 1
    hi = peak_idx
    while hi < t.size - 1 and above[hi + 1]:
        hi += 1
    t_lo = t[lo]
    if lo > 0:
        a, b = rel[lo - 1], rel[lo]
        t_lo = t[lo - 1] + (t[lo] - t[lo - 1]) * (-a) / (b - a)
    t_hi = t[hi]
    if hi < t.size - 1:
        a, b = rel[hi], rel[hi + 1]
        t_hi = t[hi] + (t[hi + 1] - t[hi]) * a / (a - b)
    return float(t_hi - t_lo)
