"""Delay and slew measurement conventions from the paper.

* Delay between two waveforms = difference of their 50% Vdd crossing times
  (paper Section 1).
* Slew ("edge rate" / "transition time") = the 10–90% crossing interval,
  scaled by 1.25 to approximate the full 0–100% ramp duration — the same
  convention used to build Thevenin ramp sources.
* Extra (noise) delay = 50% crossing of the *noisy* waveform minus 50%
  crossing of the *noiseless* one (paper Figure 1(d)).
"""

from __future__ import annotations

from repro.waveform.waveform import Waveform

__all__ = ["crossing_delay", "transition_slew", "extra_delay"]

#: Multiplier mapping a 10–90% interval to an equivalent 0–100% ramp time.
SLEW_TO_RAMP = 1.25


def crossing_delay(launch: Waveform, capture: Waveform, vdd: float,
                   *, launch_rising: bool | None = None,
                   capture_rising: bool | None = None,
                   which: str = "last") -> float:
    """50%-to-50% delay from ``launch`` to ``capture``.

    ``which='last'`` makes the measurement robust to noise glitches that
    re-cross the threshold: the *final* crossing is the one that determines
    when downstream logic settles, which is the pessimistic (and correct)
    choice for worst-case delay noise.
    """
    t_launch = launch.crossing_time(0.5 * vdd, rising=launch_rising,
                                    which="first")
    t_capture = capture.crossing_time(0.5 * vdd, rising=capture_rising,
                                      which=which)
    return t_capture - t_launch


def transition_slew(wave: Waveform, vdd: float, rising: bool) -> float:
    """Equivalent 0–100% transition time from the 10–90% interval."""
    lo, hi = 0.1 * vdd, 0.9 * vdd
    if rising:
        t_lo = wave.crossing_time(lo, rising=True, which="first")
        t_hi = wave.crossing_time(hi, rising=True, which="last")
    else:
        t_hi = wave.crossing_time(hi, rising=False, which="first")
        t_lo = wave.crossing_time(lo, rising=False, which="last")
    interval = abs(t_hi - t_lo)
    return SLEW_TO_RAMP * interval


def extra_delay(noiseless: Waveform, noisy: Waveform, vdd: float,
                rising: bool) -> float:
    """Delay noise: shift of the 50% crossing caused by injected noise.

    Positive values mean the noise slowed the transition down.  The noisy
    waveform's *last* 50% crossing is used so that a pulse that momentarily
    drags the signal back across threshold is penalized, matching the
    pessimism required of a sign-off noise tool.
    """
    t_clean = noiseless.crossing_time(0.5 * vdd, rising=rising, which="first")
    t_noisy = noisy.crossing_time(0.5 * vdd, rising=rising, which="last")
    return t_noisy - t_clean
