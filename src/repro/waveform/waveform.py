"""Immutable piecewise-linear waveform.

A :class:`Waveform` is a function ``v(t)`` defined by sample points
``(times, values)`` with linear interpolation between samples and constant
extrapolation outside them (the value holds at the first/last sample).  That
extrapolation rule matches circuit intuition: a net holds its steady-state
value before a transition starts and after it completes.

All waveform-producing code in :mod:`repro` (linear and non-linear
simulators, pulse constructors) returns this type, so superposition is
literally ``w1 + w2``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Waveform"]

#: Two time points closer than this (seconds) are considered the same
#: instant when merging grids.  Far below any circuit timescale (0.1 as),
#: far above float64 rounding noise of nanosecond-magnitude arithmetic —
#: without it, summing a waveform with a shifted copy of itself can
#: produce near-duplicate points whose finite differences amplify
#: rounding error into huge derivative spikes.
_TIME_RESOLUTION = 1e-16


def _merged_times(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted union of two time grids with near-duplicates collapsed."""
    t = np.union1d(a, b)
    if t.size < 2:
        return t
    keep = np.empty(t.shape, dtype=bool)
    keep[0] = True
    np.greater(np.diff(t), _TIME_RESOLUTION, out=keep[1:])
    return t[keep]


class Waveform:
    """Piecewise-linear waveform ``v(t)`` with constant extrapolation.

    Parameters
    ----------
    times:
        Strictly increasing sample times in seconds.
    values:
        Sample values (volts or amps), same length as ``times``.
    """

    __slots__ = ("_times", "_values")

    def __init__(self, times: Iterable[float], values: Iterable[float]):
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or v.ndim != 1:
            raise ValueError("times and values must be one-dimensional")
        if t.size != v.size:
            raise ValueError(
                f"times ({t.size}) and values ({v.size}) differ in length"
            )
        if t.size < 2:
            raise ValueError("a waveform needs at least two sample points")
        dt = np.diff(t)
        if np.any(dt <= 0):
            raise ValueError("times must be strictly increasing")
        self._times = t
        self._values = v
        self._times.setflags(write=False)
        self._values.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: float, t_start: float = 0.0,
                 t_end: float = 1.0) -> "Waveform":
        """A flat waveform at ``value`` spanning ``[t_start, t_end]``."""
        return cls([t_start, t_end], [value, value])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Sample times (read-only view)."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Sample values (read-only view)."""
        return self._values

    @property
    def t_start(self) -> float:
        return float(self._times[0])

    @property
    def t_end(self) -> float:
        return float(self._times[-1])

    def __len__(self) -> int:
        return self._times.size

    def __call__(self, t):
        """Evaluate the waveform at scalar or array ``t``."""
        return np.interp(t, self._times, self._values)

    def __repr__(self) -> str:
        return (
            f"Waveform({len(self)} pts, t=[{self.t_start:.3e},"
            f" {self.t_end:.3e}], v=[{self._values.min():.3f},"
            f" {self._values.max():.3f}])"
        )

    # ------------------------------------------------------------------
    # Arithmetic (superposition)
    # ------------------------------------------------------------------
    def _binary(self, other, op) -> "Waveform":
        if isinstance(other, Waveform):
            t = _merged_times(self._times, other._times)
            return Waveform(t, op(self(t), other(t)))
        return Waveform(self._times, op(self._values, float(other)))

    def __add__(self, other) -> "Waveform":
        return self._binary(other, np.add)

    __radd__ = __add__

    def __sub__(self, other) -> "Waveform":
        return self._binary(other, np.subtract)

    def __rsub__(self, other) -> "Waveform":
        return Waveform(self._times, float(other) - self._values)

    def __mul__(self, scale: float) -> "Waveform":
        return Waveform(self._times, self._values * float(scale))

    __rmul__ = __mul__

    def __neg__(self) -> "Waveform":
        return Waveform(self._times, -self._values)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shifted(self, delta_t: float) -> "Waveform":
        """Waveform translated right by ``delta_t`` seconds."""
        return Waveform(self._times + delta_t, self._values)

    def clipped(self, t_start: float, t_end: float) -> "Waveform":
        """Restrict to ``[t_start, t_end]`` (with interpolated endpoints)."""
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        inside = (self._times > t_start) & (self._times < t_end)
        t = np.concatenate(([t_start], self._times[inside], [t_end]))
        return Waveform(t, self(t))

    def resampled(self, times: Sequence[float]) -> "Waveform":
        """Waveform re-expressed on the given time grid."""
        t = np.asarray(times, dtype=float)
        return Waveform(t, self(t))

    def extended(self, t_start: float | None = None,
                 t_end: float | None = None) -> "Waveform":
        """Extend the time span holding the edge values constant."""
        t, v = self._times, self._values
        if t_start is not None and t_start < self.t_start:
            t = np.concatenate(([t_start], t))
            v = np.concatenate(([v[0]], v))
        if t_end is not None and t_end > self.t_end:
            t = np.concatenate((t, [t_end]))
            v = np.concatenate((v, [v[-1]]))
        return Waveform(t, v)

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------
    def derivative(self) -> "Waveform":
        """Piecewise-constant derivative sampled at segment midpoints.

        Returned as a PWL waveform over midpoints, which is adequate for the
        ``C * dV/dt`` term of the noise-current extraction (the waveforms it
        is applied to are densely sampled simulator outputs).
        """
        dt = np.diff(self._times)
        dv = np.diff(self._values)
        mid = self._times[:-1] + dt / 2.0
        slope = dv / dt
        if mid.size == 1:
            # Degenerate two-point waveform: constant derivative.
            return Waveform(
                [self._times[0], self._times[1]], [slope[0], slope[0]]
            )
        return Waveform(mid, slope)

    def integral(self) -> float:
        """Trapezoidal integral over the waveform's support."""
        return float(np.trapezoid(self._values, self._times))

    def abs_integral(self) -> float:
        """Integral of ``|v(t)|`` over the support."""
        return float(np.trapezoid(np.abs(self._values), self._times))

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def peak(self) -> tuple[float, float]:
        """``(time, value)`` of the sample of maximum magnitude."""
        idx = int(np.argmax(np.abs(self._values)))
        return float(self._times[idx]), float(self._values[idx])

    def value_range(self) -> tuple[float, float]:
        return float(self._values.min()), float(self._values.max())

    def crossings(self, level: float, rising: bool | None = None) -> np.ndarray:
        """All times where the waveform crosses ``level``.

        Parameters
        ----------
        level:
            Threshold voltage.
        rising:
            ``True`` for upward crossings only, ``False`` for downward only,
            ``None`` for both.
        """
        v = self._values - level
        t = self._times
        if not (v == 0.0).any():
            # No sample sits exactly on the level: every crossing is a
            # strict sign change, found and interpolated vectorized
            # (the elementwise arithmetic matches the scalar loop below
            # operation for operation).
            a, b = v[:-1], v[1:]
            idx = np.nonzero(a * b < 0.0)[0]
            if rising is not None:
                going_up = b[idx] > a[idx]
                idx = idx[going_up if rising else ~going_up]
            a, b = v[idx], v[idx + 1]
            return t[idx] + (t[idx + 1] - t[idx]) * (-a) / (b - a)
        out = []
        # Exact sample hits: count a sample on the level as a crossing if the
        # waveform actually passes through (sign differs on either side).
        for i in range(v.size - 1):
            a, b = v[i], v[i + 1]
            if a == 0.0 and b == 0.0:
                continue
            if a == 0.0:
                direction = b > 0
                if i == 0 or (v[i - 1] < 0) == (b > 0):
                    if rising is None or rising == direction:
                        out.append(t[i])
                continue
            if a * b < 0.0:
                direction = b > a
                tc = t[i] + (t[i + 1] - t[i]) * (-a) / (b - a)
                if rising is None or rising == direction:
                    out.append(tc)
        # Trailing exact hit.
        if v[-1] == 0.0 and v[-2] != 0.0:
            direction = v[-2] < 0
            if rising is None or rising == direction:
                out.append(t[-1])
        return np.asarray(out, dtype=float)

    def crossing_time(self, level: float, rising: bool | None = None,
                      which: str = "first") -> float:
        """Single crossing time of ``level``.

        Raises ``ValueError`` when the waveform never crosses the level,
        which typically signals a failed transition (e.g. noise pulled the
        victim back below threshold for good).
        """
        xs = self.crossings(level, rising)
        if xs.size == 0:
            raise ValueError(
                f"waveform never crosses {level:.4g} "
                f"(range {self.value_range()})"
            )
        if which == "first":
            return float(xs[0])
        if which == "last":
            return float(xs[-1])
        raise ValueError("which must be 'first' or 'last'")

    def settles_to(self, level: float, tolerance: float) -> bool:
        """True if the final value is within ``tolerance`` of ``level``."""
        return abs(float(self._values[-1]) - level) <= tolerance
