"""Terminal (ASCII) waveform rendering.

The library has no plotting dependency; this renderer makes waveforms
inspectable in a terminal, log file or docstring — good enough to *see*
a noise pulse riding on a transition, which is most of what a noise
debugging session needs.

    print(render_waveforms({"victim": vic, "noisy": noisy}, width=72))
"""

from __future__ import annotations

import math

import numpy as np

from repro.waveform.waveform import Waveform

__all__ = ["render_waveform", "render_waveforms"]

#: Glyphs assigned to successive series in a multi-waveform plot.
_GLYPHS = "*o+x#@"


def _si_time(value: float) -> str:
    for scale, suffix in ((1e-9, "ns"), (1e-12, "ps"), (1e-15, "fs")):
        if abs(value) >= scale or suffix == "fs":
            return f"{value / scale:.3g}{suffix}"
    return f"{value:.3g}s"


def render_waveforms(waves: dict[str, Waveform], *, width: int = 72,
                     height: int = 16,
                     t_start: float | None = None,
                     t_end: float | None = None) -> str:
    """Render several waveforms into one ASCII chart.

    Parameters
    ----------
    waves:
        Ordered mapping of label to waveform; each gets its own glyph.
    width, height:
        Plot area in characters.
    t_start, t_end:
        Time span (defaults to the union of the waveform supports).
    """
    if not waves:
        raise ValueError("nothing to render")
    if width < 8 or height < 4:
        raise ValueError("width >= 8 and height >= 4 required")

    t_lo = t_start if t_start is not None \
        else min(w.t_start for w in waves.values())
    t_hi = t_end if t_end is not None \
        else max(w.t_end for w in waves.values())
    if t_hi <= t_lo:
        raise ValueError("empty time span")

    times = np.linspace(t_lo, t_hi, width)
    sampled = {label: w(times) for label, w in waves.items()}
    v_lo = min(float(v.min()) for v in sampled.values())
    v_hi = max(float(v.max()) for v in sampled.values())
    if math.isclose(v_lo, v_hi):
        v_hi = v_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(sampled.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        rows = np.clip(
            ((v_hi - values) / (v_hi - v_lo) * (height - 1)).round()
            .astype(int), 0, height - 1)
        for col, row in enumerate(rows):
            grid[row][col] = glyph

    axis_width = 9
    lines = []
    for row_index, row in enumerate(grid):
        level = v_hi - (v_hi - v_lo) * row_index / (height - 1)
        label = f"{level:8.3f} " if row_index in (0, height // 2,
                                                  height - 1) else " " * 9
        lines.append(label + "|" + "".join(row))
    lines.append(" " * axis_width + "+" + "-" * width)
    footer = (" " * axis_width + " " + _si_time(t_lo)
              + _si_time(t_hi).rjust(width - len(_si_time(t_lo))))
    lines.append(footer)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {label}"
        for i, label in enumerate(waves))
    lines.append(" " * (axis_width + 1) + legend)
    return "\n".join(lines)


def render_waveform(wave: Waveform, *, label: str = "v", width: int = 72,
                    height: int = 16) -> str:
    """Render a single waveform (see :func:`render_waveforms`)."""
    return render_waveforms({label: wave}, width=width, height=height)
