"""repro — crosstalk delay-noise analysis.

A from-scratch reproduction of *"Driver Modeling and Alignment for
Worst-Case Delay Noise"* (Sirichotiyakul, Blaauw, Oh, Levy, Zolotov, Zuo —
DAC 2001): the transient holding resistance driver model and the
pre-characterized worst-case aggressor alignment, together with every
substrate they require (linear/non-linear transient simulation, PRIMA
model order reduction, gate characterization, timing windows and a
synthetic coupled-net benchmark generator).

Quick start::

    from repro.bench.netgen import NetGenerator
    from repro.core.analysis import DelayNoiseAnalyzer

    net = NetGenerator(seed=1).generate()
    analyzer = DelayNoiseAnalyzer()
    report = analyzer.analyze(net)
    print(report.extra_delay_output)           # worst-case delay noise
    print(report.extra_delay_output_thevenin)  # the traditional model

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-figure reproduction results.
"""

__version__ = "1.0.0"
