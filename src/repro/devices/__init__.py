"""Transistor-level device models and technology parameters.

The paper's techniques require a *non-linear* driver/receiver model whose
small-signal conductance varies strongly across a transition — that is the
entire reason the Thevenin holding resistance fails and the transient
holding resistance is needed.  We provide a synthetic deep-submicron
technology (:mod:`repro.devices.technology`) and a C¹-smooth square-law
MOSFET (:mod:`repro.devices.mosfet`) with analytic derivatives for robust
Newton iteration.
"""

from repro.devices.technology import Technology, default_technology
from repro.devices.mosfet import (
    Mosfet,
    MosfetBatchParams,
    MosfetParams,
    batch_params,
    evaluate_batch,
    evaluate_one,
    nmos_params,
    pmos_params,
)

__all__ = [
    "Technology",
    "default_technology",
    "Mosfet",
    "MosfetParams",
    "MosfetBatchParams",
    "batch_params",
    "evaluate_batch",
    "evaluate_one",
    "nmos_params",
    "pmos_params",
]
