"""C¹-smooth square-law MOSFET with analytic terminal derivatives.

The model is the classic Shockley square law with two smoothings that make
it continuously differentiable everywhere — a requirement for the damped
Newton iteration in :mod:`repro.sim.nonlinear`:

* the overdrive ``Vgst = Vgs - Vt`` is replaced by the softplus-like
  ``Vgst_eff = (Vgst + sqrt(Vgst² + δ²)) / 2`` (smooth cutoff), and
* the linear/saturation corner is blended with
  ``Vde = Vgst_eff * tanh(Vds / Vgst_eff)`` so that
  ``Id = β (Vgst_eff · Vde − Vde²/2)(1 + λ Vds)`` reduces to the textbook
  triode expression for small ``Vds`` and to ``β Vgst²/2 (1 + λ Vds)`` in
  saturation.

The device is symmetric: ``Vds < 0`` is handled by exchanging drain and
source.  PMOS devices are evaluated as mirrored NMOS devices.  Two
evaluation entry points share the same math:

* :meth:`Mosfet.evaluate` — scalar float path (no numpy), kept for
  single-device callers and as the reference semantics;
* :func:`evaluate_batch` — vectorized evaluation of a whole device
  population at once, which is what the non-linear simulator's fast
  kernel calls per Newton iteration (one numpy expression tree instead
  of a Python loop over devices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.devices.technology import Technology

__all__ = ["MosfetParams", "Mosfet", "nmos_params", "pmos_params",
           "MosfetBatchParams", "batch_params", "evaluate_batch",
           "evaluate_one"]

#: Cutoff smoothing width in volts. Small enough not to distort the on-state
#: I–V, large enough to keep Newton derivatives well-scaled near cutoff.
_DELTA = 0.02


@dataclass(frozen=True)
class MosfetParams:
    """Electrical parameters of one device instance."""

    polarity: str  # 'n' or 'p'
    vt: float      # threshold voltage magnitude [V]
    k: float       # transconductance parameter K' [A/V^2]
    lam: float     # channel-length modulation [1/V]
    w: float       # channel width [m]
    l: float       # channel length [m]
    gmin: float = 1e-9

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ValueError("polarity must be 'n' or 'p'")
        if min(self.vt, self.k, self.w, self.l) <= 0:
            raise ValueError("vt, k, w and l must be positive")

    @property
    def beta(self) -> float:
        """Gain factor ``K' * W / L``."""
        return self.k * self.w / self.l


def nmos_params(tech: Technology, width: float) -> MosfetParams:
    """NMOS parameters for the given technology and width."""
    return MosfetParams("n", tech.vt_n, tech.k_n, tech.lambda_n,
                        width, tech.l_min, tech.gmin)


def pmos_params(tech: Technology, width: float) -> MosfetParams:
    """PMOS parameters for the given technology and width."""
    return MosfetParams("p", tech.vt_p, tech.k_p, tech.lambda_p,
                        width, tech.l_min, tech.gmin)


def _forward(beta: float, vt: float, lam: float, vgs: float,
             vds: float) -> tuple[float, float, float]:
    """Drain current and partials for ``vds >= 0``.

    Returns ``(i, di/dvgs, di/dvds)``.
    """
    vgst = vgs - vt
    root = math.sqrt(vgst * vgst + _DELTA * _DELTA)
    a = 0.5 * (vgst + root)            # smooth overdrive, always > 0
    da_dvgs = 0.5 * (1.0 + vgst / root)

    x = vds / a
    # tanh with guarded overflow for very large arguments.
    u = math.tanh(x) if x < 20.0 else 1.0
    sech2 = 1.0 - u * u

    f = a * a * (u - 0.5 * u * u)
    df_da = 2.0 * a * (u - 0.5 * u * u) + a * a * (1.0 - u) * (-x / a) * sech2
    df_dvds = a * (1.0 - u) * sech2

    clm = 1.0 + lam * vds
    i = beta * f * clm
    di_dvgs = beta * clm * df_da * da_dvgs
    di_dvds = beta * (clm * df_dvds + f * lam)
    return i, di_dvgs, di_dvds


def _nchannel(params: MosfetParams, vg: float, vd: float,
              vs: float) -> tuple[float, float, float, float]:
    """N-channel terminal evaluation (any Vds sign).

    Returns ``(i_ds, di/dvg, di/dvd, di/dvs)`` where ``i_ds`` flows from the
    drain node through the channel to the source node.
    """
    beta, vt, lam = params.beta, params.vt, params.lam
    if vd >= vs:
        i, f1, f2 = _forward(beta, vt, lam, vg - vs, vd - vs)
        return i, f1, f2, -f1 - f2
    # Symmetric device: roles of drain and source exchange.
    i, f1, f2 = _forward(beta, vt, lam, vg - vd, vs - vd)
    return -i, -f1, f1 + f2, -f2


class Mosfet:
    """A MOSFET instance bound to named circuit nodes.

    Parameters
    ----------
    name:
        Instance name (used in diagnostics).
    params:
        Electrical parameters (see :class:`MosfetParams`).
    drain, gate, source:
        Node names.  The bulk is implicitly tied to the source rail (the
        standard digital-cell connection); body effect is not modeled.
    """

    __slots__ = ("name", "params", "drain", "gate", "source")

    def __init__(self, name: str, params: MosfetParams, drain: str,
                 gate: str, source: str):
        self.name = name
        self.params = params
        self.drain = drain
        self.gate = gate
        self.source = source

    def __repr__(self) -> str:
        p = self.params
        return (f"Mosfet({self.name!r}, {p.polarity}mos, "
                f"W={p.w * 1e6:.2f}um, d={self.drain}, g={self.gate}, "
                f"s={self.source})")

    def evaluate(self, vg: float, vd: float,
                 vs: float) -> tuple[float, float, float, float]:
        """Channel current and terminal derivatives at a bias point.

        Returns ``(i_ds, di/dvg, di/dvd, di/dvs)``; ``i_ds`` is the current
        entering the drain terminal and leaving the source terminal.  A
        ``gmin`` shunt between drain and source is folded in for Newton
        robustness in the fully-off state.
        """
        p = self.params
        if p.polarity == "n":
            i, dg, dd, ds = _nchannel(p, vg, vd, vs)
        else:
            # PMOS as a mirrored NMOS: I_p(v) = -I_n(-v); derivatives keep
            # their sign under the double negation.
            i, dg, dd, ds = _nchannel(p, -vg, -vd, -vs)
            i = -i
        i += p.gmin * (vd - vs)
        dd += p.gmin
        ds -= p.gmin
        return i, dg, dd, ds


def evaluate_one(sign: float, beta: float, vt: float, lam: float,
                 gmin: float, vg: float, vd: float,
                 vs: float) -> tuple[float, float, float, float]:
    """:meth:`Mosfet.evaluate` on unpacked float parameters.

    Bit-identical to the method, but with the parameter dataclass
    flattened into plain floats — the form the non-linear kernel's
    small-population hot loop keeps precomputed per device (attribute
    and property lookups would otherwise dominate the evaluation cost).
    ``sign`` is +1 for NMOS, -1 for PMOS.
    """
    if sign < 0.0:
        mvg, mvd, mvs = -vg, -vd, -vs
    else:
        mvg, mvd, mvs = vg, vd, vs
    if mvd >= mvs:
        i, f1, f2 = _forward(beta, vt, lam, mvg - mvs, mvd - mvs)
        dg, dd, ds = f1, f2, -f1 - f2
    else:
        i, f1, f2 = _forward(beta, vt, lam, mvg - mvd, mvs - mvd)
        i, dg, dd, ds = -i, -f1, f1 + f2, -f2
    if sign < 0.0:
        i = -i
    return i + gmin * (vd - vs), dg, dd + gmin, ds - gmin


# ----------------------------------------------------------------------
# Vectorized population evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MosfetBatchParams:
    """Parameter arrays of a device population, one entry per device.

    ``sign`` is +1 for NMOS and -1 for PMOS: a PMOS is evaluated as an
    N-channel device at mirrored terminal voltages with the channel
    current negated, exactly like the scalar path.
    """

    sign: np.ndarray
    beta: np.ndarray
    vt: np.ndarray
    lam: np.ndarray
    gmin: np.ndarray
    beta_lam: np.ndarray  # beta * lam, precomputed for the hot loop

    @property
    def n(self) -> int:
        return self.sign.size


def batch_params(mosfets) -> MosfetBatchParams:
    """Pack a sequence of :class:`Mosfet` instances into arrays."""
    params = [m.params for m in mosfets]
    beta = np.array([p.beta for p in params])
    lam = np.array([p.lam for p in params])
    return MosfetBatchParams(
        sign=np.array([1.0 if p.polarity == "n" else -1.0 for p in params]),
        beta=beta,
        vt=np.array([p.vt for p in params]),
        lam=lam,
        gmin=np.array([p.gmin for p in params]),
        beta_lam=beta * lam,
    )


def evaluate_batch(batch: MosfetBatchParams, vg: np.ndarray, vd: np.ndarray,
                   vs: np.ndarray):
    """Vectorized :meth:`Mosfet.evaluate` over a device population.

    Returns ``(i, di/dvg, di/dvd, di/dvs)`` arrays with one entry per
    device; semantics (polarity mirroring, drain/source exchange for
    ``Vds < 0``, the gmin shunt) match the scalar path to floating-point
    rounding of the underlying transcendentals.

    The voltage arrays may carry leading axes beyond the device axis —
    everything below is elementwise, broadcasting ``(..., n)`` terminal
    voltages against the ``(n,)`` per-device parameters.  The batched
    multi-candidate kernel relies on this, passing ``(S, n)`` blocks to
    evaluate S candidate circuits' devices in one call.
    """
    sign = batch.sign
    # Polarity mirror, then channel orientation: the N-channel math runs
    # on (vgs, vds >= 0) measured from the effective source terminal.
    mvg, mvd, mvs = sign * vg, sign * vd, sign * vs
    swap = mvd < mvs
    v_src = np.where(swap, mvd, mvs)
    vgs = mvg - v_src
    vds = np.abs(mvd - mvs)

    vgst = vgs - batch.vt
    root = np.sqrt(vgst * vgst + _DELTA * _DELTA)
    a = 0.5 * (vgst + root)
    da_dvgs = a / root  # == 0.5 * (1 + vgst / root)

    x = vds / a
    # np.tanh saturates to exactly 1.0 well before the scalar path's
    # x >= 20 guard kicks in, so no explicit clamp is needed here.
    u = np.tanh(x)
    one_mu = 1.0 - u
    sech2 = one_mu * (1.0 + u)
    uq = u * (1.0 - 0.5 * u)

    f = (a * a) * uq
    t1 = one_mu * sech2
    df_dvds = a * t1
    df_da = a * (2.0 * uq - x * t1)

    clm = 1.0 + batch.lam * vds
    bc = batch.beta * clm
    i_f = bc * f
    f1 = bc * da_dvgs * df_da
    f2 = bc * df_dvds + batch.beta_lam * f

    # Undo the drain/source exchange (see _nchannel), then the polarity
    # mirror: I_p(v) = -I_n(-v), derivatives unchanged by the double
    # negation.  The terminal derivatives always sum to zero (the channel
    # current depends only on voltage differences), so ds = -(dg + dd).
    swap_sign = np.where(swap, -1.0, 1.0)
    i = (sign * swap_sign) * i_f
    dg = swap_sign * f1
    dd = np.where(swap, f1 + f2, f2)
    ds = -(dg + dd)

    i += batch.gmin * (vd - vs)
    dd += batch.gmin
    ds -= batch.gmin
    return i, dg, dd, ds


def evaluate_batch_channel(batch: MosfetBatchParams, v: np.ndarray,
                           d_out: np.ndarray | None = None):
    """Channel-only :func:`evaluate_batch` over an ``(a, 3, n)`` block.

    The multi-candidate Newton kernel's flavor of the evaluation: ``v``
    stacks (gate, drain, source) voltages of ``a`` candidates, and the
    derivatives come back as one ``(a, 3n)`` block ``[dg | dd | ds]``
    written into ``d_out`` when given — the layout its flat Jacobian
    gather indexes directly, skipping three buffer copies per iteration.

    The constant gmin drain-source shunt is **excluded**: it is linear,
    so the block kernel folds it into the base matrix ``A`` once instead
    of re-adding it to every residual and Jacobian (the converged root
    is identical — the same total current is just split between the
    constant and the per-iteration part).  Everything else matches
    :func:`evaluate_batch` to floating-point rounding.
    """
    n = batch.sign.size
    mv = batch.sign * v  # polarity mirror, all three terminals at once
    mvg, mvd, mvs = mv[:, 0], mv[:, 1], mv[:, 2]
    vds_raw = mvd - mvs
    swap = vds_raw < 0.0
    vds = np.abs(vds_raw)
    vgs = mvg - np.minimum(mvd, mvs)
    vgst = vgs - batch.vt
    root = np.hypot(vgst, _DELTA)
    a = 0.5 * (vgst + root)
    da_dvgs = a / root
    x = vds / a
    u = np.tanh(x)
    one_mu = 1.0 - u
    sech2 = one_mu * (1.0 + u)
    uq = u * (1.0 - 0.5 * u)
    f = (a * a) * uq
    t1 = one_mu * sech2
    df_dvds = a * t1
    df_da = a * (2.0 * uq - x * t1)
    bc = batch.beta * (1.0 + batch.lam * vds)
    f1 = bc * da_dvgs * df_da
    f2 = bc * df_dvds + batch.beta_lam * f
    swap_sign = np.where(swap, -1.0, 1.0)
    i = (batch.sign * swap_sign) * (bc * f)
    if d_out is None:
        d_out = np.empty((v.shape[0], 3 * n))
    dg = d_out[:, :n]
    dd = d_out[:, n:2 * n]
    ds = d_out[:, 2 * n:]
    np.multiply(swap_sign, f1, out=dg)
    # dd = f2 (+ f1 where swapped); bool * float is the branchless form.
    np.multiply(swap, f1, out=dd)
    np.add(dd, f2, out=dd)
    # Terminal derivatives sum to zero: ds = -(dg + dd).
    np.add(dg, dd, out=ds)
    np.negative(ds, out=ds)
    return i, d_out
